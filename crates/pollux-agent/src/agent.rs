//! The per-job `PolluxAgent` (Sec. 4.1).
//!
//! The agent owns everything job-local: the iteration-time profiler,
//! the gradient-statistics snapshot, the fitted θsys model, and the
//! AdaScale state. At every reporting interval (30 s in the paper) it
//! re-fits θsys and produces an [`AgentReport`] — the goodput model
//! plus scheduling constraints — for `PolluxSched`. Between reports it
//! re-tunes its own batch size and learning rate for whatever
//! allocation it currently holds.

use crate::profiler::{ObservationRun, ThroughputProfiler};
use pollux_models::{
    fit_throughput_params_warm, AdaScale, BatchSizeLimits, EfficiencyModel, FitReport,
    GoodputModel, GradientStats, PlacementShape, ThroughputParams,
};
use serde::{Deserialize, Serialize};

/// What the agent reports to `PolluxSched` (the `(θsys, φ_t, m0)`
/// triple of Sec. 4.1, packaged as a ready-to-query goodput model,
/// plus allocation constraints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentReport {
    /// The job's goodput model at its current training progress.
    pub model: GoodputModel,
    /// Scale-out cap: at most twice the GPUs ever held (Sec. 4.1's
    /// guard against being "immediately scaled out to arbitrarily many
    /// GPUs").
    pub gpu_cap: u32,
    /// Minimum GPUs on which the initial batch size fits.
    pub min_gpus: u32,
}

/// The agent's job-level tuning decision after a (re-)allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningDecision {
    /// The most efficient batch size `m*` (Eqn 13).
    pub batch_size: u64,
    /// The AdaScale-adapted learning rate for `m*`.
    pub learning_rate: f64,
    /// The AdaScale gain `r_t(m*)`.
    pub gain: f64,
    /// Predicted goodput at `m*` (useful examples/s).
    pub goodput: f64,
}

/// The immutable half of one report-interval round, produced by
/// [`PolluxAgent::plan_report`] against a frozen agent and applied by
/// [`PolluxAgent::commit_report`].
///
/// The split exists so a driver that owns many agents (the simulator's
/// report round) can fan the expensive parts — the θsys refit and the
/// batch-size tune — over worker threads with only `&PolluxAgent`
/// access, then commit the results serially in job order. The plan is
/// computed against the *post-commit* state it describes: the tuning
/// decision sees `stats` (if any) as the latest gradient statistics
/// and the fresh fit (if one was produced), exactly as if
/// `observe_gradient_stats` → `refit` → `tune` had run sequentially.
#[derive(Debug, Clone)]
pub struct ReportPlan {
    /// Gradient statistics to install as the latest snapshot.
    pub stats: Option<GradientStats>,
    /// The θsys fit this round produced (`None` when no refit was
    /// requested or the fit failed).
    pub fitted: Option<FitReport>,
    /// The tuning decision for the requested shape, if one was
    /// requested and a goodput model exists.
    pub tuning: Option<TuningDecision>,
}

/// Job-level profiling, model fitting, and tuning.
///
/// # Examples
///
/// ```
/// use pollux_agent::PolluxAgent;
/// use pollux_models::{BatchSizeLimits, GradientStats, PlacementShape};
///
/// let limits = BatchSizeLimits::new(128, 8192, 1024).unwrap();
/// let mut agent = PolluxAgent::new(128, 0.1, limits).unwrap();
///
/// // Training code reports measured iteration times...
/// for (gpus, nodes, t_iter) in [(1, 1, 0.14), (2, 1, 0.09), (4, 1, 0.06)] {
///     let shape = PlacementShape::new(gpus, nodes).unwrap();
///     agent.observe_iteration(shape, 128, t_iter);
/// }
/// // ...and gradient statistics (variance, |grad|²) at m0.
/// agent.observe_gradient_stats(GradientStats::new(12.0, 1.0).unwrap());
///
/// // The agent fits θsys and can now tune (m*, η) for any placement
/// // and report its goodput model to the scheduler.
/// assert!(agent.refit());
/// let tuning = agent.tune(PlacementShape::new(4, 1).unwrap()).unwrap();
/// assert!(tuning.batch_size >= 128);
/// let report = agent.report().unwrap();
/// assert!(report.gpu_cap >= 8); // twice the 4 GPUs it has held
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolluxAgent {
    limits: BatchSizeLimits,
    adascale: AdaScale,
    profiler: ThroughputProfiler,
    latest_stats: Option<GradientStats>,
    fitted: Option<FitReport>,
    max_gpus_allocated: u32,
}

impl PolluxAgent {
    /// Creates an agent for a job submitted with `(m0, η0)` and the
    /// given batch-size limits (`limits.min` must equal `m0`).
    pub fn new(m0: u64, eta0: f64, limits: BatchSizeLimits) -> Option<Self> {
        if limits.min != m0 {
            return None;
        }
        Some(Self {
            limits,
            adascale: AdaScale::new(eta0, m0)?,
            profiler: ThroughputProfiler::new(),
            latest_stats: None,
            fitted: None,
            max_gpus_allocated: 0,
        })
    }

    /// The job's initial batch size.
    pub fn m0(&self) -> u64 {
        self.adascale.m0()
    }

    /// The job's batch-size limits.
    pub fn limits(&self) -> BatchSizeLimits {
        self.limits
    }

    /// Read access to the profiler (e.g. for diagnostics).
    pub fn profiler(&self) -> &ThroughputProfiler {
        &self.profiler
    }

    /// The most recent θsys fit, if any.
    pub fn fit(&self) -> Option<&FitReport> {
        self.fitted.as_ref()
    }

    /// Notes that the scheduler granted this job `shape` (even before
    /// any iteration completes), feeding the lifetime scale-out cap.
    pub fn note_allocation(&mut self, shape: PlacementShape) {
        self.max_gpus_allocated = self.max_gpus_allocated.max(shape.gpus);
    }

    /// Records one measured training iteration.
    pub fn observe_iteration(&mut self, shape: PlacementShape, batch_size: u64, t_iter: f64) {
        self.note_allocation(shape);
        self.profiler.record(shape, batch_size, t_iter);
    }

    /// Opens a batched observation run for a stretch of iterations
    /// under one fixed configuration (see
    /// [`ThroughputProfiler::begin_run`] for the equivalence contract).
    /// Like [`observe_iteration`](Self::observe_iteration) this notes
    /// the allocation up front; `note_allocation` is an idempotent max,
    /// so noting once per run equals noting once per iteration.
    pub fn begin_observation_run(
        &mut self,
        shape: PlacementShape,
        batch_size: u64,
    ) -> ObservationRun {
        self.note_allocation(shape);
        self.profiler.begin_run(shape, batch_size)
    }

    /// Commits a batched observation run opened by
    /// [`begin_observation_run`](Self::begin_observation_run).
    pub fn record_observation_run(&mut self, run: ObservationRun) {
        self.profiler.record_run(run);
    }

    /// Records the latest smoothed gradient statistics (from a
    /// [`crate::gns`] estimator, or replayed by the simulator).
    pub fn observe_gradient_stats(&mut self, stats: GradientStats) {
        self.latest_stats = Some(stats);
    }

    /// Re-fits θsys to all profiled data, warm-starting from the
    /// previous fit when one exists (consecutive refits usually share a
    /// basin, so the expensive multi-start restarts are skipped —
    /// [`FitReport::used_warm_start`]). Returns `true` when a fit was
    /// produced (needs at least one valid observation).
    pub fn refit(&mut self) -> bool {
        match self.plan_fit() {
            Some(report) => {
                self.fitted = Some(report);
                true
            }
            None => false,
        }
    }

    /// The fit computation shared by [`refit`](Self::refit) and
    /// [`plan_report`](Self::plan_report): θsys against all profiled
    /// data, warm-started from the previous fit. Pure — does not touch
    /// agent state.
    fn plan_fit(&self) -> Option<FitReport> {
        let obs = self.profiler.observations();
        let warm = self.fitted.as_ref().map(|f| f.params);
        fit_throughput_params_warm(&obs, self.profiler.priors(), warm.as_ref())
    }

    /// [`refit`](Self::refit) with telemetry: times the fit as an
    /// `agent/refit` span and records fit quality (an `agent/rmsle_1e6`
    /// histogram of `RMSLE · 10⁶`, since histogram buckets are integer
    /// powers of two) and warm-start acceptance counters
    /// (`agent/refit_warm_accepted` vs `agent/refit_cold`). The fit
    /// itself is byte-for-byte the same computation as `refit`;
    /// recording only reads the resulting report.
    pub fn refit_recorded(&mut self, recorder: &pollux_telemetry::Recorder) -> bool {
        let span = recorder.span("agent", "refit");
        let fitted = self.refit();
        drop(span);
        recorder.incr("agent", "refits", 1);
        if fitted {
            let report = self.fitted.as_ref().expect("refit returned true");
            recorder.observe("agent", "rmsle_1e6", (report.rmsle.max(0.0) * 1e6) as u64);
            if report.used_warm_start {
                recorder.incr("agent", "refit_warm_accepted", 1);
            } else {
                recorder.incr("agent", "refit_cold", 1);
            }
        } else {
            recorder.incr("agent", "refit_failed", 1);
        }
        fitted
    }

    /// The fitted throughput parameters, or `None` before any fit.
    pub fn throughput_params(&self) -> Option<ThroughputParams> {
        self.fitted.as_ref().map(|f| f.params)
    }

    /// The current statistical-efficiency snapshot.
    ///
    /// Before any gradient statistics arrive the agent is maximally
    /// conservative: `φ_t = 0`, i.e. no batch size above `m0` gains
    /// anything, so tuning stays at `m0` until evidence arrives.
    pub fn efficiency_model(&self) -> EfficiencyModel {
        let phi = self
            .latest_stats
            .map(|s| s.noise_scale(self.m0()))
            .unwrap_or(0.0);
        EfficiencyModel::from_noise_scale(self.m0(), phi.max(0.0))
            .expect("m0 >= 1 and phi >= 0 by construction")
    }

    /// The combined goodput model, or `None` before the first θsys fit.
    pub fn goodput_model(&self) -> Option<GoodputModel> {
        let params = self.throughput_params()?;
        GoodputModel::new(params, self.efficiency_model(), self.limits)
    }

    /// Builds the periodic report for `PolluxSched`, or `None` before
    /// the first fit.
    pub fn report(&self) -> Option<AgentReport> {
        let model = self.goodput_model()?;
        let min_gpus = self.limits.min_gpus().max(1);
        // The cap starts at 2 (a fresh single-GPU job may grow to two
        // GPUs) and always admits the minimum feasible allocation.
        let gpu_cap = (self.max_gpus_allocated * 2).max(2).max(min_gpus);
        Some(AgentReport {
            model,
            gpu_cap,
            min_gpus,
        })
    }

    /// Determines `(m*, η)` for the given allocation (Eqn 13 +
    /// AdaScale), or `None` when no fit exists yet or the allocation
    /// cannot fit `m0`.
    pub fn tune(&self, shape: PlacementShape) -> Option<TuningDecision> {
        let model = self.goodput_model()?;
        let (m_star, goodput) = model.optimal_batch_size(shape)?;
        let eff = self.efficiency_model();
        Some(TuningDecision {
            batch_size: m_star,
            learning_rate: self.adascale.learning_rate(&eff, m_star),
            gain: self.adascale.gain(&eff, m_star),
            goodput,
        })
    }

    /// Computes one report-interval round without mutating the agent:
    /// optionally re-fits θsys (`refit`), and optionally tunes the
    /// batch size for `tune_shape` against the hypothetical post-commit
    /// state (`stats` installed, fresh fit applied). Equivalent to
    /// `observe_gradient_stats(stats)` → `refit()` → `tune(shape)` on
    /// a mutable agent, operation for operation — the simulator's
    /// golden digests pin this. Apply the result with
    /// [`commit_report`](Self::commit_report).
    pub fn plan_report(
        &self,
        stats: Option<GradientStats>,
        refit: bool,
        tune_shape: Option<PlacementShape>,
    ) -> ReportPlan {
        let fitted = if refit { self.plan_fit() } else { None };
        self.plan_with_fit(stats, fitted, tune_shape)
    }

    /// [`plan_report`](Self::plan_report) with the same telemetry as
    /// [`refit_recorded`](Self::refit_recorded) around the fit (an
    /// `agent/refit` span plus the refit counters and the
    /// `agent/rmsle_1e6` histogram). Safe to call from worker threads:
    /// counters are relaxed atomics and span events go straight to the
    /// sink.
    pub fn plan_report_recorded(
        &self,
        recorder: &pollux_telemetry::Recorder,
        stats: Option<GradientStats>,
        refit: bool,
        tune_shape: Option<PlacementShape>,
    ) -> ReportPlan {
        let fitted = if refit {
            let span = recorder.span("agent", "refit");
            let fitted = self.plan_fit();
            drop(span);
            recorder.incr("agent", "refits", 1);
            match &fitted {
                Some(report) => {
                    recorder.observe("agent", "rmsle_1e6", (report.rmsle.max(0.0) * 1e6) as u64);
                    if report.used_warm_start {
                        recorder.incr("agent", "refit_warm_accepted", 1);
                    } else {
                        recorder.incr("agent", "refit_cold", 1);
                    }
                }
                None => recorder.incr("agent", "refit_failed", 1),
            }
            fitted
        } else {
            None
        };
        self.plan_with_fit(stats, fitted, tune_shape)
    }

    fn plan_with_fit(
        &self,
        stats: Option<GradientStats>,
        fitted: Option<FitReport>,
        tune_shape: Option<PlacementShape>,
    ) -> ReportPlan {
        let stats_effective = stats.or(self.latest_stats);
        let params = fitted.as_ref().or(self.fitted.as_ref()).map(|f| f.params);
        let tuning = tune_shape.and_then(|shape| {
            // Mirrors `efficiency_model` with the planned stats in
            // place of `latest_stats` — same ops, same bits.
            let phi = stats_effective
                .map(|s| s.noise_scale(self.m0()))
                .unwrap_or(0.0);
            let eff = EfficiencyModel::from_noise_scale(self.m0(), phi.max(0.0))
                .expect("m0 >= 1 and phi >= 0 by construction");
            let model = GoodputModel::new(params?, eff, self.limits)?;
            let (m_star, goodput) = model.optimal_batch_size(shape)?;
            Some(TuningDecision {
                batch_size: m_star,
                learning_rate: self.adascale.learning_rate(&eff, m_star),
                gain: self.adascale.gain(&eff, m_star),
                goodput,
            })
        });
        ReportPlan {
            stats,
            fitted,
            tuning,
        }
    }

    /// Applies a [`ReportPlan`] produced by
    /// [`plan_report`](Self::plan_report) against this same agent
    /// state. Returns `true` when the plan carried a fresh fit (the
    /// analogue of [`refit`](Self::refit) returning `true`).
    pub fn commit_report(&mut self, plan: &ReportPlan) -> bool {
        if let Some(stats) = plan.stats {
            self.latest_stats = Some(stats);
        }
        match &plan.fitted {
            Some(fit) => {
                self.fitted = Some(fit.clone());
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_params() -> ThroughputParams {
        ThroughputParams::new(0.06, 6.0e-4, 0.04, 0.002, 0.18, 0.006, 2.0).unwrap()
    }

    fn agent() -> PolluxAgent {
        let limits = BatchSizeLimits::new(128, 32_768, 512).unwrap();
        PolluxAgent::new(128, 0.1, limits).unwrap()
    }

    fn feed_profile(a: &mut PolluxAgent, configs: &[(u32, u32, u64)]) {
        let p = true_params();
        for &(gpus, nodes, m) in configs {
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            for _ in 0..3 {
                a.observe_iteration(shape, m, p.t_iter(shape, m));
            }
        }
    }

    #[test]
    fn construction_validates_m0_consistency() {
        let limits = BatchSizeLimits::new(128, 1024, 512).unwrap();
        assert!(PolluxAgent::new(128, 0.1, limits).is_some());
        assert!(PolluxAgent::new(64, 0.1, limits).is_none());
        assert!(PolluxAgent::new(128, 0.0, limits).is_none());
    }

    #[test]
    fn no_report_before_first_fit() {
        let a = agent();
        assert!(a.report().is_none());
        assert!(a.tune(PlacementShape::single()).is_none());
    }

    #[test]
    fn conservative_efficiency_before_gradient_stats() {
        let mut a = agent();
        feed_profile(&mut a, &[(1, 1, 128), (1, 1, 256)]);
        assert!(a.refit());
        // φ defaults to 0: tuning sticks to m0.
        let d = a.tune(PlacementShape::single()).unwrap();
        assert_eq!(d.batch_size, 128);
        assert!((d.learning_rate - 0.1).abs() < 1e-9);
        assert!((d.gain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_noise_scale_grows_batch_and_lr() {
        let mut a = agent();
        feed_profile(
            &mut a,
            &[
                (1, 1, 128),
                (2, 1, 256),
                (4, 1, 512),
                (4, 2, 512),
                (8, 2, 1024),
            ],
        );
        assert!(a.refit());
        a.observe_gradient_stats(GradientStats::new(40.0, 1.0).unwrap());
        // φ = 128·40 = 5120 examples: large batches stay efficient.
        let shape = PlacementShape::new(8, 2).unwrap();
        let d = a.tune(shape).unwrap();
        assert!(d.batch_size > 512, "m* = {}", d.batch_size);
        assert!(d.learning_rate > 0.1, "lr = {}", d.learning_rate);
        assert!(d.gain > 1.0);
        assert!(d.goodput > 0.0);
    }

    #[test]
    fn gpu_cap_is_twice_lifetime_max() {
        let mut a = agent();
        feed_profile(&mut a, &[(1, 1, 128)]);
        a.refit();
        let r = a.report().unwrap();
        assert_eq!(r.gpu_cap, 2);
        a.note_allocation(PlacementShape::new(6, 2).unwrap());
        let r = a.report().unwrap();
        assert_eq!(r.gpu_cap, 12);
        // The cap never shrinks when the job later runs smaller.
        a.note_allocation(PlacementShape::single());
        assert_eq!(a.report().unwrap().gpu_cap, 12);
    }

    #[test]
    fn min_gpus_respects_memory_limits() {
        // m0 = 1024 at 256 per GPU requires 4 GPUs.
        let limits = BatchSizeLimits::new(1024, 32_768, 256).unwrap();
        let mut a = PolluxAgent::new(1024, 0.1, limits).unwrap();
        let shape = PlacementShape::new(4, 1).unwrap();
        let p = true_params();
        a.observe_iteration(shape, 1024, p.t_iter(shape, 1024));
        a.refit();
        let r = a.report().unwrap();
        assert_eq!(r.min_gpus, 4);
        assert!(r.gpu_cap >= 4);
        // Tuning on an infeasible shape returns None.
        assert!(a.tune(PlacementShape::single()).is_none());
    }

    #[test]
    fn report_model_predicts_reasonable_throughput() {
        let mut a = agent();
        feed_profile(
            &mut a,
            &[
                (1, 1, 128),
                (1, 1, 256),
                (2, 1, 256),
                (4, 1, 512),
                (4, 2, 512),
                (8, 2, 1024),
                (16, 4, 2048),
            ],
        );
        assert!(a.refit());
        a.observe_gradient_stats(GradientStats::new(10.0, 1.0).unwrap());
        let r = a.report().unwrap();
        let truth = true_params();
        for (g, n, m) in [(2u32, 1u32, 256u64), (8, 2, 1024)] {
            let shape = PlacementShape::new(g, n).unwrap();
            let pred = r.model.throughput.throughput(shape, m);
            let actual = truth.throughput(shape, m);
            assert!(
                (pred - actual).abs() / actual < 0.25,
                "({g},{n},{m}): pred {pred} vs actual {actual}"
            );
        }
    }

    #[test]
    fn refit_fails_gracefully_without_data() {
        let mut a = agent();
        assert!(!a.refit());
        assert!(a.fit().is_none());
    }

    #[test]
    fn plan_commit_equals_sequential_mutation() {
        // plan_report/commit_report must replicate the sequential
        // observe_gradient_stats → refit → tune path bit for bit, in
        // every combination of (stats, refit, tune) requested.
        let shape = PlacementShape::new(4, 1).unwrap();
        let stats = GradientStats::new(18.0, 1.0).unwrap();
        for (give_stats, refit, tune) in [
            (true, true, true),
            (true, false, true),
            (false, true, true),
            (false, true, false),
            (false, false, false),
        ] {
            let mut seq = agent();
            feed_profile(&mut seq, &[(1, 1, 128), (2, 1, 256), (4, 1, 512)]);
            let mut planned = seq.clone();

            let stats_in = give_stats.then_some(stats);
            let plan = planned.plan_report(stats_in, refit, tune.then_some(shape));
            let plan_fitted = planned.commit_report(&plan);

            if let Some(s) = stats_in {
                seq.observe_gradient_stats(s);
            }
            let seq_fitted = refit && seq.refit();
            let seq_tuning = if tune { seq.tune(shape) } else { None };

            assert_eq!(plan_fitted, seq_fitted);
            assert_eq!(plan.tuning, seq_tuning);
            assert_eq!(planned, seq, "case ({give_stats}, {refit}, {tune})");
        }
    }

    #[test]
    fn second_refit_warm_starts_from_first() {
        let mut a = agent();
        feed_profile(&mut a, &[(1, 1, 128), (2, 1, 256), (4, 1, 512)]);
        assert!(a.refit());
        assert!(!a.fit().unwrap().used_warm_start, "first fit is cold");
        // A few more observations under the same prior mask: the warm
        // solve from the previous optimum converges immediately.
        feed_profile(&mut a, &[(4, 1, 1024), (2, 1, 512)]);
        assert!(a.refit());
        let fit = a.fit().unwrap();
        assert!(fit.used_warm_start, "rmsle = {}", fit.rmsle);
    }
}
