//! Gradient-noise-scale estimation (Sec. 3.1).
//!
//! The noise scale needs two statistics measured during training: the
//! per-example gradient-noise magnitude `S = tr(Σ)` and the squared
//! true-gradient norm `µ² = |g|²`. Two estimators are provided:
//!
//! - [`ReplicaGns`] — the standard estimator when `K ≥ 2` data-parallel
//!   replicas exist: it contrasts the per-replica gradients `ĝ_k`
//!   (computed on `m/K` examples each) with their average (computed on
//!   `m` examples), following McCandlish et al.'s unbiased two-batch
//!   construction.
//! - [`DifferencedGns`] — when only one replica exists, contrasts
//!   consecutive gradients `ĝ(t−1)` and `ĝ(t)` instead (a differenced
//!   variance estimator, Wang & Yu 2017): the paper's single-process
//!   fallback.
//!
//! Both feed exponentially-weighted moving averages ([`Ewma`]) with
//! bias correction, because the raw per-iteration estimates are
//! extremely noisy.

use pollux_models::GradientStats;
use serde::{Deserialize, Serialize};

/// Exponentially-weighted moving average with warm-up bias correction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    weighted_sum: f64,
    weight: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`
    /// (larger = less smoothing). Returns `None` for invalid factors.
    pub fn new(alpha: f64) -> Option<Self> {
        if alpha > 0.0 && alpha <= 1.0 {
            Some(Self {
                alpha,
                weighted_sum: 0.0,
                weight: 0.0,
            })
        } else {
            None
        }
    }

    /// Folds a new observation into the average.
    pub fn update(&mut self, value: f64) {
        self.weighted_sum = (1.0 - self.alpha) * self.weighted_sum + self.alpha * value;
        self.weight = (1.0 - self.alpha) * self.weight + self.alpha;
    }

    /// The bias-corrected average, or `None` before any update.
    pub fn value(&self) -> Option<f64> {
        if self.weight > 0.0 {
            Some(self.weighted_sum / self.weight)
        } else {
            None
        }
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        self.weighted_sum = 0.0;
        self.weight = 0.0;
    }
}

/// Multi-replica gradient-noise-scale estimator.
///
/// Accumulates smoothed estimates of the per-example noise `S` and the
/// squared gradient norm `µ²`, and converts them into [`GradientStats`]
/// normalized to the job's initial batch size `m0` (i.e.
/// `variance = S / m0`), matching the `φ_t = m0 σ²/µ²` convention of
/// the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaGns {
    m0: u64,
    noise: Ewma,
    sqr_norm: Ewma,
}

impl ReplicaGns {
    /// Creates an estimator for a job with initial batch size `m0`.
    pub fn new(m0: u64, smoothing: f64) -> Option<Self> {
        if m0 == 0 {
            return None;
        }
        Some(Self {
            m0,
            noise: Ewma::new(smoothing)?,
            sqr_norm: Ewma::new(smoothing)?,
        })
    }

    /// Updates from the per-replica local gradients of one iteration.
    ///
    /// `local_grads` are the `K ≥ 2` per-replica gradient vectors (each
    /// computed on `total_batch / K` examples); all must share one
    /// dimension. Returns `false` (no update) for fewer than two
    /// replicas, inconsistent dimensions, or a degenerate batch split.
    pub fn update(&mut self, local_grads: &[Vec<f64>], total_batch: u64) -> bool {
        let k = local_grads.len();
        if k < 2 || total_batch < k as u64 {
            return false;
        }
        let dim = local_grads[0].len();
        if dim == 0 || local_grads.iter().any(|g| g.len() != dim) {
            return false;
        }
        let b_small = total_batch as f64 / k as f64;
        let b_big = total_batch as f64;

        // Mean gradient across replicas (the batch-m gradient).
        let mut mean = vec![0.0; dim];
        for g in local_grads {
            for (m, v) in mean.iter_mut().zip(g) {
                *m += v / k as f64;
            }
        }
        let norm_big: f64 = mean.iter().map(|v| v * v).sum();
        let norm_small: f64 = local_grads
            .iter()
            .map(|g| g.iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / k as f64;

        // Unbiased estimates (McCandlish et al., Appendix A):
        //   |G|² ≈ (B_big |g_big|² − B_small |g_small|²) / (B_big − B_small)
        //   S    ≈ (|g_small|² − |g_big|²) / (1/B_small − 1/B_big)
        let mu2 = (b_big * norm_big - b_small * norm_small) / (b_big - b_small);
        let s = (norm_small - norm_big) / (1.0 / b_small - 1.0 / b_big);
        if !mu2.is_finite() || !s.is_finite() {
            return false;
        }
        // Individual estimates can be negative from sampling noise; the
        // EWMA of the signed values remains unbiased, so feed them as-is.
        self.noise.update(s);
        self.sqr_norm.update(mu2);
        true
    }

    /// The smoothed gradient statistics normalized to `m0`, or `None`
    /// before enough updates.
    ///
    /// A non-positive smoothed `µ²` estimate (common near convergence,
    /// where the true gradient vanishes into the noise) is clamped to
    /// zero, which yields an infinite noise scale — the physically
    /// correct limit (Sec. 2.2: φ grows as training converges).
    pub fn gradient_stats(&self) -> Option<GradientStats> {
        let s = self.noise.value()?;
        let mu2 = self.sqr_norm.value()?;
        GradientStats::new((s / self.m0 as f64).max(0.0), mu2.max(0.0))
    }

    /// The smoothed noise scale `φ_t` in examples, or `None` before
    /// enough data.
    pub fn noise_scale(&self) -> Option<f64> {
        self.gradient_stats().map(|g| g.noise_scale(self.m0))
    }
}

/// Single-replica differenced gradient-noise-scale estimator.
///
/// With one replica there are no independent same-iteration gradients
/// to contrast, so consecutive gradients are used instead: assuming the
/// true gradient varies slowly between adjacent iterations,
///
/// ```text
/// Var[ĝ]  ≈ |ĝ(t) − ĝ(t−1)|² / 2         (noise of a batch-m gradient)
/// µ²      ≈ ĝ(t) · ĝ(t−1)                 (noise cancels in expectation)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferencedGns {
    m0: u64,
    noise: Ewma,
    sqr_norm: Ewma,
    prev: Option<(Vec<f64>, u64)>,
}

impl DifferencedGns {
    /// Creates an estimator for a job with initial batch size `m0`.
    pub fn new(m0: u64, smoothing: f64) -> Option<Self> {
        if m0 == 0 {
            return None;
        }
        Some(Self {
            m0,
            noise: Ewma::new(smoothing)?,
            sqr_norm: Ewma::new(smoothing)?,
            prev: None,
        })
    }

    /// Feeds the single-replica gradient of one iteration, computed on
    /// `batch` examples. The first call only primes the estimator.
    /// Returns `true` when an estimate was produced.
    pub fn update(&mut self, grad: &[f64], batch: u64) -> bool {
        if grad.is_empty() || batch == 0 {
            return false;
        }
        let current = grad.to_vec();
        let produced = if let Some((prev, prev_batch)) = &self.prev {
            if prev.len() == current.len() && *prev_batch == batch {
                let diff2: f64 = prev
                    .iter()
                    .zip(&current)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let dot: f64 = prev.iter().zip(&current).map(|(a, b)| a * b).sum();
                // Per-example noise: S = batch · Var[ĝ_batch].
                let s = batch as f64 * diff2 / 2.0;
                self.noise.update(s);
                self.sqr_norm.update(dot);
                true
            } else {
                false
            }
        } else {
            false
        };
        self.prev = Some((current, batch));
        produced
    }

    /// The smoothed gradient statistics normalized to `m0`.
    ///
    /// As with [`ReplicaGns::gradient_stats`], a non-positive smoothed
    /// `µ²` (the differenced dot-product turns negative once SGD
    /// oscillates around the optimum) is clamped to zero, yielding an
    /// infinite noise scale — the correct near-convergence limit.
    pub fn gradient_stats(&self) -> Option<GradientStats> {
        let s = self.noise.value()?;
        let mu2 = self.sqr_norm.value()?;
        GradientStats::new((s / self.m0 as f64).max(0.0), mu2.max(0.0))
    }

    /// The smoothed noise scale `φ_t` in examples.
    pub fn noise_scale(&self) -> Option<f64> {
        self.gradient_stats().map(|g| g.noise_scale(self.m0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rand_distr::{Distribution, Normal};

    #[test]
    fn ewma_validation_and_bias_correction() {
        assert!(Ewma::new(0.0).is_none());
        assert!(Ewma::new(1.5).is_none());
        let mut e = Ewma::new(0.1).unwrap();
        assert_eq!(e.value(), None);
        e.update(10.0);
        // With bias correction, a single observation is returned exactly.
        assert!((e.value().unwrap() - 10.0).abs() < 1e-12);
        for _ in 0..200 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    fn ewma_tracks_level_changes() {
        let mut e = Ewma::new(0.3).unwrap();
        for _ in 0..50 {
            e.update(1.0);
        }
        for _ in 0..50 {
            e.update(5.0);
        }
        let v = e.value().unwrap();
        assert!(v > 4.5 && v <= 5.0, "v = {v}");
    }

    /// Simulates data-parallel gradients: true gradient `mu_vec`, and
    /// per-replica noise with per-example trace `s_true`, local batch
    /// `b = m / k`.
    fn synth_replica_grads(
        rng: &mut StdRng,
        mu_vec: &[f64],
        s_true: f64,
        m: u64,
        k: usize,
    ) -> Vec<Vec<f64>> {
        let dim = mu_vec.len();
        let b = m as f64 / k as f64;
        // Per-coordinate noise std so the total trace is s_true / b.
        let std = (s_true / b / dim as f64).sqrt();
        let n = Normal::new(0.0, std).unwrap();
        (0..k)
            .map(|_| mu_vec.iter().map(|&mu| mu + n.sample(rng)).collect())
            .collect()
    }

    #[test]
    fn replica_estimator_recovers_known_noise_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let dim = 64;
        let mu_vec: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mu2: f64 = mu_vec.iter().map(|v| v * v).sum();
        let s_true = 50.0 * mu2; // φ(m0) = S/µ² · ... in examples: S/µ².
        let m0 = 32u64;
        let m = 128u64;
        let mut est = ReplicaGns::new(m0, 0.05).unwrap();
        for _ in 0..3000 {
            let grads = synth_replica_grads(&mut rng, &mu_vec, s_true, m, 4);
            assert!(est.update(&grads, m));
        }
        let phi = est.noise_scale().unwrap();
        let phi_true = s_true / mu2;
        assert!(
            (phi - phi_true).abs() / phi_true < 0.15,
            "phi = {phi}, true = {phi_true}"
        );
    }

    #[test]
    fn replica_estimator_rejects_degenerate_input() {
        let mut est = ReplicaGns::new(32, 0.1).unwrap();
        // One replica.
        assert!(!est.update(&[vec![1.0, 2.0]], 128));
        // Mismatched dims.
        assert!(!est.update(&[vec![1.0], vec![1.0, 2.0]], 128));
        // Empty gradients.
        assert!(!est.update(&[vec![], vec![]], 128));
        // Batch smaller than replica count.
        assert!(!est.update(&[vec![1.0], vec![1.0], vec![1.0]], 2));
        assert!(est.gradient_stats().is_none());
    }

    #[test]
    fn replica_estimator_zero_noise_gives_zero_phi() {
        let mut est = ReplicaGns::new(32, 0.5).unwrap();
        let g = vec![1.0, -2.0, 0.5];
        for _ in 0..10 {
            assert!(est.update(&[g.clone(), g.clone()], 64));
        }
        let phi = est.noise_scale().unwrap();
        assert!(phi.abs() < 1e-9, "phi = {phi}");
    }

    #[test]
    fn differenced_estimator_recovers_known_noise_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let dim = 64;
        let mu_vec: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mu2: f64 = mu_vec.iter().map(|v| v * v).sum();
        let s_true = 30.0 * mu2;
        let m0 = 32u64;
        let batch = 64u64;
        let std = (s_true / batch as f64 / dim as f64).sqrt();
        let n = Normal::new(0.0, std).unwrap();
        let mut est = DifferencedGns::new(m0, 0.02).unwrap();
        for _ in 0..5000 {
            let g: Vec<f64> = mu_vec.iter().map(|&mu| mu + n.sample(&mut rng)).collect();
            est.update(&g, batch);
        }
        let phi = est.noise_scale().unwrap();
        let phi_true = s_true / mu2;
        assert!(
            (phi - phi_true).abs() / phi_true < 0.15,
            "phi = {phi}, true = {phi_true}"
        );
    }

    #[test]
    fn differenced_estimator_needs_two_gradients() {
        let mut est = DifferencedGns::new(32, 0.1).unwrap();
        assert!(!est.update(&[1.0, 2.0], 64));
        assert!(est.gradient_stats().is_none());
        assert!(est.update(&[1.1, 2.1], 64));
        assert!(est.gradient_stats().is_some());
    }

    #[test]
    fn differenced_estimator_skips_batch_changes() {
        let mut est = DifferencedGns::new(32, 0.1).unwrap();
        assert!(!est.update(&[1.0, 2.0], 64));
        // Batch size changed: differencing across it would be invalid.
        assert!(!est.update(&[1.0, 2.0], 128));
        // Same batch size again: produces an estimate.
        assert!(est.update(&[1.0, 2.0], 128));
    }

    #[test]
    fn estimators_agree_on_shared_workload() {
        // Both estimators should converge to similar φ on the same
        // gradient stream (replica one sees the split, differenced one
        // sees the average).
        let mut rng = StdRng::seed_from_u64(13);
        let dim = 32;
        let mu_vec: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mu2: f64 = mu_vec.iter().map(|v| v * v).sum();
        let s_true = 20.0 * mu2;
        let m = 64u64;
        let k = 4usize;
        let mut rep = ReplicaGns::new(32, 0.02).unwrap();
        let mut dif = DifferencedGns::new(32, 0.02).unwrap();
        for _ in 0..4000 {
            let grads = synth_replica_grads(&mut rng, &mu_vec, s_true, m, k);
            rep.update(&grads, m);
            let mean: Vec<f64> = (0..dim)
                .map(|i| grads.iter().map(|g| g[i]).sum::<f64>() / k as f64)
                .collect();
            dif.update(&mean, m);
        }
        let a = rep.noise_scale().unwrap();
        let b = dif.noise_scale().unwrap();
        assert!(
            (a - b).abs() / a.max(b) < 0.25,
            "replica {a} vs differenced {b}"
        );
    }
}
