//! `PolluxAgent` — job-level optimization (Sec. 4.1).
//!
//! One agent runs with each training job. It:
//!
//! 1. profiles the time per training iteration for every
//!    `(placement, batch size)` configuration encountered
//!    ([`profiler`]);
//! 2. estimates the gradient noise scale from per-replica gradients, or
//!    from consecutive gradients when only one replica exists
//!    ([`gns`]);
//! 3. periodically re-fits the θsys throughput model to the profiled
//!    data (via `pollux-models::fit`) and reports `(θsys, φ_t, m0)` —
//!    the full goodput specification — to `PolluxSched`;
//! 4. re-tunes its job's batch size to `argmax_m GOODPUT(a, m)` and
//!    its learning rate via AdaScale ([`agent`]).

pub mod agent;
pub mod gns;
pub mod profiler;

pub use agent::{AgentReport, PolluxAgent, ReportPlan, TuningDecision};
pub use gns::{DifferencedGns, Ewma, ReplicaGns};
pub use profiler::{ObservationRun, ThroughputProfiler};
