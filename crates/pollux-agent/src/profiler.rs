//! Iteration-time profiling (Sec. 4.1).
//!
//! `PolluxAgent` records the measured time per training iteration for
//! every `(placement shape, batch size)` configuration its job runs
//! under. Samples for the same configuration are averaged, which both
//! denoises the fit inputs and keeps the observation set small no
//! matter how long the job runs.

use pollux_models::{FitObservation, FitPriors, PlacementShape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated iteration-time samples keyed by configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputProfiler {
    samples: BTreeMap<(PlacementShape, u64), SampleAgg>,
    max_gpus_seen: u32,
    max_nodes_seen: u32,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct SampleAgg {
    sum: f64,
    count: u64,
}

/// An in-flight batch of iteration-time samples under one fixed
/// `(shape, batch_size)` configuration, opened by
/// [`ThroughputProfiler::begin_run`]. Holds the configuration's
/// aggregate by value so the per-sample hot path is two adds with no
/// map lookup.
#[derive(Debug, Clone)]
pub struct ObservationRun {
    shape: PlacementShape,
    batch_size: u64,
    agg: SampleAgg,
    added: u64,
}

impl ObservationRun {
    /// Accumulates one measurement, applying the same validity filter
    /// as [`ThroughputProfiler::record`] (and its `sum += t` addition
    /// order, so a committed run is bit-identical to per-sample
    /// recording).
    #[inline]
    pub fn observe(&mut self, t_iter: f64) {
        if !t_iter.is_finite() || t_iter <= 0.0 || self.batch_size == 0 {
            return;
        }
        self.agg.sum += t_iter;
        self.agg.count += 1;
        self.added += 1;
    }

    /// Number of samples this run has accepted so far.
    pub fn accepted(&self) -> u64 {
        self.added
    }

    /// The configuration this run profiles.
    pub fn shape(&self) -> PlacementShape {
        self.shape
    }
}

impl ThroughputProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measured iteration time (seconds) under the given
    /// configuration. Non-finite or non-positive measurements are
    /// ignored (e.g. timer glitches across suspensions).
    pub fn record(&mut self, shape: PlacementShape, batch_size: u64, t_iter: f64) {
        if !t_iter.is_finite() || t_iter <= 0.0 || batch_size == 0 {
            return;
        }
        let agg = self.samples.entry((shape, batch_size)).or_default();
        agg.sum += t_iter;
        agg.count += 1;
        self.max_gpus_seen = self.max_gpus_seen.max(shape.gpus);
        self.max_nodes_seen = self.max_nodes_seen.max(shape.nodes);
    }

    /// Opens a batched observation run for one fixed configuration:
    /// the tree lookup happens once here instead of once per sample.
    /// Feed measurements to [`ObservationRun::observe`] and commit with
    /// [`ThroughputProfiler::record_run`].
    ///
    /// Equivalence contract: a run behaves exactly like calling
    /// [`record`](Self::record) per sample — same validity filtering,
    /// same `sum += t` addition order, same "no entry is created until
    /// a sample is accepted" rule — **provided** no other `record` /
    /// `record_run` touches the same `(shape, batch_size)` key between
    /// `begin_run` and `record_run` (the run snapshots the aggregate
    /// and writes it back absolutely).
    pub fn begin_run(&self, shape: PlacementShape, batch_size: u64) -> ObservationRun {
        let agg = self
            .samples
            .get(&(shape, batch_size))
            .copied()
            .unwrap_or_default();
        ObservationRun {
            shape,
            batch_size,
            agg,
            added: 0,
        }
    }

    /// Commits a batched observation run opened by
    /// [`begin_run`](Self::begin_run). A run that accepted no samples
    /// leaves the profiler untouched (no empty entry, no prior update),
    /// exactly as a sequence of rejected [`record`](Self::record) calls
    /// would.
    pub fn record_run(&mut self, run: ObservationRun) {
        if run.added == 0 {
            return;
        }
        *self.samples.entry((run.shape, run.batch_size)).or_default() = run.agg;
        self.max_gpus_seen = self.max_gpus_seen.max(run.shape.gpus);
        self.max_nodes_seen = self.max_nodes_seen.max(run.shape.nodes);
    }

    /// Number of distinct configurations with at least one sample.
    pub fn num_configurations(&self) -> usize {
        self.samples.len()
    }

    /// Total number of recorded samples.
    pub fn num_samples(&self) -> u64 {
        self.samples.values().map(|a| a.count).sum()
    }

    /// The mean iteration time of a configuration, if sampled.
    pub fn mean_t_iter(&self, shape: PlacementShape, batch_size: u64) -> Option<f64> {
        self.samples
            .get(&(shape, batch_size))
            .map(|a| a.sum / a.count as f64)
    }

    /// The per-configuration mean observations, ready for θsys fitting.
    pub fn observations(&self) -> Vec<FitObservation> {
        self.samples
            .iter()
            .map(|(&(shape, batch_size), agg)| FitObservation {
                shape,
                batch_size,
                t_iter: agg.sum / agg.count as f64,
            })
            .collect()
    }

    /// The exploration priors implied by the recorded data.
    pub fn priors(&self) -> FitPriors {
        FitPriors {
            max_gpus_seen: self.max_gpus_seen,
            max_nodes_seen: self.max_nodes_seen,
        }
    }

    /// Largest GPU count this job has ever run with.
    pub fn max_gpus_seen(&self) -> u32 {
        self.max_gpus_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(g: u32, n: u32) -> PlacementShape {
        PlacementShape::new(g, n).unwrap()
    }

    #[test]
    fn records_and_averages() {
        let mut p = ThroughputProfiler::new();
        p.record(shape(1, 1), 128, 0.2);
        p.record(shape(1, 1), 128, 0.4);
        p.record(shape(2, 1), 128, 0.15);
        assert_eq!(p.num_configurations(), 2);
        assert_eq!(p.num_samples(), 3);
        assert!((p.mean_t_iter(shape(1, 1), 128).unwrap() - 0.3).abs() < 1e-12);
        assert!((p.mean_t_iter(shape(2, 1), 128).unwrap() - 0.15).abs() < 1e-12);
        assert_eq!(p.mean_t_iter(shape(4, 1), 128), None);
    }

    #[test]
    fn ignores_bogus_measurements() {
        let mut p = ThroughputProfiler::new();
        p.record(shape(1, 1), 128, f64::NAN);
        p.record(shape(1, 1), 128, -1.0);
        p.record(shape(1, 1), 128, 0.0);
        p.record(shape(1, 1), 0, 1.0);
        assert_eq!(p.num_samples(), 0);
    }

    #[test]
    fn priors_track_exploration() {
        let mut p = ThroughputProfiler::new();
        assert_eq!(
            p.priors(),
            FitPriors {
                max_gpus_seen: 0,
                max_nodes_seen: 0
            }
        );
        p.record(shape(1, 1), 128, 0.1);
        p.record(shape(4, 2), 128, 0.1);
        let pr = p.priors();
        assert_eq!(pr.max_gpus_seen, 4);
        assert_eq!(pr.max_nodes_seen, 2);
        assert_eq!(p.max_gpus_seen(), 4);
    }

    /// Bitwise check that a batched run equals per-sample recording:
    /// same entries, same sums (identical addition order), same priors.
    #[test]
    fn batched_run_matches_per_sample_recording() {
        let samples = [0.21, 0.19, f64::NAN, -0.5, 0.0, 0.2, 0.23];
        let mut per_sample = ThroughputProfiler::new();
        // Pre-existing data under the same key and another key.
        per_sample.record(shape(2, 1), 256, 0.4);
        per_sample.record(shape(1, 1), 128, 0.5);
        let mut batched = per_sample.clone();

        for &t in &samples {
            per_sample.record(shape(2, 1), 256, t);
        }
        let mut run = batched.begin_run(shape(2, 1), 256);
        for &t in &samples {
            run.observe(t);
        }
        assert_eq!(run.accepted(), 4);
        batched.record_run(run);

        assert_eq!(per_sample, batched);
        assert_eq!(
            per_sample.mean_t_iter(shape(2, 1), 256).unwrap().to_bits(),
            batched.mean_t_iter(shape(2, 1), 256).unwrap().to_bits(),
        );
    }

    #[test]
    fn empty_run_creates_no_entry() {
        let mut p = ThroughputProfiler::new();
        let mut run = p.begin_run(shape(4, 2), 512);
        run.observe(f64::INFINITY);
        run.observe(-1.0);
        assert_eq!(run.accepted(), 0);
        p.record_run(run);
        assert_eq!(p.num_configurations(), 0);
        assert_eq!(
            p.priors().max_gpus_seen,
            0,
            "no prior update without samples"
        );

        // batch_size == 0 disables the run entirely.
        let mut run = p.begin_run(shape(1, 1), 0);
        run.observe(0.3);
        assert_eq!(run.accepted(), 0);
        p.record_run(run);
        assert_eq!(p.num_samples(), 0);
    }

    #[test]
    fn committed_run_updates_priors() {
        let mut p = ThroughputProfiler::new();
        let mut run = p.begin_run(shape(8, 2), 1024);
        run.observe(0.12);
        assert_eq!(run.shape(), shape(8, 2));
        p.record_run(run);
        assert_eq!(p.priors().max_gpus_seen, 8);
        assert_eq!(p.priors().max_nodes_seen, 2);
        assert_eq!(p.num_samples(), 1);
    }

    #[test]
    fn observations_reflect_means() {
        let mut p = ThroughputProfiler::new();
        p.record(shape(1, 1), 128, 0.1);
        p.record(shape(1, 1), 256, 0.2);
        p.record(shape(1, 1), 256, 0.3);
        let obs = p.observations();
        assert_eq!(obs.len(), 2);
        let o256 = obs.iter().find(|o| o.batch_size == 256).unwrap();
        assert!((o256.t_iter - 0.25).abs() < 1e-12);
    }
}
