//! Gang-scheduled FIFO with backfill.
//!
//! The classic HPC baseline: jobs start in arrival order, each as an
//! all-or-nothing gang of its requested GPU count, and once running
//! are never preempted ([`pollux_simulator::NoPreemption`] — the only
//! non-preemptive policy in the zoo). When the head of the queue does
//! not fit the free GPUs, later jobs that do fit backfill around it,
//! which keeps utilization up at the cost of possibly delaying the
//! head further (no reservation).

use pollux_cluster::ClusterSpec;
use pollux_simulator::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, NoPreemption, PolicyJobView, StagedScheduler,
};
use rand::rngs::StdRng;

/// FIFO-with-backfill admission over the free GPUs: arrival order,
/// skipping jobs that do not fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoAdmission;

impl AdmissionPolicy for FifoAdmission {
    fn name(&self) -> &'static str {
        "fifo-backfill"
    }

    fn admit(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<Admitted> {
        let mut order: Vec<usize> = (0..jobs.len()).filter(|&j| !held[j]).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .submit_time
                .partial_cmp(&jobs[b].submit_time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut budget: u32 = free.iter().sum();
        let mut admitted = Vec::new();
        for &j in &order {
            let need = jobs[j].user.gpus.max(1);
            if need <= budget {
                admitted.push(Admitted { row: j, gpus: need });
                budget -= need;
            }
        }
        admitted
    }
}

/// Gang-scheduled FIFO with backfill: arrival-order admission over the
/// free GPUs, consolidated placement, and no preemption.
pub fn fifo_backfill() -> StagedScheduler {
    StagedScheduler::new(
        "fifo+backfill",
        FifoAdmission,
        ConsolidatedPlacement::admitted_order(),
        NoPreemption,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::BatchSizeLimits;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::UserConfig;
    use rand::SeedableRng;

    fn view<'a>(id: u32, gpus: u32, submit: f64, placement: &'a [u32]) -> PolicyJobView<'a> {
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
            report: None,
            gputime: 0.0,
            submit_time: submit,
            current_placement: placement,
            started: false,
            batch_size: 128,
            remaining_work: 1e6,
        }
    }

    #[test]
    fn runs_in_arrival_order() {
        let empty = vec![0u32];
        let jobs = vec![view(0, 4, 50.0, &empty), view(1, 4, 10.0, &empty)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = fifo_backfill();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 4, "earlier arrival runs first");
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn never_preempts_running_jobs() {
        // A running job keeps its GPUs even when an earlier-submitted
        // job shows up (e.g. after a restart-requeue).
        let holding = vec![4u32];
        let empty = vec![0u32];
        let jobs = vec![view(0, 4, 50.0, &holding), view(1, 4, 10.0, &empty)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = fifo_backfill();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.row(0), &[4], "running gang is never disturbed");
        assert_eq!(m.gpus_of(1), 0);
    }

    #[test]
    fn backfills_around_a_blocked_head() {
        let running = vec![2u32];
        let empty = vec![0u32];
        let jobs = vec![
            view(0, 2, 0.0, &running), // running, holds 2 of 4
            view(1, 4, 10.0, &empty),  // head of queue, needs 4 > 2 free
            view(2, 2, 20.0, &empty),  // fits the remaining 2
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = fifo_backfill();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 2);
        assert_eq!(m.gpus_of(1), 0, "head waits for a full gang");
        assert_eq!(m.gpus_of(2), 2, "later small job backfills");
    }
}
