//! A Gandiva-style best-fit packing placement stage (Xiao et al.,
//! OSDI '18).
//!
//! Gandiva's introspective scheduler packs jobs onto the *tightest*
//! node that fits ("bin packing with best-fit") to keep whole nodes
//! free for incoming multi-GPU jobs, where the Tiresias/Optimus
//! heuristic grabs the *fullest-free* node first. [`BestFitPacking`]
//! implements that choice as a [`pollux_simulator::PlacementPolicy`],
//! so it composes with any admission stage; [`gandiva_packing`] pairs
//! it with Tiresias's LAS admission, isolating the placement-stage
//! difference in head-to-head sweeps (the whole point of the Blox
//! decomposition — the two zoo entries differ in exactly one stage).
//!
//! Jobs wider than any single node fall back to the consolidated
//! fullest-first spread; affinity (keeping an exact-count placement)
//! is preserved like the default stage to avoid gratuitous restarts.

use pollux_cluster::AllocationMatrix;
use pollux_control::{keep_placement, pack_consolidated};
use pollux_simulator::{Admitted, PlacementPolicy, PolicyJobView, PreemptAll, StagedScheduler};
use rand::rngs::StdRng;

use crate::tiresias::TiresiasAdmission;
use crate::TiresiasConfig;

/// Best-fit single-node packing: each admitted job goes to the node
/// with the *least* free capacity that still fits it whole (ties to
/// the lowest index); multi-node jobs spread fullest-first.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitPacking;

impl PlacementPolicy for BestFitPacking {
    fn name(&self) -> &'static str {
        "best-fit-packing"
    }

    fn place(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        admitted: &[Admitted],
        free: &mut [u32],
        matrix: &mut AllocationMatrix,
        _rng: &mut StdRng,
    ) {
        // Keep exact-count placements first, like the default stage.
        let mut needs_placing: Vec<Admitted> = Vec::new();
        for &a in admitted {
            let Some(view) = jobs.get(a.row) else {
                continue;
            };
            let current: u32 = view.current_placement.iter().sum();
            if a.gpus > 0 && current == a.gpus && keep_placement(view.current_placement, free) {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    matrix.set(a.row, n, g);
                }
            } else if a.gpus > 0 {
                needs_placing.push(a);
            }
        }

        for a in needs_placing {
            // Best fit: tightest node that fits the whole gang.
            let best = free
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f >= a.gpus)
                .min_by(|&(i, &fa), &(j, &fb)| fa.cmp(&fb).then(i.cmp(&j)))
                .map(|(n, _)| n);
            match best {
                Some(n) => {
                    let mut row = vec![0u32; free.len()];
                    row[n] = a.gpus;
                    free[n] -= a.gpus;
                    matrix.set_row(a.row, row);
                }
                None => {
                    // Wider than any node: consolidated spread.
                    if let Some(row) = pack_consolidated(a.gpus, free) {
                        matrix.set_row(a.row, row);
                    }
                }
            }
        }
    }
}

/// Gandiva-style packing over Tiresias's LAS admission: differs from
/// [`crate::tiresias()`] in the placement stage only.
pub fn gandiva_packing() -> StagedScheduler {
    StagedScheduler::new(
        "gandiva-packing",
        TiresiasAdmission::new(TiresiasConfig::default()),
        BestFitPacking,
        PreemptAll,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::{ClusterSpec, JobId};
    use pollux_models::BatchSizeLimits;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::UserConfig;
    use rand::SeedableRng;

    fn view<'a>(id: u32, gpus: u32, submit: f64, placement: &'a [u32]) -> PolicyJobView<'a> {
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
            report: None,
            gputime: 0.0,
            submit_time: submit,
            current_placement: placement,
            started: false,
            batch_size: 128,
            remaining_work: 1e6,
        }
    }

    #[test]
    fn picks_the_tightest_fitting_node() {
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let mut free = vec![4u32, 2, 3];
        let idle = vec![0u32, 0, 0];
        let views = [view(0, 2, 0.0, &idle)];
        let admitted = [Admitted { row: 0, gpus: 2 }];
        let mut matrix = AllocationMatrix::zeros(1, spec.num_nodes());
        let mut rng = StdRng::seed_from_u64(0);
        BestFitPacking.place(0.0, &views, &admitted, &mut free, &mut matrix, &mut rng);
        // Node 1 (2 free) is the tightest fit — NOT the fullest (node 0).
        assert_eq!(matrix.row(0), &[0, 2, 0]);
        assert_eq!(free, vec![4, 0, 3]);
    }

    #[test]
    fn keeps_whole_nodes_free_for_wide_jobs() {
        // Consolidated placement would drop the 1-GPU job onto the
        // empty node (fullest-free) and then fail the 4-GPU job;
        // best-fit tucks it next to the running job instead.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut free = vec![1u32, 4];
        let idle = vec![0u32, 0];
        let views = [view(0, 1, 0.0, &idle), view(1, 4, 1.0, &idle)];
        let admitted = [Admitted { row: 0, gpus: 1 }, Admitted { row: 1, gpus: 4 }];
        let mut matrix = AllocationMatrix::zeros(2, spec.num_nodes());
        let mut rng = StdRng::seed_from_u64(0);
        BestFitPacking.place(0.0, &views, &admitted, &mut free, &mut matrix, &mut rng);
        assert_eq!(matrix.row(0), &[1, 0]);
        assert_eq!(matrix.row(1), &[0, 4], "whole node preserved for the gang");
    }

    #[test]
    fn spreads_jobs_wider_than_a_node() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut free = vec![4u32, 4];
        let idle = vec![0u32, 0];
        let views = [view(0, 6, 0.0, &idle)];
        let admitted = [Admitted { row: 0, gpus: 6 }];
        let mut matrix = AllocationMatrix::zeros(1, spec.num_nodes());
        let mut rng = StdRng::seed_from_u64(0);
        BestFitPacking.place(0.0, &views, &admitted, &mut free, &mut matrix, &mut rng);
        assert_eq!(matrix.gpus_of(0), 6);
        assert_eq!(matrix.nodes_of(0), 2);
    }

    #[test]
    fn composes_with_las_admission() {
        let empty = vec![0u32; 2];
        let jobs = vec![view(0, 2, 0.0, &empty), view(1, 4, 10.0, &empty)];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut p = gandiva_packing();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 2);
        assert_eq!(m.gpus_of(1), 4);
        assert!(m.is_feasible(&spec));
        assert_eq!(
            p.stage_names(),
            ("las-two-queue", "best-fit-packing", "preempt-all")
        );
    }
}
