//! Baseline schedulers from the Pollux evaluation (Sec. 2.3 / 5.2).
//!
//! - [`tiresias`] — **Tiresias(+TunedJobs)**: non-resource-adaptive.
//!   Jobs run with their user-submitted GPU count; scheduling uses
//!   least-attained-service (discretized two-queue) priorities with
//!   preemption and consolidated placement.
//! - [`optimus`] — **Optimus(+Oracle)**: only-resource-adaptive. Uses
//!   the agent-fitted throughput model (the paper substitutes its own
//!   model for Optimus's parameter-server-specific one) and an oracle
//!   for remaining work, and greedily assigns GPUs by marginal
//!   JCT improvement. Batch sizes stay user-fixed.
//! - [`or_etal`] — **Or et al.**: throughput-based cloud autoscaler
//!   that grows the batch size linearly with workers and provisions
//!   nodes while throughput scaling efficiency stays above a
//!   threshold — the Fig 10 comparison point.
//! - [`placement`] — shared consolidated-placement helpers.

pub mod optimus;
pub mod or_etal;
pub mod placement;
pub mod tiresias;

pub use optimus::Optimus;
pub use or_etal::OrEtAlAutoscaler;
pub use tiresias::{Tiresias, TiresiasConfig};
