//! Baseline schedulers from the Pollux evaluation (Sec. 2.3 / 5.2),
//! plus a zoo of classic DL scheduling policies — each built from the
//! Blox-style admission / placement / preemption stages in
//! `pollux_control::stages` (DESIGN.md §10) rather than as a monolith.
//!
//! - [`tiresias()`] — **Tiresias(+TunedJobs)**: non-resource-adaptive.
//!   Jobs run with their user-submitted GPU count; scheduling uses
//!   least-attained-service (discretized two-queue) priorities with
//!   preemption and consolidated placement.
//! - [`optimus()`] — **Optimus(+Oracle)**: only-resource-adaptive. Uses
//!   the agent-fitted throughput model (the paper substitutes its own
//!   model for Optimus's parameter-server-specific one) and an oracle
//!   for remaining work, and greedily assigns GPUs by marginal
//!   JCT improvement. Batch sizes stay user-fixed.
//! - [`or_etal()`] — **Or et al.**: throughput-based cloud autoscaler
//!   that grows the batch size linearly with workers and provisions
//!   nodes while throughput scaling efficiency stays above a
//!   threshold — the Fig 10 comparison point.
//! - [`shortest`] — **SRTF / SRSF**: oracle shortest-remaining-time /
//!   shortest-remaining-service admission with backfill.
//! - [`fifo`] — **gang FIFO + backfill**: non-preemptive arrival-order
//!   gang scheduling; small jobs backfill around blocked heads.
//! - [`gandiva`] — a Gandiva-style best-fit packing *placement* stage,
//!   composable with any admission policy.
//! - [`placement`] — the shared consolidated-placement stage and
//!   helpers (re-exported from `pollux_control`).

pub mod fifo;
pub mod gandiva;
pub mod optimus;
pub mod or_etal;
pub mod placement;
pub mod shortest;
pub mod tiresias;

pub use fifo::{fifo_backfill, FifoAdmission};
pub use gandiva::{gandiva_packing, BestFitPacking};
pub use optimus::{optimus, OptimusAdmission};
pub use or_etal::{or_etal, OrEtAlAdmission};
pub use shortest::{srsf, srtf, ShortestRemainingAdmission};
pub use tiresias::{tiresias, TiresiasAdmission, TiresiasConfig};
