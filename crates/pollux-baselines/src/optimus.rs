//! Optimus (Peng et al., EuroSys '18), as idealized in the Pollux
//! evaluation ("Optimus+Oracle", Sec. 5.2).
//!
//! Only-resource-adaptive: GPUs are assigned by greedy marginal
//! reduction of estimated remaining time, but the batch size stays
//! user-fixed. Following the paper's concessions:
//!
//! - Optimus's parameter-server-specific performance model is replaced
//!   by the same throughput model Pollux uses (the agent's fit);
//! - remaining work is an **oracle** (`PolicyJobView::remaining_work`)
//!   rather than a convergence-curve extrapolation;
//! - a minimum GPU count is enforced so the user batch size fits in
//!   GPU memory.
//!
//! Decomposed Blox-style (DESIGN.md §10): [`OptimusAdmission`] owns
//! the minimum-allocation pass and the marginal-gain GPU auction;
//! placement is the shared [`ConsolidatedPlacement`] packing largest
//! jobs first; preemption is [`PreemptAll`]. [`optimus`] composes the
//! three. The staged form is pinned byte-identical to the
//! pre-decomposition monolith by
//! `pollux-core/tests/baseline_golden.rs`.

use pollux_cluster::ClusterSpec;
use pollux_models::PlacementShape;
use pollux_simulator::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, PolicyJobView, PreemptAll, StagedScheduler,
};
use rand::rngs::StdRng;

/// The Optimus+Oracle admission stage: every job gets the fewest GPUs
/// its user batch size fits on (in submission order while capacity
/// lasts), then spare GPUs go one at a time to the job with the best
/// marginal remaining-time reduction.
#[derive(Debug, Clone, Default)]
pub struct OptimusAdmission {
    /// GPUs per node, used to predict the shape of a K-GPU packed
    /// placement when estimating marginal gains.
    gpus_per_node_hint: u32,
}

impl OptimusAdmission {
    /// Creates the stage. `gpus_per_node_hint` lets marginal-gain
    /// estimation assume consolidated placements (0 = derive from the
    /// cluster at schedule time).
    pub fn new(gpus_per_node_hint: u32) -> Self {
        Self { gpus_per_node_hint }
    }

    /// Estimated time to completion with `k` GPUs at the user batch
    /// size, or `f64::INFINITY` when infeasible/unknown.
    fn remaining_time(&self, job: &PolicyJobView<'_>, k: u32, gpus_per_node: u32) -> f64 {
        if k == 0 {
            return f64::INFINITY;
        }
        let Some(report) = &job.report else {
            // No model yet: pretend 1 GPU is as good as it gets, which
            // makes marginal gains zero and keeps the job at its
            // minimum allocation until a report exists.
            return job.remaining_work;
        };
        let nodes = k.div_ceil(gpus_per_node).max(1);
        let Some(shape) = PlacementShape::new(k, nodes.min(k)) else {
            return f64::INFINITY;
        };
        let m = job.batch_size;
        let tput = report.model.raw_throughput(shape, m);
        let eff = report.model.efficiency.efficiency(m);
        let goodput = tput * eff;
        if goodput <= 0.0 {
            f64::INFINITY
        } else {
            job.remaining_work / goodput
        }
    }

    /// The fewest GPUs on which the job's user batch size fits.
    fn min_gpus(&self, job: &PolicyJobView<'_>) -> u32 {
        job.batch_size
            .div_ceil(job.limits.max_per_gpu)
            .clamp(1, u32::MAX as u64) as u32
    }
}

impl AdmissionPolicy for OptimusAdmission {
    fn name(&self) -> &'static str {
        "marginal-gain"
    }

    fn admit(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<Admitted> {
        let gpus_per_node = if self.gpus_per_node_hint > 0 {
            self.gpus_per_node_hint
        } else {
            spec.iter().map(|(_, s)| s.gpus).max().unwrap_or(1)
        };

        // Give every job its minimum (in submission order while
        // capacity lasts), then add GPUs one at a time to the job with
        // the best marginal remaining-time reduction.
        let mut assigned: Vec<u32> = vec![0; jobs.len()];
        let mut budget: u32 = free.iter().sum();
        let mut order: Vec<usize> = (0..jobs.len()).filter(|&j| !held[j]).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .submit_time
                .partial_cmp(&jobs[b].submit_time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &j in &order {
            let need = self.min_gpus(&jobs[j]);
            if need <= budget {
                assigned[j] = need;
                budget -= need;
            }
        }
        while budget > 0 {
            let mut best: Option<(usize, f64)> = None;
            for (j, view) in jobs.iter().enumerate() {
                if assigned[j] == 0 {
                    continue; // Held, or didn't even fit its minimum.
                }
                let cur = self.remaining_time(view, assigned[j], gpus_per_node);
                let next = self.remaining_time(view, assigned[j] + 1, gpus_per_node);
                let gain = cur - next;
                if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((j, gain));
                }
            }
            match best {
                Some((j, _)) => {
                    assigned[j] += 1;
                    budget -= 1;
                }
                None => break,
            }
        }

        // Row order: the largest-first placement stage re-sorts, so the
        // admitted order only breaks its ties — exactly as the
        // monolith's stable sort over row-ordered candidates did.
        (0..jobs.len())
            .filter(|&j| assigned[j] > 0)
            .map(|j| Admitted {
                row: j,
                gpus: assigned[j],
            })
            .collect()
    }
}

/// The Optimus+Oracle scheduling policy: marginal-gain admission,
/// consolidated placement largest-first, full preemption.
pub fn optimus(gpus_per_node_hint: u32) -> StagedScheduler {
    StagedScheduler::new(
        "optimus+oracle",
        OptimusAdmission::new(gpus_per_node_hint),
        ConsolidatedPlacement::largest_first(),
        PreemptAll,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_agent::PolluxAgent;
    use pollux_cluster::JobId;
    use pollux_models::GradientStats;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::{ModelKind, ModelProfile, UserConfig};
    use rand::SeedableRng;

    /// Builds a job view with a real fitted agent report.
    struct Owned {
        profile: ModelProfile,
        agent: PolluxAgent,
        placement: Vec<u32>,
    }

    impl Owned {
        fn new(kind: ModelKind, phi: f64, num_nodes: usize) -> Self {
            let profile = kind.profile();
            let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
            for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 2), (16, 4)] {
                let shape = PlacementShape::new(g, n).unwrap();
                for mult in [1u64, 2, 4] {
                    let m = profile.m0 * mult;
                    if profile
                        .limits
                        .range(shape)
                        .is_some_and(|(lo, hi)| m >= lo && m <= hi)
                    {
                        agent.observe_iteration(shape, m, profile.params.t_iter(shape, m));
                    }
                }
            }
            assert!(agent.refit());
            agent.observe_gradient_stats(GradientStats::new(phi / profile.m0 as f64, 1.0).unwrap());
            Self {
                profile,
                agent,
                placement: vec![0; num_nodes],
            }
        }

        fn view(&self, id: u32, remaining: f64, batch: u64) -> PolicyJobView<'_> {
            PolicyJobView {
                id: JobId(id),
                user: UserConfig {
                    gpus: 1,
                    batch_size: batch,
                },
                profile: Some(&self.profile),
                limits: self.profile.limits,
                report: self.agent.report(),
                gputime: 0.0,
                submit_time: id as f64,
                current_placement: &self.placement,
                started: false,
                batch_size: batch,
                remaining_work: remaining,
            }
        }
    }

    #[test]
    fn gives_more_gpus_to_longer_jobs() {
        // Two identical models with a large batch that scales well; the
        // one with 10x remaining work gets more GPUs.
        let a = Owned::new(ModelKind::ResNet18Cifar10, 4000.0, 2);
        let b = Owned::new(ModelKind::ResNet18Cifar10, 4000.0, 2);
        let jobs = vec![a.view(0, 2.0e6, 1024), b.view(1, 2.0e5, 1024)];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut opt = optimus(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = opt.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(
            m.gpus_of(0) > m.gpus_of(1),
            "long job {} vs short job {}\n{m}",
            m.gpus_of(0),
            m.gpus_of(1)
        );
        assert!(m.gpus_of(1) >= 1);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn respects_batch_memory_minimum() {
        // DeepSpeech2 with batch 256 at 64/GPU needs >= 4 GPUs.
        let a = Owned::new(ModelKind::DeepSpeech2Arctic, 300.0, 2);
        let jobs = vec![a.view(0, 1e6, 256)];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut opt = optimus(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = opt.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(m.gpus_of(0) >= 4, "got {} GPUs", m.gpus_of(0));
    }

    #[test]
    fn stops_adding_gpus_without_marginal_gain() {
        // A job with a small fixed batch saturates quickly: Optimus
        // should not hand it the whole cluster.
        let a = Owned::new(ModelKind::Yolov3Voc, 100.0, 4);
        let jobs = vec![a.view(0, 1e6, 8)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut opt = optimus(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = opt.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(
            m.gpus_of(0) < 16,
            "saturated job got the whole cluster:\n{m}"
        );
        assert!(m.gpus_of(0) >= 1);
    }

    #[test]
    fn jobs_without_report_get_minimum() {
        let profile = ModelKind::ResNet18Cifar10.profile();
        let placement = vec![0u32; 2];
        let jobs = vec![PolicyJobView {
            id: JobId(0),
            user: UserConfig {
                gpus: 1,
                batch_size: profile.m0,
            },
            profile: Some(&profile),
            limits: profile.limits,
            report: None,
            gputime: 0.0,
            submit_time: 0.0,
            current_placement: &placement,
            started: false,
            batch_size: profile.m0,
            remaining_work: 1e6,
        }];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut opt = optimus(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = opt.schedule(0.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 1);
    }

    #[test]
    fn keeps_placement_when_count_unchanged() {
        let mut a = Owned::new(ModelKind::Yolov3Voc, 100.0, 2);
        // Pretend the job currently runs with the count Optimus would
        // assign; its placement must be preserved.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut opt = optimus(4);
        let mut rng = StdRng::seed_from_u64(0);
        let first = {
            let jobs = vec![a.view(0, 1e6, 8)];
            opt.schedule(0.0, &jobs, &spec, &mut rng)
        };
        a.placement = first.row(0).to_vec();
        let second = {
            let jobs = vec![a.view(0, 9e5, 8)];
            opt.schedule(60.0, &jobs, &spec, &mut rng)
        };
        assert_eq!(second.row(0), first.row(0));
    }

    #[test]
    fn stage_names_identify_the_decomposition() {
        let opt = optimus(4);
        assert_eq!(opt.name(), "optimus+oracle");
        assert_eq!(
            opt.stage_names(),
            ("marginal-gain", "consolidated-largest-first", "preempt-all")
        );
    }
}
