//! Or et al.'s throughput-based autoscaler ("Resource Elasticity in
//! Distributed Deep Learning", MLSys '20), the Fig 10 comparison point.
//!
//! The autoscaler allows the batch size to grow with the number of
//! workers (linear scaling, capped by memory and the global limit) and
//! provisions nodes while the **system-throughput** scaling efficiency
//! stays above a threshold. Because throughput does not depend on
//! training progress, the recommended size is reached quickly and then
//! stays flat (Fig 10a) — it cannot know that large batches are
//! statistically wasteful early in training.
//!
//! Decomposed Blox-style (DESIGN.md §10): [`OrEtAlAdmission`] owns
//! the single-tenant whole-cluster grant plus the `desired_nodes` /
//! `choose_batch_size` autoscaling hooks (admission controls cluster
//! entry, so it owns sizing too); placement is the shared
//! [`ConsolidatedPlacement`] (a whole-cluster grant packs to every
//! node's full capacity); preemption is [`PreemptAll`]. [`or_etal`]
//! composes the three. The staged form is pinned byte-identical to the
//! pre-decomposition monolith by
//! `pollux-core/tests/baseline_golden.rs`.

use pollux_cluster::ClusterSpec;
use pollux_models::PlacementShape;
use pollux_simulator::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, PolicyJobView, PreemptAll, StagedScheduler,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Or et al. autoscaler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrEtAlConfig {
    /// Minimum acceptable throughput-scaling efficiency
    /// `THROUGHPUT(K·g) / (K · THROUGHPUT(g))`.
    pub scaling_threshold: f64,
    /// GPUs per provisioned node.
    pub gpus_per_node: u32,
    /// Largest allowed cluster size.
    pub max_nodes: u32,
    /// Smallest allowed cluster size.
    pub min_nodes: u32,
}

impl Default for OrEtAlConfig {
    fn default() -> Self {
        Self {
            scaling_threshold: 0.7,
            gpus_per_node: 4,
            max_nodes: 16,
            min_nodes: 1,
        }
    }
}

/// The Or et al. admission stage: single-tenant — the first job gets
/// every free GPU — plus the throughput-driven node recommendation and
/// linear batch scaling hooks.
#[derive(Debug, Clone, Default)]
pub struct OrEtAlAdmission {
    config: OrEtAlConfig,
}

impl OrEtAlAdmission {
    /// Creates the stage.
    pub fn new(config: OrEtAlConfig) -> Self {
        Self { config }
    }

    /// The batch size the policy would use on `gpus` GPUs: linear
    /// scaling of the per-GPU maximum, capped by the global limit.
    fn batch_for(&self, job: &PolicyJobView<'_>, gpus: u32) -> u64 {
        (job.limits.max_per_gpu * gpus as u64)
            .min(job.limits.max_global)
            .max(job.limits.min)
    }

    /// Throughput at `nodes` nodes with the scaled batch, from the
    /// job's fitted model (or `None` before a report exists).
    fn throughput_at(&self, job: &PolicyJobView<'_>, nodes: u32) -> Option<f64> {
        let report = job.report.as_ref()?;
        let gpus = nodes * self.config.gpus_per_node;
        let shape = PlacementShape::new(gpus, nodes)?;
        let m = self.batch_for(job, gpus);
        Some(report.model.throughput.throughput(shape, m))
    }

    /// The largest node count whose throughput-scaling efficiency
    /// versus one node stays above the threshold.
    pub fn recommend_nodes(&self, job: &PolicyJobView<'_>) -> u32 {
        let Some(base) = self.throughput_at(job, 1) else {
            return self.config.min_nodes;
        };
        if base <= 0.0 {
            return self.config.min_nodes;
        }
        let mut best = self.config.min_nodes.max(1);
        for n in (self.config.min_nodes.max(1))..=self.config.max_nodes {
            match self.throughput_at(job, n) {
                Some(t) if t / (n as f64 * base) >= self.config.scaling_threshold => best = n,
                _ => {}
            }
        }
        best
    }
}

impl AdmissionPolicy for OrEtAlAdmission {
    fn name(&self) -> &'static str {
        "single-tenant"
    }

    fn admit(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<Admitted> {
        // Hand every free GPU to the (first) job — the single-tenant
        // scenario of Fig 10.
        let total: u32 = free.iter().sum();
        if jobs.is_empty() || held.first() == Some(&true) || total == 0 {
            return Vec::new();
        }
        vec![Admitted {
            row: 0,
            gpus: total,
        }]
    }

    fn desired_nodes(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<u32> {
        // Single-tenant: size the cluster for the (first) job.
        jobs.first().map(|j| self.recommend_nodes(j))
    }

    fn choose_batch_size(&self, job: &PolicyJobView<'_>) -> Option<u64> {
        let gpus: u32 = job.current_placement.iter().sum();
        if gpus == 0 {
            None
        } else {
            Some(self.batch_for(job, gpus))
        }
    }
}

/// The Or et al. policy: single-tenant throughput-driven autoscaling.
pub fn or_etal(config: OrEtAlConfig) -> StagedScheduler {
    StagedScheduler::new(
        "or-etal",
        OrEtAlAdmission::new(config),
        ConsolidatedPlacement::admitted_order(),
        PreemptAll,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_agent::PolluxAgent;
    use pollux_cluster::JobId;
    use pollux_models::GradientStats;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::{ModelKind, ModelProfile, UserConfig};
    use rand::SeedableRng;

    struct Owned {
        profile: ModelProfile,
        agent: PolluxAgent,
        placement: Vec<u32>,
    }

    impl Owned {
        fn new(num_nodes: usize) -> Self {
            let profile = ModelKind::ResNet50ImageNet.profile();
            let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
            for (g, n) in [
                (1u32, 1u32),
                (2, 1),
                (4, 1),
                (8, 2),
                (16, 4),
                (32, 8),
                (64, 16),
            ] {
                let shape = PlacementShape::new(g, n).unwrap();
                for mult in [1u64, 4, 16] {
                    let m = profile.m0 * mult;
                    if profile
                        .limits
                        .range(shape)
                        .is_some_and(|(lo, hi)| m >= lo && m <= hi)
                    {
                        agent.observe_iteration(shape, m, profile.params.t_iter(shape, m));
                    }
                }
            }
            assert!(agent.refit());
            agent.observe_gradient_stats(
                GradientStats::new(600.0 / profile.m0 as f64, 1.0).unwrap(),
            );
            Self {
                profile,
                agent,
                placement: vec![0; num_nodes],
            }
        }

        fn view(&self) -> PolicyJobView<'_> {
            PolicyJobView {
                id: JobId(0),
                user: UserConfig {
                    gpus: 4,
                    batch_size: self.profile.m0,
                },
                profile: Some(&self.profile),
                limits: self.profile.limits,
                report: self.agent.report(),
                gputime: 0.0,
                submit_time: 0.0,
                current_placement: &self.placement,
                started: false,
                batch_size: self.profile.m0,
                remaining_work: 1e8,
            }
        }
    }

    #[test]
    fn recommends_many_nodes_for_scalable_throughput() {
        // With linear batch scaling, throughput keeps scaling well, so
        // the recommendation lands near the maximum — Fig 10a's flat
        // high line.
        let owned = Owned::new(16);
        let stage = OrEtAlAdmission::default();
        let n = stage.recommend_nodes(&owned.view());
        assert!(n >= 8, "recommended only {n} nodes");
    }

    #[test]
    fn recommendation_is_constant_over_progress() {
        // Throughput-based scaling ignores training progress by
        // construction: same report, same recommendation.
        let owned = Owned::new(16);
        let stage = OrEtAlAdmission::default();
        let a = stage.recommend_nodes(&owned.view());
        let b = stage.recommend_nodes(&owned.view());
        assert_eq!(a, b);
    }

    #[test]
    fn no_report_keeps_minimum() {
        let profile = ModelKind::ResNet50ImageNet.profile();
        let placement = vec![0u32; 4];
        let view = PolicyJobView {
            id: JobId(0),
            user: UserConfig {
                gpus: 1,
                batch_size: profile.m0,
            },
            profile: Some(&profile),
            limits: profile.limits,
            report: None,
            gputime: 0.0,
            submit_time: 0.0,
            current_placement: &placement,
            started: false,
            batch_size: profile.m0,
            remaining_work: 1e8,
        };
        let stage = OrEtAlAdmission::default();
        assert_eq!(stage.recommend_nodes(&view), 1);
    }

    #[test]
    fn batch_scales_linearly_with_gpus_up_to_cap() {
        let owned = Owned::new(4);
        let stage = OrEtAlAdmission::default();
        let v = owned.view();
        assert_eq!(stage.batch_for(&v, 1), v.limits.max_per_gpu);
        assert_eq!(stage.batch_for(&v, 4), v.limits.max_per_gpu * 4);
        // Capped at the global limit for very large clusters.
        let huge = stage.batch_for(&v, 100_000);
        assert_eq!(huge, v.limits.max_global);
    }

    #[test]
    fn schedule_gives_job_the_whole_cluster() {
        let owned = Owned::new(2);
        let mut policy = or_etal(OrEtAlConfig::default());
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let views = vec![owned.view()];
        let m = policy.schedule(0.0, &views, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 8);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn choose_batch_size_uses_current_gpus() {
        let mut owned = Owned::new(2);
        owned.placement = vec![4, 4];
        let policy = or_etal(OrEtAlConfig::default());
        let v = owned.view();
        assert_eq!(policy.choose_batch_size(&v), Some(v.limits.max_per_gpu * 8));
        // Unplaced jobs: no choice.
        owned.placement = vec![0, 0];
        let v = owned.view();
        assert_eq!(policy.choose_batch_size(&v), None);
    }

    #[test]
    fn desired_nodes_sizes_for_the_first_job() {
        let owned = Owned::new(16);
        let mut policy = or_etal(OrEtAlConfig::default());
        let spec = ClusterSpec::homogeneous(16, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let views = vec![owned.view()];
        let n = policy.desired_nodes(0.0, &views, &spec, &mut rng).unwrap();
        assert!(n >= 8, "recommended only {n} nodes");
        assert!(policy.desired_nodes(0.0, &[], &spec, &mut rng).is_none());
    }
}
