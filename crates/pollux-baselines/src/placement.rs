//! Consolidated placement helpers shared by the baselines.
//!
//! Both Tiresias and Optimus co-locate job replicas onto as few nodes
//! as possible (Sec. 2.3 notes Tiresias "co-locates job replicas for
//! more efficient synchronization").

/// Attempts to place `need` GPUs onto the nodes with free capacities
/// `free`, using as few nodes as possible (fullest-free-first).
///
/// Returns the per-node allocation row, or `None` when the total free
/// capacity is insufficient. On success the `free` vector is updated
/// in place.
pub fn pack_consolidated(need: u32, free: &mut [u32]) -> Option<Vec<u32>> {
    if need == 0 {
        return Some(vec![0; free.len()]);
    }
    let total: u32 = free.iter().sum();
    if total < need {
        return None;
    }
    // Nodes sorted by free capacity descending (stable on index for
    // determinism).
    let mut order: Vec<usize> = (0..free.len()).collect();
    order.sort_by(|&a, &b| free[b].cmp(&free[a]).then(a.cmp(&b)));

    let mut row = vec![0u32; free.len()];
    let mut remaining = need;
    for &n in &order {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(free[n]);
        if take > 0 {
            row[n] = take;
            free[n] -= take;
            remaining -= take;
        }
    }
    debug_assert_eq!(remaining, 0, "total capacity was checked upfront");
    Some(row)
}

/// Tries to keep a job's existing placement: succeeds when every node
/// still has the required free capacity. On success, capacity is
/// deducted from `free`.
pub fn keep_placement(current: &[u32], free: &mut [u32]) -> bool {
    if current.len() != free.len() {
        return false;
    }
    if current.iter().zip(free.iter()).any(|(&c, &f)| c > f) {
        return false;
    }
    for (f, &c) in free.iter_mut().zip(current) {
        *f -= c;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_onto_fullest_nodes_first() {
        let mut free = vec![2, 4, 3];
        let row = pack_consolidated(5, &mut free).unwrap();
        // Fullest first: node 1 (4), then node 2 (1).
        assert_eq!(row, vec![0, 4, 1]);
        assert_eq!(free, vec![2, 0, 2]);
    }

    #[test]
    fn single_node_when_it_fits() {
        let mut free = vec![4, 4];
        let row = pack_consolidated(3, &mut free).unwrap();
        assert_eq!(row.iter().filter(|&&g| g > 0).count(), 1);
    }

    #[test]
    fn fails_when_insufficient() {
        let mut free = vec![1, 1];
        assert!(pack_consolidated(3, &mut free).is_none());
        // Free capacities untouched on failure.
        assert_eq!(free, vec![1, 1]);
    }

    #[test]
    fn zero_need_is_trivial() {
        let mut free = vec![1, 2];
        assert_eq!(pack_consolidated(0, &mut free).unwrap(), vec![0, 0]);
        assert_eq!(free, vec![1, 2]);
    }

    #[test]
    fn keep_placement_reserves_capacity() {
        let mut free = vec![4, 2];
        assert!(keep_placement(&[2, 1], &mut free));
        assert_eq!(free, vec![2, 1]);
    }

    #[test]
    fn keep_placement_fails_without_capacity() {
        let mut free = vec![1, 2];
        assert!(!keep_placement(&[2, 0], &mut free));
        assert_eq!(free, vec![1, 2]);
        assert!(!keep_placement(&[1], &mut free), "width mismatch");
    }

    #[test]
    fn deterministic_tiebreak_by_index() {
        let mut free = vec![4, 4, 4];
        let row = pack_consolidated(4, &mut free).unwrap();
        assert_eq!(row, vec![4, 0, 0]);
    }
}
