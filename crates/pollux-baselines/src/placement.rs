//! Consolidated placement, shared by the baselines.
//!
//! Both Tiresias and Optimus co-locate job replicas onto as few nodes
//! as possible (Sec. 2.3 notes Tiresias "co-locates job replicas for
//! more efficient synchronization"). The heuristic used to live here
//! as two free functions copied inline into each baseline; it is now
//! the default [`ConsolidatedPlacement`] stage in
//! `pollux_control::stages`, re-exported here (with its helpers) for
//! existing callers. The edge-case tests below pin the packing and
//! spreading behavior through the re-export.

pub use pollux_control::{keep_placement, pack_consolidated, ConsolidatedPlacement};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_onto_fullest_nodes_first() {
        let mut free = vec![2, 4, 3];
        let row = pack_consolidated(5, &mut free).unwrap();
        // Fullest first: node 1 (4), then node 2 (1).
        assert_eq!(row, vec![0, 4, 1]);
        assert_eq!(free, vec![2, 0, 2]);
    }

    #[test]
    fn single_node_when_it_fits() {
        let mut free = vec![4, 4];
        let row = pack_consolidated(3, &mut free).unwrap();
        assert_eq!(row.iter().filter(|&&g| g > 0).count(), 1);
    }

    #[test]
    fn spreads_across_nodes_only_when_forced() {
        // 6 GPUs cannot fit one 4-GPU node: spill onto the next
        // fullest, touching as few nodes as possible.
        let mut free = vec![4, 4, 4];
        let row = pack_consolidated(6, &mut free).unwrap();
        assert_eq!(row.iter().filter(|&&g| g > 0).count(), 2);
        assert_eq!(row.iter().sum::<u32>(), 6);
    }

    #[test]
    fn fails_when_insufficient() {
        let mut free = vec![1, 1];
        assert!(pack_consolidated(3, &mut free).is_none());
        // Free capacities untouched on failure.
        assert_eq!(free, vec![1, 1]);
    }

    #[test]
    fn zero_need_is_trivial() {
        let mut free = vec![1, 2];
        assert_eq!(pack_consolidated(0, &mut free).unwrap(), vec![0, 0]);
        assert_eq!(free, vec![1, 2]);
    }

    #[test]
    fn keep_placement_reserves_capacity() {
        let mut free = vec![4, 2];
        assert!(keep_placement(&[2, 1], &mut free));
        assert_eq!(free, vec![2, 1]);
    }

    #[test]
    fn keep_placement_fails_without_capacity() {
        let mut free = vec![1, 2];
        assert!(!keep_placement(&[2, 0], &mut free));
        assert_eq!(free, vec![1, 2]);
        assert!(!keep_placement(&[1], &mut free), "width mismatch");
    }

    #[test]
    fn deterministic_tiebreak_by_index() {
        let mut free = vec![4, 4, 4];
        let row = pack_consolidated(4, &mut free).unwrap();
        assert_eq!(row, vec![4, 0, 0]);
    }
}
