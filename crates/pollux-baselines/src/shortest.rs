//! Shortest-remaining-work admission: SRTF and SRSF.
//!
//! Two classic preemptive size-based disciplines, built on the same
//! oracle the Pollux evaluation grants Optimus
//! (`PolicyJobView::remaining_work`):
//!
//! - **SRTF** (shortest remaining time first) ranks jobs by remaining
//!   work alone — the JCT-optimal single-server discipline;
//! - **SRSF** (shortest remaining *service* first, Tiresias's Gittins
//!   flavor) ranks by remaining work × requested GPUs, so a short but
//!   wide job does not starve many narrow ones.
//!
//! Both admit the backfilled prefix that fits free capacity, preempt
//! freely, and place consolidated — i.e. they differ from Tiresias
//! only in the admission stage, which is exactly the kind of
//! one-stage-at-a-time comparison the Blox decomposition exists for.

use pollux_cluster::ClusterSpec;
use pollux_simulator::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, PolicyJobView, PreemptAll, StagedScheduler,
};
use rand::rngs::StdRng;

/// Admission by ascending remaining work, optionally weighted by the
/// job's requested GPU count (SRSF). Ties break by submission time,
/// then row, so the order is total and deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ShortestRemainingAdmission {
    /// `false` = SRTF (remaining time), `true` = SRSF (remaining
    /// service = time × GPUs).
    weight_by_gpus: bool,
}

impl ShortestRemainingAdmission {
    /// Shortest remaining time first.
    pub fn srtf() -> Self {
        Self {
            weight_by_gpus: false,
        }
    }

    /// Shortest remaining service (time × GPUs) first.
    pub fn srsf() -> Self {
        Self {
            weight_by_gpus: true,
        }
    }
}

impl AdmissionPolicy for ShortestRemainingAdmission {
    fn name(&self) -> &'static str {
        if self.weight_by_gpus {
            "srsf"
        } else {
            "srtf"
        }
    }

    fn admit(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<Admitted> {
        let key = |j: usize| {
            let need = jobs[j].user.gpus.max(1);
            if self.weight_by_gpus {
                jobs[j].remaining_work * need as f64
            } else {
                jobs[j].remaining_work
            }
        };
        let mut order: Vec<usize> = (0..jobs.len()).filter(|&j| !held[j]).collect();
        order.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    jobs[a]
                        .submit_time
                        .partial_cmp(&jobs[b].submit_time)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.cmp(&b))
        });

        let mut budget: u32 = free.iter().sum();
        let mut admitted = Vec::new();
        for &j in &order {
            let need = jobs[j].user.gpus.max(1);
            if need <= budget {
                admitted.push(Admitted { row: j, gpus: need });
                budget -= need;
            }
        }
        admitted
    }
}

/// Shortest-remaining-time-first: oracle SRTF admission, consolidated
/// placement, full preemption.
pub fn srtf() -> StagedScheduler {
    StagedScheduler::new(
        "srtf",
        ShortestRemainingAdmission::srtf(),
        ConsolidatedPlacement::admitted_order(),
        PreemptAll,
    )
}

/// Shortest-remaining-service-first: oracle SRSF admission,
/// consolidated placement, full preemption.
pub fn srsf() -> StagedScheduler {
    StagedScheduler::new(
        "srsf",
        ShortestRemainingAdmission::srsf(),
        ConsolidatedPlacement::admitted_order(),
        PreemptAll,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::BatchSizeLimits;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::UserConfig;
    use rand::SeedableRng;

    fn view<'a>(
        id: u32,
        gpus: u32,
        remaining: f64,
        submit: f64,
        placement: &'a [u32],
    ) -> PolicyJobView<'a> {
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
            report: None,
            gputime: 0.0,
            submit_time: submit,
            current_placement: placement,
            started: false,
            batch_size: 128,
            remaining_work: remaining,
        }
    }

    #[test]
    fn srtf_runs_the_shortest_job_first() {
        let empty = vec![0u32];
        let jobs = vec![view(0, 4, 1e6, 0.0, &empty), view(1, 4, 1e3, 50.0, &empty)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = srtf();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 4, "short job wins despite later arrival");
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn srtf_preempts_running_longer_jobs() {
        let holding = vec![4u32];
        let empty = vec![0u32];
        let jobs = vec![
            view(0, 4, 1e6, 0.0, &holding),
            view(1, 4, 1e3, 50.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = srtf();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 4);
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn srsf_weights_by_width() {
        // Same remaining time, but job 0 wants 4 GPUs and job 1 wants
        // 1: SRSF ranks the narrow job's service shorter.
        let empty = vec![0u32];
        let jobs = vec![view(0, 4, 1e4, 0.0, &empty), view(1, 1, 9e3, 50.0, &empty)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = srsf();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        // service(0) = 4e4 > service(1) = 9e3: job 1 admitted first;
        // job 0 no longer fits and waits.
        assert_eq!(m.gpus_of(1), 1);
        assert_eq!(m.gpus_of(0), 0);

        // SRTF on the same input runs the wide job (1e4 > 9e3 — no:
        // 9e3 < 1e4, so job 1 still first, but then job 0 does not
        // fit either way). Use reversed remaining works instead:
        let jobs = vec![view(0, 4, 8e3, 0.0, &empty), view(1, 1, 9e3, 50.0, &empty)];
        let mut p = srtf();
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 4, "SRTF prefers the shorter wide job");
        let mut p = srsf();
        let m = p.schedule(100.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 1, "SRSF prefers the smaller service");
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn backfills_past_too_wide_jobs() {
        let empty = vec![0u32];
        let jobs = vec![
            view(0, 8, 1e3, 0.0, &empty), // shortest but too wide
            view(1, 2, 1e6, 10.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = srtf();
        let mut rng = StdRng::seed_from_u64(0);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 0);
        assert_eq!(m.gpus_of(1), 2);
    }
}
