//! Tiresias (Gu et al., NSDI '19), as idealized in the Pollux
//! evaluation (Sec. 5.2).
//!
//! Non-resource-adaptive: every job runs with its user-submitted GPU
//! count for its whole lifetime. Scheduling follows discretized
//! least-attained-service: jobs below an attained-GPU-time threshold
//! form the high-priority queue, the rest the low-priority queue;
//! within each queue jobs are served FIFO by submission time. Jobs are
//! preempted when higher-priority jobs need their GPUs, and replicas
//! are placed consolidated (fewest nodes).
//!
//! Decomposed Blox-style (DESIGN.md §10): [`TiresiasAdmission`] owns
//! the two-queue LAS priority and backfill prefix selection; placement
//! is the shared [`ConsolidatedPlacement`] in admitted order;
//! preemption is [`PreemptAll`] (any running job yields to a higher
//! priority). [`tiresias`] composes the three. The staged form is
//! pinned byte-identical to the pre-decomposition monolith by
//! `pollux-core/tests/baseline_golden.rs`.

use pollux_cluster::ClusterSpec;
use pollux_simulator::{
    AdmissionPolicy, Admitted, ConsolidatedPlacement, PolicyJobView, PreemptAll, StagedScheduler,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Tiresias configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiresiasConfig {
    /// Attained-service threshold (GPU-seconds) splitting the two
    /// priority queues.
    pub queue_threshold: f64,
}

impl Default for TiresiasConfig {
    fn default() -> Self {
        Self {
            // One GPU-hour: small jobs finish entirely in the high
            // priority queue.
            queue_threshold: 3600.0,
        }
    }
}

/// The Tiresias admission stage: discretized least-attained-service
/// priorities (two queues, FIFO within each), then the backfilled
/// prefix of jobs whose user GPU counts fit the free capacity.
#[derive(Debug, Clone, Default)]
pub struct TiresiasAdmission {
    config: TiresiasConfig,
}

impl TiresiasAdmission {
    /// Creates the stage.
    pub fn new(config: TiresiasConfig) -> Self {
        Self { config }
    }
}

impl AdmissionPolicy for TiresiasAdmission {
    fn name(&self) -> &'static str {
        "las-two-queue"
    }

    fn admit(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<Admitted> {
        // Priority order: high queue (attained < threshold) first,
        // FIFO within queue.
        let mut order: Vec<usize> = (0..jobs.len()).filter(|&j| !held[j]).collect();
        order.sort_by(|&a, &b| {
            let qa = jobs[a].gputime >= self.config.queue_threshold;
            let qb = jobs[b].gputime >= self.config.queue_threshold;
            qa.cmp(&qb).then(
                jobs[a]
                    .submit_time
                    .partial_cmp(&jobs[b].submit_time)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });

        // Admit the prefix of jobs that fit in total capacity
        // (backfilling past jobs that do not fit).
        let mut budget: u32 = free.iter().sum();
        let mut admitted = Vec::new();
        for &j in &order {
            let need = jobs[j].user.gpus.max(1);
            if need <= budget {
                admitted.push(Admitted { row: j, gpus: need });
                budget -= need;
            }
        }
        admitted
    }
}

/// The Tiresias scheduling policy: LAS two-queue admission,
/// consolidated placement in priority order, full preemption.
pub fn tiresias(config: TiresiasConfig) -> StagedScheduler {
    StagedScheduler::new(
        "tiresias",
        TiresiasAdmission::new(config),
        ConsolidatedPlacement::admitted_order(),
        PreemptAll,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::{ClusterSpec, JobId};
    use pollux_models::BatchSizeLimits;
    use pollux_simulator::SchedulingPolicy;
    use pollux_workload::{ModelKind, UserConfig};
    use rand::SeedableRng;

    struct Ctx {
        profile: pollux_workload::ModelProfile,
    }

    impl Ctx {
        fn new() -> Self {
            Self {
                profile: ModelKind::ResNet18Cifar10.profile(),
            }
        }

        fn view<'a>(
            &'a self,
            id: u32,
            gpus: u32,
            gputime: f64,
            submit: f64,
            placement: &'a [u32],
        ) -> PolicyJobView<'a> {
            PolicyJobView {
                id: JobId(id),
                user: UserConfig {
                    gpus,
                    batch_size: self.profile.m0,
                },
                profile: Some(&self.profile),
                limits: BatchSizeLimits::new(
                    self.profile.m0,
                    self.profile.limits.max_global,
                    self.profile.limits.max_per_gpu,
                )
                .unwrap(),
                report: None,
                gputime,
                submit_time: submit,
                current_placement: placement,
                started: false,
                batch_size: self.profile.m0,
                remaining_work: 1e6,
            }
        }
    }

    #[test]
    fn allocates_user_gpu_counts() {
        let ctx = Ctx::new();
        let empty = vec![0u32; 2];
        let jobs = vec![
            ctx.view(0, 2, 0.0, 0.0, &empty),
            ctx.view(1, 4, 0.0, 10.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(0.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 2);
        assert_eq!(m.gpus_of(1), 4);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn high_queue_preempts_long_running_jobs() {
        let ctx = Ctx::new();
        // Job 0 has exceeded the queue threshold and holds all GPUs;
        // job 1 is new. Job 1 should win the GPUs.
        let holding = vec![4u32];
        let empty = vec![0u32];
        let jobs = vec![
            ctx.view(0, 4, 10_000.0, 0.0, &holding),
            ctx.view(1, 4, 0.0, 100.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(200.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 4, "new job should preempt:\n{m}");
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn fifo_within_queue() {
        let ctx = Ctx::new();
        let empty = vec![0u32];
        let jobs = vec![
            ctx.view(0, 4, 0.0, 50.0, &empty),
            ctx.view(1, 4, 0.0, 10.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(100.0, &jobs, &spec, &mut rng);
        // Earlier submission wins.
        assert_eq!(m.gpus_of(1), 4);
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn keeps_running_placement_when_possible() {
        let ctx = Ctx::new();
        let placed = vec![0u32, 2];
        let jobs = vec![ctx.view(0, 2, 100.0, 0.0, &placed)];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(60.0, &jobs, &spec, &mut rng);
        assert_eq!(m.row(0), &[0, 2], "placement should be preserved");
    }

    #[test]
    fn backfills_small_jobs_past_big_ones() {
        let ctx = Ctx::new();
        let empty = vec![0u32];
        // Job 0 wants 8 GPUs (doesn't fit on a 4-GPU cluster); job 1
        // wants 2 and should run anyway.
        let jobs = vec![
            ctx.view(0, 8, 0.0, 0.0, &empty),
            ctx.view(1, 2, 0.0, 10.0, &empty),
        ];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(0.0, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 0);
        assert_eq!(m.gpus_of(1), 2);
    }

    #[test]
    fn consolidates_multi_gpu_jobs() {
        let ctx = Ctx::new();
        let empty = vec![0u32; 4];
        let jobs = vec![ctx.view(0, 4, 0.0, 0.0, &empty)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut t = tiresias(TiresiasConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let m = t.schedule(0.0, &jobs, &spec, &mut rng);
        // All 4 GPUs on one node.
        assert_eq!(m.nodes_of(0), 1);
        assert_eq!(m.gpus_of(0), 4);
    }

    #[test]
    fn stage_names_identify_the_decomposition() {
        let t = tiresias(TiresiasConfig::default());
        assert_eq!(t.name(), "tiresias");
        assert_eq!(
            t.stage_names(),
            ("las-two-queue", "consolidated", "preempt-all")
        );
    }
}
