//! Regenerates the extra ablation studies (overlap model, restart
//! penalty, GA vs random search).

fn main() {
    pollux_bench::banner("Ablations — overlap model, restart penalty, GA vs random search");
    let result = pollux_experiments::ablations::run(7);
    pollux_bench::maybe_write_json("ablations", &result);
    println!("{result}");
}
