//! Regenerates the gradient-accumulation extension experiment.

use pollux_experiments::ext_accum::{run, run_with_cap, ModelKind};

fn main() {
    pollux_bench::banner("Extension — gradient accumulation in the goodput search");
    println!("Calibrated profiles (memory cap rarely binds — honest negative result):\n");
    for (kind, gpus, nodes) in [
        (ModelKind::DeepSpeech2Arctic, 8u32, 2u32),
        (ModelKind::ResNet50ImageNet, 16, 4),
    ] {
        let result = run(kind, gpus, nodes);
        pollux_bench::maybe_write_json(&format!("ext_accum_{gpus}g{nodes}n"), &result);
        println!("{result}\n");
    }
    println!("Memory-tight variant (per-GPU cap 64 — a larger model / smaller GPUs):\n");
    let tight = run_with_cap(ModelKind::ResNet50ImageNet, 16, 4, Some(64));
    pollux_bench::maybe_write_json("ext_accum_tight", &tight);
    println!("{tight}");
}
