//! Regenerates the Sec 5.3 simulator-fidelity factors.

use pollux_experiments::{fidelity, table2};

fn main() {
    let traces = pollux_bench::traces_from_env(2);
    pollux_bench::banner("Sec 5.3 — simulator fidelity (JCT reduction factors)");
    let t = table2::run(&table2::Table2Options {
        traces,
        ..Default::default()
    });
    match fidelity::from_table2(&t) {
        Some(f) => {
            pollux_bench::maybe_write_json("fidelity", &f);
            println!("{f}");
        }
        None => println!("insufficient data"),
    }
}
