//! Regenerates Fig 1 (batch size vs scalability trade-offs).

fn main() {
    pollux_bench::banner("Fig 1 — trade-offs between batch size, scalability, training stage");
    let result = pollux_experiments::fig1::run();
    pollux_bench::maybe_write_json("fig1", &result);
    println!("{result}");
}
