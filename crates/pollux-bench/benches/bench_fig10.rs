//! Regenerates Fig 10 (cloud auto-scaling comparison).
//!
//! `POLLUX_IMAGENET_SCALE` (default 0.25) shrinks the ImageNet job for
//! quicker runs; set 1.0 for the full-size experiment.

fn main() {
    let scale = std::env::var("POLLUX_IMAGENET_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25)
        .clamp(0.01, 1.0);
    pollux_bench::banner("Fig 10 — goodput-driven cloud auto-scaling (ImageNet)");
    println!("(ImageNet job scaled to {scale} of full size)");
    let result = pollux_experiments::fig10::run(scale, 16);
    pollux_bench::maybe_write_json("fig10", &result);
    println!("{result}");
}
