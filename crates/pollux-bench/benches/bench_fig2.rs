//! Regenerates Fig 2 (statistical efficiency; Eqn 7 validation on the
//! trainer substrate).

fn main() {
    pollux_bench::banner("Fig 2 — statistical efficiency (ImageNet profile + real gradients)");
    let result = pollux_experiments::fig2::run();
    pollux_bench::maybe_write_json("fig2", &result);
    println!("{result}");
}
