//! Regenerates Fig 3 (throughput-model fit).

fn main() {
    pollux_bench::banner("Fig 3 — throughput model fit (ResNet-50/ImageNet)");
    let result = pollux_experiments::fig3::run(0.05, 1);
    pollux_bench::maybe_write_json("fig3", &result);
    println!("{result}");
}
