//! Regenerates Fig 6 (submissions per hour).

fn main() {
    pollux_bench::banner("Fig 6 — workload submissions per hour");
    let result = pollux_experiments::fig6::run(8);
    pollux_bench::maybe_write_json("fig6", &result);
    println!("{result}");
}
