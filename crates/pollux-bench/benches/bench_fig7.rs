//! Regenerates Fig 7 (realistic user-configured job sweep).

fn main() {
    let traces = pollux_bench::traces_from_env(2);
    pollux_bench::banner("Fig 7 — workloads with realistic (user-configured) jobs");
    let result = pollux_experiments::fig7::run(traces);
    pollux_bench::maybe_write_json("fig7", &result);
    println!("{result}");
}
