//! Regenerates Fig 8 (load sweep).

fn main() {
    let traces = pollux_bench::traces_from_env(1);
    pollux_bench::banner("Fig 8 — sensitivity to job load");
    let result = pollux_experiments::fig8::run(traces);
    pollux_bench::maybe_write_json("fig8", &result);
    println!("{result}");
}
