//! Regenerates Fig 9 (interference avoidance sweep).

fn main() {
    let traces = pollux_bench::traces_from_env(1);
    pollux_bench::banner("Fig 9 — impact of interference avoidance");
    let result = pollux_experiments::fig9::run(traces);
    pollux_bench::maybe_write_json("fig9", &result);
    println!("{result}");
}
