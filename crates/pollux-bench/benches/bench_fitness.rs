//! Head-to-head comparison of the three fitness-evaluation strategies
//! on the paper-scale problem (64 jobs on 16 nodes × 4 GPUs):
//!
//! 1. `hash_cache` — the legacy sharded-HashMap [`SpeedupCache`]: every
//!    `SPEEDUP` lookup hashes a `(job, shape)` key and takes a shard
//!    lock (PR 1's design);
//! 2. `dense_table` — full-chromosome [`fitness`] over the precomputed
//!    dense [`SpeedupTable`]: each lookup is an unsynchronized array
//!    index (this PR's design);
//! 3. `incremental` — [`contribution`]/[`fitness_of`] recomputing only
//!    the rows a GA operator touched (two rows here, a typical
//!    crossover/mutation footprint).
//!
//! Not a criterion bench: a custom `main` so the measured numbers land
//! in machine-readable form at `BENCH_fitness.json` in the repo root.
//! Set `BENCH_FITNESS_QUICK=1` (CI does) for a fast smoke run —
//! fewer repetitions, same arms, same output file schema.

use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
use pollux_sched::{
    contribution, contributions, fitness, fitness_of, fitness_with_cache, repair_matrix,
    weight_sum, FitnessConfig, SchedJob, SpeedupCache, SpeedupTable,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const NUM_JOBS: u32 = 64;
const NUM_NODES: usize = 16;
const GPUS_PER_NODE: u32 = 4;
const POOL: usize = 64;

fn goodput_model(phi: f64) -> GoodputModel {
    let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
    let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
    let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
    GoodputModel::new(tp, eff, limits).unwrap()
}

fn sched_jobs() -> Vec<SchedJob> {
    (0..NUM_JOBS)
        .map(|i| {
            let mut current = vec![0u32; NUM_NODES];
            if i % 3 == 0 {
                // Some jobs hold GPUs so the restart penalty is live.
                current[i as usize % NUM_NODES] = 2;
            }
            SchedJob {
                id: JobId(i),
                model: goodput_model(800.0 + 150.0 * i as f64),
                min_gpus: 1,
                gpu_cap: 64,
                weight: 1.0 + (i % 5) as f64 * 0.2,
                current_placement: current,
            }
        })
        .collect()
}

/// Pool of feasible allocation matrices, repaired the same way GA
/// offspring are, so every arm prices the identical lookup mix.
fn matrix_pool(jobs: &[SchedJob], spec: &ClusterSpec) -> Vec<AllocationMatrix> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..POOL)
        .map(|_| {
            let mut m = AllocationMatrix::zeros(jobs.len(), NUM_NODES);
            for j in 0..jobs.len() {
                let n = rng.gen_range(0..NUM_NODES);
                m.set(j, n, rng.gen_range(0..=GPUS_PER_NODE));
            }
            repair_matrix(&mut m, jobs, spec, true, &mut rng);
            m
        })
        .collect()
}

struct ArmResult {
    name: &'static str,
    evals: u64,
    best_total_ns: u128,
}

impl ArmResult {
    fn ns_per_eval(&self) -> f64 {
        self.best_total_ns as f64 / self.evals as f64
    }
}

/// Runs `work` `reps` times (after one untimed warmup) and keeps the
/// fastest repetition — the standard way to strip scheduler noise on a
/// loaded single-core container.
fn measure(name: &'static str, evals: u64, reps: usize, mut work: impl FnMut()) -> ArmResult {
    work();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_nanos());
    }
    ArmResult {
        name,
        evals,
        best_total_ns: best,
    }
}

fn main() {
    let quick = std::env::var("BENCH_FITNESS_QUICK").is_ok_and(|v| v != "0");
    let (passes, reps) = if quick { (2, 2) } else { (50, 7) };

    let spec = ClusterSpec::homogeneous(NUM_NODES as u32, GPUS_PER_NODE).unwrap();
    let jobs = sched_jobs();
    let pool = matrix_pool(&jobs, &spec);
    let config = FitnessConfig::default();
    let evals = (passes * pool.len()) as u64;

    // Arm 1: sharded-HashMap cache, pre-populated by a warmup pass so
    // the steady-state (all hits) path is what gets measured.
    let cache = SpeedupCache::new();
    let hash_cache = measure("hash_cache", evals, reps, || {
        for _ in 0..passes {
            for m in &pool {
                black_box(fitness_with_cache(&jobs, m, &cache, &config));
            }
        }
    });

    // Arm 2: dense table, full-chromosome recompute per evaluation.
    // Built once per interval in production; build cost is reported
    // separately below so the lookup comparison stays clean.
    let build_start = Instant::now();
    let table = SpeedupTable::build(&jobs, &spec, 1);
    let table_build_ns = build_start.elapsed().as_nanos();
    let dense_table = measure("dense_table", evals, reps, || {
        for _ in 0..passes {
            for m in &pool {
                black_box(fitness(&jobs, m, &table, &config));
            }
        }
    });

    // Arm 3: incremental — carry per-job contributions and recompute
    // only the two rows a GA operator touched.
    let wsum = weight_sum(&jobs);
    let base_contrib = contributions(&jobs, &pool[0], &table, &config);
    let incremental = measure("incremental", evals, reps, || {
        let mut contrib = base_contrib.clone();
        for p in 0..passes {
            for (i, m) in pool.iter().enumerate() {
                let a = (i + p) % jobs.len();
                let b = (i * 7 + p + 1) % jobs.len();
                contrib[a] = contribution(&jobs, a, m, &table, &config);
                contrib[b] = contribution(&jobs, b, m, &table, &config);
                black_box(fitness_of(&contrib, wsum));
            }
        }
    });

    let arms = [&hash_cache, &dense_table, &incremental];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_fitness\",\n  \"quick\": {quick},\n  \"num_jobs\": {NUM_JOBS},\n  \"num_nodes\": {NUM_NODES},\n  \"gpus_per_node\": {GPUS_PER_NODE},\n  \"pool\": {POOL},\n  \"passes\": {passes},\n  \"reps\": {reps},\n  \"table_build_ns\": {table_build_ns},\n  \"arms\": [\n"
    ));
    for (i, arm) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"evals\": {}, \"best_total_ns\": {}, \"ns_per_eval\": {:.1} }}{}\n",
            arm.name,
            arm.evals,
            arm.best_total_ns,
            arm.ns_per_eval(),
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_dense_vs_cache\": {:.2},\n  \"speedup_incremental_vs_cache\": {:.2}\n}}\n",
        hash_cache.ns_per_eval() / dense_table.ns_per_eval(),
        hash_cache.ns_per_eval() / incremental.ns_per_eval()
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fitness.json");
    std::fs::write(path, &out).expect("write BENCH_fitness.json");
    print!("{out}");

    assert!(
        dense_table.ns_per_eval() < hash_cache.ns_per_eval(),
        "dense table ({:.1} ns/eval) must beat the sharded-HashMap cache ({:.1} ns/eval)",
        dense_table.ns_per_eval(),
        hash_cache.ns_per_eval()
    );
}
