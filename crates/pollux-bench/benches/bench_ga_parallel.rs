//! Scaling benchmark for parallel GA fitness evaluation (Sec. 4.2.1).
//!
//! Runs the full genetic optimization on a 64-job × 16-node (4 GPUs
//! each) problem — the population size the paper's scheduler faces on
//! its 64-GPU testbed — at 1, 2, 4, and 8 worker threads. The
//! seed-per-chromosome determinism contract means every thread count
//! produces the bit-identical schedule, so the only thing this
//! benchmark measures is wall-clock scaling of the worker pool.
//!
//! Expectation (acceptance criterion for the parallel-fitness PR):
//! `ga_parallel/threads/4` at least ~2x faster than
//! `ga_parallel/threads/1` on a 4-core machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pollux_cluster::{ClusterSpec, JobId};
use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
use pollux_sched::{GaConfig, GeneticAlgorithm, SchedJob, SpeedupTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn goodput_model(phi: f64) -> GoodputModel {
    let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
    let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
    let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
    GoodputModel::new(tp, eff, limits).unwrap()
}

fn sched_jobs(n: u32) -> Vec<SchedJob> {
    (0..n)
        .map(|i| SchedJob {
            id: JobId(i),
            model: goodput_model(800.0 + 150.0 * i as f64),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0 + (i % 5) as f64 * 0.2,
            current_placement: vec![],
        })
        .collect()
}

fn bench_ga_parallel(c: &mut Criterion) {
    let spec = ClusterSpec::homogeneous(16, 4).unwrap();
    let jobs = sched_jobs(64);
    let mut group = c.benchmark_group("ga_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let ga = GeneticAlgorithm::new(GaConfig {
            population: 48,
            generations: 8,
            threads,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("threads", threads), &ga, |b, ga| {
            b.iter(|| {
                // Per-interval cost = table precompute + evolve, so the
                // build is measured inside the loop (it parallelizes
                // over the same worker count as the GA).
                let table = SpeedupTable::build(&jobs, &spec, threads);
                let mut rng = StdRng::seed_from_u64(7);
                black_box(ga.evolve(&jobs, &spec, vec![], &table, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ga_parallel);
criterion_main!(benches);
