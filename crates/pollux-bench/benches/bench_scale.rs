//! Datacenter-scale sweep of the scheduling round: how does one
//! Pollux optimization + planning round cost grow with cluster and
//! job-queue size?
//!
//! Sweep points (nodes × jobs): 16×64, 64×256, 256×2 500, 1024×10 000,
//! each drawn from a synthetic month-long trace (720 h submission
//! window). Per point, three arms:
//!
//! 1. `pollux_racked` — the two-phase rack-aware GA
//!    ([`pollux_sched::rackga`] + per-rack placement GA) under a
//!    16-nodes-per-rack topology. Runs at **every** point, including
//!    1024×10 000.
//! 2. `pollux_flat` — the dense single-rack GA baseline. Runs only up
//!    to 256 nodes: its chromosome is one cell per (job, node) and a
//!    10 000 × 1 024 population stops fitting in time or memory —
//!    which is the point of the sweep.
//! 3. `planner` — a [`RoundPlanner`] round over a cheap keep-current
//!    policy: a quiet round (no placement changes) must materialize
//!    **zero** rows, and a churn round touching `k` jobs must
//!    materialize exactly `k`, evidencing the O(changed) diff.
//!
//! The scaling claim pinned in full mode: going 64×256 → 256×2 500,
//! the racked round cost must grow by a smaller factor than the dense
//! round cost (sublinear relative to the dense baseline), and the
//! 1024×10 000 racked point must complete.
//!
//! Not a criterion bench: a custom `main` writing machine-readable
//! output to `BENCH_scale.json` in the repo root. Set
//! `BENCH_SCALE_QUICK=1` (CI does) to sweep only the two smallest
//! points with one repetition, same schema, no hard assertions.

use pollux_cluster::{AllocationMatrix, ClusterSpec, Topology};
use pollux_control::{bootstrap_sched_job, PolicyJobView, RoundPlanner, SchedulingPolicy};
use pollux_sched::{GaConfig, PolluxSched, SchedConfig, SchedJob};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Nodes per rack for the racked arm (64 GPUs per rack at 4/node).
const NODES_PER_RACK: u32 = 16;
/// GPUs per node across the sweep.
const GPUS_PER_NODE: u32 = 4;
/// Jobs moved in the planner churn round.
const CHURNED_JOBS: usize = 8;

struct Point {
    nodes: u32,
    jobs: usize,
    /// Whether the dense single-rack baseline is tractable here.
    flat: bool,
}

const SWEEP: [Point; 4] = [
    Point {
        nodes: 16,
        jobs: 64,
        flat: true,
    },
    Point {
        nodes: 64,
        jobs: 256,
        flat: true,
    },
    Point {
        nodes: 256,
        jobs: 2_500,
        flat: true,
    },
    Point {
        nodes: 1_024,
        jobs: 10_000,
        flat: false,
    },
];

/// Month-long synthetic submission window for every point.
fn trace(jobs: usize) -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs: jobs,
        duration_hours: 720.0,
        max_gpus: 2 * GPUS_PER_NODE,
        gpus_per_node: GPUS_PER_NODE,
        seed: 2024,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate()
}

/// The standing job set one round optimizes: every trace job as a
/// scheduler job (bootstrap goodput prior — no agent loop here; the
/// round cost, not the trajectory, is what this bench prices), with
/// the trace's tuned GPU ask as the scale cap and a packed placement
/// so the keep/home-rack machinery engages.
fn sched_jobs(specs: &[JobSpec], nodes: u32) -> Vec<SchedJob> {
    let placements = packed_placements(specs.len(), nodes);
    specs
        .iter()
        .zip(placements)
        .map(|(spec, placement)| {
            let mut job = bootstrap_sched_job(spec.id, spec.kind.profile().limits, 1.0, placement);
            job.gpu_cap = spec.tuned.gpus.clamp(1, 2 * GPUS_PER_NODE);
            job
        })
        .collect()
}

/// One GPU per job, packed node by node until the cluster is full;
/// later jobs idle. Deterministic, rack-local, capacity-feasible.
fn packed_placements(jobs: usize, nodes: u32) -> Vec<Vec<u32>> {
    let n = nodes as usize;
    let mut free = vec![GPUS_PER_NODE; n];
    let mut next = 0usize;
    (0..jobs)
        .map(|_| {
            let mut row = vec![0u32; n];
            while next < n && free[next] == 0 {
                next += 1;
            }
            if next < n {
                row[next] = 1;
                free[next] -= 1;
            }
            row
        })
        .collect()
}

fn ga_config() -> GaConfig {
    GaConfig {
        population: 12,
        generations: 8,
        ..Default::default()
    }
}

/// One full optimization round; returns the matrix and its wall time.
fn sched_round(
    jobs: &[SchedJob],
    spec: &ClusterSpec,
    topo: Option<&Topology>,
) -> (AllocationMatrix, u128) {
    let mut sched = PolluxSched::new(SchedConfig {
        ga: ga_config(),
        ..Default::default()
    });
    sched.set_topology(topo.cloned());
    let mut rng = StdRng::seed_from_u64(11);
    let start = Instant::now();
    let matrix = sched.schedule(jobs, spec, &mut rng);
    (matrix, start.elapsed().as_nanos())
}

/// Keep-current policy with an optional forced migration of the first
/// `churn` running jobs to the last node — the planner diff under a
/// quiet (churn = 0) and a lightly churning round.
struct KeepPolicy {
    churn: usize,
}

impl SchedulingPolicy for KeepPolicy {
    fn name(&self) -> &'static str {
        "keep-current"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let n = spec.num_nodes();
        let mut m = AllocationMatrix::zeros(jobs.len(), n);
        let mut moved = 0usize;
        for (j, view) in jobs.iter().enumerate() {
            if moved < self.churn && view.is_running() {
                m.set(j, n - 1, view.current_placement.iter().sum());
                moved += 1;
                continue;
            }
            for (node, &g) in view.current_placement.iter().enumerate() {
                if g > 0 {
                    m.set(j, node, g);
                }
            }
        }
        m
    }
}

struct PlannerCost {
    ns: u128,
    rows_materialized: u64,
    reallocations: usize,
}

/// One planner round over `jobs` views with `churn` forced moves.
fn planner_round(specs: &[JobSpec], nodes: u32, churn: usize) -> PlannerCost {
    let spec = ClusterSpec::homogeneous(nodes, GPUS_PER_NODE).expect("nodes >= 1");
    let placements = packed_placements(specs.len(), nodes);
    let views: Vec<PolicyJobView<'_>> = specs
        .iter()
        .zip(&placements)
        .map(|(job, placement)| PolicyJobView {
            id: job.id,
            user: UserConfig {
                gpus: job.tuned.gpus,
                batch_size: job.tuned.batch_size,
            },
            profile: None,
            limits: job.kind.profile().limits,
            report: None,
            gputime: 0.0,
            submit_time: job.submit_time,
            current_placement: placement,
            started: true,
            batch_size: job.tuned.batch_size,
            remaining_work: 1.0e9,
        })
        .collect();
    let mut planner = RoundPlanner::new();
    let mut policy = KeepPolicy { churn };
    let mut rng = StdRng::seed_from_u64(13);
    let start = Instant::now();
    let outcome = planner
        .plan(&mut policy, 0.0, &views, &spec, &mut rng)
        .expect("unique job ids");
    PlannerCost {
        ns: start.elapsed().as_nanos(),
        rows_materialized: planner.rows_materialized(),
        reallocations: outcome.reallocations.len(),
    }
}

struct PointResult {
    nodes: u32,
    jobs: usize,
    racked_ns: u128,
    flat_ns: Option<u128>,
    quiet: PlannerCost,
    churned: PlannerCost,
}

fn measure_point(point: &Point, reps: usize) -> PointResult {
    let specs = trace(point.jobs);
    let jobs = sched_jobs(&specs, point.nodes);
    let spec = ClusterSpec::homogeneous(point.nodes, GPUS_PER_NODE).expect("nodes >= 1");
    let topo = Topology::grouped(point.nodes, NODES_PER_RACK).expect("valid rack grouping");

    let (racked_matrix, mut racked_ns) = sched_round(&jobs, &spec, Some(&topo));
    for _ in 1..reps {
        let (again, ns) = sched_round(&jobs, &spec, Some(&topo));
        assert_eq!(
            again, racked_matrix,
            "racked round non-deterministic at {}x{}",
            point.nodes, point.jobs
        );
        racked_ns = racked_ns.min(ns);
    }

    let flat_ns = point.flat.then(|| {
        let (flat_matrix, mut best) = sched_round(&jobs, &spec, None);
        for _ in 1..reps {
            let (again, ns) = sched_round(&jobs, &spec, None);
            assert_eq!(
                again, flat_matrix,
                "flat round non-deterministic at {}x{}",
                point.nodes, point.jobs
            );
            best = best.min(ns);
        }
        best
    });

    let quiet = planner_round(&specs, point.nodes, 0);
    assert_eq!(
        quiet.rows_materialized, 0,
        "quiet round must materialize zero placement rows"
    );
    assert_eq!(quiet.reallocations, 0, "quiet round must not reallocate");
    let churn = CHURNED_JOBS.min(point.jobs);
    let churned = planner_round(&specs, point.nodes, churn);
    assert_eq!(
        churned.rows_materialized, churn as u64,
        "churn round must materialize exactly the changed rows"
    );

    PointResult {
        nodes: point.nodes,
        jobs: point.jobs,
        racked_ns,
        flat_ns,
        quiet,
        churned,
    }
}

fn main() {
    let quick = std::env::var("BENCH_SCALE_QUICK").is_ok_and(|v| v != "0");
    let (points, reps): (&[Point], usize) = if quick {
        (&SWEEP[..2], 1)
    } else {
        (&SWEEP[..], 2)
    };

    let results: Vec<PointResult> = points.iter().map(|p| measure_point(p, reps)).collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_scale\",\n  \"quick\": {quick},\n  \"gpus_per_node\": {GPUS_PER_NODE},\n  \"nodes_per_rack\": {NODES_PER_RACK},\n  \"trace_window_hours\": 720.0,\n  \"reps\": {reps},\n  \"points\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        let flat = r.flat_ns.map_or("null".to_string(), |ns| ns.to_string());
        out.push_str(&format!(
            "    {{ \"nodes\": {}, \"jobs\": {}, \"racked_round_ns\": {}, \"flat_round_ns\": {}, \"planner_quiet_ns\": {}, \"planner_quiet_rows\": {}, \"planner_churn_ns\": {}, \"planner_churn_rows\": {} }}{}\n",
            r.nodes,
            r.jobs,
            r.racked_ns,
            flat,
            r.quiet.ns,
            r.quiet.rows_materialized,
            r.churned.ns,
            r.churned.rows_materialized,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    // The scaling evidence: cost growth going 64x256 -> 256x2500 for
    // each arm (only meaningful when both points ran both arms).
    let growth = (!quick && results.len() >= 3)
        .then(|| {
            let flat = results[2].flat_ns? as f64 / results[1].flat_ns? as f64;
            let racked = results[2].racked_ns as f64 / results[1].racked_ns as f64;
            Some((flat, racked))
        })
        .flatten();
    match growth {
        Some((flat, racked)) => out.push_str(&format!(
            "  ],\n  \"growth_64x256_to_256x2500\": {{ \"flat\": {flat:.2}, \"racked\": {racked:.2} }}\n}}\n"
        )),
        None => out.push_str("  ],\n  \"growth_64x256_to_256x2500\": null\n}\n"),
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &out).expect("write BENCH_scale.json");
    print!("{out}");

    if !quick {
        let (flat, racked) = growth.expect("full sweep ran both arms at the shared points");
        assert!(
            racked < flat,
            "racked round cost must grow slower than the dense baseline \
             (racked {racked:.2}x vs flat {flat:.2}x going 64x256 -> 256x2500)"
        );
        let largest = results.last().expect("sweep is non-empty");
        assert_eq!(
            (largest.nodes, largest.jobs),
            (1_024, 10_000),
            "the datacenter-scale point must run"
        );
    }
}
