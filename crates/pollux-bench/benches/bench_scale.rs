//! Datacenter-scale sweep of the scheduling round: how does one
//! Pollux optimization + planning round cost grow with cluster and
//! job-queue size?
//!
//! Sweep points (nodes × jobs): 16×64, 64×256, 256×2 500, 1024×10 000,
//! each drawn from a synthetic month-long trace (720 h submission
//! window). Per point, three arms:
//!
//! 1. `pollux_racked` — the two-phase rack-aware GA
//!    ([`pollux_sched::rackga`] + per-rack placement GA) under a
//!    16-nodes-per-rack topology. Runs at **every** point, including
//!    1024×10 000. Measured cold (first round) and **warm** (second
//!    round on the same scheduler: phase 1 seeded with the previous
//!    assignment, speedup-table rows reused, per-rack populations
//!    warm-started, unchanged racks replayed via the quiet-rack fast
//!    path).
//! 2. `pollux_flat` — the dense single-rack GA baseline. Runs only up
//!    to 256 nodes: its chromosome is one cell per (job, node) and a
//!    10 000 × 1 024 population stops fitting in time or memory —
//!    which is the point of the sweep. `flat_round_ns` is therefore
//!    `null` at 1024×10 000 by design.
//! 3. `planner` — a warmed [`RoundPlanner`] round over a cheap
//!    keep-current policy, on both the sparse O(churn) path and the
//!    dense full-matrix path: a quiet round (no placement changes)
//!    must materialize **zero** rows, and a churn round touching `k`
//!    jobs must materialize exactly `k`, evidencing the O(changed)
//!    diff. `quiet_round_ns` additionally times the end-to-end quiet
//!    control round (cross-round `SchedJob` cache refresh + sparse
//!    plan).
//!
//! The scaling claims pinned in full mode: going 64×256 → 256×2 500,
//! the racked round cost must grow by a smaller factor than the dense
//! round cost (sublinear relative to the dense baseline); the
//! 1024×10 000 racked point must complete; warm rounds beat cold by
//! ≥ 1.5× at 256 nodes and above; and the sparse quiet planner round
//! at 1024×10 000 lands ≥ 5× under the dense path's former ~83 ms.
//!
//! Not a criterion bench: a custom `main` writing machine-readable
//! output to `BENCH_scale.json` in the repo root. Set
//! `BENCH_SCALE_QUICK=1` (CI does) to sweep only the two smallest
//! points with one repetition, same schema, no hard assertions.

use pollux_cluster::{AllocationMatrix, ClusterSpec, Topology};
use pollux_control::{
    bootstrap_sched_job, PlacementDelta, PolicyJobView, RoundPlanner, SchedJobCache,
    SchedulingPolicy,
};
use pollux_sched::{GaConfig, PolluxSched, SchedConfig, SchedJob, WeightConfig};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Nodes per rack for the racked arm (64 GPUs per rack at 4/node).
const NODES_PER_RACK: u32 = 16;
/// GPUs per node across the sweep.
const GPUS_PER_NODE: u32 = 4;
/// Jobs moved in the planner churn round.
const CHURNED_JOBS: usize = 8;

struct Point {
    nodes: u32,
    jobs: usize,
    /// Whether the dense single-rack baseline is tractable here.
    flat: bool,
}

const SWEEP: [Point; 4] = [
    Point {
        nodes: 16,
        jobs: 64,
        flat: true,
    },
    Point {
        nodes: 64,
        jobs: 256,
        flat: true,
    },
    Point {
        nodes: 256,
        jobs: 2_500,
        flat: true,
    },
    Point {
        nodes: 1_024,
        jobs: 10_000,
        flat: false,
    },
];

/// Month-long synthetic submission window for every point.
fn trace(jobs: usize) -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs: jobs,
        duration_hours: 720.0,
        max_gpus: 2 * GPUS_PER_NODE,
        gpus_per_node: GPUS_PER_NODE,
        seed: 2024,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate()
}

/// The standing job set one round optimizes: every trace job as a
/// scheduler job (bootstrap goodput prior — no agent loop here; the
/// round cost, not the trajectory, is what this bench prices), with
/// the trace's tuned GPU ask as the scale cap and a packed placement
/// so the keep/home-rack machinery engages.
fn sched_jobs(specs: &[JobSpec], nodes: u32) -> Vec<SchedJob> {
    let placements = packed_placements(specs.len(), nodes);
    specs
        .iter()
        .zip(placements)
        .map(|(spec, placement)| {
            let mut job = bootstrap_sched_job(spec.id, spec.kind.profile().limits, 1.0, placement);
            job.gpu_cap = spec.tuned.gpus.clamp(1, 2 * GPUS_PER_NODE);
            job
        })
        .collect()
}

/// One GPU per job, packed node by node until the cluster is full;
/// later jobs idle. Deterministic, rack-local, capacity-feasible.
fn packed_placements(jobs: usize, nodes: u32) -> Vec<Vec<u32>> {
    let n = nodes as usize;
    let mut free = vec![GPUS_PER_NODE; n];
    let mut next = 0usize;
    (0..jobs)
        .map(|_| {
            let mut row = vec![0u32; n];
            while next < n && free[next] == 0 {
                next += 1;
            }
            if next < n {
                row[next] = 1;
                free[next] -= 1;
            }
            row
        })
        .collect()
}

fn ga_config() -> GaConfig {
    GaConfig {
        population: 12,
        generations: 8,
        // Two stale generations end the per-rack search — the
        // convergence detection a production-sized sweep would run
        // with (the default, generations == early_stop_gens, never
        // fires and prices every round at the full budget).
        early_stop_gens: 2,
        ..Default::default()
    }
}

/// A cold round followed by a warm round on the same scheduler: the
/// warm round seeds phase 1 with the previous assignment, reuses the
/// previous interval's speedup-table rows, warm-starts the GA from
/// the saved per-rack populations, and replays unchanged racks
/// through the quiet-rack fast path, as it does across real
/// scheduling intervals. The RNG stream continues between the
/// rounds, exactly as it does in the engine.
struct SchedCost {
    cold_matrix: AllocationMatrix,
    warm_matrix: AllocationMatrix,
    cold_ns: u128,
    warm_ns: u128,
}

/// One cold + one warm optimization round over the standing job set.
fn sched_round(jobs: &[SchedJob], spec: &ClusterSpec, topo: Option<&Topology>) -> SchedCost {
    let mut sched = PolluxSched::new(SchedConfig {
        ga: ga_config(),
        ..Default::default()
    });
    sched.set_topology(topo.cloned());
    let mut rng = StdRng::seed_from_u64(11);
    let start = Instant::now();
    let cold_matrix = sched.schedule(jobs, spec, &mut rng);
    let cold_ns = start.elapsed().as_nanos();
    let start = Instant::now();
    let warm_matrix = sched.schedule(jobs, spec, &mut rng);
    let warm_ns = start.elapsed().as_nanos();
    SchedCost {
        cold_matrix,
        warm_matrix,
        cold_ns,
        warm_ns,
    }
}

/// Keep-current policy with an optional forced change to the first
/// `churn` running jobs — the planner diff under a quiet (churn = 0)
/// and a lightly churning round. In `sparse` mode it answers through
/// [`SchedulingPolicy::schedule_sparse`] with just the changed rows
/// (preemptions: releasing GPUs is the minimal delta set that is
/// feasible unconditionally, since the sparse path skips the dense
/// clamp); in dense mode it materializes the full `jobs × nodes`
/// matrix with the churned jobs migrated to the last node.
struct KeepPolicy {
    churn: usize,
    sparse: bool,
}

impl SchedulingPolicy for KeepPolicy {
    fn name(&self) -> &'static str {
        "keep-current"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let n = spec.num_nodes();
        let mut m = AllocationMatrix::zeros(jobs.len(), n);
        let mut moved = 0usize;
        for (j, view) in jobs.iter().enumerate() {
            if moved < self.churn && view.is_running() {
                m.set(j, n - 1, view.current_placement.iter().sum());
                moved += 1;
                continue;
            }
            for (node, &g) in view.current_placement.iter().enumerate() {
                if g > 0 {
                    m.set(j, node, g);
                }
            }
        }
        m
    }

    fn schedule_sparse(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<Vec<PlacementDelta>> {
        if !self.sparse {
            return None;
        }
        let mut deltas = Vec::with_capacity(self.churn);
        for (j, view) in jobs.iter().enumerate() {
            if deltas.len() == self.churn {
                break;
            }
            if view.is_running() {
                deltas.push(PlacementDelta {
                    row: j,
                    gpus: Vec::new(),
                });
            }
        }
        Some(deltas)
    }
}

struct PlannerCost {
    ns: u128,
    rows_materialized: u64,
    reallocations: usize,
}

fn views<'a>(specs: &'a [JobSpec], placements: &'a [Vec<u32>]) -> Vec<PolicyJobView<'a>> {
    specs
        .iter()
        .zip(placements)
        .map(|(job, placement)| PolicyJobView {
            id: job.id,
            user: UserConfig {
                gpus: job.tuned.gpus,
                batch_size: job.tuned.batch_size,
            },
            profile: None,
            limits: job.kind.profile().limits,
            report: None,
            gputime: 0.0,
            submit_time: job.submit_time,
            current_placement: placement,
            started: true,
            batch_size: job.tuned.batch_size,
            remaining_work: 1.0e9,
        })
        .collect()
}

/// One steady-state planner round over `jobs` views with `churn`
/// forced changes: a quiet warm-up round first primes the planner's
/// id-sequence cache (as in a long-running service), then the timed
/// round runs. `sparse` selects the policy's answer path.
fn planner_round(specs: &[JobSpec], nodes: u32, churn: usize, sparse: bool) -> PlannerCost {
    let spec = ClusterSpec::homogeneous(nodes, GPUS_PER_NODE).expect("nodes >= 1");
    let placements = packed_placements(specs.len(), nodes);
    let views = views(specs, &placements);
    let mut planner = RoundPlanner::new();
    let mut rng = StdRng::seed_from_u64(13);
    let mut warm_up = KeepPolicy { churn: 0, sparse };
    planner
        .plan(&mut warm_up, 0.0, &views, &spec, &mut rng)
        .expect("unique job ids");
    let warmed_rows = planner.rows_materialized();
    assert_eq!(warmed_rows, 0, "keep-all warm-up must materialize nothing");
    let mut policy = KeepPolicy { churn, sparse };
    let start = Instant::now();
    let outcome = planner
        .plan(&mut policy, 60.0, &views, &spec, &mut rng)
        .expect("unique job ids");
    PlannerCost {
        ns: start.elapsed().as_nanos(),
        rows_materialized: planner.rows_materialized() - warmed_rows,
        reallocations: outcome.reallocations.len(),
    }
}

/// The full steady-state quiet control round, end to end: refresh the
/// cross-round [`SchedJobCache`] and run the sparse planner round.
/// Asserts the O(churn) invariants — zero views rebuilt, zero rows
/// materialized — and returns the wall time of the second (warmed)
/// round.
fn quiet_control_round(specs: &[JobSpec], nodes: u32) -> u128 {
    let spec = ClusterSpec::homogeneous(nodes, GPUS_PER_NODE).expect("nodes >= 1");
    let placements = packed_placements(specs.len(), nodes);
    let views = views(specs, &placements);
    let weights = WeightConfig::default();
    let mut planner = RoundPlanner::new();
    let mut cache = SchedJobCache::default();
    let mut policy = KeepPolicy {
        churn: 0,
        sparse: true,
    };
    let mut rng = StdRng::seed_from_u64(13);
    cache.refresh(&weights, &views);
    planner
        .plan(&mut policy, 0.0, &views, &spec, &mut rng)
        .expect("unique job ids");
    let start = Instant::now();
    cache.refresh(&weights, &views);
    let outcome = planner
        .plan(&mut policy, 60.0, &views, &spec, &mut rng)
        .expect("unique job ids");
    let ns = start.elapsed().as_nanos();
    assert_eq!(cache.last_rebuilt(), 0, "quiet round rebuilt views");
    assert_eq!(
        planner.rows_materialized(),
        0,
        "quiet round materialized rows"
    );
    assert!(outcome.reallocations.is_empty());
    ns
}

struct PointResult {
    nodes: u32,
    jobs: usize,
    racked_ns: u128,
    /// Second round on the same scheduler: warm-started populations +
    /// reused speedup-table rows.
    warm_ns: u128,
    flat_ns: Option<u128>,
    /// End-to-end warmed quiet control round (`SchedJobCache` refresh
    /// + sparse planner round).
    quiet_round_ns: u128,
    quiet: PlannerCost,
    /// The dense quiet round (full matrix + diff), kept as the
    /// reference the sparse path is measured against.
    quiet_dense: PlannerCost,
    churned: PlannerCost,
}

fn measure_point(point: &Point, reps: usize) -> PointResult {
    let specs = trace(point.jobs);
    let jobs = sched_jobs(&specs, point.nodes);
    let spec = ClusterSpec::homogeneous(point.nodes, GPUS_PER_NODE).expect("nodes >= 1");
    let topo = Topology::grouped(point.nodes, NODES_PER_RACK).expect("valid rack grouping");

    let first = sched_round(&jobs, &spec, Some(&topo));
    let (mut racked_ns, mut warm_ns) = (first.cold_ns, first.warm_ns);
    for _ in 1..reps {
        let again = sched_round(&jobs, &spec, Some(&topo));
        assert_eq!(
            again.cold_matrix, first.cold_matrix,
            "racked round non-deterministic at {}x{}",
            point.nodes, point.jobs
        );
        assert_eq!(
            again.warm_matrix, first.warm_matrix,
            "warm racked round non-deterministic at {}x{}",
            point.nodes, point.jobs
        );
        racked_ns = racked_ns.min(again.cold_ns);
        warm_ns = warm_ns.min(again.warm_ns);
    }

    let flat_ns = point.flat.then(|| {
        let first = sched_round(&jobs, &spec, None);
        let mut best = first.cold_ns;
        for _ in 1..reps {
            let again = sched_round(&jobs, &spec, None);
            assert_eq!(
                again.cold_matrix, first.cold_matrix,
                "flat round non-deterministic at {}x{}",
                point.nodes, point.jobs
            );
            best = best.min(again.cold_ns);
        }
        best
    });

    let quiet = planner_round(&specs, point.nodes, 0, true);
    assert_eq!(
        quiet.rows_materialized, 0,
        "quiet round must materialize zero placement rows"
    );
    assert_eq!(quiet.reallocations, 0, "quiet round must not reallocate");
    let quiet_dense = planner_round(&specs, point.nodes, 0, false);
    assert_eq!(quiet_dense.rows_materialized, 0);
    let churn = CHURNED_JOBS.min(point.jobs);
    let churned = planner_round(&specs, point.nodes, churn, true);
    assert_eq!(
        churned.rows_materialized, churn as u64,
        "churn round must materialize exactly the changed rows"
    );
    let quiet_round_ns = quiet_control_round(&specs, point.nodes);

    PointResult {
        nodes: point.nodes,
        jobs: point.jobs,
        racked_ns,
        warm_ns,
        flat_ns,
        quiet_round_ns,
        quiet,
        quiet_dense,
        churned,
    }
}

fn main() {
    let quick = std::env::var("BENCH_SCALE_QUICK").is_ok_and(|v| v != "0");
    let (points, reps): (&[Point], usize) = if quick {
        (&SWEEP[..2], 1)
    } else {
        (&SWEEP[..], 2)
    };

    let results: Vec<PointResult> = points.iter().map(|p| measure_point(p, reps)).collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_scale\",\n  \"quick\": {quick},\n  \"gpus_per_node\": {GPUS_PER_NODE},\n  \"nodes_per_rack\": {NODES_PER_RACK},\n  \"trace_window_hours\": 720.0,\n  \"reps\": {reps},\n  \"notes\": \"flat_round_ns is null at 1024x10000: the dense single-rack chromosome (10000 jobs x 1024 nodes) is intractable at that size, which is what the racked decomposition exists to fix. warm_round_ns is a second round on the same scheduler (phase-1 assignment carried, speedup-table rows reused, per-rack populations warm-started, unchanged racks replayed via the quiet-rack fast path); planner_quiet_ns is the warmed sparse planner round, planner_quiet_dense_ns the dense full-matrix reference; quiet_round_ns is the end-to-end warmed quiet control round (SchedJob cache refresh + sparse plan).\",\n  \"points\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        let flat = r.flat_ns.map_or("null".to_string(), |ns| ns.to_string());
        out.push_str(&format!(
            "    {{ \"nodes\": {}, \"jobs\": {}, \"racked_round_ns\": {}, \"warm_round_ns\": {}, \"flat_round_ns\": {}, \"quiet_round_ns\": {}, \"planner_quiet_ns\": {}, \"planner_quiet_dense_ns\": {}, \"planner_quiet_rows\": {}, \"planner_churn_ns\": {}, \"planner_churn_rows\": {} }}{}\n",
            r.nodes,
            r.jobs,
            r.racked_ns,
            r.warm_ns,
            flat,
            r.quiet_round_ns,
            r.quiet.ns,
            r.quiet_dense.ns,
            r.quiet.rows_materialized,
            r.churned.ns,
            r.churned.rows_materialized,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    // The scaling evidence: cost growth going 64x256 -> 256x2500 for
    // each arm (only meaningful when both points ran both arms).
    let growth = (!quick && results.len() >= 3)
        .then(|| {
            let flat = results[2].flat_ns? as f64 / results[1].flat_ns? as f64;
            let racked = results[2].racked_ns as f64 / results[1].racked_ns as f64;
            Some((flat, racked))
        })
        .flatten();
    match growth {
        Some((flat, racked)) => out.push_str(&format!(
            "  ],\n  \"growth_64x256_to_256x2500\": {{ \"flat\": {flat:.2}, \"racked\": {racked:.2} }}\n}}\n"
        )),
        None => out.push_str("  ],\n  \"growth_64x256_to_256x2500\": null\n}\n"),
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &out).expect("write BENCH_scale.json");
    print!("{out}");

    if !quick {
        let (flat, racked) = growth.expect("full sweep ran both arms at the shared points");
        assert!(
            racked < flat,
            "racked round cost must grow slower than the dense baseline \
             (racked {racked:.2}x vs flat {flat:.2}x going 64x256 -> 256x2500)"
        );
        let largest = results.last().expect("sweep is non-empty");
        assert_eq!(
            (largest.nodes, largest.jobs),
            (1_024, 10_000),
            "the datacenter-scale point must run"
        );
        // Cross-round reuse evidence: at 256 nodes and above, the warm
        // round must beat the cold round by >= 1.5x.
        for r in results.iter().filter(|r| r.nodes >= 256) {
            let speedup = r.racked_ns as f64 / r.warm_ns as f64;
            assert!(
                speedup >= 1.5,
                "warm round only {speedup:.2}x faster than cold at {}x{}",
                r.nodes,
                r.jobs
            );
        }
        // O(churn) quiet round: the sparse planner round at 1024x10000
        // must come in >= 5x under the dense path's former ~83 ms.
        assert!(
            largest.quiet.ns < 83_306_102 / 5,
            "sparse quiet planner round too slow at 1024x10000: {} ns",
            largest.quiet.ns
        );
    }
}
