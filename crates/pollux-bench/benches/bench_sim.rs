//! Head-to-head comparison of the two simulation steppers on a
//! paper-scale trace (64 jobs on 16 nodes × 4 GPUs over a 7-day
//! horizon):
//!
//! 1. `reference` — the retained pre-refactor 1 s tick loop
//!    ([`Simulation::run_reference`]): every tick recomputes
//!    interference, per-job iteration times, and records one profiler
//!    sample through the `BTreeMap`;
//! 2. `macro_step` — the event-horizon engine ([`Simulation::run`]):
//!    per-job constants are hoisted once per macro-step and the
//!    intervening ticks run in a tight inner loop;
//! 3. `macro_step_telemetry` — the same engine with a live
//!    `MemorySink`-backed telemetry recorder attached, pricing the
//!    instrumentation overhead (budget: ≤ 5 % over the bare engine).
//!
//! The two arms must produce **byte-identical** serialized
//! `SimResult`s — the same contract the determinism suite pins — so
//! the speedup below is a pure performance delta, never a trajectory
//! change.
//!
//! A second, datacenter-scale scenario (256 nodes × 4 GPUs, 1 000
//! jobs, 24 h horizon; a miniature in quick mode) compares the
//! job-major chunk stepper ([`Simulation::run`]) against the retained
//! tick-major chunk stepper ([`Simulation::run_tick_major`]) across an
//! `engine_threads` sweep (1/2/4), again requiring byte-identical
//! results from every arm at every thread count, and derives a
//! per-phase wall-clock breakdown (chunk advance vs report/refit vs
//! scheduling) from the engine's telemetry spans.
//!
//! Not a criterion bench: a custom `main` so the measured numbers land
//! in machine-readable form at `BENCH_sim.json` in the repo root. Set
//! `BENCH_SIM_QUICK=1` (CI does) for a fast smoke run — a smaller
//! trace and fewer repetitions, same arms, same output file schema.

use pollux_cluster::{AllocationMatrix, ClusterSpec};
use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
use pollux_telemetry::{MemorySink, Recorder};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Instant;

/// FCFS packing at a fixed GPU ask: running jobs keep their placement,
/// pending jobs pack into free GPUs or wait. Deliberately cheap so the
/// measurement prices the engine, not the policy.
struct FcfsPacked {
    gpus: u32,
}

impl SchedulingPolicy for FcfsPacked {
    fn name(&self) -> &'static str {
        "fcfs-packed"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for (j, view) in jobs.iter().enumerate() {
            if view.is_running() {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    m.set(j, n, g);
                    free[n] = free[n].saturating_sub(g);
                }
                continue;
            }
            let mut need = self.gpus;
            for (n, f) in free.iter_mut().enumerate() {
                if need == 0 {
                    break;
                }
                let take = need.min(*f);
                if take > 0 {
                    m.set(j, n, take);
                    *f -= take;
                    need -= take;
                }
            }
            if need > 0 {
                for (n, f) in free.iter_mut().enumerate() {
                    *f += m.get(j, n);
                    m.set(j, n, 0);
                }
            }
        }
        m
    }
}

struct Scenario {
    num_jobs: usize,
    nodes: u32,
    gpus_per_node: u32,
    /// Submission window (hours); arrivals spread across it so the
    /// event-horizon arithmetic is exercised deep into the horizon.
    window_hours: f64,
    max_sim_time: f64,
}

fn workload(s: &Scenario) -> Vec<(JobSpec, UserConfig)> {
    TraceGenerator::new(TraceConfig {
        num_jobs: s.num_jobs,
        duration_hours: s.window_hours,
        max_gpus: s.gpus_per_node * 2,
        gpus_per_node: s.gpus_per_node,
        seed: 2024,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate()
    .into_iter()
    .map(|spec| {
        let user = spec.tuned;
        (spec, user)
    })
    .collect()
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig {
        max_sim_time: s.max_sim_time,
        interference_slowdown: 0.1,
        seed: 7,
        ..Default::default()
    }
}

/// One construct + run of the chosen stepper over a pre-generated
/// workload; returns the serialized result (for the identity check)
/// and the wall time of the simulation itself (trace generation and
/// serialization stay outside the timed region).
fn run_arm(s: &Scenario, wl: &[(JobSpec, UserConfig)], arm: Arm) -> (String, u128) {
    let spec = ClusterSpec::homogeneous(s.nodes, s.gpus_per_node).unwrap();
    let wl = wl.to_vec();
    // Sink construction stays outside the timed region; draining events
    // during the run (ring-buffer pushes) is part of what we price.
    let recorder = match arm {
        Arm::MacroStepTelemetry => Some(Recorder::new(Arc::new(MemorySink::new(1 << 16)))),
        _ => None,
    };
    let start = Instant::now();
    let mut sim = Simulation::new(sim_config(s), spec, FcfsPacked { gpus: 2 }, wl)
        .expect("valid simulation inputs");
    if let Some(recorder) = recorder {
        sim = sim.with_recorder(recorder);
    }
    let result = if matches!(arm, Arm::Reference) {
        sim.run_reference()
    } else {
        sim.run()
    };
    let ns = start.elapsed().as_nanos();
    let json = serde_json::to_string(&result).expect("SimResult serializes");
    (json, ns)
}

#[derive(Clone, Copy)]
enum Arm {
    Reference,
    MacroStep,
    MacroStepTelemetry,
}

struct ArmResult {
    name: &'static str,
    json: String,
    best_ns: u128,
}

fn measure(
    name: &'static str,
    s: &Scenario,
    wl: &[(JobSpec, UserConfig)],
    arm: Arm,
    reps: usize,
) -> ArmResult {
    let (json, mut best_ns) = run_arm(s, wl, arm);
    for _ in 1..reps {
        let (again, ns) = run_arm(s, wl, arm);
        assert_eq!(again, json, "{name}: non-deterministic across repetitions");
        best_ns = best_ns.min(ns);
    }
    ArmResult {
        name,
        json,
        best_ns,
    }
}

/// One datacenter-arm run: the chosen chunk stepper at the chosen
/// `engine_threads` count, optionally with a live recorder for the
/// phase breakdown.
fn run_dc(
    s: &Scenario,
    wl: &[(JobSpec, UserConfig)],
    tick_major: bool,
    threads: usize,
    sink: Option<&Arc<MemorySink>>,
) -> (String, u128) {
    let spec = ClusterSpec::homogeneous(s.nodes, s.gpus_per_node).unwrap();
    let wl = wl.to_vec();
    let cfg = SimConfig {
        engine_threads: threads,
        ..sim_config(s)
    };
    let recorder = sink.map(|s| Recorder::new(s.clone() as Arc<dyn pollux_telemetry::Sink>));
    let start = Instant::now();
    let mut sim =
        Simulation::new(cfg, spec, FcfsPacked { gpus: 2 }, wl).expect("valid simulation inputs");
    if let Some(recorder) = recorder {
        sim = sim.with_recorder(recorder);
    }
    let result = if tick_major {
        sim.run_tick_major()
    } else {
        sim.run()
    };
    let ns = start.elapsed().as_nanos();
    let json = serde_json::to_string(&result).expect("SimResult serializes");
    (json, ns)
}

/// Sums the engine's round spans out of a drained event stream. The
/// chunk-advance phase carries no span of its own (it *is* the hot
/// loop); callers derive it as `total - report - sched`.
fn span_sums(events: &[pollux_telemetry::Event]) -> (u128, u128) {
    let (mut report_ns, mut sched_ns) = (0u128, 0u128);
    for e in events {
        if let pollux_telemetry::Event::Span {
            subsystem,
            name,
            dur_ns,
            ..
        } = e
        {
            if subsystem.as_ref() == "engine" {
                match name.as_ref() {
                    "report_round" => report_ns += *dur_ns as u128,
                    "reschedule" => sched_ns += *dur_ns as u128,
                    _ => {}
                }
            }
        }
    }
    (report_ns, sched_ns)
}

struct DcArm {
    name: &'static str,
    threads: usize,
    best_ns: u128,
}

struct DcPhases {
    arm: &'static str,
    total_ns: u128,
    chunk_ns: u128,
    report_ns: u128,
    sched_ns: u128,
}

/// Measures one recorded run of a datacenter arm and splits its wall
/// clock into chunk-advance / report-refit / scheduling phases.
fn dc_phases(
    s: &Scenario,
    wl: &[(JobSpec, UserConfig)],
    tick_major: bool,
    name: &'static str,
) -> (DcPhases, String) {
    let sink = Arc::new(MemorySink::new(1 << 20));
    let (json, total_ns) = run_dc(s, wl, tick_major, 1, Some(&sink));
    assert_eq!(sink.dropped(), 0, "{name}: phase sink overflowed");
    let (report_ns, sched_ns) = span_sums(&sink.drain());
    let chunk_ns = total_ns.saturating_sub(report_ns + sched_ns);
    (
        DcPhases {
            arm: name,
            total_ns,
            chunk_ns,
            report_ns,
            sched_ns,
        },
        json,
    )
}

fn main() {
    let quick = std::env::var("BENCH_SIM_QUICK").is_ok_and(|v| v != "0");
    let (scenario, reps) = if quick {
        (
            Scenario {
                num_jobs: 12,
                nodes: 4,
                gpus_per_node: 4,
                window_hours: 4.0,
                max_sim_time: 12.0 * 3600.0,
            },
            1,
        )
    } else {
        (
            Scenario {
                num_jobs: 64,
                nodes: 16,
                gpus_per_node: 4,
                window_hours: 48.0,
                max_sim_time: 7.0 * 24.0 * 3600.0,
            },
            3,
        )
    };

    let wl = workload(&scenario);
    let reference = measure("reference", &scenario, &wl, Arm::Reference, reps);
    // The telemetry overhead is a small delta (low single-digit
    // percent) that per-run scheduling jitter (±20 % on a shared
    // machine) easily swamps. Sample both macro arms from one
    // interleaved loop — same count, same time window, alternating
    // order within each pair — and compare minima: each arm's minimum
    // converges to its noise-floor runtime, and the symmetric schedule
    // keeps slow machine phases from biasing either arm.
    let pairs = if quick { reps.max(2) } else { 12 };
    let mut macro_step = ArmResult {
        name: "macro_step",
        json: String::new(),
        best_ns: u128::MAX,
    };
    let mut telemetry = ArmResult {
        name: "macro_step_telemetry",
        json: String::new(),
        best_ns: u128::MAX,
    };
    for i in 0..pairs {
        let order = if i % 2 == 0 {
            [Arm::MacroStep, Arm::MacroStepTelemetry]
        } else {
            [Arm::MacroStepTelemetry, Arm::MacroStep]
        };
        for arm in order {
            let slot = match arm {
                Arm::MacroStep => &mut macro_step,
                _ => &mut telemetry,
            };
            let (json, ns) = run_arm(&scenario, &wl, arm);
            if slot.json.is_empty() {
                slot.json = json;
            } else {
                assert_eq!(json, slot.json, "{}: non-deterministic", slot.name);
            }
            slot.best_ns = slot.best_ns.min(ns);
        }
    }
    let overhead_pct = (telemetry.best_ns as f64 / macro_step.best_ns as f64 - 1.0) * 100.0;

    // The hard contract first: all three arms walked the same
    // trajectory, bit for bit — telemetry included.
    for arm in [&macro_step, &telemetry] {
        if reference.json != arm.json {
            let at = reference
                .json
                .bytes()
                .zip(arm.json.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| reference.json.len().min(arm.json.len()));
            panic!(
                "{} diverged from reference at byte {at}; run the determinism suite",
                arm.name
            );
        }
    }

    // ---- Datacenter-scale arm: job-major vs tick-major chunk
    // stepping with an engine_threads sweep and a per-phase breakdown.
    let dc_scenario = if quick {
        Scenario {
            num_jobs: 100,
            nodes: 32,
            gpus_per_node: 4,
            window_hours: 2.0,
            max_sim_time: 6.0 * 3600.0,
        }
    } else {
        Scenario {
            num_jobs: 1000,
            nodes: 256,
            gpus_per_node: 4,
            window_hours: 12.0,
            max_sim_time: 24.0 * 3600.0,
        }
    };
    let dc_reps = if quick { 1 } else { 2 };
    let dc_wl = workload(&dc_scenario);
    let mut dc_arms: Vec<DcArm> = Vec::new();
    let mut dc_json: Option<String> = None;
    let check =
        |json: String, name: &str, threads: usize, baseline: &mut Option<String>| match baseline {
            None => *baseline = Some(json),
            Some(base) => {
                if *base != json {
                    let at = base
                        .bytes()
                        .zip(json.bytes())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| base.len().min(json.len()));
                    panic!(
                        "datacenter arm {name} (threads={threads}) diverged \
                         from the first arm at byte {at}; run the determinism suite"
                    );
                }
            }
        };
    for (name, tick_major, threads) in [
        ("tick_major", true, 1usize),
        ("job_major", false, 1),
        ("job_major", false, 2),
        ("job_major", false, 4),
    ] {
        let mut best_ns = u128::MAX;
        for _ in 0..dc_reps {
            let (json, ns) = run_dc(&dc_scenario, &dc_wl, tick_major, threads, None);
            check(json, name, threads, &mut dc_json);
            best_ns = best_ns.min(ns);
        }
        dc_arms.push(DcArm {
            name,
            threads,
            best_ns,
        });
    }
    // Phase breakdown: recorded single-threaded runs per stepper
    // (span creation is priced inside the report/sched phases it
    // labels; the chunk phase carries none). The two steppers are
    // sampled from one interleaved loop — alternating order within
    // each pair, keeping the fastest run per stepper — so slow machine
    // phases cannot bias the chunk-speedup ratio toward either arm.
    let mut tick_phases: Option<DcPhases> = None;
    let mut job_phases: Option<DcPhases> = None;
    for i in 0..dc_reps.max(2) {
        let order = if i % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for tick_major in order {
            let name = if tick_major {
                "tick_major"
            } else {
                "job_major"
            };
            let (p, json) = dc_phases(&dc_scenario, &dc_wl, tick_major, name);
            check(json, name, 1, &mut dc_json);
            let slot = if tick_major {
                &mut tick_phases
            } else {
                &mut job_phases
            };
            if slot.as_ref().is_none_or(|prev| p.total_ns < prev.total_ns) {
                *slot = Some(p);
            }
        }
    }
    let tick_phases = tick_phases.expect("at least one recorded tick-major run");
    let job_phases = job_phases.expect("at least one recorded job-major run");
    let chunk_speedup = tick_phases.chunk_ns as f64 / job_phases.chunk_ns.max(1) as f64;

    let speedup = reference.best_ns as f64 / macro_step.best_ns as f64;
    let arms = [&reference, &macro_step, &telemetry];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_sim\",\n  \"quick\": {quick},\n  \"num_jobs\": {},\n  \"num_nodes\": {},\n  \"gpus_per_node\": {},\n  \"window_hours\": {:.1},\n  \"max_sim_days\": {:.2},\n  \"reps\": {reps},\n  \"results_identical\": true,\n  \"arms\": [\n",
        scenario.num_jobs,
        scenario.nodes,
        scenario.gpus_per_node,
        scenario.window_hours,
        scenario.max_sim_time / 86_400.0,
    ));
    for (i, arm) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"best_total_ns\": {}, \"ms\": {:.1} }}{}\n",
            arm.name,
            arm.best_ns,
            arm.best_ns as f64 / 1.0e6,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_macro_vs_reference\": {speedup:.2},\n  \"telemetry_enabled\": {},\n  \"telemetry_overhead_pct\": {overhead_pct:.2},\n",
        cfg!(feature = "telemetry"),
    ));
    out.push_str(&format!(
        "  \"datacenter\": {{\n    \"num_jobs\": {},\n    \"num_nodes\": {},\n    \"gpus_per_node\": {},\n    \"max_sim_days\": {:.2},\n    \"reps\": {dc_reps},\n    \"results_identical\": true,\n    \"arms\": [\n",
        dc_scenario.num_jobs,
        dc_scenario.nodes,
        dc_scenario.gpus_per_node,
        dc_scenario.max_sim_time / 86_400.0,
    ));
    for (i, arm) in dc_arms.iter().enumerate() {
        out.push_str(&format!(
            "      {{ \"name\": \"{}\", \"engine_threads\": {}, \"best_total_ns\": {}, \"ms\": {:.1} }}{}\n",
            arm.name,
            arm.threads,
            arm.best_ns,
            arm.best_ns as f64 / 1.0e6,
            if i + 1 < dc_arms.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n    \"phases\": [\n");
    let phase_rows = [&tick_phases, &job_phases];
    for (i, p) in phase_rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{ \"arm\": \"{}\", \"total_ms\": {:.1}, \"chunk_advance_ms\": {:.1}, \"report_refit_ms\": {:.1}, \"sched_ms\": {:.1} }}{}\n",
            p.arm,
            p.total_ns as f64 / 1.0e6,
            p.chunk_ns as f64 / 1.0e6,
            p.report_ns as f64 / 1.0e6,
            p.sched_ns as f64 / 1.0e6,
            if i + 1 < phase_rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "    ],\n    \"chunk_speedup_job_major_vs_tick_major\": {chunk_speedup:.2}\n  }}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &out).expect("write BENCH_sim.json");
    print!("{out}");

    if quick {
        assert!(
            speedup > 1.0,
            "macro-stepped engine must beat the reference tick loop (got {speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 5.0,
            "macro-stepped engine must be at least 5x the reference tick loop \
             on the paper-scale trace (got {speedup:.2}x)"
        );
        // Quick runs are too noisy (1 rep, tiny trace) for a tight
        // overhead bound; the full run enforces the ≤ 5 % budget.
        assert!(
            overhead_pct <= 5.0,
            "telemetry recorder overhead exceeded the 5% budget (got {overhead_pct:.2}%)"
        );
        // Single-threaded, the job-major layout cannot pull far ahead
        // of the tick-major sweep by construction: the determinism
        // contract pins the per-tick efficiency math (a powf-dominated
        // dependency chain) operand-for-operand in both steppers, and
        // the block-interleaved stripes recover the same cross-job
        // instruction-level parallelism the tick sweep gets for free.
        // What job-major buys is block-local cache residency and,
        // above all, the ability to fan stripes over `engine_threads`
        // — which a single-vCPU bench host cannot exhibit. Measured
        // single-threaded, the two layouts sit at parity within
        // run-to-run noise (0.8-1.1x across runs on a shared host,
        // since the derived chunk phase inherits the noise of three
        // wall-clock terms). This floor guards against the layout
        // *regressing* behind the tick-major baseline by more than
        // that noise band.
        assert!(
            chunk_speedup >= 0.7,
            "job-major chunk advancement regressed well behind the tick-major \
             layout on the datacenter trace (got {chunk_speedup:.2}x)"
        );
    }
}
