//! Head-to-head comparison of the two simulation steppers on a
//! paper-scale trace (64 jobs on 16 nodes × 4 GPUs over a 7-day
//! horizon):
//!
//! 1. `reference` — the retained pre-refactor 1 s tick loop
//!    ([`Simulation::run_reference`]): every tick recomputes
//!    interference, per-job iteration times, and records one profiler
//!    sample through the `BTreeMap`;
//! 2. `macro_step` — the event-horizon engine ([`Simulation::run`]):
//!    per-job constants are hoisted once per macro-step and the
//!    intervening ticks run in a tight inner loop;
//! 3. `macro_step_telemetry` — the same engine with a live
//!    `MemorySink`-backed telemetry recorder attached, pricing the
//!    instrumentation overhead (budget: ≤ 5 % over the bare engine).
//!
//! The two arms must produce **byte-identical** serialized
//! `SimResult`s — the same contract the determinism suite pins — so
//! the speedup below is a pure performance delta, never a trajectory
//! change.
//!
//! Not a criterion bench: a custom `main` so the measured numbers land
//! in machine-readable form at `BENCH_sim.json` in the repo root. Set
//! `BENCH_SIM_QUICK=1` (CI does) for a fast smoke run — a smaller
//! trace and fewer repetitions, same arms, same output file schema.

use pollux_cluster::{AllocationMatrix, ClusterSpec};
use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
use pollux_telemetry::{MemorySink, Recorder};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Instant;

/// FCFS packing at a fixed GPU ask: running jobs keep their placement,
/// pending jobs pack into free GPUs or wait. Deliberately cheap so the
/// measurement prices the engine, not the policy.
struct FcfsPacked {
    gpus: u32,
}

impl SchedulingPolicy for FcfsPacked {
    fn name(&self) -> &'static str {
        "fcfs-packed"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for (j, view) in jobs.iter().enumerate() {
            if view.is_running() {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    m.set(j, n, g);
                    free[n] = free[n].saturating_sub(g);
                }
                continue;
            }
            let mut need = self.gpus;
            for (n, f) in free.iter_mut().enumerate() {
                if need == 0 {
                    break;
                }
                let take = need.min(*f);
                if take > 0 {
                    m.set(j, n, take);
                    *f -= take;
                    need -= take;
                }
            }
            if need > 0 {
                for (n, f) in free.iter_mut().enumerate() {
                    *f += m.get(j, n);
                    m.set(j, n, 0);
                }
            }
        }
        m
    }
}

struct Scenario {
    num_jobs: usize,
    nodes: u32,
    gpus_per_node: u32,
    /// Submission window (hours); arrivals spread across it so the
    /// event-horizon arithmetic is exercised deep into the horizon.
    window_hours: f64,
    max_sim_time: f64,
}

fn workload(s: &Scenario) -> Vec<(JobSpec, UserConfig)> {
    TraceGenerator::new(TraceConfig {
        num_jobs: s.num_jobs,
        duration_hours: s.window_hours,
        max_gpus: s.gpus_per_node * 2,
        gpus_per_node: s.gpus_per_node,
        seed: 2024,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate()
    .into_iter()
    .map(|spec| {
        let user = spec.tuned;
        (spec, user)
    })
    .collect()
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig {
        max_sim_time: s.max_sim_time,
        interference_slowdown: 0.1,
        seed: 7,
        ..Default::default()
    }
}

/// One construct + run of the chosen stepper over a pre-generated
/// workload; returns the serialized result (for the identity check)
/// and the wall time of the simulation itself (trace generation and
/// serialization stay outside the timed region).
fn run_arm(s: &Scenario, wl: &[(JobSpec, UserConfig)], arm: Arm) -> (String, u128) {
    let spec = ClusterSpec::homogeneous(s.nodes, s.gpus_per_node).unwrap();
    let wl = wl.to_vec();
    // Sink construction stays outside the timed region; draining events
    // during the run (ring-buffer pushes) is part of what we price.
    let recorder = match arm {
        Arm::MacroStepTelemetry => Some(Recorder::new(Arc::new(MemorySink::new(1 << 16)))),
        _ => None,
    };
    let start = Instant::now();
    let mut sim = Simulation::new(sim_config(s), spec, FcfsPacked { gpus: 2 }, wl)
        .expect("valid simulation inputs");
    if let Some(recorder) = recorder {
        sim = sim.with_recorder(recorder);
    }
    let result = if matches!(arm, Arm::Reference) {
        sim.run_reference()
    } else {
        sim.run()
    };
    let ns = start.elapsed().as_nanos();
    let json = serde_json::to_string(&result).expect("SimResult serializes");
    (json, ns)
}

#[derive(Clone, Copy)]
enum Arm {
    Reference,
    MacroStep,
    MacroStepTelemetry,
}

struct ArmResult {
    name: &'static str,
    json: String,
    best_ns: u128,
}

fn measure(
    name: &'static str,
    s: &Scenario,
    wl: &[(JobSpec, UserConfig)],
    arm: Arm,
    reps: usize,
) -> ArmResult {
    let (json, mut best_ns) = run_arm(s, wl, arm);
    for _ in 1..reps {
        let (again, ns) = run_arm(s, wl, arm);
        assert_eq!(again, json, "{name}: non-deterministic across repetitions");
        best_ns = best_ns.min(ns);
    }
    ArmResult {
        name,
        json,
        best_ns,
    }
}

fn main() {
    let quick = std::env::var("BENCH_SIM_QUICK").is_ok_and(|v| v != "0");
    let (scenario, reps) = if quick {
        (
            Scenario {
                num_jobs: 12,
                nodes: 4,
                gpus_per_node: 4,
                window_hours: 4.0,
                max_sim_time: 12.0 * 3600.0,
            },
            1,
        )
    } else {
        (
            Scenario {
                num_jobs: 64,
                nodes: 16,
                gpus_per_node: 4,
                window_hours: 48.0,
                max_sim_time: 7.0 * 24.0 * 3600.0,
            },
            3,
        )
    };

    let wl = workload(&scenario);
    let reference = measure("reference", &scenario, &wl, Arm::Reference, reps);
    // The telemetry overhead is a small delta (low single-digit
    // percent) that per-run scheduling jitter (±20 % on a shared
    // machine) easily swamps. Sample both macro arms from one
    // interleaved loop — same count, same time window, alternating
    // order within each pair — and compare minima: each arm's minimum
    // converges to its noise-floor runtime, and the symmetric schedule
    // keeps slow machine phases from biasing either arm.
    let pairs = if quick { reps.max(2) } else { 12 };
    let mut macro_step = ArmResult {
        name: "macro_step",
        json: String::new(),
        best_ns: u128::MAX,
    };
    let mut telemetry = ArmResult {
        name: "macro_step_telemetry",
        json: String::new(),
        best_ns: u128::MAX,
    };
    for i in 0..pairs {
        let order = if i % 2 == 0 {
            [Arm::MacroStep, Arm::MacroStepTelemetry]
        } else {
            [Arm::MacroStepTelemetry, Arm::MacroStep]
        };
        for arm in order {
            let slot = match arm {
                Arm::MacroStep => &mut macro_step,
                _ => &mut telemetry,
            };
            let (json, ns) = run_arm(&scenario, &wl, arm);
            if slot.json.is_empty() {
                slot.json = json;
            } else {
                assert_eq!(json, slot.json, "{}: non-deterministic", slot.name);
            }
            slot.best_ns = slot.best_ns.min(ns);
        }
    }
    let overhead_pct = (telemetry.best_ns as f64 / macro_step.best_ns as f64 - 1.0) * 100.0;

    // The hard contract first: all three arms walked the same
    // trajectory, bit for bit — telemetry included.
    for arm in [&macro_step, &telemetry] {
        if reference.json != arm.json {
            let at = reference
                .json
                .bytes()
                .zip(arm.json.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| reference.json.len().min(arm.json.len()));
            panic!(
                "{} diverged from reference at byte {at}; run the determinism suite",
                arm.name
            );
        }
    }

    let speedup = reference.best_ns as f64 / macro_step.best_ns as f64;
    let arms = [&reference, &macro_step, &telemetry];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_sim\",\n  \"quick\": {quick},\n  \"num_jobs\": {},\n  \"num_nodes\": {},\n  \"gpus_per_node\": {},\n  \"window_hours\": {:.1},\n  \"max_sim_days\": {:.2},\n  \"reps\": {reps},\n  \"results_identical\": true,\n  \"arms\": [\n",
        scenario.num_jobs,
        scenario.nodes,
        scenario.gpus_per_node,
        scenario.window_hours,
        scenario.max_sim_time / 86_400.0,
    ));
    for (i, arm) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"best_total_ns\": {}, \"ms\": {:.1} }}{}\n",
            arm.name,
            arm.best_ns,
            arm.best_ns as f64 / 1.0e6,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_macro_vs_reference\": {speedup:.2},\n  \"telemetry_enabled\": {},\n  \"telemetry_overhead_pct\": {overhead_pct:.2}\n}}\n",
        cfg!(feature = "telemetry"),
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &out).expect("write BENCH_sim.json");
    print!("{out}");

    if quick {
        assert!(
            speedup > 1.0,
            "macro-stepped engine must beat the reference tick loop (got {speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 5.0,
            "macro-stepped engine must be at least 5x the reference tick loop \
             on the paper-scale trace (got {speedup:.2}x)"
        );
        // Quick runs are too noisy (1 rep, tiny trace) for a tight
        // overhead bound; the full run enforces the ≤ 5 % budget.
        assert!(
            overhead_pct <= 5.0,
            "telemetry recorder overhead exceeded the 5% budget (got {overhead_pct:.2}%)"
        );
    }
}
