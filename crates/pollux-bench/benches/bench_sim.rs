//! Head-to-head comparison of the two simulation steppers on a
//! paper-scale trace (64 jobs on 16 nodes × 4 GPUs over a 7-day
//! horizon):
//!
//! 1. `reference` — the retained pre-refactor 1 s tick loop
//!    ([`Simulation::run_reference`]): every tick recomputes
//!    interference, per-job iteration times, and records one profiler
//!    sample through the `BTreeMap`;
//! 2. `macro_step` — the event-horizon engine ([`Simulation::run`]):
//!    per-job constants are hoisted once per macro-step and the
//!    intervening ticks run in a tight inner loop (this PR's design).
//!
//! The two arms must produce **byte-identical** serialized
//! `SimResult`s — the same contract the determinism suite pins — so
//! the speedup below is a pure performance delta, never a trajectory
//! change.
//!
//! Not a criterion bench: a custom `main` so the measured numbers land
//! in machine-readable form at `BENCH_sim.json` in the repo root. Set
//! `BENCH_SIM_QUICK=1` (CI does) for a fast smoke run — a smaller
//! trace and fewer repetitions, same arms, same output file schema.

use pollux_cluster::{AllocationMatrix, ClusterSpec};
use pollux_simulator::{PolicyJobView, SchedulingPolicy, SimConfig, Simulation};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator, UserConfig};
use rand::rngs::StdRng;
use std::time::Instant;

/// FCFS packing at a fixed GPU ask: running jobs keep their placement,
/// pending jobs pack into free GPUs or wait. Deliberately cheap so the
/// measurement prices the engine, not the policy.
struct FcfsPacked {
    gpus: u32,
}

impl SchedulingPolicy for FcfsPacked {
    fn name(&self) -> &'static str {
        "fcfs-packed"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> AllocationMatrix {
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let mut m = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for (j, view) in jobs.iter().enumerate() {
            if view.is_running() {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    m.set(j, n, g);
                    free[n] = free[n].saturating_sub(g);
                }
                continue;
            }
            let mut need = self.gpus;
            for (n, f) in free.iter_mut().enumerate() {
                if need == 0 {
                    break;
                }
                let take = need.min(*f);
                if take > 0 {
                    m.set(j, n, take);
                    *f -= take;
                    need -= take;
                }
            }
            if need > 0 {
                for (n, f) in free.iter_mut().enumerate() {
                    *f += m.get(j, n);
                    m.set(j, n, 0);
                }
            }
        }
        m
    }
}

struct Scenario {
    num_jobs: usize,
    nodes: u32,
    gpus_per_node: u32,
    /// Submission window (hours); arrivals spread across it so the
    /// event-horizon arithmetic is exercised deep into the horizon.
    window_hours: f64,
    max_sim_time: f64,
}

fn workload(s: &Scenario) -> Vec<(JobSpec, UserConfig)> {
    TraceGenerator::new(TraceConfig {
        num_jobs: s.num_jobs,
        duration_hours: s.window_hours,
        max_gpus: s.gpus_per_node * 2,
        gpus_per_node: s.gpus_per_node,
        seed: 2024,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate()
    .into_iter()
    .map(|spec| {
        let user = spec.tuned;
        (spec, user)
    })
    .collect()
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig {
        max_sim_time: s.max_sim_time,
        interference_slowdown: 0.1,
        seed: 7,
        ..Default::default()
    }
}

/// One construct + run of the chosen stepper over a pre-generated
/// workload; returns the serialized result (for the identity check)
/// and the wall time of the simulation itself (trace generation and
/// serialization stay outside the timed region).
fn run_arm(s: &Scenario, wl: &[(JobSpec, UserConfig)], reference: bool) -> (String, u128) {
    let spec = ClusterSpec::homogeneous(s.nodes, s.gpus_per_node).unwrap();
    let wl = wl.to_vec();
    let start = Instant::now();
    let sim = Simulation::new(sim_config(s), spec, FcfsPacked { gpus: 2 }, wl)
        .expect("valid simulation inputs");
    let result = if reference {
        sim.run_reference()
    } else {
        sim.run()
    };
    let ns = start.elapsed().as_nanos();
    let json = serde_json::to_string(&result).expect("SimResult serializes");
    (json, ns)
}

struct ArmResult {
    name: &'static str,
    json: String,
    best_ns: u128,
}

fn measure(
    name: &'static str,
    s: &Scenario,
    wl: &[(JobSpec, UserConfig)],
    reference: bool,
    reps: usize,
) -> ArmResult {
    let (json, mut best_ns) = run_arm(s, wl, reference);
    for _ in 1..reps {
        let (again, ns) = run_arm(s, wl, reference);
        assert_eq!(again, json, "{name}: non-deterministic across repetitions");
        best_ns = best_ns.min(ns);
    }
    ArmResult {
        name,
        json,
        best_ns,
    }
}

fn main() {
    let quick = std::env::var("BENCH_SIM_QUICK").is_ok_and(|v| v != "0");
    let (scenario, reps) = if quick {
        (
            Scenario {
                num_jobs: 12,
                nodes: 4,
                gpus_per_node: 4,
                window_hours: 4.0,
                max_sim_time: 12.0 * 3600.0,
            },
            1,
        )
    } else {
        (
            Scenario {
                num_jobs: 64,
                nodes: 16,
                gpus_per_node: 4,
                window_hours: 48.0,
                max_sim_time: 7.0 * 24.0 * 3600.0,
            },
            3,
        )
    };

    let wl = workload(&scenario);
    let reference = measure("reference", &scenario, &wl, true, reps);
    let macro_step = measure("macro_step", &scenario, &wl, false, reps);

    // The hard contract first: both steppers walked the same
    // trajectory, bit for bit.
    if reference.json != macro_step.json {
        let at = reference
            .json
            .bytes()
            .zip(macro_step.json.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.json.len().min(macro_step.json.len()));
        panic!("steppers diverged at byte {at}; run the determinism suite");
    }

    let speedup = reference.best_ns as f64 / macro_step.best_ns as f64;
    let arms = [&reference, &macro_step];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"bench_sim\",\n  \"quick\": {quick},\n  \"num_jobs\": {},\n  \"num_nodes\": {},\n  \"gpus_per_node\": {},\n  \"window_hours\": {:.1},\n  \"max_sim_days\": {:.2},\n  \"reps\": {reps},\n  \"results_identical\": true,\n  \"arms\": [\n",
        scenario.num_jobs,
        scenario.nodes,
        scenario.gpus_per_node,
        scenario.window_hours,
        scenario.max_sim_time / 86_400.0,
    ));
    for (i, arm) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"best_total_ns\": {}, \"ms\": {:.1} }}{}\n",
            arm.name,
            arm.best_ns,
            arm.best_ns as f64 / 1.0e6,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_macro_vs_reference\": {speedup:.2}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &out).expect("write BENCH_sim.json");
    print!("{out}");

    if quick {
        assert!(
            speedup > 1.0,
            "macro-stepped engine must beat the reference tick loop (got {speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 5.0,
            "macro-stepped engine must be at least 5x the reference tick loop \
             on the paper-scale trace (got {speedup:.2}x)"
        );
    }
}
