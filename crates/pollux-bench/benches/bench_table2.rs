//! Regenerates Table 2 (testbed comparison) via the simulator.
//!
//! `POLLUX_TRACES=8` reproduces the paper's 8-trace averaging.

use pollux_experiments::table2::{run, Table2Options};

fn main() {
    let traces = pollux_bench::traces_from_env(2);
    pollux_bench::banner("Table 2 — Pollux vs Optimus+Oracle vs Tiresias+TunedJobs");
    let opts = Table2Options {
        traces,
        ..Default::default()
    };
    let result = run(&opts);
    pollux_bench::maybe_write_json("table2", &result);
    println!("{result}");
}
