//! Regenerates Table 3 (job-weight decay sweep).

fn main() {
    let traces = pollux_bench::traces_from_env(1);
    pollux_bench::banner("Table 3 — impact of job weights (λ)");
    let result = pollux_experiments::table3::run(traces);
    pollux_bench::maybe_write_json("table3", &result);
    println!("{result}");
}
