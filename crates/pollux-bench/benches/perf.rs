//! Criterion micro-benchmarks of Pollux's hot paths:
//!
//! - goodput evaluation (`GOODPUT(a, m)`);
//! - golden-section batch-size optimization (Eqn 13);
//! - θsys model fitting (Sec. 4.1);
//! - one genetic-algorithm generation (Sec. 4.2.1);
//! - one simulator scheduling interval end-to-end.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pollux_cluster::{ClusterSpec, JobId};
use pollux_models::{
    fit_throughput_params, BatchSizeLimits, EfficiencyModel, FitObservation, FitPriors,
    GoodputModel, PlacementShape, ThroughputParams,
};
use pollux_sched::{GaConfig, GeneticAlgorithm, SchedJob, SpeedupCache, SpeedupTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn goodput_model(phi: f64) -> GoodputModel {
    let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
    let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
    let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
    GoodputModel::new(tp, eff, limits).unwrap()
}

fn bench_goodput_eval(c: &mut Criterion) {
    let g = goodput_model(2000.0);
    let shape = PlacementShape::new(8, 2).unwrap();
    c.bench_function("goodput_eval", |b| {
        b.iter(|| black_box(g.goodput(black_box(shape), black_box(1024))))
    });
}

fn bench_optimal_batch_size(c: &mut Criterion) {
    let g = goodput_model(2000.0);
    let shape = PlacementShape::new(8, 2).unwrap();
    c.bench_function("optimal_batch_size_golden_section", |b| {
        b.iter(|| black_box(g.optimal_batch_size(black_box(shape))))
    });
}

fn bench_theta_sys_fit(c: &mut Criterion) {
    let truth = ThroughputParams::new(0.08, 8.0e-4, 0.05, 0.002, 0.25, 0.008, 1.8).unwrap();
    let mut obs = Vec::new();
    for (gpus, nodes) in [(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 2), (16, 4)] {
        for m in [128u64, 256, 512, 1024] {
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            obs.push(FitObservation {
                shape,
                batch_size: m,
                t_iter: truth.t_iter(shape, m),
            });
        }
    }
    let priors = FitPriors::from_observations(&obs);
    c.bench_function("theta_sys_fit_24_observations", |b| {
        b.iter(|| black_box(fit_throughput_params(black_box(&obs), priors)))
    });
}

fn sched_jobs(n: u32) -> Vec<SchedJob> {
    (0..n)
        .map(|i| SchedJob {
            id: JobId(i),
            model: goodput_model(1000.0 + 200.0 * i as f64),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0,
            current_placement: vec![],
        })
        .collect()
}

fn bench_ga_generation(c: &mut Criterion) {
    let spec = ClusterSpec::homogeneous(16, 4).unwrap();
    let jobs = sched_jobs(32);
    let ga = GeneticAlgorithm::new(GaConfig {
        population: 40,
        generations: 1,
        ..Default::default()
    });
    c.bench_function("ga_one_generation_32_jobs_16_nodes", |b| {
        b.iter_batched(
            || {
                (
                    SpeedupTable::build(&jobs, &spec, 1),
                    StdRng::seed_from_u64(7),
                )
            },
            |(table, mut rng)| black_box(ga.evolve(&jobs, &spec, vec![], &table, &mut rng)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_speedup_table_build(c: &mut Criterion) {
    let jobs = sched_jobs(16);
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    c.bench_function("speedup_table_build_16_jobs", |b| {
        b.iter(|| black_box(SpeedupTable::build(&jobs, &spec, 1)))
    });
}

fn bench_speedup_cache_population(c: &mut Criterion) {
    let jobs = sched_jobs(16);
    c.bench_function("speedup_cache_16_jobs_64_shapes", |b| {
        b.iter_batched(
            SpeedupCache::new,
            |cache| {
                for job in &jobs {
                    for k in 1..=16u32 {
                        let shape = PlacementShape::new(k, k.div_ceil(4)).unwrap();
                        black_box(cache.speedup(job, shape));
                    }
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_goodput_eval,
    bench_optimal_batch_size,
    bench_theta_sys_fit,
    bench_ga_generation,
    bench_speedup_table_build,
    bench_speedup_cache_population,
);
criterion_main!(benches);
