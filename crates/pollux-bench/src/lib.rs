//! Shared helpers for the bench targets.
//!
//! Every table and figure of the paper's evaluation has a
//! `harness = false` bench target that *regenerates its rows/series*
//! (rather than timing code); `perf` is a conventional Criterion bench
//! of the hot paths. Simulation-heavy targets read the
//! `POLLUX_TRACES` environment variable to pick how many traces to
//! average (default: a quick setting; the paper averages 8).

/// Number of traces to average, from `POLLUX_TRACES` (clamped to
/// `[1, 16]`), defaulting to `quick_default`.
pub fn traces_from_env(quick_default: u64) -> u64 {
    std::env::var("POLLUX_TRACES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(quick_default)
        .clamp(1, 16)
}

/// Prints a standard experiment banner.
pub fn banner(what: &str) {
    println!("==============================================================");
    println!("Pollux reproduction: {what}");
    println!("==============================================================");
}

/// Writes the experiment's structured result as JSON when
/// `POLLUX_JSON_DIR` is set (to `<dir>/<name>.json`), so plots can be
/// regenerated outside Rust. No-op otherwise.
pub fn maybe_write_json<T: serde::Serialize>(name: &str, value: &T) {
    let Ok(dir) = std::env::var("POLLUX_JSON_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("failed to write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_is_clamped() {
        std::env::remove_var("POLLUX_TRACES");
        assert_eq!(traces_from_env(2), 2);
        std::env::set_var("POLLUX_TRACES", "100");
        assert_eq!(traces_from_env(2), 16);
        std::env::set_var("POLLUX_TRACES", "0");
        assert_eq!(traces_from_env(2), 1);
        std::env::set_var("POLLUX_TRACES", "junk");
        assert_eq!(traces_from_env(3), 3);
        std::env::remove_var("POLLUX_TRACES");
    }
}
