//! The allocation matrix `A` (Sec. 4.2).
//!
//! Row `A_j` is job `j`'s placement vector; `A[j][n]` is the number of
//! GPUs from node `n` allocated to job `j`. The genetic algorithm in
//! `pollux-sched` mutates, crosses over, and repairs these matrices;
//! this module provides the representation and the structural queries.

use crate::ids::NodeId;
use crate::spec::ClusterSpec;
use pollux_models::PlacementShape;
use serde::{Deserialize, Serialize};

/// A jobs × nodes GPU allocation matrix.
///
/// # Examples
///
/// ```
/// use pollux_cluster::{AllocationMatrix, ClusterSpec};
///
/// let spec = ClusterSpec::homogeneous(2, 4).unwrap();
/// let mut a = AllocationMatrix::zeros(2, 2);
/// a.set(0, 0, 2); // job 0: 2 GPUs on node 0
/// a.set(1, 0, 1); // job 1: 1 GPU on node 0, 2 on node 1 (distributed)
/// a.set(1, 1, 2);
/// assert!(a.is_feasible(&spec));
/// assert!(!a.is_distributed(0));
/// assert!(a.is_distributed(1));
/// let shape = a.shape_of(1).unwrap();
/// assert_eq!((shape.gpus, shape.nodes), (3, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationMatrix {
    num_nodes: usize,
    rows: Vec<Vec<u32>>,
}

impl AllocationMatrix {
    /// An all-zero matrix with `num_jobs` rows and `num_nodes` columns.
    pub fn zeros(num_jobs: usize, num_nodes: usize) -> Self {
        Self {
            num_nodes,
            rows: vec![vec![0; num_nodes]; num_jobs],
        }
    }

    /// Builds a matrix from explicit rows. Returns `None` when rows
    /// have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<u32>>, num_nodes: usize) -> Option<Self> {
        if rows.iter().any(|r| r.len() != num_nodes) {
            None
        } else {
            Some(Self { num_nodes, rows })
        }
    }

    /// Number of job rows.
    pub fn num_jobs(&self) -> usize {
        self.rows.len()
    }

    /// Number of node columns.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The placement vector of job row `j`.
    pub fn row(&self, j: usize) -> &[u32] {
        &self.rows[j]
    }

    /// GPUs allocated to job `j` on node `n`.
    pub fn get(&self, j: usize, n: usize) -> u32 {
        self.rows[j][n]
    }

    /// Sets the GPUs allocated to job `j` on node `n`.
    pub fn set(&mut self, j: usize, n: usize, gpus: u32) {
        self.rows[j][n] = gpus;
    }

    /// Overwrites the whole row for job `j`.
    ///
    /// # Panics
    ///
    /// Panics when `row.len() != num_nodes`.
    pub fn set_row(&mut self, j: usize, row: Vec<u32>) {
        assert_eq!(row.len(), self.num_nodes, "row width mismatch");
        self.rows[j] = row;
    }

    /// Appends an empty row for a newly submitted job and returns its
    /// row index.
    pub fn push_job(&mut self) -> usize {
        self.rows.push(vec![0; self.num_nodes]);
        self.rows.len() - 1
    }

    /// Removes the row for a finished job.
    pub fn remove_job(&mut self, j: usize) {
        self.rows.remove(j);
    }

    /// Resizes the node dimension (cloud auto-scaling). Shrinking
    /// drops allocations on removed nodes.
    pub fn resize_nodes(&mut self, num_nodes: usize) {
        for row in &mut self.rows {
            row.resize(num_nodes, 0);
        }
        self.num_nodes = num_nodes;
    }

    /// Total GPUs allocated to job `j`, `K = Σ_n A[j][n]`.
    pub fn gpus_of(&self, j: usize) -> u32 {
        self.rows[j].iter().sum()
    }

    /// Number of distinct nodes occupied by job `j`.
    pub fn nodes_of(&self, j: usize) -> u32 {
        self.rows[j].iter().filter(|&&g| g > 0).count() as u32
    }

    /// The `(K, N)` placement shape of job `j`, or `None` when the job
    /// holds no GPUs.
    pub fn shape_of(&self, j: usize) -> Option<PlacementShape> {
        let gpus = self.gpus_of(j);
        if gpus == 0 {
            None
        } else {
            PlacementShape::new(gpus, self.nodes_of(j))
        }
    }

    /// True when job `j` spans more than one node.
    pub fn is_distributed(&self, j: usize) -> bool {
        self.nodes_of(j) > 1
    }

    /// Total GPUs allocated on node `n` across all jobs.
    pub fn gpus_used_on(&self, n: usize) -> u32 {
        self.rows.iter().map(|r| r[n]).sum()
    }

    /// Total GPUs allocated across the whole matrix.
    pub fn total_gpus_used(&self) -> u32 {
        (0..self.num_nodes).map(|n| self.gpus_used_on(n)).sum()
    }

    /// Node columns whose usage exceeds the cluster capacity.
    pub fn over_capacity_nodes(&self, spec: &ClusterSpec) -> Vec<NodeId> {
        (0..self.num_nodes.min(spec.num_nodes()))
            .filter(|&n| self.gpus_used_on(n) > spec.gpus_on(NodeId(n as u32)))
            .map(|n| NodeId(n as u32))
            .collect()
    }

    /// True when every node is within its GPU capacity and the matrix
    /// width matches the cluster.
    pub fn is_feasible(&self, spec: &ClusterSpec) -> bool {
        self.num_nodes == spec.num_nodes()
            && (0..self.num_nodes).all(|n| self.gpus_used_on(n) <= spec.gpus_on(NodeId(n as u32)))
    }

    /// Row indices of *distributed* jobs (spanning ≥ 2 nodes) that
    /// occupy node `n` — the quantity the interference-avoidance
    /// constraint bounds by 1 per node (Sec. 4.2.1).
    pub fn distributed_jobs_on(&self, n: usize) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&j| self.rows[j][n] > 0 && self.is_distributed(j))
            .collect()
    }

    /// True when no node hosts two or more distributed jobs.
    pub fn satisfies_interference_avoidance(&self) -> bool {
        (0..self.num_nodes).all(|n| self.distributed_jobs_on(n).len() <= 1)
    }

    /// True when job `j` has an identical placement in `other`
    /// (no restart needed when re-applying the matrix).
    pub fn row_equals(&self, j: usize, other: &AllocationMatrix) -> bool {
        j < other.rows.len() && self.rows[j] == other.rows[j]
    }

    /// Iterates over `(job_row, placement)` for all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        self.rows.iter().enumerate().map(|(j, r)| (j, r.as_slice()))
    }
}

impl std::fmt::Display for AllocationMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (j, row) in self.rows.iter().enumerate() {
            write!(f, "job {j:>3}: ")?;
            for g in row {
                write!(f, "{g:>3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::homogeneous(4, 4).unwrap()
    }

    #[test]
    fn zeros_is_feasible_and_empty() {
        let a = AllocationMatrix::zeros(3, 4);
        assert_eq!(a.num_jobs(), 3);
        assert_eq!(a.total_gpus_used(), 0);
        assert!(a.is_feasible(&spec()));
        assert_eq!(a.shape_of(0), None);
    }

    #[test]
    fn from_rows_validates_width() {
        assert!(AllocationMatrix::from_rows(vec![vec![1, 2]], 2).is_some());
        assert!(AllocationMatrix::from_rows(vec![vec![1, 2, 3]], 2).is_none());
    }

    #[test]
    fn shape_reduction() {
        let mut a = AllocationMatrix::zeros(2, 4);
        a.set(0, 0, 2);
        a.set(0, 2, 1);
        assert_eq!(a.shape_of(0), PlacementShape::new(3, 2));
        assert!(a.is_distributed(0));
        a.set(1, 3, 4);
        assert_eq!(a.shape_of(1), PlacementShape::new(4, 1));
        assert!(!a.is_distributed(1));
    }

    #[test]
    fn capacity_checks() {
        let mut a = AllocationMatrix::zeros(2, 4);
        a.set(0, 0, 3);
        a.set(1, 0, 2);
        // Node 0 has 5 > 4 GPUs allocated.
        assert!(!a.is_feasible(&spec()));
        assert_eq!(a.over_capacity_nodes(&spec()), vec![NodeId(0)]);
        a.set(1, 0, 1);
        assert!(a.is_feasible(&spec()));
        assert!(a.over_capacity_nodes(&spec()).is_empty());
    }

    #[test]
    fn interference_detection() {
        let mut a = AllocationMatrix::zeros(3, 4);
        // Job 0 distributed across nodes 0-1; job 1 distributed across 1-2.
        a.set(0, 0, 2);
        a.set(0, 1, 2);
        a.set(1, 1, 1);
        a.set(1, 2, 1);
        // Job 2 co-located on node 1 — does not count as interference.
        a.set(2, 1, 1);
        assert!(!a.satisfies_interference_avoidance());
        assert_eq!(a.distributed_jobs_on(1), vec![0, 1]);
        // Moving job 1 entirely to node 2 resolves the conflict.
        a.set(1, 1, 0);
        a.set(1, 2, 2);
        assert!(a.satisfies_interference_avoidance());
    }

    #[test]
    fn push_and_remove_jobs() {
        let mut a = AllocationMatrix::zeros(1, 2);
        let j = a.push_job();
        assert_eq!(j, 1);
        a.set(j, 1, 2);
        assert_eq!(a.gpus_of(1), 2);
        a.remove_job(0);
        assert_eq!(a.num_jobs(), 1);
        assert_eq!(a.gpus_of(0), 2);
    }

    #[test]
    fn resize_nodes_preserves_and_drops() {
        let mut a = AllocationMatrix::zeros(1, 2);
        a.set(0, 1, 3);
        a.resize_nodes(4);
        assert_eq!(a.num_nodes(), 4);
        assert_eq!(a.gpus_of(0), 3);
        a.resize_nodes(1);
        assert_eq!(a.gpus_of(0), 0);
    }

    #[test]
    fn row_equality_for_restart_detection() {
        let mut a = AllocationMatrix::zeros(2, 2);
        let mut b = AllocationMatrix::zeros(2, 2);
        a.set(0, 0, 2);
        b.set(0, 0, 2);
        b.set(1, 1, 1);
        assert!(a.row_equals(0, &b));
        assert!(!a.row_equals(1, &b));
        // Out-of-range rows in `other` are never equal.
        let small = AllocationMatrix::zeros(1, 2);
        assert!(!a.row_equals(1, &small));
    }

    #[test]
    fn display_renders_rows() {
        let mut a = AllocationMatrix::zeros(1, 2);
        a.set(0, 1, 3);
        let s = a.to_string();
        assert!(s.contains("job   0:"));
        assert!(s.contains('3'));
    }

    proptest! {
        #[test]
        fn usage_sums_are_consistent(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..5, 4), 1..6)
        ) {
            let a = AllocationMatrix::from_rows(rows.clone(), 4).unwrap();
            // Column sums equal row sums in total.
            let by_cols: u32 = (0..4).map(|n| a.gpus_used_on(n)).sum();
            let by_rows: u32 = (0..rows.len()).map(|j| a.gpus_of(j)).sum();
            prop_assert_eq!(by_cols, by_rows);
            prop_assert_eq!(a.total_gpus_used(), by_cols);
            // Shapes are consistent with row contents.
            for j in 0..a.num_jobs() {
                match a.shape_of(j) {
                    Some(s) => {
                        prop_assert_eq!(s.gpus, a.gpus_of(j));
                        prop_assert_eq!(s.nodes, a.nodes_of(j));
                        prop_assert!(s.nodes <= s.gpus);
                    }
                    None => prop_assert_eq!(a.gpus_of(j), 0),
                }
            }
        }

        #[test]
        fn feasibility_matches_over_capacity_list(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..7, 4), 1..6)
        ) {
            let a = AllocationMatrix::from_rows(rows, 4).unwrap();
            let spec = ClusterSpec::homogeneous(4, 4).unwrap();
            prop_assert_eq!(a.is_feasible(&spec), a.over_capacity_nodes(&spec).is_empty());
        }

        #[test]
        fn capacity_clamped_set_sequences_stay_feasible(
            ops in proptest::collection::vec(
                (0usize..5, 0usize..4, 0u32..9), 1..40)
        ) {
            // A writer that clamps each `set` to the node's remaining
            // capacity can never drive any node over capacity — the
            // invariant the GA's repair step relies on.
            let spec = ClusterSpec::homogeneous(4, 4).unwrap();
            let mut a = AllocationMatrix::zeros(5, 4);
            for &(j, n, g) in &ops {
                let cap = spec.gpus_on(NodeId(n as u32));
                let others = a.gpus_used_on(n) - a.get(j, n);
                a.set(j, n, g.min(cap - others));
                prop_assert!(a.is_feasible(&spec));
                prop_assert!(a.gpus_used_on(n) <= cap);
            }
            // Usage stays consistent across the row/column views
            // after an arbitrary op sequence.
            let by_cols: u32 = (0..4).map(|n| a.gpus_used_on(n)).sum();
            let by_rows: u32 = (0..5).map(|j| a.gpus_of(j)).sum();
            prop_assert_eq!(by_cols, by_rows);
            // Shrinking and re-growing the node dimension drops
            // exactly the allocations on removed nodes.
            let kept: u32 = (0..2).map(|n| a.gpus_used_on(n)).sum();
            a.resize_nodes(2);
            prop_assert_eq!(a.total_gpus_used(), kept);
            a.resize_nodes(4);
            prop_assert_eq!(a.total_gpus_used(), kept);
        }
    }
}
