//! Strongly-typed identifiers for jobs and nodes.

use serde::{Deserialize, Serialize};

/// Identifier of a training job, stable across re-allocations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Identifier of a physical node (its column in the allocation matrix).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl NodeId {
    /// The column index of this node in an allocation matrix.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(JobId(3).to_string(), "job-3");
        assert_eq!(NodeId(7).to_string(), "node-7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(JobId(1) < JobId(2));
        let mut s = HashSet::new();
        s.insert(NodeId(0));
        s.insert(NodeId(0));
        assert_eq!(s.len(), 1);
    }
}
