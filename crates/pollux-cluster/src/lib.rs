//! Cluster topology and GPU allocation matrices.
//!
//! `PolluxSched` reasons about the cluster through an **allocation
//! matrix** `A` (Sec. 4.2): row `A_j` is the placement vector of job
//! `j`, and `A[j][n]` is the number of GPUs allocated to job `j` on
//! node `n`. This crate provides:
//!
//! - [`spec::ClusterSpec`] — node inventory and GPU capacities;
//! - [`alloc::AllocationMatrix`] — the matrix with capacity checks,
//!   placement-shape reduction, and the queries the genetic algorithm's
//!   repair step needs;
//! - [`sparse::SparseAllocation`] — the sparse per-job `{node → gpus}`
//!   counterpart for datacenter-scale clusters, proptest-pinned to the
//!   dense matrix;
//! - [`rack::RackTopology`] / [`topology::Topology`] — node → rack
//!   grouping for the rack-aware throughput model and the two-phase
//!   (rack, then GPU) placement search;
//! - [`ids`] — strongly-typed job/node identifiers.

pub mod alloc;
pub mod ids;
pub mod rack;
pub mod sparse;
pub mod spec;
pub mod topology;

pub use alloc::AllocationMatrix;
pub use ids::{JobId, NodeId};
pub use rack::RackTopology;
pub use sparse::SparseAllocation;
pub use spec::{ClusterSpec, NodeSpec};
pub use topology::Topology;
