//! Rack topology: the node → rack mapping needed by the rack-aware
//! throughput extension (`pollux_models::rack`).
//!
//! Sec. 3.2 of the paper notes `T_sync` "can be extended to account
//! for rack-level locality by adding a third pair of parameters"; the
//! model side lives in `pollux-models::rack`, and this module supplies
//! the cluster side: which nodes share a rack, and the reduction of a
//! placement row to a `(K, N, R)` shape.

use crate::ids::NodeId;
use pollux_models::RackPlacementShape;
use serde::{Deserialize, Serialize};

/// Assignment of nodes to racks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackTopology {
    /// `rack_of[n]` is the rack index of node `n`.
    rack_of: Vec<u32>,
    num_racks: u32,
}

impl RackTopology {
    /// Builds a topology from an explicit node → rack assignment.
    ///
    /// Returns `None` when the assignment is empty or rack indices are
    /// not contiguous from 0 (every rack in `0..max+1` must own at
    /// least one node).
    pub fn new(rack_of: Vec<u32>) -> Option<Self> {
        if rack_of.is_empty() {
            return None;
        }
        let num_racks = rack_of.iter().max().expect("non-empty") + 1;
        let mut seen = vec![false; num_racks as usize];
        for &r in &rack_of {
            seen[r as usize] = true;
        }
        if seen.iter().all(|&s| s) {
            Some(Self { rack_of, num_racks })
        } else {
            None
        }
    }

    /// A topology of `num_nodes` nodes grouped into consecutive racks
    /// of `nodes_per_rack` (the last rack may be smaller).
    pub fn grouped(num_nodes: u32, nodes_per_rack: u32) -> Option<Self> {
        if num_nodes == 0 || nodes_per_rack == 0 {
            return None;
        }
        Self::new((0..num_nodes).map(|n| n / nodes_per_rack).collect())
    }

    /// Number of nodes covered by the topology.
    pub fn num_nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> u32 {
        self.num_racks
    }

    /// The rack of node `n`.
    pub fn rack_of(&self, n: NodeId) -> u32 {
        self.rack_of[n.index()]
    }

    /// Reduces a placement row (GPUs per node) to its rack-aware
    /// `(K, N, R)` shape, or `None` when the row holds no GPUs or is
    /// wider than the topology.
    pub fn shape_of_row(&self, row: &[u32]) -> Option<RackPlacementShape> {
        if row.len() > self.rack_of.len() {
            return None;
        }
        let gpus: u32 = row.iter().sum();
        if gpus == 0 {
            return None;
        }
        let nodes = row.iter().filter(|&&g| g > 0).count() as u32;
        let mut rack_used = vec![false; self.num_racks as usize];
        for (n, &g) in row.iter().enumerate() {
            if g > 0 {
                rack_used[self.rack_of[n] as usize] = true;
            }
        }
        let racks = rack_used.iter().filter(|&&u| u).count() as u32;
        RackPlacementShape::new(gpus, nodes, racks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(RackTopology::new(vec![]).is_none());
        assert!(RackTopology::new(vec![0, 0, 1, 1]).is_some());
        // Rack 1 missing: indices not contiguous.
        assert!(RackTopology::new(vec![0, 0, 2]).is_none());
        assert!(RackTopology::grouped(0, 2).is_none());
        assert!(RackTopology::grouped(4, 0).is_none());
    }

    #[test]
    fn grouped_layout() {
        let t = RackTopology::grouped(10, 4).unwrap();
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(3)), 0);
        assert_eq!(t.rack_of(NodeId(4)), 1);
        assert_eq!(t.rack_of(NodeId(9)), 2);
    }

    #[test]
    fn shape_reduction_counts_racks() {
        let t = RackTopology::grouped(8, 4).unwrap();
        // 2 GPUs on node 0, 1 on node 1: same rack.
        assert_eq!(
            t.shape_of_row(&[2, 1, 0, 0, 0, 0, 0, 0]),
            RackPlacementShape::new(3, 2, 1)
        );
        // Nodes 0 and 4: different racks.
        assert_eq!(
            t.shape_of_row(&[2, 0, 0, 0, 2, 0, 0, 0]),
            RackPlacementShape::new(4, 2, 2)
        );
        // Empty row.
        assert_eq!(t.shape_of_row(&[0; 8]), None);
        // Row wider than topology.
        assert_eq!(t.shape_of_row(&[1; 9]), None);
    }

    #[test]
    fn rack_shape_feeds_rack_aware_model() {
        use pollux_models::{RackAwareParams, ThroughputParams};
        let base = ThroughputParams::new(0.05, 1e-3, 0.02, 0.001, 0.08, 0.004, 2.0).unwrap();
        let params = RackAwareParams::new(base, 0.25, 0.01).unwrap();
        let t = RackTopology::grouped(8, 4).unwrap();
        let intra = t.shape_of_row(&[2, 2, 0, 0, 0, 0, 0, 0]).unwrap();
        let cross = t.shape_of_row(&[2, 0, 0, 0, 2, 0, 0, 0]).unwrap();
        assert!(params.throughput(intra, 1024) > params.throughput(cross, 1024));
    }
}
