//! Sparse allocation representation for datacenter-scale clusters.
//!
//! [`crate::AllocationMatrix`] stores one `u32` per (job, node) cell;
//! at 10k jobs × 1k nodes that is 40 MB touched on every copy, diff,
//! and fitness pass even though a placement row holds GPUs on a
//! handful of nodes. [`SparseAllocation`] stores only the occupied
//! cells — per-job sorted `(node, gpus)` entry lists — so mutation,
//! diffing, and per-node occupancy queries cost O(occupied), not
//! O(nodes). A dense-view adapter ([`SparseAllocation::to_dense`] /
//! [`SparseAllocation::dense_row`]) bridges to code still speaking
//! matrices; the `sparse_equiv` proptest suite pins the two
//! representations to each other under random operation sequences.

use pollux_models::PlacementShape;
use serde::{Deserialize, Serialize};

use crate::alloc::AllocationMatrix;

/// Per-job `{node → gpus}` maps over a fixed node count.
///
/// Invariants: each row's entries are sorted by node index, hold
/// `gpus > 0` only, and reference nodes `< num_nodes`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseAllocation {
    num_nodes: usize,
    /// `rows[j]` — sorted `(node, gpus)` with `gpus > 0`.
    rows: Vec<Vec<(u32, u32)>>,
}

impl SparseAllocation {
    /// An empty allocation: no job holds any GPU.
    pub fn zeros(num_jobs: usize, num_nodes: usize) -> Self {
        Self {
            num_nodes,
            rows: vec![Vec::new(); num_jobs],
        }
    }

    /// Converts a dense matrix, dropping zero cells.
    pub fn from_dense(m: &AllocationMatrix) -> Self {
        let rows = m
            .iter_rows()
            .map(|(_, row)| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &g)| g > 0)
                    .map(|(n, &g)| (n as u32, g))
                    .collect()
            })
            .collect();
        Self {
            num_nodes: m.num_nodes(),
            rows,
        }
    }

    /// Materializes the equivalent dense matrix.
    pub fn to_dense(&self) -> AllocationMatrix {
        let mut m = AllocationMatrix::zeros(self.num_jobs(), self.num_nodes);
        for (j, row) in self.rows.iter().enumerate() {
            for &(n, g) in row {
                m.set(j, n as usize, g);
            }
        }
        m
    }

    /// Number of jobs (rows).
    pub fn num_jobs(&self) -> usize {
        self.rows.len()
    }

    /// Number of nodes (columns of the dense view).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The occupied entries of job `j`: sorted `(node, gpus)` pairs.
    pub fn entries(&self, j: usize) -> &[(u32, u32)] {
        &self.rows[j]
    }

    /// GPUs of job `j` on node `n` (0 when unoccupied).
    pub fn get(&self, j: usize, n: usize) -> u32 {
        match self.rows[j].binary_search_by_key(&(n as u32), |&(node, _)| node) {
            Ok(i) => self.rows[j][i].1,
            Err(_) => 0,
        }
    }

    /// Sets job `j`'s GPU count on node `n` (0 clears the entry).
    pub fn set(&mut self, j: usize, n: usize, gpus: u32) {
        assert!(n < self.num_nodes, "node {n} out of range");
        let row = &mut self.rows[j];
        match row.binary_search_by_key(&(n as u32), |&(node, _)| node) {
            Ok(i) => {
                if gpus == 0 {
                    row.remove(i);
                } else {
                    row[i].1 = gpus;
                }
            }
            Err(i) => {
                if gpus > 0 {
                    row.insert(i, (n as u32, gpus));
                }
            }
        }
    }

    /// Replaces job `j`'s row from a dense slice (width must match).
    pub fn set_row_dense(&mut self, j: usize, row: &[u32]) {
        assert_eq!(row.len(), self.num_nodes, "row width mismatch");
        self.rows[j] = row
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g > 0)
            .map(|(n, &g)| (n as u32, g))
            .collect();
    }

    /// Appends an empty row; returns its index.
    pub fn push_job(&mut self) -> usize {
        self.rows.push(Vec::new());
        self.rows.len() - 1
    }

    /// Removes job `j`'s row, shifting later rows up.
    pub fn remove_job(&mut self, j: usize) {
        self.rows.remove(j);
    }

    /// Grows or shrinks the node count; entries on dropped nodes are
    /// discarded (matching `AllocationMatrix::resize_nodes`, which
    /// truncates rows).
    pub fn resize_nodes(&mut self, num_nodes: usize) {
        if num_nodes < self.num_nodes {
            for row in &mut self.rows {
                row.retain(|&(n, _)| (n as usize) < num_nodes);
            }
        }
        self.num_nodes = num_nodes;
    }

    /// Total GPUs of job `j`.
    pub fn gpus_of(&self, j: usize) -> u32 {
        self.rows[j].iter().map(|&(_, g)| g).sum()
    }

    /// Number of nodes job `j` occupies.
    pub fn nodes_of(&self, j: usize) -> u32 {
        self.rows[j].len() as u32
    }

    /// The `(K, N)` placement shape of job `j`, `None` when idle.
    pub fn shape_of(&self, j: usize) -> Option<PlacementShape> {
        let gpus = self.gpus_of(j);
        if gpus == 0 {
            None
        } else {
            PlacementShape::new(gpus, self.nodes_of(j))
        }
    }

    /// Whether job `j` spans more than one node.
    pub fn is_distributed(&self, j: usize) -> bool {
        self.rows[j].len() > 1
    }

    /// Total GPUs allocated on node `n` across all jobs.
    ///
    /// O(jobs · log occupancy); for hot loops prefer a per-node
    /// occupancy index maintained alongside (see the simulator's
    /// interference index).
    pub fn gpus_used_on(&self, n: usize) -> u32 {
        (0..self.rows.len()).map(|j| self.get(j, n)).sum()
    }

    /// Total GPUs allocated across all jobs and nodes.
    pub fn total_gpus_used(&self) -> u32 {
        self.rows
            .iter()
            .flat_map(|row| row.iter().map(|&(_, g)| g))
            .sum()
    }

    /// Materializes job `j`'s dense row.
    pub fn dense_row(&self, j: usize) -> Vec<u32> {
        let mut row = vec![0; self.num_nodes];
        for &(n, g) in &self.rows[j] {
            row[n as usize] = g;
        }
        row
    }

    /// Whether job `j`'s row equals the dense slice `row` under
    /// implicit zero padding (either side may be narrower than the
    /// other; missing cells count as 0). Cost O(occupied + |row|'s
    /// nonzeros) — no materialization.
    pub fn row_equals_dense(&self, j: usize, row: &[u32]) -> bool {
        let mut entries = self.rows[j].iter().peekable();
        for (n, &g) in row.iter().enumerate() {
            match entries.peek() {
                Some(&&(node, gpus)) if node as usize == n => {
                    if gpus != g {
                        return false;
                    }
                    entries.next();
                }
                _ => {
                    if g != 0 {
                        return false;
                    }
                }
            }
        }
        entries.next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_and_entry_compaction() {
        let mut s = SparseAllocation::zeros(2, 4);
        s.set(0, 2, 3);
        s.set(0, 0, 1);
        s.set(1, 3, 2);
        assert_eq!(s.entries(0), &[(0, 1), (2, 3)]);
        assert_eq!(s.get(0, 2), 3);
        assert_eq!(s.get(0, 1), 0);
        s.set(0, 2, 0);
        assert_eq!(s.entries(0), &[(0, 1)]);
        assert_eq!(s.gpus_of(1), 2);
        assert_eq!(s.nodes_of(0), 1);
    }

    #[test]
    fn dense_roundtrip() {
        let m = AllocationMatrix::from_rows(vec![vec![2, 0, 1], vec![0, 0, 0]], 3).unwrap();
        let s = SparseAllocation::from_dense(&m);
        assert_eq!(s.to_dense(), m);
        assert_eq!(s.dense_row(0), vec![2, 0, 1]);
        assert!(s.is_distributed(0));
        assert!(!s.is_distributed(1));
        assert_eq!(s.shape_of(0), PlacementShape::new(3, 2));
        assert_eq!(s.shape_of(1), None);
    }

    #[test]
    fn resize_drops_trailing_entries() {
        let mut s = SparseAllocation::zeros(1, 4);
        s.set(0, 1, 2);
        s.set(0, 3, 5);
        s.resize_nodes(2);
        assert_eq!(s.entries(0), &[(1, 2)]);
        s.resize_nodes(5);
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.get(0, 3), 0);
    }

    #[test]
    fn push_remove_job() {
        let mut s = SparseAllocation::zeros(1, 2);
        s.set(0, 0, 1);
        let j = s.push_job();
        s.set(j, 1, 4);
        s.remove_job(0);
        assert_eq!(s.num_jobs(), 1);
        assert_eq!(s.entries(0), &[(1, 4)]);
        assert_eq!(s.total_gpus_used(), 4);
    }

    #[test]
    fn row_equals_dense_pads_with_zeros() {
        let mut s = SparseAllocation::zeros(1, 4);
        s.set(0, 1, 2);
        assert!(s.row_equals_dense(0, &[0, 2, 0, 0]));
        assert!(s.row_equals_dense(0, &[0, 2]));
        assert!(!s.row_equals_dense(0, &[0, 2, 1, 0]));
        assert!(!s.row_equals_dense(0, &[0, 0, 0, 0]));
        let empty = SparseAllocation::zeros(1, 2);
        assert!(empty.row_equals_dense(0, &[]));
        assert!(empty.row_equals_dense(0, &[0, 0]));
        assert!(!empty.row_equals_dense(0, &[1]));
    }

    #[test]
    fn per_node_usage_matches_dense() {
        let m = AllocationMatrix::from_rows(vec![vec![2, 0, 1], vec![1, 1, 0], vec![0, 0, 0]], 3)
            .unwrap();
        let s = SparseAllocation::from_dense(&m);
        for n in 0..3 {
            assert_eq!(s.gpus_used_on(n), m.gpus_used_on(n));
        }
        assert_eq!(s.total_gpus_used(), m.total_gpus_used());
    }
}
