//! Node inventory: how many GPUs each node offers.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Specification of a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of GPUs installed on this node (≥ 1).
    pub gpus: u32,
}

/// The cluster's node inventory.
///
/// The paper's testbed is 16 nodes × 4 GPUs (AWS g4dn.12xlarge); the
/// simulator also uses 4-GPU nodes. Heterogeneous capacities are
/// supported for the auto-scaling experiments, where nodes are added
/// and removed dynamically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Builds a cluster from per-node specs. Returns `None` when the
    /// list is empty or any node has zero GPUs.
    pub fn new(nodes: Vec<NodeSpec>) -> Option<Self> {
        if nodes.is_empty() || nodes.iter().any(|n| n.gpus == 0) {
            None
        } else {
            Some(Self { nodes })
        }
    }

    /// A homogeneous cluster of `num_nodes` nodes with `gpus_per_node`
    /// GPUs each (the common case in the paper's evaluation).
    pub fn homogeneous(num_nodes: u32, gpus_per_node: u32) -> Option<Self> {
        if num_nodes == 0 {
            return None;
        }
        Self::new(vec![
            NodeSpec {
                gpus: gpus_per_node
            };
            num_nodes as usize
        ])
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// GPU capacity of node `n`.
    pub fn gpus_on(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].gpus
    }

    /// Total GPUs across the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpus).sum()
    }

    /// Iterates over `(NodeId, NodeSpec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeSpec)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i as u32), s))
    }

    /// Returns a new spec with `count` extra nodes of `gpus` GPUs each
    /// appended (cloud scale-out).
    pub fn grown(&self, count: u32, gpus: u32) -> Option<Self> {
        if gpus == 0 {
            return None;
        }
        let mut nodes = self.nodes.clone();
        nodes.extend(std::iter::repeat_n(NodeSpec { gpus }, count as usize));
        Some(Self { nodes })
    }

    /// Returns a new spec with the last `count` nodes removed
    /// (cloud scale-in), or `None` when that would empty the cluster.
    pub fn shrunk(&self, count: u32) -> Option<Self> {
        let keep = self.nodes.len().checked_sub(count as usize)?;
        if keep == 0 {
            return None;
        }
        Some(Self {
            nodes: self.nodes[..keep].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = ClusterSpec::homogeneous(16, 4).unwrap();
        assert_eq!(c.num_nodes(), 16);
        assert_eq!(c.total_gpus(), 64);
        assert_eq!(c.gpus_on(NodeId(15)), 4);
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert!(ClusterSpec::homogeneous(0, 4).is_none());
        assert!(ClusterSpec::homogeneous(4, 0).is_none());
        assert!(ClusterSpec::new(vec![]).is_none());
        assert!(ClusterSpec::new(vec![NodeSpec { gpus: 0 }]).is_none());
    }

    #[test]
    fn heterogeneous_total() {
        let c = ClusterSpec::new(vec![NodeSpec { gpus: 8 }, NodeSpec { gpus: 2 }]).unwrap();
        assert_eq!(c.total_gpus(), 10);
        assert_eq!(c.gpus_on(NodeId(0)), 8);
        assert_eq!(c.gpus_on(NodeId(1)), 2);
    }

    #[test]
    fn grow_and_shrink() {
        let c = ClusterSpec::homogeneous(4, 4).unwrap();
        let g = c.grown(2, 4).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.total_gpus(), 24);
        let s = g.shrunk(5).unwrap();
        assert_eq!(s.num_nodes(), 1);
        assert!(g.shrunk(6).is_none());
        assert!(g.shrunk(7).is_none());
        assert!(c.grown(1, 0).is_none());
    }

    #[test]
    fn iter_yields_all_nodes() {
        let c = ClusterSpec::homogeneous(3, 4).unwrap();
        let ids: Vec<u32> = c.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
