//! Scheduling topology: racks as a partition of the cluster's nodes.
//!
//! [`crate::RackTopology`] answers the *model-side* question ("which
//! racks does this placement row span?"); [`Topology`] answers the
//! *scheduler-side* one: enumerate the racks themselves, with each
//! rack's member nodes precomputed in ascending order, so a rack-aware
//! optimizer can decompose a datacenter-scale placement problem into
//! independent per-rack subproblems. A single-rack topology is the
//! degenerate case in which that decomposition is exactly today's flat
//! search — the golden-digest suites pin this.

use crate::ids::NodeId;
use crate::rack::RackTopology;
use serde::{Deserialize, Serialize};

/// A partition of nodes into racks with per-rack member lists.
///
/// Invariants: every node belongs to exactly one rack, rack indices
/// are contiguous from 0, every rack is non-empty, and
/// `nodes_in(r)` is ascending for every rack `r`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    assignment: RackTopology,
    /// `racks[r]` lists the node indices of rack `r`, ascending.
    racks: Vec<Vec<u32>>,
}

impl Topology {
    /// Builds a topology from an explicit node → rack assignment.
    /// Returns `None` under the same conditions as
    /// [`RackTopology::new`] (empty assignment, non-contiguous racks).
    pub fn from_rack_of(rack_of: Vec<u32>) -> Option<Self> {
        Self::from_assignment(RackTopology::new(rack_of)?)
    }

    /// Builds a topology from an existing rack assignment.
    pub fn from_assignment(assignment: RackTopology) -> Option<Self> {
        let mut racks = vec![Vec::new(); assignment.num_racks() as usize];
        for n in 0..assignment.num_nodes() {
            racks[assignment.rack_of(NodeId(n as u32)) as usize].push(n as u32);
        }
        Some(Self { assignment, racks })
    }

    /// `num_nodes` nodes grouped into consecutive racks of
    /// `nodes_per_rack` (the last rack may be smaller). `None` when
    /// either count is zero.
    pub fn grouped(num_nodes: u32, nodes_per_rack: u32) -> Option<Self> {
        Self::from_assignment(RackTopology::grouped(num_nodes, nodes_per_rack)?)
    }

    /// The degenerate one-rack topology over `num_nodes` nodes.
    pub fn single_rack(num_nodes: u32) -> Option<Self> {
        Self::grouped(num_nodes, num_nodes)
    }

    /// Number of nodes covered by the topology.
    pub fn num_nodes(&self) -> usize {
        self.assignment.num_nodes()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> u32 {
        self.assignment.num_racks()
    }

    /// Whether all nodes share one rack (the flat/degenerate case).
    pub fn is_single_rack(&self) -> bool {
        self.num_racks() == 1
    }

    /// The rack of node `n`.
    pub fn rack_of(&self, n: NodeId) -> u32 {
        self.assignment.rack_of(n)
    }

    /// The nodes of rack `r`, ascending.
    pub fn nodes_in(&self, r: u32) -> &[u32] {
        &self.racks[r as usize]
    }

    /// The underlying node → rack assignment.
    pub fn assignment(&self) -> &RackTopology {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_partitions_nodes() {
        let t = Topology::grouped(10, 4).unwrap();
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.nodes_in(0), &[0, 1, 2, 3]);
        assert_eq!(t.nodes_in(1), &[4, 5, 6, 7]);
        assert_eq!(t.nodes_in(2), &[8, 9]);
        assert!(!t.is_single_rack());
        assert_eq!(t.rack_of(NodeId(5)), 1);
    }

    #[test]
    fn single_rack_is_degenerate() {
        let t = Topology::single_rack(6).unwrap();
        assert!(t.is_single_rack());
        assert_eq!(t.nodes_in(0), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_rack_of_handles_interleaved_assignment() {
        let t = Topology::from_rack_of(vec![1, 0, 1, 0]).unwrap();
        assert_eq!(t.nodes_in(0), &[1, 3]);
        assert_eq!(t.nodes_in(1), &[0, 2]);
    }

    #[test]
    fn rejects_invalid_assignments() {
        assert!(Topology::from_rack_of(vec![]).is_none());
        assert!(Topology::from_rack_of(vec![0, 2]).is_none());
        assert!(Topology::grouped(0, 4).is_none());
        assert!(Topology::grouped(4, 0).is_none());
    }

    #[test]
    fn racks_cover_every_node_exactly_once() {
        let t = Topology::grouped(13, 5).unwrap();
        let mut seen = vec![0u32; t.num_nodes()];
        for r in 0..t.num_racks() {
            for &n in t.nodes_in(r) {
                seen[n as usize] += 1;
                assert_eq!(t.rack_of(NodeId(n)), r);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
