//! The time-agnostic Pollux control-plane core (Sec. 4.3).
//!
//! The paper's architecture is *one* control plane — `PolluxSched`
//! reschedules, `PolluxAgent` tunes — driven either by a discrete-time
//! simulator or by a live cluster. This crate holds the pieces both
//! drivers share, so they can never disagree on lifecycle semantics:
//!
//! - [`JobLifecycle`]: the per-job state machine
//!   (`Pending → Running → Restarting → Finished`) owning restart,
//!   queue-time, and GPU-time accounting;
//! - [`SchedulingPolicy`] / [`PolicyJobView`]: the policy interface and
//!   the immutable per-job view policies consume;
//! - [`sched_jobs_from_views`] / [`bootstrap_sched_job`]: the single
//!   home for fairness weights (Eqn 16) and the prior-driven
//!   exploration bootstrap (Sec. 4.1);
//! - [`RoundPlanner`]: the pure reschedule-round pipeline — invoke the
//!   policy over the views, clamp the returned matrix to capacity, and
//!   diff old vs new placements into explicit [`Reallocation`]
//!   decisions which the caller applies to its own job store;
//! - [`StagedScheduler`] + the [`stages`] module: the Blox-style
//!   decomposition of a policy into admission / placement / preemption
//!   stages, composed back into a [`SchedulingPolicy`] (DESIGN.md §10).
//!
//! Nothing here reads clocks, sleeps, or touches global state: `now`
//! is always an input and the RNG is caller-owned, so the same core is
//! exact under simulated time (`pollux-simulator`) and approximate
//! under wall-clock time (`ClusterService` in `pollux-core`), with
//! bit-identical decisions for identical inputs.

pub mod lifecycle;
pub mod policy;
pub mod round;
pub mod sched_jobs;
pub mod stages;

pub use lifecycle::{JobLifecycle, JobState};
pub use policy::{PlacementDelta, PolicyJobView, SchedIntervalSample, SchedulingPolicy};
pub use round::{Reallocation, RoundError, RoundOutcome, RoundPlanner};
pub use sched_jobs::{bootstrap_sched_job, sched_jobs_from_views, SchedJobCache};
pub use stages::{
    keep_placement, pack_consolidated, AdmissionPolicy, Admitted, ConsolidatedPlacement,
    NoPreemption, PlacementPolicy, PreemptAll, PreemptionPolicy, StagedScheduler,
};
