//! The per-job lifecycle state machine.
//!
//! Exactly one place owns the `Pending → Running → Restarting →
//! Finished` transitions and the bookkeeping that hangs off them
//! (first-start time, restart count, attained GPU-time). The simulator
//! engine and the live `ClusterService` both hold one [`JobLifecycle`]
//! per job and apply the same transitions through the same methods.
//!
//! A lifecycle can carry a timeline emitter
//! ([`JobLifecycle::attach_telemetry`]): each successful transition
//! then emits one `Event::Timeline` instant — `"start"`, `"restart"`,
//! `"wake"`, `"preempt"`, `"finish"` — stamped with the caller's
//! simulation time. Emission is observational only: it never touches
//! the state machine, so runs with and without an emitter are
//! bit-identical. Drivers on wall-clock time (the live service) simply
//! never attach one.

use pollux_telemetry::Recorder;

/// Lifecycle of a job under the control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Submitted but not yet (or currently not) allocated GPUs.
    Pending,
    /// Training on its current placement.
    Running,
    /// Checkpoint-restarting after a re-allocation; resumes at `until`.
    Restarting {
        /// Time at which training resumes.
        until: f64,
    },
    /// Reached its total work at time `at`.
    Finished {
        /// Completion time.
        at: f64,
    },
}

/// The per-job state machine plus the accounting it owns.
///
/// Fields are private on purpose: every mutation goes through a named
/// transition, so restart/queue-time/GPU-time semantics exist in one
/// place instead of being re-implemented by each driver.
#[derive(Debug, Clone)]
pub struct JobLifecycle {
    state: JobState,
    /// First time the job received GPUs.
    start_time: Option<f64>,
    /// Number of checkpoint-restarts suffered.
    num_restarts: u32,
    /// Attained GPU-time in GPU-seconds.
    gputime: f64,
    /// Timeline emitter: the job's id plus a recorder. `None` until
    /// [`Self::attach_telemetry`]; excluded from equality (two
    /// lifecycles in the same state are equal regardless of who is
    /// listening).
    emitter: Option<(u64, Recorder)>,
}

impl PartialEq for JobLifecycle {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
            && self.start_time == other.start_time
            && self.num_restarts == other.num_restarts
            && self.gputime == other.gputime
    }
}

impl Default for JobLifecycle {
    fn default() -> Self {
        Self::new()
    }
}

impl JobLifecycle {
    /// A freshly submitted job: pending, never started, zero service.
    pub fn new() -> Self {
        Self {
            state: JobState::Pending,
            start_time: None,
            num_restarts: 0,
            gputime: 0.0,
            emitter: None,
        }
    }

    /// Attaches a timeline emitter: every subsequent transition emits
    /// an `Event::Timeline` instant tagged with `job` (the job's
    /// numeric id). Disabled recorders cost one branch per
    /// transition.
    pub fn attach_telemetry(&mut self, job: u64, recorder: Recorder) {
        self.emitter = Some((job, recorder));
    }

    #[inline]
    fn emit(&self, kind: &'static str, time: f64) {
        if let Some((job, recorder)) = &self.emitter {
            recorder.timeline("lifecycle", kind, time, *job, &[], &[]);
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Whether the job has finished.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, JobState::Finished { .. })
    }

    /// Whether the job is actively making progress.
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running)
    }

    /// Whether the job has ever started training. Drives restart
    /// semantics: any re-allocation after the first start pays the
    /// checkpoint-restart delay (Sec. 5.3), including resuming from a
    /// preempted (checkpointed) state.
    pub fn has_started(&self) -> bool {
        self.start_time.is_some()
    }

    /// First time the job received GPUs, if it ever did.
    pub fn start_time(&self) -> Option<f64> {
        self.start_time
    }

    /// Completion time, if the job finished.
    pub fn finish_time(&self) -> Option<f64> {
        match self.state {
            JobState::Finished { at } => Some(at),
            _ => None,
        }
    }

    /// Number of checkpoint-restarts suffered.
    pub fn num_restarts(&self) -> u32 {
        self.num_restarts
    }

    /// Attained service in GPU-seconds (drives the fairness weight).
    pub fn gputime(&self) -> f64 {
        self.gputime
    }

    /// Time spent queued before the first start, or `None` while the
    /// job has not started.
    pub fn queue_time(&self, submit_time: f64) -> Option<f64> {
        self.start_time.map(|s| s - submit_time)
    }

    /// Accrues attained service. One plain `+=` so drivers that demand
    /// bit-identical f64 accumulation (the simulator) keep their exact
    /// addition order.
    #[inline]
    pub fn accrue_gputime(&mut self, gpu_seconds: f64) {
        self.gputime += gpu_seconds;
    }

    /// Overwrites attained service with a value the caller accumulated
    /// out of band. The job-major simulator engine advances gputime in
    /// a thread-private register over a whole chunk (seeded from
    /// [`Self::gputime`], advanced by the same `+=` sequence
    /// [`Self::accrue_gputime`] would have applied) and commits the
    /// result absolutely here, so the stored bits are identical to the
    /// incremental path.
    #[inline]
    pub fn set_gputime(&mut self, gpu_seconds: f64) {
        self.gputime = gpu_seconds;
    }

    /// Applies a GPU grant from a [`crate::Reallocation`] with
    /// `gpus > 0`. `triggers_restart` is the planner's decision: a job
    /// that had already started pays the checkpoint-restart delay and
    /// resumes at `now + restart_delay`; a first start runs
    /// immediately and stamps the start time. No-op on finished jobs
    /// (a round planned before the finish may apply after it).
    pub fn grant(&mut self, triggers_restart: bool, now: f64, restart_delay: f64) {
        if self.is_finished() {
            return;
        }
        if triggers_restart {
            self.state = JobState::Restarting {
                until: now + restart_delay,
            };
            self.num_restarts += 1;
            self.emit("restart", now);
        } else {
            self.state = JobState::Running;
            self.start_time = Some(now);
            self.emit("start", now);
        }
    }

    /// Takes all GPUs away at time `now`: progress is checkpointed,
    /// the job waits. Returns whether the job was active (running or
    /// restarting); pending and finished jobs are unaffected.
    pub fn preempt(&mut self, now: f64) -> bool {
        match self.state {
            JobState::Running | JobState::Restarting { .. } => {
                self.state = JobState::Pending;
                self.emit("preempt", now);
                true
            }
            JobState::Pending | JobState::Finished { .. } => false,
        }
    }

    /// Wakes the job if its restart delay has elapsed. Returns whether
    /// it transitioned to running.
    pub fn wake(&mut self, now: f64) -> bool {
        if let JobState::Restarting { until } = self.state {
            if now >= until {
                self.state = JobState::Running;
                self.emit("wake", now);
                return true;
            }
        }
        false
    }

    /// Marks the job finished at `at`. Valid from any non-finished
    /// state — in particular from `Restarting`, since a job can cross
    /// its work threshold on the very tick it was re-allocated.
    /// Returns `false` (and changes nothing) when already finished, so
    /// a duplicate completion can never move the finish time.
    pub fn finish(&mut self, at: f64) -> bool {
        if self.is_finished() {
            return false;
        }
        self.state = JobState::Finished { at };
        self.emit("finish", at);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lifecycle_is_pending() {
        let l = JobLifecycle::new();
        assert_eq!(l.state(), JobState::Pending);
        assert!(!l.has_started());
        assert!(!l.is_running());
        assert!(!l.is_finished());
        assert_eq!(l.num_restarts(), 0);
        assert_eq!(l.gputime(), 0.0);
        assert_eq!(l.queue_time(0.0), None);
    }

    #[test]
    fn first_grant_starts_and_stamps_queue_time() {
        let mut l = JobLifecycle::new();
        l.grant(false, 90.0, 30.0);
        assert_eq!(l.state(), JobState::Running);
        assert_eq!(l.start_time(), Some(90.0));
        assert_eq!(l.queue_time(60.0), Some(30.0));
        assert_eq!(l.num_restarts(), 0);
    }

    #[test]
    fn regrant_after_start_pays_restart_delay() {
        let mut l = JobLifecycle::new();
        l.grant(false, 0.0, 30.0);
        l.grant(true, 120.0, 30.0);
        assert_eq!(l.state(), JobState::Restarting { until: 150.0 });
        assert_eq!(l.num_restarts(), 1);
        // Start time is the *first* start only.
        assert_eq!(l.start_time(), Some(0.0));
        // Not yet due.
        assert!(!l.wake(149.0));
        assert!(l.wake(150.0));
        assert!(l.is_running());
    }

    #[test]
    fn finish_inside_restart_delay_sticks() {
        // A job can complete while still waiting out its restart
        // delay (its finish was decided before the re-allocation was
        // applied). The finish must win and the stale wake-up must
        // not resurrect it.
        let mut l = JobLifecycle::new();
        l.grant(false, 0.0, 30.0);
        l.grant(true, 60.0, 30.0);
        assert_eq!(l.state(), JobState::Restarting { until: 90.0 });
        assert!(l.finish(75.0));
        assert_eq!(l.state(), JobState::Finished { at: 75.0 });
        assert!(!l.wake(90.0), "wake must not resurrect a finished job");
        assert_eq!(l.state(), JobState::Finished { at: 75.0 });
        // A duplicate completion cannot move the finish time.
        assert!(!l.finish(80.0));
        assert_eq!(l.finish_time(), Some(75.0));
        // Nor can a stale grant or preemption.
        l.grant(true, 91.0, 30.0);
        assert_eq!(l.state(), JobState::Finished { at: 75.0 });
        assert!(!l.preempt(92.0));
        assert_eq!(l.state(), JobState::Finished { at: 75.0 });
    }

    #[test]
    fn preempt_then_resume_counts_a_restart() {
        let mut l = JobLifecycle::new();
        l.grant(false, 0.0, 30.0);
        assert!(l.preempt(200.0));
        assert_eq!(l.state(), JobState::Pending);
        assert_eq!(l.num_restarts(), 0, "preemption itself is free");
        assert!(l.has_started(), "start survives preemption");
        // Resuming from the checkpoint pays the restart delay.
        l.grant(true, 300.0, 30.0);
        assert_eq!(l.state(), JobState::Restarting { until: 330.0 });
        assert_eq!(l.num_restarts(), 1);
        // Preempting a pending job is a no-op.
        let mut p = JobLifecycle::new();
        assert!(!p.preempt(0.0));
        assert_eq!(p.state(), JobState::Pending);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn transitions_emit_timeline_instants() {
        use pollux_telemetry::{Event, MemorySink};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new(64));
        let mut l = JobLifecycle::new();
        l.attach_telemetry(17, Recorder::new(sink.clone()));
        l.grant(false, 5.0, 30.0); // start
        l.grant(true, 60.0, 30.0); // restart
        assert!(l.wake(90.0)); // wake
        assert!(l.preempt(120.0)); // preempt
        l.grant(true, 150.0, 30.0); // restart again
        assert!(l.finish(170.0)); // finish (wins over the restart)
        assert!(!l.finish(180.0), "duplicate finish must not re-emit");

        let seen: Vec<(String, f64)> = sink
            .drain()
            .into_iter()
            .filter_map(|e| match e {
                Event::Timeline {
                    name, time, job, ..
                } => {
                    assert_eq!(job, 17);
                    Some((name.to_string(), time))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            seen,
            vec![
                ("start".to_string(), 5.0),
                ("restart".to_string(), 60.0),
                ("wake".to_string(), 90.0),
                ("preempt".to_string(), 120.0),
                ("restart".to_string(), 150.0),
                ("finish".to_string(), 170.0),
            ]
        );
    }

    #[test]
    fn equality_ignores_the_emitter() {
        let mut a = JobLifecycle::new();
        let b = JobLifecycle::new();
        a.attach_telemetry(1, Recorder::disabled());
        assert_eq!(a, b);
    }

    #[test]
    fn gputime_accrues_in_any_active_state() {
        let mut l = JobLifecycle::new();
        l.grant(false, 0.0, 30.0);
        l.accrue_gputime(4.0);
        l.grant(true, 10.0, 30.0);
        l.accrue_gputime(4.0); // Restarting jobs still hold GPUs.
        assert_eq!(l.gputime(), 8.0);
    }
}
