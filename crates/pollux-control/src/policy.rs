//! The scheduling-policy interface.
//!
//! A policy is invoked at every scheduling round with read-only views
//! of all active (non-finished) jobs. It returns the allocation matrix
//! to apply; optionally it can also resize the cluster (cloud
//! auto-scaling). Both the simulator engine and the live
//! `ClusterService` build the views and drive the policy through the
//! same [`crate::RoundPlanner`].

use pollux_agent::AgentReport;
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId, Topology};
use pollux_models::BatchSizeLimits;
use pollux_telemetry::Recorder;
use pollux_workload::{ModelProfile, UserConfig};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Read-only per-job information exposed to policies.
///
/// Ground truth is deliberately absent except for `remaining_work`,
/// which implements the paper's *Optimus+Oracle* concession ("we run
/// each job ahead of time and provide Optimus with the exact number of
/// iterations until completion", Sec. 5.2). Honest policies simply
/// ignore it.
#[derive(Debug, Clone)]
pub struct PolicyJobView<'a> {
    /// Stable job identifier.
    pub id: JobId,
    /// The user-submitted `(GPUs, batch size)` configuration.
    pub user: UserConfig,
    /// Static, user-visible model metadata (name, m0, memory limits).
    /// `None` for drivers without a ground-truth profile object (the
    /// live service, whose jobs exist only as agents).
    pub profile: Option<&'a ModelProfile>,
    /// Batch-size limits (same as `profile.limits` when a profile is
    /// present).
    pub limits: BatchSizeLimits,
    /// The agent's latest report, absent until its first θsys fit.
    pub report: Option<AgentReport>,
    /// Attained service in GPU-seconds (drives Tiresias priorities and
    /// Pollux job weights).
    pub gputime: f64,
    /// Submission time.
    pub submit_time: f64,
    /// The placement row currently applied (cluster-width).
    pub current_placement: &'a [u32],
    /// Whether the job has ever started training. The round pipeline
    /// uses this to decide which re-allocations pay the
    /// checkpoint-restart delay.
    pub started: bool,
    /// Current batch size in effect.
    pub batch_size: u64,
    /// ORACLE: remaining work in examples at m0-efficiency.
    pub remaining_work: f64,
}

impl PolicyJobView<'_> {
    /// True when the job currently holds GPUs.
    pub fn is_running(&self) -> bool {
        self.current_placement.iter().any(|&g| g > 0)
    }
}

/// Per-interval scheduler cost breakdown, reported by policies that
/// implement [`SchedulingPolicy::take_interval_stats`] (the Pollux
/// policy does; baselines report nothing).
///
/// Every field is deterministic for a fixed seed and thread count, so
/// the whole struct participates in the serialized (golden-digested)
/// `SimResult`. Wall-clock timings of the interval are deliberately
/// *not* here: they are machine-dependent and flow through the
/// telemetry sink instead (spans `sched/table_build` and
/// `sched/ga_evolve`) — see DESIGN.md § Telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedIntervalSample {
    /// Simulation time of the interval (s).
    pub time: f64,
    /// GA generations executed.
    pub generations_run: u64,
    /// Full-chromosome fitness evaluations.
    pub fitness_evals: u64,
    /// Fitness evaluations answered incrementally (only touched rows
    /// recomputed).
    pub incremental_evals: u64,
    /// Per-job contribution rows recomputed across all incremental
    /// evaluations.
    pub rows_recomputed: u64,
    /// Dense-table lookups answered in range.
    pub table_hits: u64,
    /// Out-of-range table lookups (answered 0).
    pub table_misses: u64,
    /// Golden-section goodput solves spent building the table.
    pub table_solves: u64,
}

/// One sparse placement decision: the new placement row for the view
/// at index `row`. Returned by [`SchedulingPolicy::schedule_sparse`]
/// so a quiet round never materializes a dense `jobs × nodes` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDelta {
    /// Index into the round's view slice.
    pub row: usize,
    /// The new placement row. The planner pads (or truncates) it to
    /// cluster width before diffing against the current placement.
    pub gpus: Vec<u32>,
}

/// A cluster scheduling policy under evaluation.
pub trait SchedulingPolicy {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Whether the driver should let each job's agent re-tune its
    /// batch size and learning rate (true for Pollux, false for the
    /// baselines, which use the user-submitted batch size with
    /// AdaScale LR only — Sec. 5.2).
    fn adapts_batch_size(&self) -> bool {
        false
    }

    /// Computes the allocation matrix for this round. Row `i`
    /// corresponds to `jobs[i]`. The returned matrix must be feasible
    /// for `spec`; the round pipeline clamps infeasible matrices
    /// defensively.
    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix;

    /// Sparse-round fast path, consulted by the round pipeline
    /// *before* [`Self::schedule`]: policies that can express this
    /// round's decision as "keep every current placement except these
    /// rows" may return just the changed rows, making a quiet round
    /// O(churn) instead of O(jobs × nodes). The default returns `None`
    /// (without touching `rng`), which routes the round through the
    /// dense [`Self::schedule`] path unchanged.
    ///
    /// Contract for implementers: deltas must be in ascending row
    /// order with each row appearing at most once, and — because the
    /// sparse path skips the dense defensive clamp — the implied
    /// allocation (current placements with the deltas applied) must be
    /// feasible for `spec`. The planner still pads rows to cluster
    /// width and drops no-op deltas.
    fn schedule_sparse(
        &mut self,
        _now: f64,
        _jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<Vec<PlacementDelta>> {
        None
    }

    /// Cloud auto-scaling hook: return the desired number of nodes, or
    /// `None` to keep the cluster fixed. Called before `schedule` at
    /// each round.
    fn desired_nodes(
        &mut self,
        _now: f64,
        _jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<u32> {
        None
    }

    /// Explicit batch-size choice for policies that scale the batch
    /// without goodput awareness (e.g. Or et al.'s throughput-based
    /// autoscaler, which grows the batch linearly with workers). Only
    /// consulted when [`Self::adapts_batch_size`] is `false`; `None`
    /// keeps the job's current batch size.
    fn choose_batch_size(&self, _job: &PolicyJobView<'_>) -> Option<u64> {
        None
    }

    /// Parallelism hint: drivers call this once at startup with their
    /// configured scheduling thread count (`SimConfig::sched_threads`
    /// in the simulator; 1 = serial). Policies whose optimizer
    /// supports parallel evaluation (e.g. Pollux's genetic algorithm)
    /// reconfigure their worker pool; the default is a no-op, so
    /// purely serial policies need not care. Implementations must keep
    /// results independent of the thread count (Pollux's GA guarantees
    /// bit-identical schedules for a fixed seed).
    fn configure_parallelism(&mut self, _threads: usize) {}

    /// Topology hint: drivers call this at startup (and again after a
    /// cluster resize) with the rack layout, or `None` when the
    /// cluster is flat. Rack-aware policies (Pollux's two-phase GA)
    /// decompose their placement search along the racks; the default
    /// is a no-op, so flat policies need not care. Implementations
    /// must stay bit-identical to their flat search under a
    /// single-rack topology — the golden-digest suites pin this for
    /// Pollux.
    fn configure_topology(&mut self, _topology: Option<&Topology>) {}

    /// Drains the cost breakdown of the most recent `schedule` call,
    /// if the policy records one. The round pipeline calls this after
    /// every round, stamps the sample with the round time, and returns
    /// it in the [`crate::RoundOutcome`] (the simulator appends it to
    /// `SimResult::sched_stats`). The default reports nothing.
    fn take_interval_stats(&mut self) -> Option<SchedIntervalSample> {
        None
    }

    /// Hands the policy a telemetry [`Recorder`] so its internals
    /// (e.g. Pollux's GA) can emit spans and counters. Called by the
    /// driver when a recorder is attached (the simulator's
    /// `Simulation::with_recorder`, the service's config); the default
    /// discards it. Implementations must uphold the determinism
    /// contract: recording may not change any scheduling decision.
    fn attach_telemetry(&mut self, _recorder: Recorder) {}

    /// Drains the decision audit of the most recent `schedule` call,
    /// if the policy built one (Pollux does, and only while a recorder
    /// is attached — see `pollux_telemetry::RoundExplain`). The driver
    /// calls this after applying a round, stamps the record with the
    /// round time and interference co-residents, and emits it through
    /// the recorder. Purely observational: implementations must derive
    /// the record without drawing RNG or perturbing cached state. The
    /// default reports nothing.
    fn take_round_explain(&mut self) -> Option<pollux_telemetry::RoundExplain> {
        None
    }
}

impl<P: SchedulingPolicy + ?Sized> SchedulingPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn adapts_batch_size(&self) -> bool {
        (**self).adapts_batch_size()
    }

    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix {
        (**self).schedule(now, jobs, spec, rng)
    }

    fn schedule_sparse(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<Vec<PlacementDelta>> {
        (**self).schedule_sparse(now, jobs, spec, rng)
    }

    fn desired_nodes(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<u32> {
        (**self).desired_nodes(now, jobs, spec, rng)
    }

    fn choose_batch_size(&self, job: &PolicyJobView<'_>) -> Option<u64> {
        (**self).choose_batch_size(job)
    }

    fn configure_parallelism(&mut self, threads: usize) {
        (**self).configure_parallelism(threads)
    }

    fn configure_topology(&mut self, topology: Option<&Topology>) {
        (**self).configure_topology(topology)
    }

    fn take_interval_stats(&mut self) -> Option<SchedIntervalSample> {
        (**self).take_interval_stats()
    }

    fn attach_telemetry(&mut self, recorder: Recorder) {
        (**self).attach_telemetry(recorder)
    }

    fn take_round_explain(&mut self) -> Option<pollux_telemetry::RoundExplain> {
        (**self).take_round_explain()
    }
}
