//! The reschedule-round pipeline.
//!
//! One [`RoundPlanner::plan`] call is one scheduling round: invoke the
//! [`SchedulingPolicy`] over immutable job views, clamp the returned
//! allocation matrix to cluster capacity, and diff old vs new
//! placements into explicit [`Reallocation`] decisions. The planner is
//! pure with respect to its caller's state — it mutates nothing but
//! the policy and the RNG — so the simulator engine and the live
//! service apply the same [`RoundOutcome`] to their own job stores.

use crate::policy::{PlacementDelta, PolicyJobView, SchedIntervalSample, SchedulingPolicy};
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_telemetry::{Counter, Recorder};
use rand::rngs::StdRng;

/// One explicit placement-change decision produced by a round.
///
/// Jobs whose placement is unchanged produce no reallocation; a
/// pending job allocated zero GPUs again likewise produces nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reallocation {
    /// The job being re-placed.
    pub job: JobId,
    /// Index of the job in the round's view slice (callers that keep
    /// jobs in view order can apply by index instead of id lookup).
    pub row: usize,
    /// The placement row that was in effect (cluster-width).
    pub old: Vec<u32>,
    /// The placement row to apply (cluster-width).
    pub new: Vec<u32>,
    /// Whether applying this decision pays the checkpoint-restart
    /// delay: true exactly when the job had already started training
    /// and is granted GPUs again (`new` non-zero). Zero-GPU decisions
    /// are preemptions and never restart.
    pub triggers_restart: bool,
}

impl Reallocation {
    /// GPUs granted by the new placement (0 = preemption).
    pub fn gpus(&self) -> u32 {
        self.new.iter().sum()
    }
}

/// The result of one scheduling round, applied by the caller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundOutcome {
    /// Placement changes, in view (row) order.
    pub reallocations: Vec<Reallocation>,
    /// The policy's cost breakdown for this round, stamped with the
    /// round time, if the policy reports one.
    pub stats: Option<SchedIntervalSample>,
}

/// A round could not be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundError {
    /// Two views carried the same job id; the diff (and any
    /// id-indexed application of it) would be ambiguous.
    DuplicateJobId(JobId),
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::DuplicateJobId(id) => {
                write!(f, "duplicate job id {id} in round views")
            }
        }
    }
}

impl std::error::Error for RoundError {}

/// The shared reschedule-round pipeline.
///
/// Holds only a hoisted telemetry counter (disabled by default) plus
/// a recycled scratch buffer; all per-round inputs arrive as
/// arguments, so one planner serves any number of rounds
/// deterministically.
#[derive(Default)]
pub struct RoundPlanner {
    /// Hoisted `control/reallocations` counter: `plan` runs every
    /// reschedule round, so the per-call registry lookup of
    /// `Recorder::incr` is paid once at attach time instead. The
    /// planner deliberately emits no spans of its own — it sits on
    /// the simulator's hot path, already bracketed by the driver's
    /// span (`engine/reschedule` in the simulator, `control/plan` in
    /// the live service).
    reallocations_ctr: Counter,
    /// Recorder for per-reallocation `"placement"` timeline diffs.
    /// Disabled by default; emission happens only where a
    /// [`Reallocation`] is materialized, which is already O(churn) —
    /// quiet rounds emit nothing.
    recorder: Recorder,
    /// Recycled duplicate-check scratch.
    ids_buf: Vec<JobId>,
    /// The previous round's id sequence in view order. When this
    /// round's views carry the same ids in the same order (the common
    /// quiet-round case), uniqueness was already proven and the
    /// O(n log n) sort is skipped for one O(n) equality scan.
    last_ids: Vec<JobId>,
    /// Cumulative count of placement rows materialized by the diff
    /// phase. A quiet round (policy returns every current placement)
    /// materializes zero rows — round cost scales with churn, not
    /// cluster size; the regression test pins this.
    rows_materialized: u64,
}

impl RoundPlanner {
    /// A planner with telemetry disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry recorder. Observational only: recording
    /// never changes a planned outcome.
    pub fn attach_telemetry(&mut self, recorder: Recorder) {
        self.reallocations_ctr = recorder.counter("control", "reallocations");
        self.recorder = recorder;
    }

    /// Cumulative number of placement rows the diff phase has copied
    /// out of policy matrices across all rounds. Unchanged rows are
    /// compared in place and never allocated, so this grows O(churn)
    /// per round, independent of job and node counts.
    pub fn rows_materialized(&self) -> u64 {
        self.rows_materialized
    }

    /// The auto-scaling phase of a round: asks the policy for a
    /// desired cluster size. The caller performs the actual resize
    /// (and rebuilds its views) because node removal touches
    /// driver-owned placements.
    pub fn desired_nodes<P: SchedulingPolicy + ?Sized>(
        &self,
        policy: &mut P,
        now: f64,
        views: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<u32> {
        policy.desired_nodes(now, views, spec, rng)
    }

    /// Plans one scheduling round over `views`.
    ///
    /// Pipeline: consult `policy.schedule_sparse` (policies that can
    /// name just their changed rows skip the dense matrix entirely —
    /// see `Self::plan_sparse`); otherwise invoke `policy.schedule`,
    /// drain and time-stamp its interval stats, clamp the matrix to
    /// `spec` capacity, then diff each view's current placement
    /// against its new row. An empty view slice short-circuits to an
    /// empty outcome without invoking the policy (both drivers skip
    /// empty rounds).
    ///
    /// Every RNG draw made during the round comes from `policy` via
    /// `rng`, in view order — the planner itself never draws — which
    /// is what keeps the simulator's determinism contract intact.
    pub fn plan<P: SchedulingPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        now: f64,
        views: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Result<RoundOutcome, RoundError> {
        if views.is_empty() {
            return Ok(RoundOutcome::default());
        }
        self.check_unique_ids(views)?;

        if let Some(deltas) = policy.schedule_sparse(now, views, spec, rng) {
            return Ok(self.plan_sparse(policy, now, views, spec, deltas));
        }

        let mut matrix = policy.schedule(now, views, spec, rng);
        let stats = policy.take_interval_stats().map(|mut s| {
            s.time = now;
            s
        });
        clamp_matrix(&mut matrix, spec);

        let num_nodes = spec.num_nodes();
        let mut reallocations = Vec::new();
        for (row, view) in views.iter().enumerate() {
            // Post-clamp the matrix is cluster-width, so a view's row
            // (or the implicit all-zero row when the policy returned
            // too few) can be compared in place; rows are copied out
            // only once known to differ, keeping a quiet round's diff
            // cost O(changed) instead of O(jobs × nodes).
            let matrix_row: &[u32] = if row < matrix.num_jobs() {
                matrix.row(row)
            } else {
                &[]
            };
            if rows_equal_padded(matrix_row, view.current_placement, num_nodes) {
                continue;
            }
            let gpus: u32 = matrix_row.iter().sum();
            if gpus == 0 && !view.current_placement.iter().any(|&g| g > 0) {
                continue; // Pending -> pending: nothing happened.
            }
            let mut new_row = matrix_row.to_vec();
            new_row.resize(num_nodes, 0);
            self.rows_materialized += 1;
            self.recorder.timeline(
                "round",
                "placement",
                now,
                view.id.0 as u64,
                view.current_placement,
                &new_row,
            );
            reallocations.push(Reallocation {
                job: view.id,
                row,
                old: view.current_placement.to_vec(),
                new: new_row,
                triggers_restart: gpus > 0 && view.started,
            });
        }
        self.reallocations_ctr.add(reallocations.len() as u64);
        Ok(RoundOutcome {
            reallocations,
            stats,
        })
    }

    /// Validates that every view carries a unique job id. A round over
    /// the exact id sequence of the previous round — the steady-state
    /// case — is revalidated with one O(n) scan against the cached
    /// sequence instead of re-sorting.
    fn check_unique_ids(&mut self, views: &[PolicyJobView<'_>]) -> Result<(), RoundError> {
        if self.last_ids.len() == views.len()
            && views.iter().zip(&self.last_ids).all(|(v, &id)| v.id == id)
        {
            return Ok(());
        }
        self.ids_buf.clear();
        self.ids_buf.extend(views.iter().map(|v| v.id));
        self.ids_buf.sort_unstable();
        for w in self.ids_buf.windows(2) {
            if w[0] == w[1] {
                return Err(RoundError::DuplicateJobId(w[0]));
            }
        }
        self.last_ids.clear();
        self.last_ids.extend(views.iter().map(|v| v.id));
        Ok(())
    }

    /// The sparse round path: the policy named only its changed rows,
    /// so this never touches — let alone materializes — a dense
    /// `jobs × nodes` matrix. Each delta is padded to cluster width
    /// and diffed against its view's current placement; no-op deltas
    /// and out-of-range rows are dropped. The dense defensive clamp is
    /// skipped (the sparse contract makes the policy responsible for
    /// feasibility — see [`SchedulingPolicy::schedule_sparse`]).
    fn plan_sparse<P: SchedulingPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        now: f64,
        views: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        deltas: Vec<PlacementDelta>,
    ) -> RoundOutcome {
        let stats = policy.take_interval_stats().map(|mut s| {
            s.time = now;
            s
        });
        let num_nodes = spec.num_nodes();
        let mut reallocations = Vec::with_capacity(deltas.len());
        for delta in deltas {
            let Some(view) = views.get(delta.row) else {
                continue;
            };
            let mut new_row = delta.gpus;
            new_row.resize(num_nodes, 0);
            if rows_equal_padded(&new_row, view.current_placement, num_nodes) {
                continue;
            }
            let gpus: u32 = new_row.iter().sum();
            if gpus == 0 && !view.current_placement.iter().any(|&g| g > 0) {
                continue; // Pending -> pending: nothing happened.
            }
            self.rows_materialized += 1;
            self.recorder.timeline(
                "round",
                "placement",
                now,
                view.id.0 as u64,
                view.current_placement,
                &new_row,
            );
            reallocations.push(Reallocation {
                job: view.id,
                row: delta.row,
                old: view.current_placement.to_vec(),
                new: new_row,
                triggers_restart: gpus > 0 && view.started,
            });
        }
        self.reallocations_ctr.add(reallocations.len() as u64);
        RoundOutcome {
            reallocations,
            stats,
        }
    }
}

/// Whether a policy matrix row equals a view's current placement,
/// treating cells past `matrix_row.len()` as zero. `current` narrower
/// or wider than the cluster (a transient width mismatch around a
/// resize) always diffs as changed, matching the strict slice
/// comparison this replaces.
fn rows_equal_padded(matrix_row: &[u32], current: &[u32], width: usize) -> bool {
    if current.len() != width {
        return false;
    }
    if matrix_row.len() == width {
        // Equal-width rows (the common case on the sparse path, which
        // pads every delta to cluster width) compare as a straight
        // slice equality — one memcmp instead of a per-cell loop.
        return matrix_row == current;
    }
    current
        .iter()
        .enumerate()
        .all(|(n, &g)| matrix_row.get(n).copied().unwrap_or(0) == g)
}

/// Defensively trims an infeasible policy matrix to capacity: the
/// matrix is first brought to cluster width, then over-capacity nodes
/// shed GPUs round-robin across jobs until feasible.
fn clamp_matrix(m: &mut AllocationMatrix, spec: &ClusterSpec) {
    if m.num_nodes() != spec.num_nodes() {
        m.resize_nodes(spec.num_nodes());
    }
    for node in m.over_capacity_nodes(spec) {
        let n = node.index();
        let cap = spec.gpus_on(node);
        let mut j = 0;
        while m.gpus_used_on(n) > cap {
            if m.get(j, n) > 0 {
                m.set(j, n, m.get(j, n) - 1);
            }
            j = (j + 1) % m.num_jobs().max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::BatchSizeLimits;
    use pollux_workload::UserConfig;
    use rand::SeedableRng;

    /// A scripted policy: returns the preloaded matrix for each round.
    struct Scripted {
        rounds: Vec<AllocationMatrix>,
        next: usize,
    }

    impl Scripted {
        fn new(rounds: Vec<AllocationMatrix>) -> Self {
            Self { rounds, next: 0 }
        }
    }

    impl SchedulingPolicy for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn schedule(
            &mut self,
            _now: f64,
            jobs: &[PolicyJobView<'_>],
            spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            let i = self.next.min(self.rounds.len().saturating_sub(1));
            self.next += 1;
            self.rounds
                .get(i)
                .cloned()
                .unwrap_or_else(|| AllocationMatrix::zeros(jobs.len(), spec.num_nodes()))
        }
    }

    fn view<'a>(id: u32, placement: &'a [u32], started: bool) -> PolicyJobView<'a> {
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus: 1,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
            report: None,
            gputime: 0.0,
            submit_time: 0.0,
            current_placement: placement,
            started,
            batch_size: 128,
            remaining_work: f64::INFINITY,
        }
    }

    fn matrix(rows: &[&[u32]]) -> AllocationMatrix {
        let nodes = rows.first().map_or(0, |r| r.len());
        let mut m = AllocationMatrix::zeros(rows.len(), nodes);
        for (j, row) in rows.iter().enumerate() {
            for (n, &g) in row.iter().enumerate() {
                m.set(j, n, g);
            }
        }
        m
    }

    #[test]
    fn empty_round_plans_nothing_without_invoking_policy() {
        struct Panicky;
        impl SchedulingPolicy for Panicky {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn schedule(
                &mut self,
                _now: f64,
                _jobs: &[PolicyJobView<'_>],
                _spec: &ClusterSpec,
                _rng: &mut StdRng,
            ) -> AllocationMatrix {
                panic!("schedule must not run for an empty round")
            }
        }
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let outcome = planner
            .plan(&mut Panicky, 0.0, &[], &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome, RoundOutcome::default());
    }

    #[test]
    fn duplicate_job_ids_are_rejected() {
        let p0 = vec![0u32, 0];
        let views = [view(3, &p0, false), view(3, &p0, false)];
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let err = planner
            .plan(
                &mut Scripted::new(vec![matrix(&[&[1, 0], &[0, 1]])]),
                0.0,
                &views,
                &spec,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, RoundError::DuplicateJobId(JobId(3)));
    }

    #[test]
    fn zero_gpu_round_preempts_started_job_then_restart_on_regrant() {
        // Round 1: a previously-running (started) job is allocated
        // zero GPUs — an explicit preemption that must NOT trigger a
        // restart. Round 2: the same job is granted GPUs again — that
        // re-allocation DOES pay the restart delay.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = Scripted::new(vec![
            matrix(&[&[0, 0]]), // preempt
            matrix(&[&[0, 2]]), // re-grant
        ]);

        let held = vec![2u32, 0];
        let views = [view(0, &held, true)];
        let outcome = planner
            .plan(&mut policy, 60.0, &views, &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome.reallocations.len(), 1);
        let r = &outcome.reallocations[0];
        assert_eq!(r.job, JobId(0));
        assert_eq!(r.old, vec![2, 0]);
        assert_eq!(r.new, vec![0, 0]);
        assert_eq!(r.gpus(), 0);
        assert!(!r.triggers_restart, "preemption must not restart");

        // The caller applies the preemption through the lifecycle.
        let mut lifecycle = crate::JobLifecycle::new();
        lifecycle.grant(false, 0.0, 30.0);
        assert!(lifecycle.preempt(60.0));
        assert_eq!(lifecycle.num_restarts(), 0);

        let idle = vec![0u32, 0];
        let views = [view(0, &idle, true)];
        let outcome = planner
            .plan(&mut policy, 120.0, &views, &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome.reallocations.len(), 1);
        let r = &outcome.reallocations[0];
        assert_eq!(r.new, vec![0, 2]);
        assert!(r.triggers_restart, "resuming a started job restarts it");
        lifecycle.grant(r.triggers_restart, 120.0, 30.0);
        assert_eq!(
            lifecycle.state(),
            crate::JobState::Restarting { until: 150.0 }
        );
        assert_eq!(lifecycle.num_restarts(), 1);
    }

    #[test]
    fn unchanged_and_pending_to_pending_rows_are_silent() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let held = vec![1u32, 0];
        let idle = vec![0u32, 0];
        // Job 0 keeps its row; job 1 stays pending; job 2 first-starts.
        let views = [
            view(0, &held, true),
            view(1, &idle, false),
            view(2, &idle, false),
        ];
        let m = matrix(&[&[1, 0], &[0, 0], &[0, 1]]);
        let outcome = planner
            .plan(&mut Scripted::new(vec![m]), 0.0, &views, &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome.reallocations.len(), 1);
        let r = &outcome.reallocations[0];
        assert_eq!(r.job, JobId(2));
        assert_eq!(r.row, 2);
        assert!(!r.triggers_restart, "first start is not a restart");
    }

    #[test]
    fn quiet_round_materializes_zero_rows_and_churn_only_changed() {
        // 64 jobs each holding one GPU on their own node; the policy
        // returns exactly the current allocation. The diff phase must
        // allocate nothing: O(changed) == 0, not O(jobs).
        let jobs = 64usize;
        let spec = ClusterSpec::homogeneous(jobs as u32, 4).unwrap();
        let placements: Vec<Vec<u32>> = (0..jobs)
            .map(|j| {
                let mut p = vec![0u32; jobs];
                p[j] = 1;
                p
            })
            .collect();
        let views: Vec<PolicyJobView<'_>> = placements
            .iter()
            .enumerate()
            .map(|(j, p)| view(j as u32, p, true))
            .collect();
        let quiet = AllocationMatrix::from_rows(placements.clone(), jobs).unwrap();
        // Round 2: only job 0 moves (node 0 -> node 1's second slot).
        let mut churned_rows = placements.clone();
        churned_rows[0] = vec![0; jobs];
        churned_rows[0][1] = 1;
        let churned = AllocationMatrix::from_rows(churned_rows, jobs).unwrap();

        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = Scripted::new(vec![quiet, churned]);

        let outcome = planner
            .plan(&mut policy, 60.0, &views, &spec, &mut rng)
            .unwrap();
        assert!(outcome.reallocations.is_empty());
        assert_eq!(
            planner.rows_materialized(),
            0,
            "a quiet round must not materialize any placement rows"
        );

        let outcome = planner
            .plan(&mut policy, 120.0, &views, &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome.reallocations.len(), 1);
        assert_eq!(outcome.reallocations[0].job, JobId(0));
        assert_eq!(
            planner.rows_materialized(),
            1,
            "round cost must scale with churn, not job count"
        );
    }

    #[test]
    fn infeasible_matrices_are_clamped_to_capacity() {
        let spec = ClusterSpec::homogeneous(1, 2).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let idle = vec![0u32];
        let views = [view(0, &idle, false), view(1, &idle, false)];
        // 4 GPUs demanded on a 2-GPU node: round-robin decrement trims
        // to capacity.
        let m = matrix(&[&[2], &[2]]);
        let outcome = planner
            .plan(&mut Scripted::new(vec![m]), 0.0, &views, &spec, &mut rng)
            .unwrap();
        let total: u32 = outcome.reallocations.iter().map(|r| r.gpus()).sum();
        assert!(total <= 2, "clamped total {total}");
        // A matrix narrower than the cluster is widened with zeros.
        let spec_wide = ClusterSpec::homogeneous(3, 2).unwrap();
        let idle3 = vec![0u32, 0, 0];
        let views = [view(0, &idle3, false)];
        let outcome = planner
            .plan(
                &mut Scripted::new(vec![matrix(&[&[1]])]),
                0.0,
                &views,
                &spec_wide,
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.reallocations[0].new, vec![1, 0, 0]);
    }

    /// A sparse policy: returns preloaded deltas per round and panics
    /// if the dense path is ever consulted.
    struct SparseScripted {
        rounds: Vec<Vec<PlacementDelta>>,
        next: usize,
    }

    impl SchedulingPolicy for SparseScripted {
        fn name(&self) -> &'static str {
            "sparse-scripted"
        }
        fn schedule(
            &mut self,
            _now: f64,
            _jobs: &[PolicyJobView<'_>],
            _spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            panic!("dense schedule must not run when schedule_sparse answers")
        }
        fn schedule_sparse(
            &mut self,
            _now: f64,
            _jobs: &[PolicyJobView<'_>],
            _spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> Option<Vec<PlacementDelta>> {
            let i = self.next;
            self.next += 1;
            Some(self.rounds.get(i).cloned().unwrap_or_default())
        }
    }

    #[test]
    fn sparse_quiet_round_materializes_zero_rows() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = vec![2u32, 0];
        let p1 = vec![0u32, 2];
        let views = [view(0, &p0, true), view(1, &p1, true)];
        let mut policy = SparseScripted {
            rounds: vec![vec![]],
            next: 0,
        };
        let outcome = planner
            .plan(&mut policy, 0.0, &views, &spec, &mut rng)
            .unwrap();
        assert!(outcome.reallocations.is_empty());
        assert_eq!(planner.rows_materialized(), 0);
    }

    #[test]
    fn sparse_deltas_are_padded_diffed_and_noop_dropped() {
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = vec![2u32, 0, 0];
        let p1 = vec![0u32, 2, 0];
        let p2 = vec![0u32, 0, 0];
        let views = [view(0, &p0, true), view(1, &p1, true), view(2, &p2, false)];
        let mut policy = SparseScripted {
            rounds: vec![vec![
                // Row 0: narrow no-op delta (pads to [2,0,0]) — dropped.
                PlacementDelta {
                    row: 0,
                    gpus: vec![2],
                },
                // Row 1: a real move.
                PlacementDelta {
                    row: 1,
                    gpus: vec![0, 0, 2],
                },
                // Row 2: pending job granted nothing — dropped.
                PlacementDelta {
                    row: 2,
                    gpus: vec![],
                },
                // Out-of-range row — ignored.
                PlacementDelta {
                    row: 9,
                    gpus: vec![4, 0, 0],
                },
            ]],
            next: 0,
        };
        let outcome = planner
            .plan(&mut policy, 5.0, &views, &spec, &mut rng)
            .unwrap();
        assert_eq!(outcome.reallocations.len(), 1);
        let r = &outcome.reallocations[0];
        assert_eq!(r.job, JobId(1));
        assert_eq!(r.old, vec![0, 2, 0]);
        assert_eq!(r.new, vec![0, 0, 2]);
        assert!(r.triggers_restart);
        assert_eq!(planner.rows_materialized(), 1);
    }

    #[test]
    fn sparse_path_still_rejects_duplicate_ids() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = vec![0u32, 0];
        let views = [view(5, &p0, false), view(5, &p0, false)];
        let mut policy = SparseScripted {
            rounds: vec![vec![]],
            next: 0,
        };
        let err = planner
            .plan(&mut policy, 0.0, &views, &spec, &mut rng)
            .unwrap_err();
        assert_eq!(err, RoundError::DuplicateJobId(JobId(5)));
    }

    #[test]
    fn id_cache_revalidates_unchanged_sequences_and_catches_new_duplicates() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut planner = RoundPlanner::new();
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = vec![0u32, 0];
        // Round 1 proves [1, 2] unique and caches the sequence.
        let views = [view(1, &p0, false), view(2, &p0, false)];
        let mut policy = SparseScripted {
            rounds: vec![vec![], vec![], vec![]],
            next: 0,
        };
        planner
            .plan(&mut policy, 0.0, &views, &spec, &mut rng)
            .unwrap();
        // Round 2: identical sequence — revalidated by the O(n) scan.
        planner
            .plan(&mut policy, 1.0, &views, &spec, &mut rng)
            .unwrap();
        // Round 3: the sequence changed AND now contains a duplicate —
        // the cache must not mask it.
        let dup = [view(2, &p0, false), view(2, &p0, false)];
        let err = planner
            .plan(&mut policy, 2.0, &dup, &spec, &mut rng)
            .unwrap_err();
        assert_eq!(err, RoundError::DuplicateJobId(JobId(2)));
        // Round 4: after the rejected round, a valid changed sequence
        // still passes.
        let ok = [view(2, &p0, false), view(3, &p0, false)];
        planner
            .plan(
                &mut Scripted::new(vec![matrix(&[&[0, 0], &[0, 0]])]),
                3.0,
                &ok,
                &spec,
                &mut rng,
            )
            .unwrap();
    }
}
