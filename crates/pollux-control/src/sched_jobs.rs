//! The single home for converting policy job views into scheduler
//! jobs: fairness weights (Eqn 16) and the prior-driven exploration
//! bootstrap (Sec. 4.1). Previously duplicated between the simulator
//! policy wrapper and the live service's round loop.

use crate::policy::PolicyJobView;
use pollux_cluster::JobId;
use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
use pollux_sched::{job_weight, SchedJob, WeightConfig};

/// Builds the prior-driven bootstrap [`SchedJob`] for a job that has
/// not produced an agent report yet.
///
/// A fresh job has no throughput observations, so its bootstrap model
/// assumes *perfect scaling* (`T_grad ∝ m/K`, no sync cost) and zero
/// noise scale (no batch-size benefit), with the scale-out cap
/// starting at 2 — the paper's exploration behavior (Sec. 4.1,
/// "Prior-driven exploration"): new jobs start small and are grown as
/// their agents learn.
pub fn bootstrap_sched_job(
    id: JobId,
    limits: BatchSizeLimits,
    weight: f64,
    current_placement: Vec<u32>,
) -> SchedJob {
    let params = ThroughputParams::new(0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0)
        .expect("static bootstrap params are valid");
    let eff = EfficiencyModel::from_noise_scale(limits.min, 0.0).expect("limits.min >= 1");
    let model = GoodputModel::new(params, eff, limits).expect("eff.m0 == limits.min");
    let min_gpus = limits.min_gpus().max(1);
    SchedJob {
        id,
        model,
        min_gpus,
        gpu_cap: min_gpus.max(2),
        weight,
        current_placement,
    }
}

/// Converts policy views into scheduler jobs: the fairness weight from
/// attained GPU-time, the agent's fitted goodput model when a report
/// exists, and the bootstrap prior ([`bootstrap_sched_job`])
/// otherwise.
pub fn sched_jobs_from_views(weights: &WeightConfig, jobs: &[PolicyJobView<'_>]) -> Vec<SchedJob> {
    jobs.iter()
        .map(|view| {
            let weight = job_weight(weights, view.gputime);
            match &view.report {
                Some(report) => SchedJob {
                    id: view.id,
                    model: report.model,
                    min_gpus: report.min_gpus,
                    gpu_cap: report.gpu_cap,
                    weight,
                    current_placement: view.current_placement.to_vec(),
                },
                None => bootstrap_sched_job(
                    view.id,
                    view.limits,
                    weight,
                    view.current_placement.to_vec(),
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_caps_fresh_jobs_at_two_gpus() {
        let limits = BatchSizeLimits::new(128, 4096, 512).unwrap();
        let j = bootstrap_sched_job(JobId(7), limits, 1.0, vec![0, 0]);
        assert_eq!(j.id, JobId(7));
        assert_eq!(j.min_gpus, 1);
        assert_eq!(j.gpu_cap, 2);
        assert_eq!(j.weight, 1.0);
        // Perfect scaling, zero noise: goodput is defined at the
        // minimum batch and the model is usable by the GA.
        assert!(
            j.model
                .goodput(pollux_models::PlacementShape::single(), limits.min)
                > 0.0
        );
    }

    #[test]
    fn views_with_reports_use_the_fitted_model() {
        use pollux_agent::PolluxAgent;
        use pollux_models::PlacementShape;
        use pollux_workload::{ModelKind, UserConfig};

        let profile = ModelKind::ResNet18Cifar10.profile();
        let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            agent.observe_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(agent.refit());
        let report = agent.report();
        assert!(report.is_some());

        let placement = vec![0u32; 4];
        let mk_view = |report| PolicyJobView {
            id: JobId(0),
            user: UserConfig {
                gpus: 1,
                batch_size: profile.m0,
            },
            profile: Some(&profile),
            limits: profile.limits,
            report,
            gputime: 3600.0,
            submit_time: 0.0,
            current_placement: &placement,
            started: false,
            batch_size: profile.m0,
            remaining_work: 1e6,
        };
        let weights = WeightConfig::default();
        let fitted = sched_jobs_from_views(&weights, &[mk_view(report)]);
        let fresh = sched_jobs_from_views(&weights, &[mk_view(None)]);
        assert_eq!(fitted.len(), 1);
        // The fitted job inherits the agent's cap; the fresh one is
        // bootstrapped to the exploration cap of 2.
        assert!(fitted[0].gpu_cap >= fresh[0].gpu_cap);
        assert_eq!(fresh[0].gpu_cap, 2);
        // Both carry the same attained-service weight.
        assert_eq!(fitted[0].weight, job_weight(&weights, 3600.0));
        assert_eq!(fitted[0].weight, fresh[0].weight);
    }
}
