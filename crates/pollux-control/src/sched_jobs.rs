//! The single home for converting policy job views into scheduler
//! jobs: fairness weights (Eqn 16) and the prior-driven exploration
//! bootstrap (Sec. 4.1). Previously duplicated between the simulator
//! policy wrapper and the live service's round loop.

use crate::policy::PolicyJobView;
use pollux_cluster::JobId;
use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
use pollux_sched::{job_weight, SchedJob, WeightConfig};

/// Builds the prior-driven bootstrap [`SchedJob`] for a job that has
/// not produced an agent report yet.
///
/// A fresh job has no throughput observations, so its bootstrap model
/// assumes *perfect scaling* (`T_grad ∝ m/K`, no sync cost) and zero
/// noise scale (no batch-size benefit), with the scale-out cap
/// starting at 2 — the paper's exploration behavior (Sec. 4.1,
/// "Prior-driven exploration"): new jobs start small and are grown as
/// their agents learn.
pub fn bootstrap_sched_job(
    id: JobId,
    limits: BatchSizeLimits,
    weight: f64,
    current_placement: Vec<u32>,
) -> SchedJob {
    let params = ThroughputParams::new(0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0)
        .expect("static bootstrap params are valid");
    let eff = EfficiencyModel::from_noise_scale(limits.min, 0.0).expect("limits.min >= 1");
    let model = GoodputModel::new(params, eff, limits).expect("eff.m0 == limits.min");
    let min_gpus = limits.min_gpus().max(1);
    SchedJob {
        id,
        model,
        min_gpus,
        gpu_cap: min_gpus.max(2),
        weight,
        current_placement,
    }
}

/// Converts policy views into scheduler jobs: the fairness weight from
/// attained GPU-time, the agent's fitted goodput model when a report
/// exists, and the bootstrap prior ([`bootstrap_sched_job`])
/// otherwise.
pub fn sched_jobs_from_views(weights: &WeightConfig, jobs: &[PolicyJobView<'_>]) -> Vec<SchedJob> {
    jobs.iter()
        .map(|view| {
            let weight = job_weight(weights, view.gputime);
            match &view.report {
                Some(report) => SchedJob {
                    id: view.id,
                    model: report.model,
                    min_gpus: report.min_gpus,
                    gpu_cap: report.gpu_cap,
                    weight,
                    current_placement: view.current_placement.to_vec(),
                },
                None => bootstrap_sched_job(
                    view.id,
                    view.limits,
                    weight,
                    view.current_placement.to_vec(),
                ),
            }
        })
        .collect()
}

/// Cross-round cache of the view → [`SchedJob`] conversion, so a quiet
/// round (no arrivals, finishes, refits, or placement changes) reuses
/// every entry instead of re-deriving models and re-allocating
/// placement rows.
///
/// Entries are keyed by *position*: job `k` this round is compared
/// against entry `k` from the previous round, which matches how
/// drivers present views (stable submission order with finished jobs
/// removed). An entry is reused when the id matches and its
/// model-defining inputs are unchanged — for reported jobs the fitted
/// model/caps, for bootstrap jobs the batch-size limits. Fairness
/// weights are always refreshed in place (attained service grows every
/// round) and do not count as a rebuild; a placement change is applied
/// in place but *does* count as rebuilt, since downstream consumers
/// key warm-start state off placement stability.
///
/// Correctness never depends on the cache: `refresh` is
/// `debug_assert`-cross-checked against [`sched_jobs_from_views`] and
/// is bit-identical to it by construction.
#[derive(Debug, Default)]
pub struct SchedJobCache {
    jobs: Vec<SchedJob>,
    /// Whether entry `k` was derived from an agent report (vs the
    /// bootstrap prior). A job crossing that boundary is always
    /// rebuilt.
    from_report: Vec<bool>,
    /// The limits a bootstrap entry was derived from.
    limits: Vec<BatchSizeLimits>,
    last_rebuilt: u64,
    last_reused: u64,
    total_rebuilt: u64,
    total_reused: u64,
}

impl SchedJobCache {
    /// Brings the cache in line with this round's views and returns
    /// the scheduler jobs. Equivalent to [`sched_jobs_from_views`].
    pub fn refresh(&mut self, weights: &WeightConfig, views: &[PolicyJobView<'_>]) -> &[SchedJob] {
        let prior = self.jobs.len().min(views.len());
        self.jobs.truncate(views.len());
        self.from_report.truncate(views.len());
        self.limits.truncate(views.len());
        let mut rebuilt = 0u64;
        let mut reused = 0u64;
        for (k, view) in views.iter().enumerate() {
            let weight = job_weight(weights, view.gputime);
            if k < prior && self.entry_matches(k, view) {
                let job = &mut self.jobs[k];
                job.weight = weight;
                if job.current_placement.as_slice() == view.current_placement {
                    reused += 1;
                } else {
                    job.current_placement.clear();
                    job.current_placement
                        .extend_from_slice(view.current_placement);
                    rebuilt += 1;
                }
                continue;
            }
            let entry = match &view.report {
                Some(report) => SchedJob {
                    id: view.id,
                    model: report.model,
                    min_gpus: report.min_gpus,
                    gpu_cap: report.gpu_cap,
                    weight,
                    current_placement: view.current_placement.to_vec(),
                },
                None => bootstrap_sched_job(
                    view.id,
                    view.limits,
                    weight,
                    view.current_placement.to_vec(),
                ),
            };
            let from_report = view.report.is_some();
            if k < self.jobs.len() {
                self.jobs[k] = entry;
                self.from_report[k] = from_report;
                self.limits[k] = view.limits;
            } else {
                self.jobs.push(entry);
                self.from_report.push(from_report);
                self.limits.push(view.limits);
            }
            rebuilt += 1;
        }
        self.last_rebuilt = rebuilt;
        self.last_reused = reused;
        self.total_rebuilt += rebuilt;
        self.total_reused += reused;
        debug_assert_eq!(
            self.jobs,
            sched_jobs_from_views(weights, views),
            "SchedJobCache diverged from a fresh conversion"
        );
        &self.jobs
    }

    fn entry_matches(&self, k: usize, view: &PolicyJobView<'_>) -> bool {
        let job = &self.jobs[k];
        if job.id != view.id {
            return false;
        }
        match &view.report {
            Some(r) => {
                self.from_report[k]
                    && job.model == r.model
                    && job.min_gpus == r.min_gpus
                    && job.gpu_cap == r.gpu_cap
            }
            None => !self.from_report[k] && self.limits[k] == view.limits,
        }
    }

    /// The jobs produced by the most recent [`Self::refresh`]
    /// (immutable re-borrow, for callers that need the rebuild counts
    /// between refreshing and consuming).
    pub fn jobs(&self) -> &[SchedJob] {
        &self.jobs
    }

    /// Entries rebuilt by the most recent [`Self::refresh`].
    pub fn last_rebuilt(&self) -> u64 {
        self.last_rebuilt
    }

    /// Entries reused untouched by the most recent [`Self::refresh`].
    pub fn last_reused(&self) -> u64 {
        self.last_reused
    }

    /// Entries rebuilt across the cache's lifetime.
    pub fn total_rebuilt(&self) -> u64 {
        self.total_rebuilt
    }

    /// Entries reused across the cache's lifetime.
    pub fn total_reused(&self) -> u64 {
        self.total_reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_caps_fresh_jobs_at_two_gpus() {
        let limits = BatchSizeLimits::new(128, 4096, 512).unwrap();
        let j = bootstrap_sched_job(JobId(7), limits, 1.0, vec![0, 0]);
        assert_eq!(j.id, JobId(7));
        assert_eq!(j.min_gpus, 1);
        assert_eq!(j.gpu_cap, 2);
        assert_eq!(j.weight, 1.0);
        // Perfect scaling, zero noise: goodput is defined at the
        // minimum batch and the model is usable by the GA.
        assert!(
            j.model
                .goodput(pollux_models::PlacementShape::single(), limits.min)
                > 0.0
        );
    }

    #[test]
    fn views_with_reports_use_the_fitted_model() {
        use pollux_agent::PolluxAgent;
        use pollux_models::PlacementShape;
        use pollux_workload::{ModelKind, UserConfig};

        let profile = ModelKind::ResNet18Cifar10.profile();
        let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            agent.observe_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(agent.refit());
        let report = agent.report();
        assert!(report.is_some());

        let placement = vec![0u32; 4];
        let mk_view = |report| PolicyJobView {
            id: JobId(0),
            user: UserConfig {
                gpus: 1,
                batch_size: profile.m0,
            },
            profile: Some(&profile),
            limits: profile.limits,
            report,
            gputime: 3600.0,
            submit_time: 0.0,
            current_placement: &placement,
            started: false,
            batch_size: profile.m0,
            remaining_work: 1e6,
        };
        let weights = WeightConfig::default();
        let fitted = sched_jobs_from_views(&weights, &[mk_view(report)]);
        let fresh = sched_jobs_from_views(&weights, &[mk_view(None)]);
        assert_eq!(fitted.len(), 1);
        // The fitted job inherits the agent's cap; the fresh one is
        // bootstrapped to the exploration cap of 2.
        assert!(fitted[0].gpu_cap >= fresh[0].gpu_cap);
        assert_eq!(fresh[0].gpu_cap, 2);
        // Both carry the same attained-service weight.
        assert_eq!(fitted[0].weight, job_weight(&weights, 3600.0));
        assert_eq!(fitted[0].weight, fresh[0].weight);
    }

    fn bare_view<'a>(id: u32, placement: &'a [u32], gputime: f64) -> PolicyJobView<'a> {
        use pollux_workload::UserConfig;
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus: 1,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 4096, 512).unwrap(),
            report: None,
            gputime,
            submit_time: 0.0,
            current_placement: placement,
            started: false,
            batch_size: 128,
            remaining_work: 1e6,
        }
    }

    #[test]
    fn cache_reuses_quiet_rounds_and_matches_fresh_conversion() {
        let weights = WeightConfig::default();
        let mut cache = SchedJobCache::default();
        let p0 = vec![2u32, 0];
        let p1 = vec![0u32, 2];
        let views = [bare_view(1, &p0, 0.0), bare_view(2, &p1, 0.0)];
        // Round 1: everything is new.
        cache.refresh(&weights, &views);
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (2, 0));
        // Round 2: same views but more attained service — a weight
        // update is not a rebuild.
        let views = [bare_view(1, &p0, 60.0), bare_view(2, &p1, 60.0)];
        let jobs = cache.refresh(&weights, &views).to_vec();
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (0, 2));
        assert_eq!(jobs, sched_jobs_from_views(&weights, &views));
        assert_eq!(jobs[0].weight, job_weight(&weights, 60.0));
    }

    #[test]
    fn cache_rebuilds_on_placement_change_arrival_and_departure() {
        let weights = WeightConfig::default();
        let mut cache = SchedJobCache::default();
        let idle = vec![0u32, 0];
        let views = [bare_view(1, &idle, 0.0), bare_view(2, &idle, 0.0)];
        cache.refresh(&weights, &views);
        // Job 1's placement changed; job 2 departed; job 3 arrived in
        // its position (id mismatch at index 1 forces a rebuild there).
        let moved = vec![2u32, 0];
        let views = [bare_view(1, &moved, 0.0), bare_view(3, &idle, 0.0)];
        cache.refresh(&weights, &views);
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (2, 0));
        assert_eq!(cache.jobs(), &sched_jobs_from_views(&weights, &views)[..]);
        // Shrink: only job 1 remains, untouched since last round.
        let views = [bare_view(1, &moved, 0.0)];
        cache.refresh(&weights, &views);
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (0, 1));
        assert_eq!(cache.jobs().len(), 1);
        assert_eq!(cache.total_rebuilt(), 4);
        assert_eq!(cache.total_reused(), 1);
    }

    #[test]
    fn cache_rebuilds_when_a_job_gains_a_report() {
        use pollux_agent::PolluxAgent;
        use pollux_models::PlacementShape;
        use pollux_workload::{ModelKind, UserConfig};

        let profile = ModelKind::ResNet18Cifar10.profile();
        let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            agent.observe_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(agent.refit());
        let report = agent.report();
        assert!(report.is_some());

        let placement = vec![1u32, 0];
        let mk_view = |report| PolicyJobView {
            id: JobId(1),
            user: UserConfig {
                gpus: 1,
                batch_size: profile.m0,
            },
            profile: Some(&profile),
            limits: profile.limits,
            report,
            gputime: 0.0,
            submit_time: 0.0,
            current_placement: &placement,
            started: true,
            batch_size: profile.m0,
            remaining_work: 1e6,
        };
        let weights = WeightConfig::default();
        let mut cache = SchedJobCache::default();
        // Bootstrap entry first, then the agent's first refit lands:
        // crossing the bootstrap → report boundary is a rebuild.
        cache.refresh(&weights, &[mk_view(None)]);
        let views = [mk_view(report)];
        cache.refresh(&weights, &views);
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (1, 0));
        assert_eq!(cache.jobs(), &sched_jobs_from_views(&weights, &views)[..]);
        // The refit is sticky: the next round reuses the entry.
        cache.refresh(&weights, &views);
        assert_eq!((cache.last_rebuilt(), cache.last_reused()), (0, 1));
    }
}
