//! Blox-style staged scheduler decomposition.
//!
//! Blox ("Blox: A Modular Toolkit for Deep Learning Schedulers",
//! EuroSys '24) observes that most DL cluster schedulers factor into
//! three orthogonal decisions composed over one cluster abstraction:
//!
//! 1. **admission** — which jobs may hold GPUs this round, and how
//!    many ([`AdmissionPolicy`]);
//! 2. **preemption** — which running jobs are eligible to yield their
//!    GPUs to make room ([`PreemptionPolicy`]);
//! 3. **placement** — which concrete GPUs each admitted job gets
//!    ([`PlacementPolicy`]).
//!
//! [`StagedScheduler`] composes one implementation of each stage into
//! a [`SchedulingPolicy`], so the `RoundPlanner`, the simulator
//! engine, and the live `ClusterService` drive a staged policy exactly
//! like a monolithic one. A new scheduling idea is usually one small
//! stage implementation (~100 LoC) instead of a new monolith — see
//! DESIGN.md §10 for the composition contract and the policy zoo.
//!
//! ## Round pipeline
//!
//! ```text
//! schedule(now, jobs, spec, rng):
//!   1. victims = preemption.yield_rows(...)        (running rows only)
//!   2. running jobs NOT in victims are *held*: their current
//!      placement is copied into the matrix verbatim and deducted
//!      from free capacity (a held job whose placement no longer fits
//!      a shrunken cluster is implicitly preempted this round)
//!   3. admitted = admission.admit(..., held, free) (ordered rows+GPUs;
//!      held rows must not appear)
//!   4. placement.place(..., admitted, free, matrix)
//! ```
//!
//! Fully-preemptive policies (Tiresias, Optimus, SRTF) use
//! [`PreemptAll`], which makes the held set empty: admission then
//! ranks *every* job and placement rebuilds the whole matrix, which is
//! exactly the shape of the monolithic baselines — the staged ports
//! reproduce their pre-refactor trajectories byte-for-byte (pinned by
//! `pollux-core/tests/baseline_golden.rs`). Non-preemptive policies
//! (gang FIFO) use [`NoPreemption`], so running jobs are never
//! disturbed and admission fills only the free GPUs.
//!
//! ## Determinism contract
//!
//! Stages draw RNG only through the `rng` argument and are invoked in
//! the fixed order above, so a staged policy inherits the simulator's
//! bit-reproducibility guarantees as long as each stage is itself a
//! pure function of its inputs (all in-repo stages are; none draw).

use crate::policy::{PolicyJobView, SchedulingPolicy};
use pollux_cluster::{AllocationMatrix, ClusterSpec};
use pollux_telemetry::{Counter, Recorder};
use rand::rngs::StdRng;

/// One admission decision: the job at view index `row` may hold
/// `gpus` GPUs this round. Order is meaningful — placement stages
/// honor it (e.g. consolidated placement packs in admitted order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// Index into the round's view slice.
    pub row: usize,
    /// GPUs the job is entitled to this round (> 0).
    pub gpus: u32,
}

/// Stage 1 of a [`StagedScheduler`] round: which running jobs are
/// eligible to yield their GPUs this round.
pub trait PreemptionPolicy: Send {
    /// Stage name (shown in telemetry metadata).
    fn name(&self) -> &'static str;

    /// Returns the view rows of running jobs that may be preempted
    /// this round, ascending, each at most once. Rows of non-running
    /// jobs are ignored by the composer. A job NOT returned here keeps
    /// its current placement untouched.
    fn yield_rows(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Vec<usize>;
}

/// Stage 2 of a [`StagedScheduler`] round: which jobs may hold GPUs
/// this round, in priority order, and how many.
pub trait AdmissionPolicy: Send {
    /// Stage name (shown in telemetry metadata).
    fn name(&self) -> &'static str;

    /// Ranks the round's jobs and returns the ordered entitlement
    /// list. `held[row]` marks running jobs whose placement is already
    /// locked in (they must not be admitted again); `free` is the
    /// remaining per-node capacity after held placements. Admission
    /// decides *counts*, never concrete GPUs — that is placement's
    /// job — but the total admitted GPUs should fit `free` (the
    /// planner clamps defensively, and the stage-invariant proptests
    /// require feasibility from every in-repo stage).
    fn admit(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        held: &[bool],
        free: &[u32],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Vec<Admitted>;

    /// Cloud auto-scaling hook, forwarded from
    /// [`SchedulingPolicy::desired_nodes`] (admission is the stage
    /// that controls cluster entry, so it owns sizing too). Default:
    /// keep the cluster fixed.
    fn desired_nodes(
        &mut self,
        _now: f64,
        _jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Option<u32> {
        None
    }

    /// Batch-size hook, forwarded from
    /// [`SchedulingPolicy::choose_batch_size`] (Or et al. scales the
    /// batch with the workers it admits). Default: keep the job's
    /// current batch size.
    fn choose_batch_size(&self, _job: &PolicyJobView<'_>) -> Option<u64> {
        None
    }
}

/// Stage 3 of a [`StagedScheduler`] round: concrete GPU rows for the
/// admitted jobs.
pub trait PlacementPolicy: Send {
    /// Stage name (shown in telemetry metadata).
    fn name(&self) -> &'static str;

    /// Writes a placement row into `matrix` for each admitted job,
    /// deducting every granted GPU from `free`. Jobs that cannot be
    /// placed within `free` are left at their all-zero row (they stay
    /// pending / become preempted). Must never exceed `free` — the
    /// feasibility of the composed matrix is placement's
    /// responsibility.
    fn place(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        admitted: &[Admitted],
        free: &mut [u32],
        matrix: &mut AllocationMatrix,
        rng: &mut StdRng,
    );
}

/// Every running job may yield: the fully-preemptive stage used by
/// Tiresias, Optimus, SRTF/SRSF, and Or et al.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptAll;

impl PreemptionPolicy for PreemptAll {
    fn name(&self) -> &'static str {
        "preempt-all"
    }

    fn yield_rows(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        jobs.iter()
            .enumerate()
            .filter(|(_, v)| v.is_running())
            .map(|(row, _)| row)
            .collect()
    }
}

/// No running job ever yields: the non-preemptive stage used by gang
/// FIFO. Admission sees only the GPUs left free by running jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPreemption;

impl PreemptionPolicy for NoPreemption {
    fn name(&self) -> &'static str {
        "no-preemption"
    }

    fn yield_rows(
        &mut self,
        _now: f64,
        _jobs: &[PolicyJobView<'_>],
        _spec: &ClusterSpec,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        Vec::new()
    }
}

/// Attempts to place `need` GPUs onto the nodes with free capacities
/// `free`, using as few nodes as possible (fullest-free-first).
///
/// Returns the per-node allocation row, or `None` when the total free
/// capacity is insufficient. On success the `free` vector is updated
/// in place.
pub fn pack_consolidated(need: u32, free: &mut [u32]) -> Option<Vec<u32>> {
    if need == 0 {
        return Some(vec![0; free.len()]);
    }
    let total: u32 = free.iter().sum();
    if total < need {
        return None;
    }
    // Nodes sorted by free capacity descending (stable on index for
    // determinism).
    let mut order: Vec<usize> = (0..free.len()).collect();
    order.sort_by(|&a, &b| free[b].cmp(&free[a]).then(a.cmp(&b)));

    let mut row = vec![0u32; free.len()];
    let mut remaining = need;
    for &n in &order {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(free[n]);
        if take > 0 {
            row[n] = take;
            free[n] -= take;
            remaining -= take;
        }
    }
    debug_assert_eq!(remaining, 0, "total capacity was checked upfront");
    Some(row)
}

/// Tries to keep a job's existing placement: succeeds when every node
/// still has the required free capacity. On success, capacity is
/// deducted from `free`.
pub fn keep_placement(current: &[u32], free: &mut [u32]) -> bool {
    if current.len() != free.len() {
        return false;
    }
    if current.iter().zip(free.iter()).any(|(&c, &f)| c > f) {
        return false;
    }
    for (f, &c) in free.iter_mut().zip(current) {
        *f -= c;
    }
    true
}

/// The shared consolidated-placement stage: admitted jobs whose
/// current placement already matches their entitlement keep it (no
/// gratuitous checkpoint-restart); everyone else is packed onto as few
/// nodes as possible, fullest-free-first.
///
/// This is the one placement heuristic Tiresias and Optimus both used
/// inline pre-decomposition; the only degree of freedom between them
/// is the packing order, so it is a constructor choice here rather
/// than two copies of the loop.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidatedPlacement {
    /// Pack jobs largest-entitlement-first (Optimus) instead of in
    /// admitted order (Tiresias). Ties keep admitted order either way
    /// (stable sort).
    largest_first: bool,
}

impl ConsolidatedPlacement {
    /// Packs in admitted (priority) order — Tiresias's choice.
    pub fn admitted_order() -> Self {
        Self {
            largest_first: false,
        }
    }

    /// Packs largest jobs first — Optimus's choice (big jobs get the
    /// contiguous capacity, small jobs fill the gaps).
    pub fn largest_first() -> Self {
        Self {
            largest_first: true,
        }
    }
}

impl PlacementPolicy for ConsolidatedPlacement {
    fn name(&self) -> &'static str {
        if self.largest_first {
            "consolidated-largest-first"
        } else {
            "consolidated"
        }
    }

    fn place(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        admitted: &[Admitted],
        free: &mut [u32],
        matrix: &mut AllocationMatrix,
        _rng: &mut StdRng,
    ) {
        // First pass: keep placements whose GPU count already matches
        // the entitlement, to avoid gratuitous checkpoint-restarts.
        let mut needs_placing: Vec<Admitted> = Vec::new();
        for &a in admitted {
            let Some(view) = jobs.get(a.row) else {
                continue;
            };
            let current: u32 = view.current_placement.iter().sum();
            if a.gpus > 0 && current == a.gpus && keep_placement(view.current_placement, free) {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    matrix.set(a.row, n, g);
                }
            } else if a.gpus > 0 {
                needs_placing.push(a);
            }
        }

        // Second pass: consolidated packing for the rest.
        if self.largest_first {
            needs_placing.sort_by_key(|a| std::cmp::Reverse(a.gpus));
        }
        for a in needs_placing {
            if let Some(row) = pack_consolidated(a.gpus, free) {
                matrix.set_row(a.row, row);
            }
        }
    }
}

/// Composes one admission, one placement, and one preemption stage
/// into a [`SchedulingPolicy`] (see the module docs for the round
/// pipeline). Construct with [`StagedScheduler::new`]; the policy
/// `name` is what experiment tables and `SimResult::policy` report.
pub struct StagedScheduler {
    name: &'static str,
    admission: Box<dyn AdmissionPolicy>,
    placement: Box<dyn PlacementPolicy>,
    preemption: Box<dyn PreemptionPolicy>,
    /// Hoisted per-round counters: pending jobs granted GPUs /
    /// running jobs stripped of them. Disabled (free) by default.
    admitted_ctr: Counter,
    preempted_ctr: Counter,
    /// Whether a live recorder is attached — gates the O(jobs)
    /// post-round counter scan so recorder-free runs pay nothing.
    telemetry_live: bool,
}

impl std::fmt::Debug for StagedScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedScheduler")
            .field("name", &self.name)
            .field("admission", &self.admission.name())
            .field("placement", &self.placement.name())
            .field("preemption", &self.preemption.name())
            .finish()
    }
}

impl StagedScheduler {
    /// Composes the three stages under a policy `name`.
    pub fn new(
        name: &'static str,
        admission: impl AdmissionPolicy + 'static,
        placement: impl PlacementPolicy + 'static,
        preemption: impl PreemptionPolicy + 'static,
    ) -> Self {
        Self {
            name,
            admission: Box::new(admission),
            placement: Box::new(placement),
            preemption: Box::new(preemption),
            admitted_ctr: Counter::detached(),
            preempted_ctr: Counter::detached(),
            telemetry_live: false,
        }
    }

    /// The composed stage names, `(admission, placement, preemption)`.
    pub fn stage_names(&self) -> (&'static str, &'static str, &'static str) {
        (
            self.admission.name(),
            self.placement.name(),
            self.preemption.name(),
        )
    }
}

impl SchedulingPolicy for StagedScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn schedule(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix {
        let num_nodes = spec.num_nodes();
        let mut matrix = AllocationMatrix::zeros(jobs.len(), num_nodes);
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();

        // Stage 1: preemption eligibility.
        let victims = self.preemption.yield_rows(now, jobs, spec, rng);
        let mut may_yield = vec![false; jobs.len()];
        for &row in &victims {
            if row < jobs.len() {
                may_yield[row] = true;
            }
        }

        // Running jobs that may not yield hold their placement
        // verbatim. A held placement that no longer fits (the cluster
        // shrank underneath it) falls through: the job is implicitly
        // preempted this round.
        let mut held = vec![false; jobs.len()];
        for (row, view) in jobs.iter().enumerate() {
            if view.is_running()
                && !may_yield[row]
                && keep_placement(view.current_placement, &mut free)
            {
                for (n, &g) in view.current_placement.iter().enumerate() {
                    matrix.set(row, n, g);
                }
                held[row] = true;
            }
        }

        // Stage 2: admission over everything not already held.
        let admitted = self.admission.admit(now, jobs, &held, &free, spec, rng);
        debug_assert!(
            admitted.iter().all(|a| !held.get(a.row).unwrap_or(&false)),
            "admission must not re-admit held rows"
        );

        // Stage 3: placement of the admitted jobs.
        self.placement
            .place(now, jobs, &admitted, &mut free, &mut matrix, rng);

        // Observational round accounting: entrants (pending jobs that
        // now hold GPUs) and evictions (running jobs that lost all of
        // theirs). Gated on a live recorder so the scan costs nothing
        // otherwise; counters never feed back into the schedule.
        if self.telemetry_live {
            let mut entered = 0u64;
            let mut evicted = 0u64;
            for (row, view) in jobs.iter().enumerate() {
                let has = matrix.gpus_of(row) > 0;
                match (view.is_running(), has) {
                    (false, true) => entered += 1,
                    (true, false) => evicted += 1,
                    _ => {}
                }
            }
            self.admitted_ctr.add(entered);
            self.preempted_ctr.add(evicted);
        }

        matrix
    }

    fn desired_nodes(
        &mut self,
        now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<u32> {
        self.admission.desired_nodes(now, jobs, spec, rng)
    }

    fn choose_batch_size(&self, job: &PolicyJobView<'_>) -> Option<u64> {
        self.admission.choose_batch_size(job)
    }

    fn attach_telemetry(&mut self, recorder: Recorder) {
        self.admitted_ctr = recorder.counter("control", "admitted");
        self.preempted_ctr = recorder.counter("control", "preempted");
        self.telemetry_live = recorder.is_enabled();
        // Stage identities, so captures name who made each decision.
        recorder.meta("sched", "admission", self.admission.name());
        recorder.meta("sched", "placement", self.placement.name());
        recorder.meta("sched", "preemption", self.preemption.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::BatchSizeLimits;
    use pollux_workload::UserConfig;
    use rand::SeedableRng;

    fn view<'a>(id: u32, placement: &'a [u32], submit: f64) -> PolicyJobView<'a> {
        PolicyJobView {
            id: JobId(id),
            user: UserConfig {
                gpus: 2,
                batch_size: 128,
            },
            profile: None,
            limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
            report: None,
            gputime: 0.0,
            submit_time: submit,
            current_placement: placement,
            started: false,
            batch_size: 128,
            remaining_work: 1e6,
        }
    }

    /// FIFO admission over free GPUs: the minimal test stage.
    struct FifoTest;

    impl AdmissionPolicy for FifoTest {
        fn name(&self) -> &'static str {
            "fifo-test"
        }
        fn admit(
            &mut self,
            _now: f64,
            jobs: &[PolicyJobView<'_>],
            held: &[bool],
            free: &[u32],
            _spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> Vec<Admitted> {
            let mut budget: u32 = free.iter().sum();
            let mut order: Vec<usize> = (0..jobs.len()).filter(|&r| !held[r]).collect();
            order.sort_by(|&a, &b| {
                jobs[a]
                    .submit_time
                    .total_cmp(&jobs[b].submit_time)
                    .then(a.cmp(&b))
            });
            let mut admitted = Vec::new();
            for row in order {
                let need = jobs[row].user.gpus.max(1);
                if need <= budget {
                    admitted.push(Admitted { row, gpus: need });
                    budget -= need;
                }
            }
            admitted
        }
    }

    #[test]
    fn preempt_all_composes_a_full_rebuild() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let held_row = vec![2u32, 0];
        let idle = vec![0u32, 0];
        // A running late job and a pending early job: with PreemptAll
        // and FIFO admission, the early job wins the GPUs.
        let views = [view(0, &held_row, 100.0), view(1, &idle, 0.0)];
        let mut staged = StagedScheduler::new(
            "fifo-preemptive",
            FifoTest,
            ConsolidatedPlacement::admitted_order(),
            PreemptAll,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let m = staged.schedule(0.0, &views, &spec, &mut rng);
        assert_eq!(m.gpus_of(1), 2);
        // Both fit on 8 GPUs, so the running job stays too — and keeps
        // its exact placement (admitted with its current count).
        assert_eq!(m.row(0), &[2, 0]);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn no_preemption_holds_running_jobs_verbatim() {
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let held_row = vec![4u32];
        let idle = vec![0u32];
        // The running job occupies the whole node; a higher-priority
        // pending job must NOT displace it under NoPreemption.
        let views = [view(0, &held_row, 100.0), view(1, &idle, 0.0)];
        let mut staged = StagedScheduler::new(
            "fifo-nonpreemptive",
            FifoTest,
            ConsolidatedPlacement::admitted_order(),
            NoPreemption,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let m = staged.schedule(0.0, &views, &spec, &mut rng);
        assert_eq!(m.row(0), &[4]);
        assert_eq!(m.gpus_of(1), 0, "no free GPUs to admit into");
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn held_job_on_shrunk_cluster_is_implicitly_preempted() {
        // The job holds GPUs on a node that no longer exists; keep
        // fails, so the row comes back empty (and the freed capacity
        // is available to admission).
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let stale = vec![2u32, 2]; // two-node placement, one-node cluster
        let views = [view(0, &stale, 0.0)];
        let mut staged = StagedScheduler::new(
            "fifo-nonpreemptive",
            FifoTest,
            ConsolidatedPlacement::admitted_order(),
            NoPreemption,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let m = staged.schedule(0.0, &views, &spec, &mut rng);
        // The job was not held, so FIFO re-admits it into the free
        // node at its requested 2 GPUs.
        assert_eq!(m.row(0), &[2]);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn consolidated_placement_keeps_matching_then_packs() {
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let cur0 = vec![0u32, 2, 0];
        let idle = vec![0u32, 0, 0];
        let views = [view(0, &cur0, 0.0), view(1, &idle, 1.0)];
        let admitted = [Admitted { row: 0, gpus: 2 }, Admitted { row: 1, gpus: 4 }];
        let mut matrix = AllocationMatrix::zeros(2, 3);
        let mut rng = StdRng::seed_from_u64(0);
        ConsolidatedPlacement::admitted_order().place(
            0.0,
            &views,
            &admitted,
            &mut free,
            &mut matrix,
            &mut rng,
        );
        // Job 0 keeps its exact row; job 1 packs onto one full node.
        assert_eq!(matrix.row(0), &[0, 2, 0]);
        assert_eq!(matrix.nodes_of(1), 1);
        assert_eq!(matrix.gpus_of(1), 4);
    }

    #[test]
    fn largest_first_packs_big_jobs_before_small() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
        let idle = vec![0u32, 0];
        let views = [view(0, &idle, 0.0), view(1, &idle, 1.0)];
        // Admitted order is small-then-big; largest-first must give
        // the big job the single-node placement.
        let admitted = [Admitted { row: 0, gpus: 2 }, Admitted { row: 1, gpus: 4 }];
        let mut matrix = AllocationMatrix::zeros(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        ConsolidatedPlacement::largest_first().place(
            0.0,
            &views,
            &admitted,
            &mut free,
            &mut matrix,
            &mut rng,
        );
        assert_eq!(matrix.nodes_of(1), 1, "big job consolidated first");
        assert_eq!(matrix.gpus_of(0), 2);
    }

    #[test]
    fn admitted_counters_track_entrants_and_evictions() {
        use pollux_telemetry::{MemorySink, Sink};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new(64));
        let recorder = Recorder::new(sink.clone() as Arc<dyn Sink>);
        // Only one 2-GPU job fits, so FIFO order decides who runs.
        let spec = ClusterSpec::homogeneous(1, 2).unwrap();
        let held_row = vec![2u32];
        let idle = vec![0u32];
        let views = [view(0, &held_row, 100.0), view(1, &idle, 0.0)];
        let mut staged = StagedScheduler::new(
            "fifo-preemptive",
            FifoTest,
            ConsolidatedPlacement::admitted_order(),
            PreemptAll,
        );
        staged.attach_telemetry(recorder.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let m = staged.schedule(0.0, &views, &spec, &mut rng);
        // The earlier pending job evicts the running one.
        assert_eq!(m.gpus_of(1), 2);
        assert_eq!(m.gpus_of(0), 0);
        assert_eq!(recorder.counter_value("control", "admitted"), 1);
        assert_eq!(recorder.counter_value("control", "preempted"), 1);
    }
}
