//! The Pollux scheduling policy — the paper's primary contribution,
//! assembled from the workspace's building blocks:
//!
//! - each job's `PolluxAgent` (from `pollux-agent`) profiles
//!   throughput, estimates the gradient noise scale, fits θsys, and
//!   tunes `(m, η)` for its current allocation;
//! - `PolluxSched` (from `pollux-sched`) re-optimizes cluster-wide
//!   allocations every interval with a genetic algorithm over the
//!   jobs' goodput models;
//! - optionally, the goodput-driven autoscaler resizes the cluster in
//!   cloud settings (Sec. 4.2.2).
//!
//! [`policy::PolluxPolicy`] packages all of this behind the shared
//! control plane's `SchedulingPolicy` interface (from
//! `pollux-control`, driven by both the simulator's engine and the
//! live [`service::ClusterService`]); [`runner`] provides one-call
//! drivers used by the examples and experiments.

pub mod policy;
pub mod runner;
pub mod service;

pub use policy::{PolluxConfig, PolluxPolicy};
pub use runner::{run_trace, run_trace_recorded, ConfigChoice};
pub use service::{ClusterService, JobHandle, ServiceConfig, ServiceError};
