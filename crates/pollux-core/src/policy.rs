//! `PolluxPolicy`: the co-adaptive scheduler behind the
//! `SchedulingPolicy` interface.

use pollux_cluster::{AllocationMatrix, ClusterSpec, Topology};
use pollux_control::{
    sched_jobs_from_views, PolicyJobView, SchedIntervalSample, SchedJobCache, SchedulingPolicy,
};
use pollux_sched::{
    AutoscaleConfig, Autoscaler, PolluxSched, SchedConfig, SchedJob, SpeedupTableStats,
    WeightConfig,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Configuration of the full Pollux policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolluxConfig {
    /// Scheduler settings (GA, weights, interval).
    pub sched: SchedConfig,
    /// Cloud auto-scaling; `None` keeps a fixed cluster.
    pub autoscale: Option<AutoscaleConfig>,
    /// Let agents re-tune batch sizes and learning rates (the paper's
    /// co-adaptation). Disabling this yields an *only-resource-adaptive*
    /// Pollux — the GA allocator over fixed user batch sizes — used by
    /// the co-adaptation ablation.
    pub adapt_batch_size: bool,
}

impl Default for PolluxConfig {
    fn default() -> Self {
        Self {
            sched: SchedConfig::default(),
            autoscale: None,
            adapt_batch_size: true,
        }
    }
}

/// The Pollux scheduling policy.
pub struct PolluxPolicy {
    sched: PolluxSched,
    weights: WeightConfig,
    autoscaler: Option<Autoscaler>,
    adapt_batch_size: bool,
    /// Cross-round view → `SchedJob` cache: a quiet round reuses every
    /// entry instead of re-deriving models and re-allocating placement
    /// rows. Bit-identical to a fresh conversion by construction.
    cache: SchedJobCache,
    /// Hoisted `control/views_rebuilt` counter (no-op until telemetry
    /// is attached).
    views_rebuilt_ctr: pollux_telemetry::Counter,
}

impl PolluxPolicy {
    /// Creates the policy. Returns `None` when the autoscale
    /// configuration is invalid.
    pub fn new(config: PolluxConfig) -> Option<Self> {
        let autoscaler = match config.autoscale {
            Some(c) => Some(Autoscaler::new(c)?),
            None => None,
        };
        Some(Self {
            sched: PolluxSched::new(config.sched),
            weights: config.sched.weights,
            autoscaler,
            adapt_batch_size: config.adapt_batch_size,
            cache: SchedJobCache::default(),
            views_rebuilt_ctr: pollux_telemetry::Recorder::disabled()
                .counter("control", "views_rebuilt"),
        })
    }

    /// Converts the policy views into scheduler jobs via the shared
    /// control-plane helper, which synthesizes the prior-driven
    /// bootstrap model ([`pollux_control::bootstrap_sched_job`]) for
    /// jobs without an agent report.
    fn sched_jobs(&self, jobs: &[PolicyJobView<'_>]) -> Vec<SchedJob> {
        sched_jobs_from_views(&self.weights, jobs)
    }

    /// Cumulative dense speedup-table counters across every interval
    /// scheduled so far (backs the `pollux.sched.speedup.stats`
    /// service key).
    pub fn speedup_stats(&self) -> SpeedupTableStats {
        self.sched.speedup_stats()
    }
}

impl SchedulingPolicy for PolluxPolicy {
    fn name(&self) -> &'static str {
        if self.adapt_batch_size {
            "pollux"
        } else {
            "pollux-fixed-batch"
        }
    }

    fn adapts_batch_size(&self) -> bool {
        self.adapt_batch_size
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> AllocationMatrix {
        // The cached conversion is bit-identical to `self.sched_jobs`
        // (debug_assert-checked inside `refresh`); a quiet round
        // rebuilds zero entries.
        self.cache.refresh(&self.weights, jobs);
        self.views_rebuilt_ctr.add(self.cache.last_rebuilt());
        self.sched.schedule(self.cache.jobs(), spec, rng)
    }

    fn configure_parallelism(&mut self, threads: usize) {
        self.sched.set_threads(threads);
    }

    fn configure_topology(&mut self, topology: Option<&Topology>) {
        self.sched.set_topology(topology.cloned());
    }

    fn take_interval_stats(&mut self) -> Option<SchedIntervalSample> {
        // Wall-clock build/evolve timings are NOT part of the sample:
        // they flow through the telemetry recorder (sched/table_build
        // and sched/ga_evolve spans) so the deterministic serialized
        // output stays machine-independent.
        self.sched
            .take_interval_stats()
            .map(|s| SchedIntervalSample {
                time: 0.0, // Stamped by the engine.
                generations_run: s.ga.generations_run,
                fitness_evals: s.ga.fitness_evals,
                incremental_evals: s.ga.incremental_evals,
                rows_recomputed: s.ga.rows_recomputed,
                table_hits: s.speedup.hits,
                table_misses: s.speedup.misses,
                table_solves: s.speedup.solves,
            })
    }

    fn take_round_explain(&mut self) -> Option<pollux_telemetry::RoundExplain> {
        // Built by PolluxSched only while an enabled recorder is
        // attached; the driver stamps time and co-residents.
        self.sched.take_round_explain()
    }

    fn attach_telemetry(&mut self, recorder: pollux_telemetry::Recorder) {
        // Hoist the counter handle once; `schedule` then pays one
        // atomic add per round instead of a registry lookup.
        self.views_rebuilt_ctr = recorder.counter("control", "views_rebuilt");
        self.sched.set_recorder(recorder);
    }

    fn desired_nodes(
        &mut self,
        _now: f64,
        jobs: &[PolicyJobView<'_>],
        spec: &ClusterSpec,
        rng: &mut StdRng,
    ) -> Option<u32> {
        let autoscaler = self.autoscaler.as_ref()?;
        if jobs.is_empty() {
            return None;
        }
        let sched_jobs = self.sched_jobs(jobs);
        Some(
            autoscaler
                .recommend(&sched_jobs, spec.num_nodes() as u32, rng)
                .nodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_agent::PolluxAgent;
    use pollux_cluster::JobId;
    use pollux_models::{GradientStats, PlacementShape};
    use pollux_sched::GaConfig;
    use pollux_workload::{ModelKind, ModelProfile, UserConfig};
    use rand::SeedableRng;

    fn quick_config() -> PolluxConfig {
        let mut c = PolluxConfig::default();
        c.sched.ga = GaConfig {
            population: 20,
            generations: 10,
            ..Default::default()
        };
        c
    }

    struct Owned {
        profile: ModelProfile,
        agent: Option<PolluxAgent>,
        placement: Vec<u32>,
        gputime: f64,
    }

    impl Owned {
        fn fresh(kind: ModelKind, nodes: usize) -> Self {
            Self {
                profile: kind.profile(),
                agent: None,
                placement: vec![0; nodes],
                gputime: 0.0,
            }
        }

        fn fitted(kind: ModelKind, phi: f64, nodes: usize) -> Self {
            let profile = kind.profile();
            let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
            for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
                let shape = PlacementShape::new(g, n).unwrap();
                agent.observe_iteration(
                    shape,
                    profile.m0,
                    profile.params.t_iter(shape, profile.m0),
                );
            }
            assert!(agent.refit());
            agent.observe_gradient_stats(GradientStats::new(phi / profile.m0 as f64, 1.0).unwrap());
            Self {
                profile,
                agent: Some(agent),
                placement: vec![0; nodes],
                gputime: 0.0,
            }
        }

        fn view(&self, id: u32) -> PolicyJobView<'_> {
            PolicyJobView {
                id: JobId(id),
                user: UserConfig {
                    gpus: 1,
                    batch_size: self.profile.m0,
                },
                profile: Some(&self.profile),
                limits: self.profile.limits,
                report: self.agent.as_ref().and_then(|a| a.report()),
                gputime: self.gputime,
                submit_time: id as f64,
                current_placement: &self.placement,
                started: false,
                batch_size: self.profile.m0,
                remaining_work: 1e6,
            }
        }
    }

    #[test]
    fn fresh_jobs_start_small() {
        // Two brand-new jobs on a big cluster: the bootstrap cap of 2
        // keeps each at 1-2 GPUs.
        let a = Owned::fresh(ModelKind::ResNet18Cifar10, 4);
        let b = Owned::fresh(ModelKind::NeuMFMovieLens, 4);
        let jobs = vec![a.view(0), b.view(1)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut p = PolluxPolicy::new(quick_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        for j in 0..2 {
            let g = m.gpus_of(j);
            assert!((1..=2).contains(&g), "job {j} got {g} GPUs:\n{m}");
        }
    }

    #[test]
    fn fitted_scalable_jobs_grow() {
        let mut owned = Owned::fitted(ModelKind::ResNet18Cifar10, 4000.0, 4);
        // The job has held 8 GPUs before: cap is 16.
        owned
            .agent
            .as_mut()
            .unwrap()
            .note_allocation(PlacementShape::new(8, 2).unwrap());
        let jobs = vec![owned.view(0)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut p = PolluxPolicy::new(quick_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(
            m.gpus_of(0) >= 8,
            "scalable job got {} GPUs:\n{m}",
            m.gpus_of(0)
        );
    }

    #[test]
    fn respects_agent_scale_cap() {
        // Fitted job that has only ever held 1 GPU: cap 2.
        let owned = Owned::fitted(ModelKind::ResNet18Cifar10, 50_000.0, 4);
        // note_allocation was called with up to 8 GPUs inside fitted();
        // build a fresh one with a single observation instead.
        let profile = ModelKind::ResNet18Cifar10.profile();
        let mut agent = PolluxAgent::new(profile.m0, profile.eta0, profile.limits).unwrap();
        let s1 = PlacementShape::single();
        agent.observe_iteration(s1, profile.m0, profile.params.t_iter(s1, profile.m0));
        assert!(agent.refit());
        agent.observe_gradient_stats(GradientStats::new(400.0, 1.0).unwrap());
        let small = Owned {
            profile,
            agent: Some(agent),
            placement: vec![0; 4],
            gputime: 0.0,
        };
        let jobs = vec![small.view(0)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut p = PolluxPolicy::new(quick_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(m.gpus_of(0) <= 2, "cap violated: {} GPUs", m.gpus_of(0));
        drop(owned);
    }

    #[test]
    fn weights_decay_with_gputime() {
        // A job far past the GPU-time threshold gets a lower weight,
        // shifting allocations toward the fresh job when both compete.
        let mut old = Owned::fitted(ModelKind::ResNet18Cifar10, 4000.0, 1);
        old.gputime = 100.0 * 3600.0;
        old.agent
            .as_mut()
            .unwrap()
            .note_allocation(PlacementShape::new(8, 2).unwrap());
        let mut fresh = Owned::fitted(ModelKind::ResNet18Cifar10, 4000.0, 1);
        fresh
            .agent
            .as_mut()
            .unwrap()
            .note_allocation(PlacementShape::new(8, 2).unwrap());
        let jobs = vec![old.view(0), fresh.view(1)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut p = PolluxPolicy::new(quick_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let m = p.schedule(0.0, &jobs, &spec, &mut rng);
        assert!(
            m.gpus_of(1) >= m.gpus_of(0),
            "fresh {} vs old {}\n{m}",
            m.gpus_of(1),
            m.gpus_of(0)
        );
    }

    #[test]
    fn autoscaling_hook_recommends_nodes() {
        let mut config = quick_config();
        config.autoscale = Some(AutoscaleConfig {
            max_nodes: 8,
            ga: GaConfig {
                population: 16,
                generations: 8,
                ..Default::default()
            },
            ..Default::default()
        });
        let owned = Owned::fitted(ModelKind::ResNet18Cifar10, 100_000.0, 4);
        let jobs = vec![owned.view(0)];
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut p = PolluxPolicy::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = p.desired_nodes(0.0, &jobs, &spec, &mut rng);
        assert!(n.is_some());
        assert!((1..=8).contains(&n.unwrap()));
        // Without autoscale config, the hook declines.
        let mut p2 = PolluxPolicy::new(quick_config()).unwrap();
        assert_eq!(p2.desired_nodes(0.0, &jobs, &spec, &mut rng), None);
    }

    #[test]
    fn invalid_autoscale_config_rejected() {
        let mut config = quick_config();
        config.autoscale = Some(AutoscaleConfig {
            low_util: 0.9,
            high_util: 0.1,
            ..Default::default()
        });
        assert!(PolluxPolicy::new(config).is_none());
    }
}
