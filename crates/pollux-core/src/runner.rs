//! One-call simulation drivers used by the examples and experiments.

use pollux_cluster::ClusterSpec;
use pollux_simulator::{SchedulingPolicy, SimBuildError, SimConfig, SimResult, Simulation};
use pollux_telemetry::Recorder;
use pollux_workload::JobSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which user configuration each job is submitted with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigChoice {
    /// Every job uses its idealized TunedJobs configuration (Sec. 5.2).
    Tuned,
    /// Every job uses its realistic trace-derived configuration
    /// (Sec. 5.3.1).
    Realistic,
    /// A random `fraction` of jobs are user-configured (realistic),
    /// the rest tuned — the Fig 7 sweep.
    Mixed {
        /// Fraction of realistic (user-configured) jobs in [0, 1].
        fraction: f64,
        /// Seed for the per-job choice.
        seed: u64,
    },
}

/// Runs one `trace` under `policy` on `spec`, selecting per-job user
/// configurations per `choice`.
///
/// # Errors
///
/// [`SimBuildError`] when the simulation inputs are invalid (empty
/// trace, bad config, non-finite submit time).
pub fn run_trace<P: SchedulingPolicy>(
    policy: P,
    trace: &[JobSpec],
    choice: ConfigChoice,
    spec: ClusterSpec,
    sim: SimConfig,
) -> Result<SimResult, SimBuildError> {
    run_trace_recorded(policy, trace, choice, spec, sim, Recorder::disabled())
}

/// [`run_trace`] with a telemetry recorder attached to the simulation
/// (and, through it, the policy and every job agent). Recording is
/// observational only: the returned `SimResult` is bit-identical to a
/// recorder-free run with the same inputs.
///
/// # Errors
///
/// [`SimBuildError`] when the simulation inputs are invalid.
pub fn run_trace_recorded<P: SchedulingPolicy>(
    policy: P,
    trace: &[JobSpec],
    choice: ConfigChoice,
    spec: ClusterSpec,
    sim: SimConfig,
    recorder: Recorder,
) -> Result<SimResult, SimBuildError> {
    let submissions = match choice {
        ConfigChoice::Tuned => trace.iter().map(|j| (j.clone(), j.tuned)).collect(),
        ConfigChoice::Realistic => trace.iter().map(|j| (j.clone(), j.realistic)).collect(),
        ConfigChoice::Mixed { fraction, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            trace
                .iter()
                .map(|j| {
                    let user = if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        j.realistic
                    } else {
                        j.tuned
                    };
                    (j.clone(), user)
                })
                .collect()
        }
    };
    Ok(Simulation::try_new(sim, spec, policy, submissions)?
        .with_recorder(recorder)
        .run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_workload::{TraceConfig, TraceGenerator};

    use crate::policy::{PolluxConfig, PolluxPolicy};
    use pollux_sched::GaConfig;

    fn tiny_trace() -> Vec<JobSpec> {
        TraceGenerator::new(TraceConfig {
            num_jobs: 6,
            duration_hours: 0.5,
            seed: 9,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .into_iter()
        .filter(|j| {
            matches!(
                j.kind,
                pollux_workload::ModelKind::ResNet18Cifar10
                    | pollux_workload::ModelKind::NeuMFMovieLens
            )
        })
        .collect()
    }

    fn quick_pollux() -> PolluxPolicy {
        let mut c = PolluxConfig::default();
        c.sched.ga = GaConfig {
            population: 16,
            generations: 8,
            ..Default::default()
        };
        PolluxPolicy::new(c).unwrap()
    }

    #[test]
    fn pollux_end_to_end_completes_small_jobs() {
        let trace = tiny_trace();
        assert!(!trace.is_empty());
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 10.0 * 3600.0,
            ..Default::default()
        };
        let res = run_trace(quick_pollux(), &trace, ConfigChoice::Tuned, spec, sim).unwrap();
        assert_eq!(res.policy, "pollux");
        assert_eq!(res.records.len(), trace.len());
        assert_eq!(res.unfinished(), 0, "unfinished jobs: {:#?}", res.records);
        // Pollux adapts batch sizes, so processed examples can greatly
        // exceed useful examples; sanity-check the ratio.
        let eff = res.avg_cluster_efficiency().unwrap();
        assert!(eff > 0.5 && eff <= 1.0, "cluster efficiency = {eff}");
    }

    #[test]
    fn mixed_choice_is_deterministic_per_seed() {
        let trace = tiny_trace();
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 10.0 * 3600.0,
            ..Default::default()
        };
        let choice = ConfigChoice::Mixed {
            fraction: 0.5,
            seed: 7,
        };
        let a = run_trace(quick_pollux(), &trace, choice, spec.clone(), sim).unwrap();
        let b = run_trace(quick_pollux(), &trace, choice, spec, sim).unwrap();
        let jcts = |r: &SimResult| r.jcts();
        assert_eq!(jcts(&a), jcts(&b));
    }

    #[test]
    fn invalid_inputs_surface_typed_errors() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let err = run_trace(
            quick_pollux(),
            &[],
            ConfigChoice::Tuned,
            spec.clone(),
            SimConfig::default(),
        )
        .err();
        assert_eq!(err, Some(SimBuildError::EmptyWorkload));

        let bad = SimConfig {
            tick_seconds: 0.0,
            ..Default::default()
        };
        let err = run_trace(
            quick_pollux(),
            &tiny_trace(),
            ConfigChoice::Tuned,
            spec,
            bad,
        )
        .err();
        assert_eq!(err, Some(SimBuildError::InvalidConfig));
    }
}
