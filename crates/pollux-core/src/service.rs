//! A live cluster-service embedding of Pollux (Sec. 4.3).
//!
//! The paper deploys `PolluxSched` as a long-running service (in
//! Kubernetes) and `PolluxAgent` as a library linked into each training
//! job. This module provides the equivalent embeddable control plane:
//!
//! - [`ClusterService`] owns the shared state and a background
//!   scheduler thread that re-optimizes allocations at a fixed
//!   interval (60 s in the paper; configurable down to milliseconds
//!   for tests);
//! - [`JobHandle`] is the per-job client: training code reports
//!   iteration timings and gradient statistics through it, and reads
//!   back its current placement and `(m*, η)` tuning decision.
//!
//! All state is behind `parking_lot` locks; the scheduler thread is
//! driven by a bounded `std::sync::mpsc` command channel whose
//! `recv_timeout` doubles as the periodic ticker, so the service shuts
//! down deterministically.

use crate::policy::PolluxConfig;
use parking_lot::{Mutex, RwLock};
use pollux_agent::{PolluxAgent, TuningDecision};
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId};
use pollux_models::{BatchSizeLimits, GradientStats, PlacementShape};
use pollux_sched::{
    job_weight, Autoscaler, PolluxSched, SchedJob, SpeedupTableStats, WeightConfig,
};
use pollux_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the live service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pollux policy configuration (GA, weights, optional autoscale).
    /// Fitness-evaluation worker threads are set via
    /// `pollux.sched.ga.threads` (1 = serial); results are identical
    /// for any thread count under a fixed [`Self::seed`].
    pub pollux: PolluxConfig,
    /// Wall-clock interval between scheduling rounds.
    pub interval: Duration,
    /// RNG seed for the genetic algorithm.
    pub seed: u64,
    /// Telemetry recorder shared by the service, its scheduler, and
    /// every job's refits. Disabled by default; attach one built on a
    /// sink (e.g. `JsonlSink`) to capture `service/round` spans and
    /// scheduler counters.
    pub telemetry: Recorder,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pollux: PolluxConfig::default(),
            interval: Duration::from_secs(60),
            seed: 0,
            telemetry: Recorder::disabled(),
        }
    }
}

/// Commands accepted by the scheduler thread.
enum Command {
    /// Run a scheduling round now (in addition to the ticker).
    Schedule,
    /// Stop the scheduler thread.
    Shutdown,
}

struct JobEntry {
    agent: PolluxAgent,
    gputime_seconds: f64,
    placement: Vec<u32>,
}

struct Shared {
    spec: RwLock<ClusterSpec>,
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    /// Monotone counter of completed scheduling rounds.
    rounds: RwLock<u64>,
    /// Cumulative dense speedup-table counters, mirrored out of the
    /// scheduler thread after every round (the
    /// `pollux.sched.speedup.stats` service key).
    speedup_stats: RwLock<SpeedupTableStats>,
    weights: WeightConfig,
    recorder: Recorder,
}

impl Shared {
    /// One scheduling round: snapshot job models, run the GA, apply
    /// the resulting placements.
    fn schedule_once(
        &self,
        sched: &mut PolluxSched,
        autoscaler: Option<&Autoscaler>,
        rng: &mut StdRng,
    ) {
        let _span = self.recorder.span("service", "round");
        self.recorder.incr("service", "rounds", 1);
        // Snapshot job state under the lock, then release it before the
        // (potentially long) genetic optimization so training threads
        // are never blocked behind a scheduling round.
        let (ids, sched_jobs) = {
            let jobs = self.jobs.lock();
            if jobs.is_empty() {
                drop(jobs);
                self.recorder.incr("service", "empty_rounds", 1);
                *self.rounds.write() += 1;
                return;
            }
            let mut ids: Vec<JobId> = jobs.keys().copied().collect();
            ids.sort();
            let num_nodes = self.spec.read().num_nodes();
            let sched_jobs: Vec<SchedJob> = ids
                .iter()
                .map(|id| {
                    let entry = &jobs[id];
                    let weight = job_weight(&self.weights, entry.gputime_seconds);
                    let mut current = entry.placement.clone();
                    current.resize(num_nodes, 0);
                    match entry.agent.report() {
                        Some(report) => SchedJob {
                            id: *id,
                            model: report.model,
                            min_gpus: report.min_gpus,
                            gpu_cap: report.gpu_cap,
                            weight,
                            current_placement: current,
                        },
                        None => crate::policy::bootstrap_sched_job(
                            *id,
                            entry.agent.limits(),
                            weight,
                            current,
                        ),
                    }
                })
                .collect();
            (ids, sched_jobs)
        };

        // Optional cloud auto-scaling before allocation.
        if let Some(scaler) = autoscaler {
            let current_nodes = self.spec.read().num_nodes() as u32;
            let decision = scaler.recommend(&sched_jobs, current_nodes, rng);
            if decision.nodes != current_nodes {
                let gpus = {
                    let spec = self.spec.read();
                    spec.gpus_on(pollux_cluster::NodeId(0))
                };
                if let Some(new_spec) = ClusterSpec::homogeneous(decision.nodes, gpus) {
                    *self.spec.write() = new_spec;
                }
            }
        }

        self.recorder
            .incr("service", "jobs_scheduled", sched_jobs.len() as u64);
        let spec = self.spec.read().clone();
        let matrix: AllocationMatrix = sched.schedule(&sched_jobs, &spec, rng);
        // Re-acquire to apply; jobs completed mid-round are skipped.
        let mut jobs = self.jobs.lock();
        for (row, id) in ids.iter().enumerate() {
            if let Some(entry) = jobs.get_mut(id) {
                let mut placement = matrix.row(row).to_vec();
                placement.resize(spec.num_nodes(), 0);
                let gpus: u32 = placement.iter().sum();
                if gpus > 0 {
                    let nodes = placement.iter().filter(|&&g| g > 0).count() as u32;
                    if let Some(shape) = PlacementShape::new(gpus, nodes) {
                        entry.agent.note_allocation(shape);
                    }
                }
                entry.placement = placement;
            }
        }
        *self.speedup_stats.write() = sched.speedup_stats();
        *self.rounds.write() += 1;
    }
}

/// Client handle for one training job.
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
}

impl JobHandle {
    /// This job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Reports one measured training iteration (the `PolluxAgent`
    /// profiling hook). `gputime` advances the job's attained service
    /// for fairness weighting.
    pub fn record_iteration(&self, shape: PlacementShape, batch_size: u64, t_iter: f64) {
        let mut jobs = self.shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.agent.observe_iteration(shape, batch_size, t_iter);
            entry.gputime_seconds += t_iter * shape.gpus as f64;
        }
    }

    /// Reports fresh gradient statistics (noise-scale inputs).
    pub fn record_gradient_stats(&self, stats: GradientStats) {
        let mut jobs = self.shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.agent.observe_gradient_stats(stats);
        }
    }

    /// Re-fits the job's θsys model from everything profiled so far.
    /// Returns `false` when no observations exist yet.
    pub fn refit(&self) -> bool {
        let mut jobs = self.shared.jobs.lock();
        let recorder = &self.shared.recorder;
        jobs.get_mut(&self.id)
            .map(|e| e.agent.refit_recorded(recorder))
            .unwrap_or(false)
    }

    /// The placement currently assigned by the scheduler (GPUs per
    /// node; empty vector before the first round).
    pub fn placement(&self) -> Vec<u32> {
        self.shared
            .jobs
            .lock()
            .get(&self.id)
            .map(|e| e.placement.clone())
            .unwrap_or_default()
    }

    /// The agent's `(m*, η)` decision for the current placement, or
    /// `None` while unallocated or before the first fit.
    pub fn tuning(&self) -> Option<TuningDecision> {
        let jobs = self.shared.jobs.lock();
        let entry = jobs.get(&self.id)?;
        let gpus: u32 = entry.placement.iter().sum();
        if gpus == 0 {
            return None;
        }
        let nodes = entry.placement.iter().filter(|&&g| g > 0).count() as u32;
        let shape = PlacementShape::new(gpus, nodes)?;
        entry.agent.tune(shape)
    }
}

/// The live Pollux control plane.
pub struct ClusterService {
    shared: Arc<Shared>,
    commands: SyncSender<Command>,
    thread: Option<JoinHandle<()>>,
    next_id: Mutex<u32>,
}

impl ClusterService {
    /// Starts the service with a background scheduler thread.
    ///
    /// Returns `None` when the Pollux configuration is invalid (e.g.
    /// inconsistent autoscale thresholds).
    pub fn start(config: ServiceConfig, spec: ClusterSpec) -> Option<Self> {
        let autoscaler = match config.pollux.autoscale {
            Some(c) => Some(Autoscaler::new(c)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            spec: RwLock::new(spec),
            jobs: Mutex::new(HashMap::new()),
            rounds: RwLock::new(0),
            speedup_stats: RwLock::new(SpeedupTableStats::default()),
            weights: config.pollux.sched.weights,
            recorder: config.telemetry.clone(),
        });
        let (tx, rx) = sync_channel::<Command>(16);
        let interval = config.interval;
        let thread_shared = Arc::clone(&shared);
        let mut sched = PolluxSched::new(config.pollux.sched);
        sched.set_recorder(config.telemetry);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let thread = std::thread::spawn(move || {
            // `recv_timeout` is both the trigger listener and the
            // periodic ticker: a timeout means "interval elapsed with
            // no explicit trigger", which also starts a round.
            while let Ok(Command::Schedule) | Err(RecvTimeoutError::Timeout) =
                rx.recv_timeout(interval)
            {
                thread_shared.schedule_once(&mut sched, autoscaler.as_ref(), &mut rng);
            }
        });
        Some(Self {
            shared,
            commands: tx,
            thread: Some(thread),
            next_id: Mutex::new(0),
        })
    }

    /// Registers a new training job and returns its handle.
    ///
    /// Returns `None` when `limits.min != m0` or `η0` is invalid (the
    /// same contract as [`PolluxAgent::new`]).
    pub fn submit(&self, m0: u64, eta0: f64, limits: BatchSizeLimits) -> Option<JobHandle> {
        let agent = PolluxAgent::new(m0, eta0, limits)?;
        let id = {
            let mut next = self.next_id.lock();
            let id = JobId(*next);
            *next += 1;
            id
        };
        let num_nodes = self.shared.spec.read().num_nodes();
        self.shared.jobs.lock().insert(
            id,
            JobEntry {
                agent,
                gputime_seconds: 0.0,
                placement: vec![0; num_nodes],
            },
        );
        Some(JobHandle {
            id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Deregisters a completed (or cancelled) job, freeing its GPUs at
    /// the next scheduling round.
    pub fn complete(&self, id: JobId) {
        self.shared.jobs.lock().remove(&id);
    }

    /// Requests an immediate scheduling round (in addition to the
    /// periodic ticker). Non-blocking; returns `false` if the service
    /// is shutting down.
    pub fn trigger_schedule(&self) -> bool {
        !matches!(
            self.commands.try_send(Command::Schedule),
            Err(TrySendError::Disconnected(_))
        )
    }

    /// Blocks until at least `n` scheduling rounds have completed.
    pub fn wait_for_rounds(&self, n: u64, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while *self.shared.rounds.read() < n {
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Number of completed scheduling rounds.
    pub fn rounds(&self) -> u64 {
        *self.shared.rounds.read()
    }

    /// The current cluster specification (autoscaling may change it).
    pub fn cluster_spec(&self) -> ClusterSpec {
        self.shared.spec.read().clone()
    }

    /// Number of registered jobs.
    pub fn num_jobs(&self) -> usize {
        self.shared.jobs.lock().len()
    }

    /// Cumulative dense speedup-table counters across all completed
    /// rounds (service key `pollux.sched.speedup.stats`): lookups hit
    /// in the table, out-of-range misses, and golden-section solves
    /// spent precomputing the per-round tables.
    pub fn speedup_stats(&self) -> SpeedupTableStats {
        *self.shared.speedup_stats.read()
    }

    /// Stops the scheduler thread and drops the service.
    pub fn shutdown(mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Snapshot counters/histograms into the capture now that the
        // scheduler thread is quiescent. Unconditional: the graceful
        // `shutdown` path joins (and takes) the thread before this
        // drop runs.
        self.shared.recorder.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_sched::GaConfig;
    use pollux_workload::ModelKind;

    fn quick_service(spec: ClusterSpec) -> ClusterService {
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                seed: 1,
                ..Default::default()
            },
            spec,
        )
        .expect("valid service config")
    }

    fn feed_profile(handle: &JobHandle, kind: ModelKind) {
        let profile = kind.profile();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            handle.record_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(handle.refit());
        handle.record_gradient_stats(GradientStats::new(20.0, 1.0).unwrap());
    }

    #[test]
    fn service_allocates_submitted_jobs() {
        let service = quick_service(ClusterSpec::homogeneous(2, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let a = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        let b = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(service.num_jobs(), 2);

        let before = service.rounds();
        assert!(service.trigger_schedule());
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));

        // Fresh jobs are bootstrapped: each gets 1-2 GPUs.
        for h in [&a, &b] {
            let gpus: u32 = h.placement().iter().sum();
            assert!((1..=2).contains(&gpus), "placement {:?}", h.placement());
        }
        // Rounds with jobs build dense tables: the service key reports
        // accumulated solves and lookups.
        let stats = service.speedup_stats();
        assert!(stats.solves > 0, "no table solves recorded: {stats:?}");
        assert!(stats.hits > 0, "no table lookups recorded: {stats:?}");
        service.shutdown();
    }

    #[test]
    fn reports_unlock_scale_out_and_tuning() {
        let service = quick_service(ClusterSpec::homogeneous(2, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&h, ModelKind::ResNet18Cifar10);

        // After a profiled report (the agent has seen up to 8 GPUs,
        // cap 16), the scheduler should grant a substantial
        // allocation on the idle 8-GPU cluster.
        let before = service.rounds();
        service.trigger_schedule();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        let gpus: u32 = h.placement().iter().sum();
        assert!(gpus >= 4, "placement {:?}", h.placement());

        let tuning = h.tuning().expect("fit + placement => tuning");
        assert!(tuning.batch_size >= profile.m0);
        assert!(tuning.learning_rate > 0.0);
        service.shutdown();
    }

    #[test]
    fn completed_jobs_release_gpus() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let a = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        let b = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&a, ModelKind::ResNet18Cifar10);
        feed_profile(&b, ModelKind::ResNet18Cifar10);
        let before = service.rounds();
        service.trigger_schedule();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));

        service.complete(a.id());
        assert_eq!(service.num_jobs(), 1);
        let before = service.rounds();
        service.trigger_schedule();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        // The survivor can now take the whole node (cap permitting).
        let gpus: u32 = b.placement().iter().sum();
        assert!(gpus >= 2, "placement {:?}", b.placement());
        // The departed handle reads back empty.
        assert!(a.placement().is_empty());
        assert!(a.tuning().is_none());
        service.shutdown();
    }

    #[test]
    fn ticker_schedules_without_triggers() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        assert!(service.wait_for_rounds(3, Duration::from_secs(10)));
        service.shutdown();
    }

    #[test]
    fn shutdown_via_drop_joins_thread() {
        let service = quick_service(ClusterSpec::homogeneous(1, 2).unwrap());
        drop(service); // Must not hang or panic.
    }

    #[test]
    fn autoscaling_service_grows_cluster_for_scalable_job() {
        use pollux_sched::AutoscaleConfig;
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        pollux.autoscale = Some(AutoscaleConfig {
            max_nodes: 8,
            ga: GaConfig {
                population: 12,
                generations: 6,
                ..Default::default()
            },
            ..Default::default()
        });
        let service = ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                seed: 3,
                ..Default::default()
            },
            ClusterSpec::homogeneous(1, 4).unwrap(),
        )
        .unwrap();
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        // A well-profiled, high-φ job that has held many GPUs: the
        // autoscaler should grow the cluster beyond the single node.
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2), (16, 4)] {
            let shape = PlacementShape::new(g, n).unwrap();
            h.record_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(h.refit());
        h.record_gradient_stats(GradientStats::new(60.0, 1.0).unwrap());
        let before = service.rounds();
        service.trigger_schedule();
        assert!(service.wait_for_rounds(before + 3, Duration::from_secs(20)));
        let nodes = service.cluster_spec().num_nodes();
        assert!(nodes > 1, "cluster stayed at {nodes} node(s)");
        service.shutdown();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn service_rounds_emit_telemetry() {
        use pollux_telemetry::{Event, MemorySink};
        let sink = Arc::new(MemorySink::new(8192));
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        let service = ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                seed: 1,
                telemetry: Recorder::new(sink.clone()),
            },
            ClusterSpec::homogeneous(2, 4).unwrap(),
        )
        .unwrap();
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&h, ModelKind::ResNet18Cifar10);
        service.trigger_schedule();
        assert!(service.wait_for_rounds(2, Duration::from_secs(10)));
        service.shutdown();

        let events = sink.drain();
        let span = |sub: &str, name: &str| {
            events.iter().any(|e| {
                matches!(e, Event::Span { .. }) && e.subsystem() == sub && e.name() == name
            })
        };
        assert!(span("service", "round"), "no service/round span");
        assert!(span("agent", "refit"), "no agent/refit span");
        assert!(span("sched", "ga_evolve"), "no sched/ga_evolve span");
        // The drop-time flush snapshots counters into the capture.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Count { value, .. } if *value > 0)
                    && e.subsystem() == "service"
                    && e.name() == "rounds"),
            "no service/rounds counter snapshot"
        );
    }

    #[test]
    fn invalid_submission_rejected() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        let limits = BatchSizeLimits::new(128, 1024, 512).unwrap();
        assert!(service.submit(64, 0.1, limits).is_none(), "m0 mismatch");
        assert!(service.submit(128, 0.0, limits).is_none(), "bad eta0");
        service.shutdown();
    }
}
