//! A live cluster-service embedding of Pollux (Sec. 4.3).
//!
//! The paper deploys `PolluxSched` as a long-running service (in
//! Kubernetes) and `PolluxAgent` as a library linked into each training
//! job. This module provides the equivalent embeddable control plane:
//!
//! - [`ClusterService`] owns the shared state and a background
//!   scheduler thread that re-optimizes allocations at a fixed
//!   interval (60 s in the paper; configurable down to milliseconds
//!   for tests);
//! - [`JobHandle`] is the per-job client: training code reports
//!   iteration timings and gradient statistics through it, and reads
//!   back its current placement and `(m*, η)` tuning decision.
//!
//! Each scheduling round is one pass through the shared control-plane
//! pipeline ([`pollux_control::RoundPlanner`]): the service snapshots
//! its jobs into [`pollux_control::PolicyJobView`]s, the planner
//! invokes [`PolluxPolicy`] and diffs placements into
//! [`pollux_control::Reallocation`]s, and the service applies them to
//! its job table — the **same** planner, bootstrap priors, fairness
//! weights, and restart semantics the simulator's engine drives.
//! Per-job lifecycle (pending → running → restarting → finished,
//! restart and GPU-time accounting) lives in the shared
//! [`JobLifecycle`] state machine.
//!
//! All state is behind `parking_lot` locks; the scheduler thread is
//! driven by a bounded `std::sync::mpsc` command channel whose
//! `recv_timeout` doubles as the periodic ticker, so the service shuts
//! down deterministically.

use crate::policy::{PolluxConfig, PolluxPolicy};
use parking_lot::{Mutex, RwLock};
use pollux_agent::{AgentReport, PolluxAgent, TuningDecision};
use pollux_cluster::{ClusterSpec, JobId, NodeId};
use pollux_control::{JobLifecycle, JobState, PolicyJobView, RoundPlanner, SchedulingPolicy};
use pollux_models::{BatchSizeLimits, GradientStats, PlacementShape};
use pollux_sched::SpeedupTableStats;
use pollux_telemetry::Recorder;
use pollux_workload::UserConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors surfaced by the service API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The Pollux configuration is invalid (e.g. inconsistent
    /// autoscale thresholds).
    InvalidConfig,
    /// A submission's agent parameters are invalid (`limits.min != m0`
    /// or a non-positive `η0` — the contract of `PolluxAgent::new`).
    InvalidLimits,
    /// The scheduler thread has shut down and no longer accepts
    /// commands.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig => write!(f, "invalid Pollux service configuration"),
            Self::InvalidLimits => write!(f, "invalid job parameters (limits/m0/eta0)"),
            Self::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Configuration of the live service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pollux policy configuration (GA, weights, optional autoscale).
    /// Fitness-evaluation worker threads are set via
    /// `pollux.sched.ga.threads` (1 = serial); results are identical
    /// for any thread count under a fixed [`Self::seed`].
    pub pollux: PolluxConfig,
    /// Wall-clock interval between scheduling rounds.
    pub interval: Duration,
    /// Checkpoint-restart delay charged to a started job whenever the
    /// scheduler moves it (the live analog of the simulator's
    /// `restart_delay`): the job sits in
    /// [`JobState::Restarting`] until the delay elapses.
    pub restart_delay: Duration,
    /// RNG seed for the genetic algorithm.
    pub seed: u64,
    /// Telemetry recorder shared by the service, its scheduler, and
    /// every job's refits. Disabled by default; attach one built on a
    /// sink (e.g. `JsonlSink`) to capture `service/round` spans and
    /// scheduler counters.
    pub telemetry: Recorder,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pollux: PolluxConfig::default(),
            interval: Duration::from_secs(60),
            restart_delay: Duration::from_secs(30),
            seed: 0,
            telemetry: Recorder::disabled(),
        }
    }
}

/// Commands accepted by the scheduler thread.
enum Command {
    /// Run a scheduling round now (in addition to the ticker).
    Schedule,
    /// Stop the scheduler thread.
    Shutdown,
}

struct JobEntry {
    agent: PolluxAgent,
    lifecycle: JobLifecycle,
    placement: Vec<u32>,
    submit_time: f64,
}

/// An owned per-job snapshot taken under the jobs lock, so the
/// (potentially long) scheduling round can build its
/// [`PolicyJobView`]s without blocking training threads.
struct JobSnapshot {
    id: JobId,
    limits: BatchSizeLimits,
    report: Option<AgentReport>,
    gputime: f64,
    started: bool,
    submit_time: f64,
    placement: Vec<u32>,
}

/// Builds borrowed policy views over a snapshot. The live service has
/// no ground-truth model profile (`profile: None`) and no oracle
/// remaining-work estimate; policies that need either (Optimus+Oracle)
/// are simulator-only.
fn views_of(snaps: &[JobSnapshot]) -> Vec<PolicyJobView<'_>> {
    snaps
        .iter()
        .map(|s| PolicyJobView {
            id: s.id,
            user: UserConfig {
                gpus: 1,
                batch_size: s.limits.min,
            },
            profile: None,
            limits: s.limits,
            report: s.report,
            gputime: s.gputime,
            submit_time: s.submit_time,
            current_placement: &s.placement,
            started: s.started,
            batch_size: s.limits.min,
            remaining_work: f64::INFINITY,
        })
        .collect()
}

struct Shared {
    spec: RwLock<ClusterSpec>,
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    /// Monotone counter of completed scheduling rounds.
    rounds: RwLock<u64>,
    /// Cumulative dense speedup-table counters, mirrored out of the
    /// scheduler thread after every round (the
    /// `pollux.sched.speedup.stats` service key).
    speedup_stats: RwLock<SpeedupTableStats>,
    /// Service birth; `now` for lifecycle stamps is seconds since this.
    epoch: Instant,
    restart_delay: f64,
    recorder: Recorder,
}

impl Shared {
    /// One scheduling round through the shared control-plane pipeline:
    /// wake expired restarts, snapshot job state, let the
    /// [`RoundPlanner`] run the policy (autoscale + GA + placement
    /// diff), apply the resulting reallocations.
    fn schedule_once(
        &self,
        policy: &mut PolluxPolicy,
        planner: &mut RoundPlanner,
        rng: &mut StdRng,
        now: f64,
    ) {
        let _span = self.recorder.span("service", "round");
        self.recorder.incr("service", "rounds", 1);
        {
            let mut jobs = self.jobs.lock();
            for entry in jobs.values_mut() {
                entry.lifecycle.wake(now);
            }
        }
        let mut snaps = self.snapshot_jobs();
        if snaps.is_empty() {
            self.recorder.incr("service", "empty_rounds", 1);
            *self.rounds.write() += 1;
            return;
        }

        // Optional cloud auto-scaling before allocation. Resizing
        // mutates placements, so the snapshot is rebuilt.
        {
            let spec = self.spec.read().clone();
            let views = views_of(&snaps);
            let desired = planner.desired_nodes(policy, now, &views, &spec, rng);
            drop(views);
            if let Some(nodes) = desired {
                if self.resize_cluster(nodes.max(1), now) {
                    snaps = self.snapshot_jobs();
                }
            }
        }

        self.recorder
            .incr("service", "jobs_scheduled", snaps.len() as u64);
        let spec = self.spec.read().clone();
        let views = views_of(&snaps);
        // The planner itself stays span-free (it sits on the
        // simulator's hot path too); the service wraps it here where
        // rounds are seconds apart.
        let outcome = {
            let _plan_span = self.recorder.span("control", "plan");
            planner
                .plan(policy, now, &views, &spec, rng)
                .expect("service job ids are unique")
        };
        drop(views);

        // Re-acquire to apply; jobs completed mid-round are skipped.
        {
            let mut jobs = self.jobs.lock();
            for r in outcome.reallocations {
                let Some(entry) = jobs.get_mut(&r.job) else {
                    continue;
                };
                let gpus = r.gpus();
                entry.placement = r.new;
                if gpus > 0 {
                    let nodes = entry.placement.iter().filter(|&&g| g > 0).count() as u32;
                    if let Some(shape) = PlacementShape::new(gpus, nodes) {
                        entry.agent.note_allocation(shape);
                    }
                    entry
                        .lifecycle
                        .grant(r.triggers_restart, now, self.restart_delay);
                } else {
                    entry.lifecycle.preempt(now);
                }
            }
        }
        *self.speedup_stats.write() = policy.speedup_stats();
        *self.rounds.write() += 1;
    }

    /// Snapshots every registered job (in ascending id order, the
    /// planner's required view order) with placements normalized to
    /// the current cluster width.
    fn snapshot_jobs(&self) -> Vec<JobSnapshot> {
        let num_nodes = self.spec.read().num_nodes();
        let jobs = self.jobs.lock();
        let mut ids: Vec<JobId> = jobs.keys().copied().collect();
        ids.sort();
        ids.into_iter()
            .map(|id| {
                let entry = &jobs[&id];
                let mut placement = entry.placement.clone();
                placement.resize(num_nodes, 0);
                JobSnapshot {
                    id,
                    limits: entry.agent.limits(),
                    report: entry.agent.report(),
                    gputime: entry.lifecycle.gputime(),
                    started: entry.lifecycle.has_started(),
                    submit_time: entry.submit_time,
                    placement,
                }
            })
            .collect()
    }

    /// Resizes the cluster to `nodes` homogeneous nodes, preempting
    /// jobs that held GPUs on removed nodes (the same whole-job
    /// preemption rule as the simulator's engine). Returns whether the
    /// cluster actually changed.
    fn resize_cluster(&self, nodes: u32, now: f64) -> bool {
        let new_n = nodes as usize;
        {
            let mut spec = self.spec.write();
            if new_n == spec.num_nodes() {
                return false;
            }
            let gpus_per_node = spec.gpus_on(NodeId(0));
            let Some(new_spec) = ClusterSpec::homogeneous(nodes, gpus_per_node) else {
                return false;
            };
            *spec = new_spec;
        }
        let mut jobs = self.jobs.lock();
        for entry in jobs.values_mut() {
            let loses_gpus = entry.placement.iter().skip(new_n).any(|&g| g > 0);
            entry.placement.resize(new_n, 0);
            if loses_gpus {
                entry.placement.iter_mut().for_each(|g| *g = 0);
                entry.lifecycle.preempt(now);
            }
        }
        true
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Client handle for one training job.
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
}

impl JobHandle {
    /// This job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Reports one measured training iteration (the `PolluxAgent`
    /// profiling hook). Attained GPU-time advances for fairness
    /// weighting.
    pub fn record_iteration(&self, shape: PlacementShape, batch_size: u64, t_iter: f64) {
        let mut jobs = self.shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.agent.observe_iteration(shape, batch_size, t_iter);
            entry.lifecycle.accrue_gputime(t_iter * shape.gpus as f64);
        }
    }

    /// Reports fresh gradient statistics (noise-scale inputs).
    pub fn record_gradient_stats(&self, stats: GradientStats) {
        let mut jobs = self.shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&self.id) {
            entry.agent.observe_gradient_stats(stats);
        }
    }

    /// Re-fits the job's θsys model from everything profiled so far.
    /// Returns `false` when no observations exist yet.
    pub fn refit(&self) -> bool {
        let mut jobs = self.shared.jobs.lock();
        let recorder = &self.shared.recorder;
        jobs.get_mut(&self.id)
            .map(|e| e.agent.refit_recorded(recorder))
            .unwrap_or(false)
    }

    /// The placement currently assigned by the scheduler (GPUs per
    /// node; empty vector before the first round).
    pub fn placement(&self) -> Vec<u32> {
        self.shared
            .jobs
            .lock()
            .get(&self.id)
            .map(|e| e.placement.clone())
            .unwrap_or_default()
    }

    /// The job's lifecycle state as tracked by the shared control
    /// plane, or `None` once deregistered.
    pub fn state(&self) -> Option<JobState> {
        self.shared
            .jobs
            .lock()
            .get(&self.id)
            .map(|e| e.lifecycle.state())
    }

    /// Checkpoint-restarts this job has paid so far.
    pub fn num_restarts(&self) -> u32 {
        self.shared
            .jobs
            .lock()
            .get(&self.id)
            .map(|e| e.lifecycle.num_restarts())
            .unwrap_or(0)
    }

    /// The agent's `(m*, η)` decision for the current placement, or
    /// `None` while unallocated or before the first fit.
    pub fn tuning(&self) -> Option<TuningDecision> {
        let jobs = self.shared.jobs.lock();
        let entry = jobs.get(&self.id)?;
        let gpus: u32 = entry.placement.iter().sum();
        if gpus == 0 {
            return None;
        }
        let nodes = entry.placement.iter().filter(|&&g| g > 0).count() as u32;
        let shape = PlacementShape::new(gpus, nodes)?;
        entry.agent.tune(shape)
    }
}

/// The live Pollux control plane.
pub struct ClusterService {
    shared: Arc<Shared>,
    commands: SyncSender<Command>,
    thread: Option<JoinHandle<()>>,
    next_id: Mutex<u32>,
}

impl ClusterService {
    /// Starts the service with a background scheduler thread.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the Pollux configuration
    /// is invalid (e.g. inconsistent autoscale thresholds).
    pub fn start(config: ServiceConfig, spec: ClusterSpec) -> Result<Self, ServiceError> {
        let mut policy = PolluxPolicy::new(config.pollux).ok_or(ServiceError::InvalidConfig)?;
        config.telemetry.meta("sched", "policy", policy.name());
        policy.attach_telemetry(config.telemetry.clone());
        let mut planner = RoundPlanner::new();
        planner.attach_telemetry(config.telemetry.clone());
        let shared = Arc::new(Shared {
            spec: RwLock::new(spec),
            jobs: Mutex::new(HashMap::new()),
            rounds: RwLock::new(0),
            speedup_stats: RwLock::new(SpeedupTableStats::default()),
            epoch: Instant::now(),
            restart_delay: config.restart_delay.as_secs_f64(),
            recorder: config.telemetry,
        });
        let (tx, rx) = sync_channel::<Command>(16);
        let interval = config.interval;
        let thread_shared = Arc::clone(&shared);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let thread = std::thread::spawn(move || {
            // `recv_timeout` is both the trigger listener and the
            // periodic ticker: a timeout means "interval elapsed with
            // no explicit trigger", which also starts a round.
            while let Ok(Command::Schedule) | Err(RecvTimeoutError::Timeout) =
                rx.recv_timeout(interval)
            {
                let now = thread_shared.now();
                thread_shared.schedule_once(&mut policy, &mut planner, &mut rng, now);
            }
        });
        Ok(Self {
            shared,
            commands: tx,
            thread: Some(thread),
            next_id: Mutex::new(0),
        })
    }

    /// Registers a new training job and returns its handle.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidLimits`] when `limits.min != m0` or
    /// `η0` is invalid (the same contract as `PolluxAgent::new`).
    pub fn submit(
        &self,
        m0: u64,
        eta0: f64,
        limits: BatchSizeLimits,
    ) -> Result<JobHandle, ServiceError> {
        let agent = PolluxAgent::new(m0, eta0, limits).ok_or(ServiceError::InvalidLimits)?;
        let id = {
            let mut next = self.next_id.lock();
            let id = JobId(*next);
            *next += 1;
            id
        };
        let num_nodes = self.shared.spec.read().num_nodes();
        let submit_time = self.shared.now();
        self.shared.jobs.lock().insert(
            id,
            JobEntry {
                agent,
                lifecycle: JobLifecycle::new(),
                placement: vec![0; num_nodes],
                submit_time,
            },
        );
        Ok(JobHandle {
            id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Deregisters a completed (or cancelled) job, freeing its GPUs at
    /// the next scheduling round.
    pub fn complete(&self, id: JobId) {
        self.shared.jobs.lock().remove(&id);
    }

    /// Requests an immediate scheduling round (in addition to the
    /// periodic ticker). Non-blocking.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Shutdown`] when the scheduler thread is gone.
    pub fn trigger_schedule(&self) -> Result<(), ServiceError> {
        match self.commands.try_send(Command::Schedule) {
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
            _ => Ok(()),
        }
    }

    /// Blocks until at least `n` scheduling rounds have completed.
    pub fn wait_for_rounds(&self, n: u64, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while *self.shared.rounds.read() < n {
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Number of completed scheduling rounds.
    pub fn rounds(&self) -> u64 {
        *self.shared.rounds.read()
    }

    /// The current cluster specification (autoscaling may change it).
    pub fn cluster_spec(&self) -> ClusterSpec {
        self.shared.spec.read().clone()
    }

    /// Number of registered jobs.
    pub fn num_jobs(&self) -> usize {
        self.shared.jobs.lock().len()
    }

    /// Cumulative dense speedup-table counters across all completed
    /// rounds (service key `pollux.sched.speedup.stats`): lookups hit
    /// in the table, out-of-range misses, and golden-section solves
    /// spent precomputing the per-round tables.
    pub fn speedup_stats(&self) -> SpeedupTableStats {
        *self.shared.speedup_stats.read()
    }

    /// Stops the scheduler thread and drops the service.
    pub fn shutdown(mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Snapshot counters/histograms into the capture now that the
        // scheduler thread is quiescent. Unconditional: the graceful
        // `shutdown` path joins (and takes) the thread before this
        // drop runs.
        self.shared.recorder.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_sched::GaConfig;
    use pollux_workload::ModelKind;

    fn quick_service(spec: ClusterSpec) -> ClusterService {
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                restart_delay: Duration::from_millis(1),
                seed: 1,
                ..Default::default()
            },
            spec,
        )
        .expect("valid service config")
    }

    fn feed_profile(handle: &JobHandle, kind: ModelKind) {
        let profile = kind.profile();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            handle.record_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(handle.refit());
        handle.record_gradient_stats(GradientStats::new(20.0, 1.0).unwrap());
    }

    #[test]
    fn service_allocates_submitted_jobs() {
        let service = quick_service(ClusterSpec::homogeneous(2, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let a = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        let b = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(service.num_jobs(), 2);
        assert_eq!(a.state(), Some(JobState::Pending));

        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));

        // Fresh jobs are bootstrapped: each gets 1-2 GPUs and starts
        // (never restarts — a first grant pays no delay).
        for h in [&a, &b] {
            let gpus: u32 = h.placement().iter().sum();
            assert!((1..=2).contains(&gpus), "placement {:?}", h.placement());
            assert_eq!(h.num_restarts(), 0);
            assert_ne!(h.state(), Some(JobState::Pending));
        }
        // Rounds with jobs build dense tables: the service key reports
        // accumulated solves and lookups.
        let stats = service.speedup_stats();
        assert!(stats.solves > 0, "no table solves recorded: {stats:?}");
        assert!(stats.hits > 0, "no table lookups recorded: {stats:?}");
        service.shutdown();
    }

    #[test]
    fn reports_unlock_scale_out_and_tuning() {
        let service = quick_service(ClusterSpec::homogeneous(2, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&h, ModelKind::ResNet18Cifar10);

        // After a profiled report (the agent has seen up to 8 GPUs,
        // cap 16), the scheduler should grant a substantial
        // allocation on the idle 8-GPU cluster.
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        let gpus: u32 = h.placement().iter().sum();
        assert!(gpus >= 4, "placement {:?}", h.placement());

        let tuning = h.tuning().expect("fit + placement => tuning");
        assert!(tuning.batch_size >= profile.m0);
        assert!(tuning.learning_rate > 0.0);
        service.shutdown();
    }

    #[test]
    fn completed_jobs_release_gpus() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        let a = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        let b = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&a, ModelKind::ResNet18Cifar10);
        feed_profile(&b, ModelKind::ResNet18Cifar10);
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));

        service.complete(a.id());
        assert_eq!(service.num_jobs(), 1);
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        // The survivor can now take the whole node (cap permitting).
        let gpus: u32 = b.placement().iter().sum();
        assert!(gpus >= 2, "placement {:?}", b.placement());
        // The departed handle reads back empty.
        assert!(a.placement().is_empty());
        assert!(a.tuning().is_none());
        assert_eq!(a.state(), None);
        service.shutdown();
    }

    #[test]
    fn reallocation_after_start_pays_a_restart() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        let profile = ModelKind::ResNet18Cifar10.profile();
        // `a` starts alone and grows onto the whole node.
        let a = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&a, ModelKind::ResNet18Cifar10);
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        let gpus_before: u32 = a.placement().iter().sum();
        assert!(gpus_before >= 2, "placement {:?}", a.placement());

        // A second job arrives; the scheduler shrinks `a`, which pays
        // the checkpoint-restart delay through the shared lifecycle.
        let b = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&b, ModelKind::ResNet18Cifar10);
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 2, Duration::from_secs(10)));
        let gpus_after: u32 = a.placement().iter().sum();
        if gpus_after != gpus_before {
            assert!(a.num_restarts() >= 1, "reallocation did not restart");
        }
        let gpus_b: u32 = b.placement().iter().sum();
        assert!(gpus_b >= 1, "newcomer unplaced: {:?}", b.placement());
        service.shutdown();
    }

    #[test]
    fn ticker_schedules_without_triggers() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        assert!(service.wait_for_rounds(3, Duration::from_secs(10)));
        service.shutdown();
    }

    #[test]
    fn shutdown_via_drop_joins_thread() {
        let service = quick_service(ClusterSpec::homogeneous(1, 2).unwrap());
        drop(service); // Must not hang or panic.
    }

    #[test]
    fn autoscaling_service_grows_cluster_for_scalable_job() {
        use pollux_sched::AutoscaleConfig;
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        pollux.autoscale = Some(AutoscaleConfig {
            max_nodes: 8,
            ga: GaConfig {
                population: 12,
                generations: 6,
                ..Default::default()
            },
            ..Default::default()
        });
        let service = ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                seed: 3,
                ..Default::default()
            },
            ClusterSpec::homogeneous(1, 4).unwrap(),
        )
        .unwrap();
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        // A well-profiled, high-φ job that has held many GPUs: the
        // autoscaler should grow the cluster beyond the single node.
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2), (16, 4)] {
            let shape = PlacementShape::new(g, n).unwrap();
            h.record_iteration(shape, profile.m0, profile.params.t_iter(shape, profile.m0));
        }
        assert!(h.refit());
        h.record_gradient_stats(GradientStats::new(60.0, 1.0).unwrap());
        let before = service.rounds();
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(before + 3, Duration::from_secs(20)));
        let nodes = service.cluster_spec().num_nodes();
        assert!(nodes > 1, "cluster stayed at {nodes} node(s)");
        service.shutdown();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn service_rounds_emit_telemetry() {
        use pollux_telemetry::{Event, MemorySink};
        let sink = Arc::new(MemorySink::new(8192));
        let mut pollux = PolluxConfig::default();
        pollux.sched.ga = GaConfig {
            population: 12,
            generations: 6,
            ..Default::default()
        };
        let service = ClusterService::start(
            ServiceConfig {
                pollux,
                interval: Duration::from_millis(5),
                seed: 1,
                telemetry: Recorder::new(sink.clone()),
                ..Default::default()
            },
            ClusterSpec::homogeneous(2, 4).unwrap(),
        )
        .unwrap();
        let profile = ModelKind::ResNet18Cifar10.profile();
        let h = service
            .submit(profile.m0, profile.eta0, profile.limits)
            .unwrap();
        feed_profile(&h, ModelKind::ResNet18Cifar10);
        service.trigger_schedule().unwrap();
        assert!(service.wait_for_rounds(2, Duration::from_secs(10)));
        service.shutdown();

        let events = sink.drain();
        let span = |sub: &str, name: &str| {
            events.iter().any(|e| {
                matches!(e, Event::Span { .. }) && e.subsystem() == sub && e.name() == name
            })
        };
        assert!(span("service", "round"), "no service/round span");
        assert!(span("control", "plan"), "no control/plan span");
        assert!(span("agent", "refit"), "no agent/refit span");
        assert!(span("sched", "ga_evolve"), "no sched/ga_evolve span");
        // The drop-time flush snapshots counters into the capture.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Count { value, .. } if *value > 0)
                    && e.subsystem() == "service"
                    && e.name() == "rounds"),
            "no service/rounds counter snapshot"
        );
    }

    #[test]
    fn invalid_submission_rejected() {
        let service = quick_service(ClusterSpec::homogeneous(1, 4).unwrap());
        let limits = BatchSizeLimits::new(128, 1024, 512).unwrap();
        assert_eq!(
            service.submit(64, 0.1, limits).err(),
            Some(ServiceError::InvalidLimits),
            "m0 mismatch"
        );
        assert_eq!(
            service.submit(128, 0.0, limits).err(),
            Some(ServiceError::InvalidLimits),
            "bad eta0"
        );
        service.shutdown();
    }

    #[test]
    fn invalid_autoscale_config_rejected() {
        use pollux_sched::AutoscaleConfig;
        let pollux = PolluxConfig {
            autoscale: Some(AutoscaleConfig {
                low_util: 0.9,
                high_util: 0.1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let err = ClusterService::start(
            ServiceConfig {
                pollux,
                ..Default::default()
            },
            ClusterSpec::homogeneous(1, 4).unwrap(),
        )
        .err();
        assert_eq!(err, Some(ServiceError::InvalidConfig));
    }
}
