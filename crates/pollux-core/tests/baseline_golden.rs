//! Golden-trajectory digests for the baseline schedulers.
//!
//! The Blox-style decomposition of Tiresias, Optimus+Oracle, and
//! Or et al. into admission / placement / preemption stages is a pure
//! refactor: for a fixed seed the staged port must reproduce the exact
//! `SimResult` bytes (and RNG draw order — none of the baselines draw)
//! of the pre-refactor monolith. These digests were captured from the
//! monolithic implementations at the commit introducing the staged
//! scheduler and are never allowed to drift.
//!
//! Workload: the repo's standard 64-job × 16-node churn anchor (the
//! same staggered, work-scaled trace the timeline-fidelity suite
//! uses), which exercises preemptions, restarts, backfill, and
//! consolidated placement in all three policies.

use pollux_baselines::{optimus, or_etal, tiresias, TiresiasConfig};
use pollux_cluster::{ClusterSpec, JobId};
use pollux_core::{run_trace, ConfigChoice};
use pollux_simulator::{SchedulingPolicy, SimConfig};
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator};

/// FNV-1a 64-bit digest; tiny, dependency-free, and stable.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64 staggered jobs drawn from the trace generator, work scaled down
/// so a healthy fraction finishes inside the horizon.
fn churn_trace_64() -> Vec<JobSpec> {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 200,
        seed: 13,
        ..Default::default()
    })
    .unwrap()
    .generate();
    let jobs: Vec<JobSpec> = trace
        .into_iter()
        .filter(|j| j.kind == ModelKind::ResNet18Cifar10 || j.kind == ModelKind::NeuMFMovieLens)
        .take(64)
        .enumerate()
        .map(|(i, mut spec)| {
            spec.id = JobId(i as u32);
            spec.submit_time = i as f64 * 90.0;
            spec.work *= 0.05;
            spec
        })
        .collect();
    assert_eq!(jobs.len(), 64, "trace filter must yield 64 jobs");
    jobs
}

fn digest_of<P: SchedulingPolicy>(policy: P) -> u64 {
    let spec = ClusterSpec::homogeneous(16, 4).unwrap();
    let sim = SimConfig {
        max_sim_time: 24.0 * 3600.0,
        interference_slowdown: 0.3,
        seed: 17,
        ..Default::default()
    };
    let result = run_trace(policy, &churn_trace_64(), ConfigChoice::Tuned, spec, sim)
        .expect("valid simulation inputs");
    fnv1a64(
        serde_json::to_string(&result)
            .expect("SimResult serializes")
            .as_bytes(),
    )
}

/// Captured from the monolithic `Tiresias` (pre-decomposition).
const GOLDEN_TIRESIAS: u64 = 0x7164_4c87_c626_8a16;
/// Captured from the monolithic `Optimus` (pre-decomposition).
const GOLDEN_OPTIMUS: u64 = 0x5355_e002_7cdd_e804;
/// Captured from the monolithic `OrEtAlAutoscaler` (pre-decomposition).
const GOLDEN_OR_ETAL: u64 = 0x6903_56cd_ceb4_d6aa;

#[test]
fn tiresias_reproduces_the_monolith_digest() {
    let d = digest_of(tiresias(TiresiasConfig::default()));
    assert_eq!(
        d, GOLDEN_TIRESIAS,
        "Tiresias trajectory drifted: 0x{d:016x}"
    );
}

#[test]
fn optimus_reproduces_the_monolith_digest() {
    let d = digest_of(optimus(4));
    assert_eq!(d, GOLDEN_OPTIMUS, "Optimus trajectory drifted: 0x{d:016x}");
}

#[test]
fn or_etal_reproduces_the_monolith_digest() {
    let d = digest_of(or_etal(or_etal_config()));
    assert_eq!(d, GOLDEN_OR_ETAL, "Or-et-al trajectory drifted: 0x{d:016x}");
}

fn or_etal_config() -> pollux_baselines::or_etal::OrEtAlConfig {
    pollux_baselines::or_etal::OrEtAlConfig::default()
}

/// Telemetry is observational: with a live recorder attached (stage
/// metas and `control/admitted` / `control/preempted` counters all
/// firing), the staged ports still reproduce the monolith digests
/// byte-for-byte.
#[test]
fn digests_are_unchanged_with_telemetry_attached() {
    use pollux_core::run_trace_recorded;
    use pollux_telemetry::{MemorySink, Recorder};
    use std::sync::Arc;

    let digest_recorded = |policy: Box<dyn SchedulingPolicy>| -> u64 {
        let spec = ClusterSpec::homogeneous(16, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 24.0 * 3600.0,
            interference_slowdown: 0.3,
            seed: 17,
            ..Default::default()
        };
        let sink = Arc::new(MemorySink::new(1 << 20));
        let recorder = Recorder::new(sink.clone() as Arc<dyn pollux_telemetry::Sink>);
        let result = run_trace_recorded(
            policy,
            &churn_trace_64(),
            ConfigChoice::Tuned,
            spec,
            sim,
            recorder,
        )
        .expect("valid simulation inputs");
        if cfg!(feature = "telemetry") {
            assert!(!sink.is_empty(), "live recorder captured nothing");
        }
        fnv1a64(
            serde_json::to_string(&result)
                .expect("SimResult serializes")
                .as_bytes(),
        )
    };

    assert_eq!(
        digest_recorded(Box::new(tiresias(TiresiasConfig::default()))),
        GOLDEN_TIRESIAS
    );
    assert_eq!(digest_recorded(Box::new(optimus(4))), GOLDEN_OPTIMUS);
    assert_eq!(
        digest_recorded(Box::new(or_etal(or_etal_config()))),
        GOLDEN_OR_ETAL
    );
}
