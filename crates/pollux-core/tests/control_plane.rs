//! Control-plane equivalence (ISSUE 5 satellite): one reschedule
//! round through the shared `RoundPlanner` produces the same outcome —
//! placements and restart set — whether the pipeline is driven
//! directly, by the live `ClusterService`, or by the simulator's
//! engine, given identical job views, cluster spec, and RNG seed.

use pollux_cluster::{ClusterSpec, JobId};
use pollux_control::{PolicyJobView, Reallocation, RoundPlanner};
use pollux_core::{ClusterService, PolluxConfig, PolluxPolicy, ServiceConfig};
use pollux_models::BatchSizeLimits;
use pollux_sched::GaConfig;
use pollux_simulator::metrics::EventKind;
use pollux_simulator::{SimConfig, Simulation};
use pollux_workload::{JobSpec, ModelKind, UserConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const SEED: u64 = 11;
const NODES: u32 = 2;
const GPUS_PER_NODE: u32 = 4;

fn quick_pollux_config() -> PolluxConfig {
    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 12,
        generations: 6,
        ..Default::default()
    };
    c
}

/// A job as the round pipeline sees it: no ground-truth profile, no
/// report yet (prior-driven bootstrap), placement evolving round to
/// round — exactly what the live service snapshots.
struct OwnedJob {
    id: JobId,
    limits: BatchSizeLimits,
    placement: Vec<u32>,
    started: bool,
}

impl OwnedJob {
    fn fresh(id: u32, limits: BatchSizeLimits) -> Self {
        Self {
            id: JobId(id),
            limits,
            placement: vec![0; NODES as usize],
            started: false,
        }
    }

    fn view(&self) -> PolicyJobView<'_> {
        PolicyJobView {
            id: self.id,
            user: UserConfig {
                gpus: 1,
                batch_size: self.limits.min,
            },
            profile: None,
            limits: self.limits,
            report: None,
            gputime: 0.0,
            submit_time: 0.0,
            current_placement: &self.placement,
            started: self.started,
            batch_size: self.limits.min,
            remaining_work: f64::INFINITY,
        }
    }

    fn apply(&mut self, r: &Reallocation) {
        self.placement = r.new.clone();
        if r.gpus() > 0 {
            self.started = true;
        }
    }
}

/// Drives the planner by hand: round 1 with jobs 0 and 1, round 2
/// after job 2 arrives — the reference outcome the service and the
/// simulator must match.
fn direct_rounds(limits: BatchSizeLimits) -> (Vec<OwnedJob>, Vec<Vec<Reallocation>>) {
    let spec = ClusterSpec::homogeneous(NODES, GPUS_PER_NODE).unwrap();
    let mut policy = PolluxPolicy::new(quick_pollux_config()).unwrap();
    let mut planner = RoundPlanner::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut jobs = vec![OwnedJob::fresh(0, limits), OwnedJob::fresh(1, limits)];
    let mut rounds = Vec::new();

    for round in 0..2 {
        if round == 1 {
            jobs.push(OwnedJob::fresh(2, limits));
        }
        let views: Vec<PolicyJobView<'_>> = jobs.iter().map(|j| j.view()).collect();
        let outcome = planner
            .plan(&mut policy, 0.0, &views, &spec, &mut rng)
            .unwrap();
        drop(views);
        for r in &outcome.reallocations {
            let row = jobs.iter_mut().find(|j| j.id == r.job).unwrap();
            row.apply(r);
        }
        rounds.push(outcome.reallocations);
    }
    (jobs, rounds)
}

#[test]
fn service_round_matches_direct_planner_outcome() {
    let profile = ModelKind::ResNet18Cifar10.profile();
    let (direct_jobs, rounds) = direct_rounds(profile.limits);

    // A long interval and restart delay: rounds happen only on
    // trigger, and restarting jobs never wake mid-test.
    let service = ClusterService::start(
        ServiceConfig {
            pollux: quick_pollux_config(),
            interval: Duration::from_secs(3600),
            restart_delay: Duration::from_secs(3600),
            seed: SEED,
            ..Default::default()
        },
        ClusterSpec::homogeneous(NODES, GPUS_PER_NODE).unwrap(),
    )
    .unwrap();
    let a = service
        .submit(profile.m0, profile.eta0, profile.limits)
        .unwrap();
    let b = service
        .submit(profile.m0, profile.eta0, profile.limits)
        .unwrap();
    service.trigger_schedule().unwrap();
    assert!(service.wait_for_rounds(1, Duration::from_secs(30)));

    let direct_of = |id: JobId| &direct_jobs[id.0 as usize];
    // Round 1: both fresh jobs get the exact placements the direct
    // planner produced (same seed, same views).
    let round1_of = |id: JobId| {
        rounds[0]
            .iter()
            .find(|r| r.job == id)
            .map(|r| r.new.clone())
            .unwrap_or_else(|| vec![0; NODES as usize])
    };
    assert_eq!(a.placement(), round1_of(a.id()));
    assert_eq!(b.placement(), round1_of(b.id()));

    // Round 2: a third job arrives and the round may move the first
    // two. Placements and the restart set must match the reference.
    let c = service
        .submit(profile.m0, profile.eta0, profile.limits)
        .unwrap();
    service.trigger_schedule().unwrap();
    assert!(service.wait_for_rounds(2, Duration::from_secs(30)));

    for h in [&a, &b, &c] {
        let expected = &direct_of(h.id()).placement;
        assert_eq!(&h.placement(), expected, "job {} placement", h.id());
        let expected_restarts = rounds
            .iter()
            .flatten()
            .filter(|r| r.job == h.id() && r.triggers_restart)
            .count() as u32;
        assert_eq!(
            h.num_restarts(),
            expected_restarts,
            "job {} restart count",
            h.id()
        );
    }
    service.shutdown();
}

#[test]
fn simulator_first_interval_matches_direct_planner_outcome() {
    let profile = ModelKind::ResNet18Cifar10.profile();
    let (_, rounds) = direct_rounds(profile.limits);

    // Two fresh jobs submitted at t=0: the engine's first reschedule
    // consumes an RNG stream identical to a fresh planner's (no
    // running jobs yet, so no noise draws precede it).
    let user = UserConfig {
        gpus: 1,
        batch_size: profile.m0,
    };
    let trace: Vec<JobSpec> = (0..2)
        .map(|i| JobSpec {
            id: JobId(i),
            kind: ModelKind::ResNet18Cifar10,
            submit_time: 0.0,
            work: 1e9,
            tuned: user,
            realistic: user,
        })
        .collect();
    let workload = trace.into_iter().map(|j| (j, user)).collect();
    let sim = SimConfig {
        seed: SEED,
        sched_threads: 1,
        max_sim_time: 120.0,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(quick_pollux_config()).unwrap();
    let result = Simulation::try_new(
        sim,
        ClusterSpec::homogeneous(NODES, GPUS_PER_NODE).unwrap(),
        policy,
        workload,
    )
    .unwrap()
    .run();

    for id in [JobId(0), JobId(1)] {
        let expected_gpus = rounds[0]
            .iter()
            .find(|r| r.job == id)
            .map(|r| r.gpus())
            .unwrap_or(0);
        let first_event_gpus = result
            .events
            .iter()
            .find(|e| e.time == 0.0 && e.job == id && e.kind == EventKind::Started)
            .map(|e| e.gpus)
            .unwrap_or(0);
        assert_eq!(
            first_event_gpus, expected_gpus,
            "job {id} first-interval allocation"
        );
    }
}
