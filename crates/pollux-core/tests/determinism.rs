//! Determinism regression tests for parallel fitness evaluation.
//!
//! The parallel GA's contract is that results are a pure function of
//! the seed — never of the worker-thread count. These tests pin that
//! contract at two levels:
//!
//! - `PolluxSched::optimize` must return a byte-identical
//!   `AllocationMatrix` (and population) at 1 vs. N threads;
//! - a full `Simulation::run` must produce an identical `SimResult`
//!   (compared through its serialized form, which covers every f64 bit
//!   pattern) when only `SimConfig::sched_threads` changes.

use pollux_cluster::{ClusterSpec, JobId};
use pollux_core::{ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_models::{
    BatchSizeLimits, EfficiencyModel, GoodputModel, PlacementShape, ThroughputParams,
};
use pollux_sched::{GaConfig, PolluxSched, SchedConfig, SchedJob};
use pollux_simulator::SimConfig;
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn goodput_model(phi: f64) -> GoodputModel {
    let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
    let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
    let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
    GoodputModel::new(tp, eff, limits).unwrap()
}

fn sched_jobs(n: u32, nodes: usize) -> Vec<SchedJob> {
    (0..n)
        .map(|i| {
            let mut current = vec![0u32; nodes];
            // A few jobs start "running" so the restart penalty and the
            // retained-placement seeding paths are both exercised.
            if i % 3 == 0 {
                current[i as usize % nodes] = 2;
            }
            SchedJob {
                id: JobId(i),
                model: goodput_model(600.0 + 250.0 * i as f64),
                min_gpus: 1,
                gpu_cap: 32,
                weight: 1.0 + (i % 4) as f64 * 0.3,
                current_placement: current,
            }
        })
        .collect()
}

fn sched_with_threads(threads: usize) -> PolluxSched {
    let config = SchedConfig {
        ga: GaConfig {
            population: 24,
            generations: 10,
            threads,
            ..Default::default()
        },
        ..Default::default()
    };
    PolluxSched::new(config)
}

#[test]
fn optimize_is_identical_across_thread_counts() {
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let jobs = sched_jobs(12, 8);

    let mut reference = None;
    for threads in [1usize, 2, 4, 8] {
        let mut sched = sched_with_threads(threads);
        let mut rng = StdRng::seed_from_u64(41);
        let outcome = sched.optimize(&jobs, &spec, &mut rng);
        match &reference {
            None => reference = Some(outcome),
            Some(base) => {
                assert_eq!(
                    base.best, outcome.best,
                    "best allocation differs at {threads} threads"
                );
                assert_eq!(
                    base.best_fitness.to_bits(),
                    outcome.best_fitness.to_bits(),
                    "fitness bits differ at {threads} threads"
                );
                assert_eq!(
                    base.population, outcome.population,
                    "population differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn optimize_is_repeatable_for_a_fixed_seed() {
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let jobs = sched_jobs(12, 8);
    let run = |threads| {
        let mut sched = sched_with_threads(threads);
        let mut rng = StdRng::seed_from_u64(99);
        sched.optimize(&jobs, &spec, &mut rng).best
    };
    assert_eq!(run(4), run(4), "same seed, same threads must repeat");
    assert_eq!(run(1), run(4), "serial and parallel must agree");
}

fn tiny_trace() -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs: 6,
        duration_hours: 0.5,
        seed: 11,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .into_iter()
    .filter(|j| {
        matches!(
            j.kind,
            ModelKind::ResNet18Cifar10 | ModelKind::NeuMFMovieLens
        )
    })
    .collect()
}

fn run_sim(sched_threads: usize) -> String {
    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 16,
        generations: 8,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(c).unwrap();
    let trace = tiny_trace();
    assert!(!trace.is_empty());
    let spec = ClusterSpec::homogeneous(4, 4).unwrap();
    let sim = SimConfig {
        max_sim_time: 10.0 * 3600.0,
        sched_threads,
        ..Default::default()
    };
    let result = pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim).unwrap();
    serde_json::to_string(&result).expect("SimResult serializes")
}

/// A live telemetry recorder must not change a single byte of the
/// serialized full-stack result: same trace, same seed, with and
/// without a `MemorySink`-backed recorder attached through
/// `run_trace_recorded`. Recorder state (wall-clock spans, counters)
/// never touches the simulation's RNG or float accumulation order.
#[test]
fn simulation_result_is_identical_with_telemetry_enabled() {
    use std::sync::Arc;
    let run = |recorded: bool| -> String {
        let mut c = PolluxConfig::default();
        c.sched.ga = GaConfig {
            population: 16,
            generations: 8,
            ..Default::default()
        };
        let policy = PolluxPolicy::new(c).unwrap();
        let trace = tiny_trace();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 10.0 * 3600.0,
            ..Default::default()
        };
        let result = if recorded {
            let sink = Arc::new(pollux_telemetry::MemorySink::new(1 << 16));
            let recorder = pollux_telemetry::Recorder::new(sink.clone());
            let res = pollux_core::run_trace_recorded(
                policy,
                &trace,
                ConfigChoice::Tuned,
                spec,
                sim,
                recorder,
            )
            .unwrap();
            if cfg!(feature = "telemetry") {
                assert!(!sink.is_empty(), "recorder attached but nothing captured");
            }
            res
        } else {
            pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim).unwrap()
        };
        serde_json::to_string(&result).expect("SimResult serializes")
    };
    let plain = run(false);
    let recorded = run(true);
    if plain != recorded {
        let pos = plain
            .bytes()
            .zip(recorded.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(plain.len().min(recorded.len()));
        let lo = pos.saturating_sub(200);
        panic!(
            "SimResult bytes differ with telemetry enabled at byte {pos}:\nplain:    ...{}...\nrecorded: ...{}...",
            &plain[lo..(pos + 200).min(plain.len())],
            &recorded[lo..(pos + 200).min(recorded.len())]
        );
    }
}

#[test]
fn simulation_result_is_identical_across_sched_threads() {
    let serial = run_sim(1);
    let parallel = run_sim(4);
    if serial != parallel {
        let pos = serial
            .bytes()
            .zip(parallel.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(serial.len().min(parallel.len()));
        let lo = pos.saturating_sub(200);
        panic!(
            "SimResult bytes differ between sched_threads=1 and 4 at byte {pos}:\nserial:   ...{}...\nparallel: ...{}...",
            &serial[lo..(pos + 200).min(serial.len())],
            &parallel[lo..(pos + 200).min(parallel.len())]
        );
    }
}

/// `engine_threads` parallelizes the job-major chunk loop and the
/// report round's refit/tune fan-out; under the full Pollux stack (GA
/// scheduling, batch adaptation, restarts, interference) it must not
/// perturb one byte of the serialized result.
#[test]
fn simulation_result_is_identical_across_engine_threads() {
    let run = |engine_threads: usize| -> String {
        let mut c = PolluxConfig::default();
        c.sched.ga = GaConfig {
            population: 16,
            generations: 8,
            ..Default::default()
        };
        let policy = PolluxPolicy::new(c).unwrap();
        let trace = tiny_trace();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 10.0 * 3600.0,
            interference_slowdown: 0.3,
            engine_threads,
            ..Default::default()
        };
        let result =
            pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim).unwrap();
        serde_json::to_string(&result).expect("SimResult serializes")
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let parallel = run(threads);
        if serial != parallel {
            let pos = serial
                .bytes()
                .zip(parallel.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(serial.len().min(parallel.len()));
            let lo = pos.saturating_sub(200);
            panic!(
                "SimResult bytes differ between engine_threads=1 and {threads} at byte {pos}:\nserial:   ...{}...\nparallel: ...{}...",
                &serial[lo..(pos + 200).min(serial.len())],
                &parallel[lo..(pos + 200).min(parallel.len())]
            );
        }
    }
}

#[test]
fn macro_stepped_engine_matches_reference_with_pollux_policy() {
    // The engine-level determinism suite (pollux-simulator's
    // tests/macro_step.rs) covers synthetic policies; this pins the
    // same bit-identity contract under the real Pollux stack — GA
    // scheduling draws, batch-size adaptation, restarts, the works.
    use pollux_simulator::Simulation;
    let run = |reference: bool| {
        let mut c = PolluxConfig::default();
        c.sched.ga = GaConfig {
            population: 16,
            generations: 8,
            ..Default::default()
        };
        let policy = PolluxPolicy::new(c).unwrap();
        let trace = tiny_trace();
        let workload = trace.iter().map(|j| (j.clone(), j.tuned)).collect();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let sim = SimConfig {
            max_sim_time: 10.0 * 3600.0,
            interference_slowdown: 0.3,
            ..Default::default()
        };
        let sim = Simulation::new(sim, spec, policy, workload).unwrap();
        let result = if reference {
            sim.run_reference()
        } else {
            sim.run()
        };
        serde_json::to_string(&result).expect("SimResult serializes")
    };
    let macro_stepped = run(false);
    let reference = run(true);
    if macro_stepped != reference {
        let pos = macro_stepped
            .bytes()
            .zip(reference.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(macro_stepped.len().min(reference.len()));
        let lo = pos.saturating_sub(200);
        panic!(
            "SimResult bytes differ between run() and run_reference() at byte {pos}:\nmacro: ...{}...\nref:   ...{}...",
            &macro_stepped[lo..(pos + 200).min(macro_stepped.len())],
            &reference[lo..(pos + 200).min(reference.len())]
        );
    }
}

#[test]
fn incremental_fitness_matches_full_recompute_on_optimize() {
    // The GA carries per-job contribution vectors and recomputes only
    // touched rows; the winning chromosome's fitness must still equal a
    // from-scratch evaluation, bit for bit.
    use pollux_sched::{fitness, FitnessConfig, SpeedupTable};
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let jobs = sched_jobs(12, 8);
    let mut sched = sched_with_threads(2);
    let mut rng = StdRng::seed_from_u64(17);
    let outcome = sched.optimize(&jobs, &spec, &mut rng);
    assert!(outcome.stats.incremental_evals > 0, "{:?}", outcome.stats);
    let table = SpeedupTable::build(&jobs, &spec, 1);
    let full = fitness(&jobs, &outcome.best, &table, &FitnessConfig::default());
    assert_eq!(
        outcome.best_fitness.to_bits(),
        full.to_bits(),
        "incremental {} vs full {}",
        outcome.best_fitness,
        full
    );
}

#[test]
fn interval_stats_are_identical_across_thread_counts() {
    // Every deterministic counter in the per-interval breakdown (GA
    // evaluations, table lookups, solves) must be a pure function of
    // the seed — only the wall-clock nanos may differ.
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let jobs = sched_jobs(12, 8);
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let mut sched = sched_with_threads(threads);
        let mut rng = StdRng::seed_from_u64(23);
        let _ = sched.optimize(&jobs, &spec, &mut rng);
        let stats = sched.take_interval_stats().expect("interval recorded");
        match &reference {
            None => reference = Some(stats),
            Some(base) => {
                assert_eq!(base.ga, stats.ga, "GA counters differ at {threads} threads");
                assert_eq!(
                    base.speedup, stats.speedup,
                    "table counters differ at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn dense_table_matches_model_bitwise_at_any_thread_count() {
    use pollux_sched::SpeedupTable;
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let jobs = sched_jobs(6, 8);
    for threads in [1usize, 2, 4] {
        let table = SpeedupTable::build(&jobs, &spec, threads);
        for (j, job) in jobs.iter().enumerate() {
            for gpus in 1..=spec.total_gpus() {
                for nodes in [1u32, 2, 4] {
                    if nodes > gpus {
                        continue;
                    }
                    let shape = PlacementShape::new(gpus, nodes).unwrap();
                    let expect = if gpus < job.min_gpus || gpus > job.gpu_cap {
                        0.0
                    } else {
                        job.model
                            .speedup(PlacementShape::new(gpus, nodes.min(2)).unwrap())
                    };
                    assert_eq!(
                        table.speedup(j, shape).to_bits(),
                        expect.to_bits(),
                        "job {j} shape ({gpus},{nodes}) at {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn racked_optimize_is_identical_across_thread_counts() {
    // The per-rack phase-2 GAs run in parallel with one serial seed
    // draw per occupied rack; multi-round runs on one scheduler also
    // exercise the cross-interval carry (warm-start populations and
    // incremental tables), which must stay thread-count invariant.
    use pollux_cluster::Topology;
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let topo = Topology::grouped(8, 2).unwrap();

    let run = |threads: usize| {
        let mut sched = sched_with_threads(threads);
        sched.set_topology(Some(topo.clone()));
        let mut rng = StdRng::seed_from_u64(17);
        let mut outcomes = Vec::new();
        // Round 1 cold; rounds 2-3 warm (carry-over populated); the
        // job set churns between rounds to exercise the id remap.
        let mut jobs = sched_jobs(12, 8);
        outcomes.push(sched.optimize(&jobs, &spec, &mut rng));
        outcomes.push(sched.optimize(&jobs, &spec, &mut rng));
        jobs.remove(3);
        jobs.push(SchedJob {
            id: JobId(100),
            model: goodput_model(1234.0),
            min_gpus: 1,
            gpu_cap: 16,
            weight: 1.0,
            current_placement: vec![0; 8],
        });
        outcomes.push(sched.optimize(&jobs, &spec, &mut rng));
        outcomes
    };

    let reference = run(1);
    for threads in [2usize, 4] {
        let outcomes = run(threads);
        for (round, (base, got)) in reference.iter().zip(&outcomes).enumerate() {
            assert_eq!(
                base.best, got.best,
                "racked best differs at {threads} threads, round {round}"
            );
            assert_eq!(
                base.best_fitness.to_bits(),
                got.best_fitness.to_bits(),
                "racked fitness bits differ at {threads} threads, round {round}"
            );
            assert_eq!(
                base.population, got.population,
                "racked population differs at {threads} threads, round {round}"
            );
        }
    }
}

mod incremental_table_proptests {
    use super::*;
    use pollux_sched::SpeedupTable;
    use proptest::prelude::*;

    /// One step of a job-stream mutation: what the scheduler sees
    /// between consecutive intervals.
    #[derive(Debug, Clone)]
    enum Step {
        /// Refit job at (index % len): new model parameters.
        Mutate(usize, u8),
        /// New job arrives with the given cap.
        Arrive(u8),
        /// Job at (index % len) departs.
        Depart(usize),
        /// Placement/weight churn only (must not dirty any row).
        Touch(usize),
    }

    fn apply(jobs: &mut Vec<SchedJob>, next_id: &mut u32, step: &Step) {
        match step {
            Step::Mutate(i, phi) => {
                if !jobs.is_empty() {
                    let k = i % jobs.len();
                    jobs[k].model = goodput_model(300.0 + 57.0 * *phi as f64);
                }
            }
            Step::Arrive(cap) => {
                jobs.push(SchedJob {
                    id: JobId(*next_id),
                    model: goodput_model(500.0 + 11.0 * *next_id as f64),
                    min_gpus: 1,
                    gpu_cap: 2 + (*cap as u32 % 30),
                    weight: 1.0,
                    current_placement: vec![0; 8],
                });
                *next_id += 1;
            }
            Step::Depart(i) => {
                if !jobs.is_empty() {
                    let k = i % jobs.len();
                    jobs.remove(k);
                }
            }
            Step::Touch(i) => {
                if !jobs.is_empty() {
                    let k = i % jobs.len();
                    jobs[k].weight *= 0.9;
                    jobs[k].current_placement[k % 8] += 1;
                }
            }
        }
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        (0u8..4, 0usize..64, 0u8..32).prop_map(|(kind, i, p)| match kind {
            0 => Step::Mutate(i, p),
            1 => Step::Arrive(p),
            2 => Step::Depart(i),
            _ => Step::Touch(i),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Under any interleaving of refits, arrivals, departures, and
        /// placement churn, the incrementally-built table is
        /// bit-identical to a from-scratch build — values AND the
        /// (golden-digested) solve totals.
        #[test]
        fn incremental_table_is_bit_identical_to_fresh_under_churn(
            steps in proptest::collection::vec(step_strategy(), 1..12),
            threads in 1usize..4,
        ) {
            let spec = ClusterSpec::homogeneous(8, 4).unwrap();
            let mut jobs = sched_jobs(6, 8);
            let mut next_id = 100u32;
            let mut prev = SpeedupTable::build(&jobs, &spec, threads);
            for step in &steps {
                apply(&mut jobs, &mut next_id, step);
                let incr = SpeedupTable::build_reusing(
                    &jobs, &spec, threads, Some(&prev),
                );
                let fresh = SpeedupTable::build(&jobs, &spec, 1);
                prop_assert_eq!(incr.stats().solves, fresh.stats().solves);
                prop_assert_eq!(incr.num_jobs(), fresh.num_jobs());
                prop_assert_eq!(incr.max_gpus(), fresh.max_gpus());
                for j in 0..jobs.len() {
                    for gpus in 1..=fresh.max_gpus() {
                        for nodes in [1u32, 2] {
                            if nodes > gpus {
                                continue;
                            }
                            let shape = PlacementShape::new(gpus, nodes).unwrap();
                            prop_assert_eq!(
                                incr.speedup(j, shape).to_bits(),
                                fresh.speedup(j, shape).to_bits(),
                                "job {} shape ({},{})", j, gpus, nodes
                            );
                        }
                    }
                }
                prev = incr;
            }
        }
    }
}

#[test]
fn speedup_values_survive_shape_canonicalization_in_parallel() {
    // Same job queried through many equivalent shapes from many
    // threads must always observe the same canonical value.
    use pollux_sched::{parallel_map, SpeedupCache};
    let jobs = sched_jobs(4, 8);
    let cache = SpeedupCache::new();
    let expect: Vec<f64> = (0..32)
        .map(|i| {
            let job = &jobs[i % jobs.len()];
            let shape = PlacementShape::new(1 + (i as u32 % 16), 1 + (i as u32 % 4)).unwrap();
            job.model
                .max_goodput(PlacementShape::new(shape.gpus, shape.nodes.min(2)).unwrap())
                / job.model.max_goodput(job.model.reference_shape())
        })
        .collect();
    let got = parallel_map(32, 4, |i| {
        let job = &jobs[i % jobs.len()];
        let shape = PlacementShape::new(1 + (i as u32 % 16), 1 + (i as u32 % 4)).unwrap();
        cache.speedup(job, shape)
    });
    for (g, e) in got.iter().zip(&expect) {
        assert_eq!(g.to_bits(), e.to_bits());
    }
}
