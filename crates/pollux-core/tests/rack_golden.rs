//! Golden-digest regression for the rack-aware two-phase scheduler.
//!
//! Two halves of the topology contract:
//!
//! 1. **Degenerate topology is inert.** A single-rack grouping (any
//!    `nodes_per_rack` ≥ the node count, or exactly the node count)
//!    must leave the full Pollux stack's serialized `SimResult`
//!    byte-identical to the flat (no-topology) run — the racked code
//!    path is only entered with ≥ 2 racks, and the config knob alone
//!    may not perturb a single RNG draw or float accumulation.
//! 2. **The multi-rack trajectory is pinned.** A 4-rack run (8 nodes,
//!    `nodes_per_rack = 2`) exercises the two-phase search (rack
//!    assignment GA + per-rack placement GAs); its digest is pinned so
//!    the racked trajectory can only change deliberately, with the
//!    constant updated in the same commit that changes the search.

use pollux_cluster::ClusterSpec;
use pollux_core::{ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_sched::GaConfig;
use pollux_simulator::SimConfig;
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator};

/// FNV-1a 64-bit digest; tiny, dependency-free, and stable (mirrors
/// the simulator's macro_step suite).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tiny_trace() -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        num_jobs: 6,
        duration_hours: 0.5,
        seed: 11,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .into_iter()
    .filter(|j| {
        matches!(
            j.kind,
            ModelKind::ResNet18Cifar10 | ModelKind::NeuMFMovieLens
        )
    })
    .collect()
}

fn run_sim(nodes: u32, nodes_per_rack: u32) -> String {
    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 16,
        generations: 8,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(c).unwrap();
    let trace = tiny_trace();
    assert!(!trace.is_empty());
    let spec = ClusterSpec::homogeneous(nodes, 4).unwrap();
    let sim = SimConfig {
        max_sim_time: 10.0 * 3600.0,
        nodes_per_rack,
        ..Default::default()
    };
    let result = pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim).unwrap();
    serde_json::to_string(&result).expect("SimResult serializes")
}

/// Single-rack topologies must be byte-identical to the flat run for
/// the real Pollux stack — GA draws, batch adaptation, restarts, the
/// works. `nodes_per_rack = 4` is exactly one rack on 4 nodes;
/// `nodes_per_rack = 64` saturates to one rack.
#[test]
fn single_rack_topology_is_byte_identical_to_flat() {
    let flat = run_sim(4, 0);
    for npr in [4u32, 64] {
        let racked = run_sim(4, npr);
        if flat != racked {
            let at = flat
                .bytes()
                .zip(racked.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| flat.len().min(racked.len()));
            let lo = at.saturating_sub(120);
            panic!(
                "nodes_per_rack={npr} diverged from the flat run at byte {at}\n  \
                 flat:   …{}…\n  racked: …{}…",
                &flat[lo..(at + 120).min(flat.len())],
                &racked[lo..(at + 120).min(racked.len())],
            );
        }
    }
}

/// Pinned digest of the 4-rack small-cluster trajectory (8 nodes × 4
/// GPUs, `nodes_per_rack = 2`). This run takes the two-phase path
/// every scheduling round; if the constant changes, the racked search
/// changed — update it only together with a deliberate change to the
/// rack assignment or per-rack placement GA.
///
/// Re-pinned once (from `0xbe94_18a2_be53_5c35`) when the racked
/// search went cross-round incremental, a package of deliberate
/// stream changes landing together:
///
/// - the per-rack phase-2 GAs went parallel: each evolved rack
///   receives its own seed drawn serially from the interval RNG (one
///   `next_u64` per rack, rack order) instead of all racks sharing
///   the single interval stream, so workers are order-independent and
///   bit-identical at any thread count;
/// - phase 1 seeds its population with the previous interval's
///   assignment and stops after stale generations, which changes its
///   draw count; ties in the assignment score now resolve to the
///   carried/seed member instead of the last-ranked one;
/// - a rack whose subproblem is verbatim unchanged replays last
///   interval's answer without drawing a seed at all (the quiet-rack
///   fast path).
///
/// Each piece changes the racked RNG stream, and with it this digest,
/// exactly once for the package. Flat and single-rack runs never
/// enter the racked path, so GOLDEN_CHURN/GOLDEN_QUIET and the
/// single-rack ≡ flat byte-identity above are unaffected.
///
/// Re-pinned a second time (from `0xa323_945d_078a_0207`) for the
/// job-major chunk/report-round restructure, which landed with the
/// flat digests verified but left this constant stale: the two-phase
/// report round snapshots every refit trigger before any commit, so
/// a refit can shift by one report round relative to the interleaved
/// order, perturbing the racked quiet-rack detection (exact subproblem
/// equality) and with it the racked RNG stream. The flat macro_step
/// digests were unaffected and still pass against their original
/// constants.
const GOLDEN_FOUR_RACK: u64 = 0xe724_718b_11a3_8cdb;

#[test]
fn golden_trajectory_four_racks() {
    let d = fnv1a64(run_sim(8, 2).as_bytes());
    assert_eq!(
        d, GOLDEN_FOUR_RACK,
        "the 4-rack Pollux trajectory drifted: 0x{d:016x}"
    );
}

/// Same seed, same racked configuration → same bytes. The racked path
/// must be as deterministic as the flat one (one serial RNG stream
/// through phase 1 and the per-rack phase-2 searches).
#[test]
fn racked_run_is_repeatable() {
    assert_eq!(run_sim(8, 2), run_sim(8, 2));
}
