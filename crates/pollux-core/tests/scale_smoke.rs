//! Datacenter-scale smoke test: the full Pollux stack (engine +
//! agents + racked two-phase GA + planner) over a 256-node × 1 000-job
//! trace, behind an env gate so the default `cargo test` stays fast.
//!
//! Run with:
//!
//! ```text
//! POLLUX_SCALE_SMOKE=1 cargo test --release -p pollux-core --test scale_smoke
//! ```
//!
//! CI runs exactly that. Besides completing at all — which the dense
//! structures did not at this size within any reasonable budget — the
//! run must fit a generous wall-clock envelope, so gross scaling
//! regressions (an accidental O(nodes · jobs) rescan per chunk, a
//! dense table at cluster width) fail loudly rather than slowly.

use pollux_cluster::ClusterSpec;
use pollux_core::{ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_sched::GaConfig;
use pollux_simulator::SimConfig;
use pollux_workload::{TraceConfig, TraceGenerator};
use std::time::{Duration, Instant};

fn gated() -> bool {
    if !std::env::var("POLLUX_SCALE_SMOKE").is_ok_and(|v| v != "0") {
        eprintln!("scale smoke skipped: set POLLUX_SCALE_SMOKE=1 to run");
        return false;
    }
    true
}

/// Wall-clock budget for the whole simulated run (release build).
/// Locally this completes in well under a third of the budget; the
/// slack absorbs shared-runner jitter, not algorithmic regressions —
/// a dense-path regression overshoots by an order of magnitude.
const BUDGET: Duration = Duration::from_secs(300);

#[test]
fn datacenter_scale_trace_completes_within_budget() {
    if !gated() {
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("scale smoke wants --release (the budget assumes it)");
    }

    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 1_000,
        duration_hours: 1.0,
        max_gpus: 8,
        gpus_per_node: 4,
        seed: 2025,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate();

    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 12,
        generations: 8,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(c).unwrap();
    let spec = ClusterSpec::homogeneous(256, 4).unwrap();
    let sim = SimConfig {
        max_sim_time: 1.5 * 3600.0,
        nodes_per_rack: 16,
        ..Default::default()
    };

    let start = Instant::now();
    let result = pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim)
        .expect("valid simulation inputs");
    let elapsed = start.elapsed();

    assert_eq!(result.records.len(), 1_000, "every job must be simulated");
    let started = result
        .records
        .iter()
        .filter(|j| j.start_time.is_some())
        .count();
    assert!(
        started > 0,
        "the racked scheduler never placed a single job"
    );
    eprintln!(
        "scale smoke: 256 nodes x 1000 jobs, {} started, wall {:.1}s (budget {:.0}s)",
        started,
        elapsed.as_secs_f64(),
        BUDGET.as_secs_f64()
    );
    assert!(
        elapsed <= BUDGET,
        "datacenter-scale run blew the wall-clock budget: {:.1}s > {:.0}s",
        elapsed.as_secs_f64(),
        BUDGET.as_secs_f64()
    );
}

/// A *quiet* round — same jobs, same placements, a policy with nothing
/// to change — must be O(churn): the planner materializes zero
/// reallocation rows and the view → `SchedJob` cache rebuilds zero
/// entries, even at 256 nodes × 1 000 jobs.
#[test]
fn quiet_round_materializes_no_rows_and_rebuilds_no_views() {
    use pollux_cluster::{AllocationMatrix, JobId};
    use pollux_control::{
        PlacementDelta, PolicyJobView, RoundPlanner, SchedJobCache, SchedulingPolicy,
    };
    use pollux_models::BatchSizeLimits;
    use pollux_sched::WeightConfig;
    use pollux_workload::UserConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    if !gated() {
        return;
    }

    const NODES: usize = 256;
    const JOBS: usize = 1_000;
    let spec = ClusterSpec::homogeneous(NODES as u32, 4).unwrap();

    /// Sparse keep-everything policy: steady state has no deltas.
    struct Keep;
    impl SchedulingPolicy for Keep {
        fn name(&self) -> &'static str {
            "keep"
        }
        fn schedule(
            &mut self,
            _now: f64,
            jobs: &[PolicyJobView<'_>],
            _spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> AllocationMatrix {
            panic!(
                "quiet rounds must stay on the sparse path ({} jobs)",
                jobs.len()
            )
        }
        fn schedule_sparse(
            &mut self,
            _now: f64,
            _jobs: &[PolicyJobView<'_>],
            _spec: &ClusterSpec,
            _rng: &mut StdRng,
        ) -> Option<Vec<PlacementDelta>> {
            Some(Vec::new())
        }
    }

    // Every job pinned to one GPU on a node, round-robin.
    let placements: Vec<Vec<u32>> = (0..JOBS)
        .map(|j| {
            let mut p = vec![0u32; NODES];
            p[j % NODES] = 1;
            p
        })
        .collect();
    let limits = BatchSizeLimits::new(128, 4096, 512).unwrap();
    let views: Vec<PolicyJobView<'_>> = placements
        .iter()
        .enumerate()
        .map(|(j, p)| PolicyJobView {
            id: JobId(j as u32),
            user: UserConfig {
                gpus: 1,
                batch_size: 128,
            },
            profile: None,
            limits,
            report: None,
            gputime: 60.0,
            submit_time: 0.0,
            current_placement: p,
            started: true,
            batch_size: 128,
            remaining_work: 1e9,
        })
        .collect();

    let mut planner = RoundPlanner::new();
    let mut cache = SchedJobCache::default();
    let mut rng = StdRng::seed_from_u64(7);
    let weights = WeightConfig::default();

    // Round 1 warms both: the cache builds every entry, the planner
    // caches the id sequence.
    cache.refresh(&weights, &views);
    let out = planner
        .plan(&mut Keep, 0.0, &views, &spec, &mut rng)
        .unwrap();
    assert!(out.reallocations.is_empty());
    assert_eq!(cache.last_rebuilt() as usize, JOBS);

    // Round 2 is quiet: zero rows materialized, zero views rebuilt.
    cache.refresh(&weights, &views);
    let out = planner
        .plan(&mut Keep, 60.0, &views, &spec, &mut rng)
        .unwrap();
    assert!(out.reallocations.is_empty());
    assert_eq!(
        planner.rows_materialized(),
        0,
        "quiet round materialized rows"
    );
    assert_eq!(cache.last_rebuilt(), 0, "quiet round rebuilt views");
    assert_eq!(cache.last_reused() as usize, JOBS);
    eprintln!(
        "quiet round: {} nodes x {} jobs, 0 rows materialized, 0 views rebuilt",
        NODES, JOBS
    );
}
