//! Datacenter-scale smoke test: the full Pollux stack (engine +
//! agents + racked two-phase GA + planner) over a 256-node × 1 000-job
//! trace, behind an env gate so the default `cargo test` stays fast.
//!
//! Run with:
//!
//! ```text
//! POLLUX_SCALE_SMOKE=1 cargo test --release -p pollux-core --test scale_smoke
//! ```
//!
//! CI runs exactly that. Besides completing at all — which the dense
//! structures did not at this size within any reasonable budget — the
//! run must fit a generous wall-clock envelope, so gross scaling
//! regressions (an accidental O(nodes · jobs) rescan per chunk, a
//! dense table at cluster width) fail loudly rather than slowly.

use pollux_cluster::ClusterSpec;
use pollux_core::{ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_sched::GaConfig;
use pollux_simulator::SimConfig;
use pollux_workload::{TraceConfig, TraceGenerator};
use std::time::{Duration, Instant};

/// Wall-clock budget for the whole simulated run (release build).
/// Locally this completes in well under a third of the budget; the
/// slack absorbs shared-runner jitter, not algorithmic regressions —
/// a dense-path regression overshoots by an order of magnitude.
const BUDGET: Duration = Duration::from_secs(300);

#[test]
fn datacenter_scale_trace_completes_within_budget() {
    if !std::env::var("POLLUX_SCALE_SMOKE").is_ok_and(|v| v != "0") {
        eprintln!("scale smoke skipped: set POLLUX_SCALE_SMOKE=1 to run");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("scale smoke wants --release (the budget assumes it)");
    }

    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 1_000,
        duration_hours: 1.0,
        max_gpus: 8,
        gpus_per_node: 4,
        seed: 2025,
        ..Default::default()
    })
    .expect("static trace config is valid")
    .generate();

    let mut c = PolluxConfig::default();
    c.sched.ga = GaConfig {
        population: 12,
        generations: 8,
        ..Default::default()
    };
    let policy = PolluxPolicy::new(c).unwrap();
    let spec = ClusterSpec::homogeneous(256, 4).unwrap();
    let sim = SimConfig {
        max_sim_time: 1.5 * 3600.0,
        nodes_per_rack: 16,
        ..Default::default()
    };

    let start = Instant::now();
    let result = pollux_core::run_trace(policy, &trace, ConfigChoice::Tuned, spec, sim)
        .expect("valid simulation inputs");
    let elapsed = start.elapsed();

    assert_eq!(result.records.len(), 1_000, "every job must be simulated");
    let started = result
        .records
        .iter()
        .filter(|j| j.start_time.is_some())
        .count();
    assert!(
        started > 0,
        "the racked scheduler never placed a single job"
    );
    eprintln!(
        "scale smoke: 256 nodes x 1000 jobs, {} started, wall {:.1}s (budget {:.0}s)",
        started,
        elapsed.as_secs_f64(),
        BUDGET.as_secs_f64()
    );
    assert!(
        elapsed <= BUDGET,
        "datacenter-scale run blew the wall-clock budget: {:.1}s > {:.0}s",
        elapsed.as_secs_f64(),
        BUDGET.as_secs_f64()
    );
}
