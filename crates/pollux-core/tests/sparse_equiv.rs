//! Equivalence wall for the datacenter-scale sparse structures.
//!
//! Two pinned equivalences, each under randomized operation streams:
//!
//! 1. [`SparseAllocation`] ≡ [`AllocationMatrix`]: both sides execute
//!    the same random sequence of `set` / `set_row` / `push_job` /
//!    `remove_job` / `resize_nodes` operations and must agree on every
//!    observable — cell values, per-job totals, shapes, per-node
//!    usage, and the dense materialization.
//! 2. [`InterferenceIndex`] ≡ the full rescan: the incremental
//!    occupant index is driven through a random stream of placement
//!    diffs (the simulator's `apply` / `clear_job` / `push_job` /
//!    `rebuild` calls) and its slowdown marking must match a
//!    brute-force recomputation from the placement rows at every step.
//!
//! These are the structures `bench_scale` leans on; the golden-digest
//! suites pin the *trajectory*, this suite pins the *data structures*
//! under inputs the trajectories never reach.

use pollux_cluster::{AllocationMatrix, SparseAllocation};
use pollux_simulator::InterferenceIndex;
use proptest::prelude::*;

/// Asserts every observable of the sparse and dense representations
/// agrees.
fn assert_equivalent(s: &SparseAllocation, m: &AllocationMatrix, ctx: &str) {
    assert_eq!(s.num_jobs(), m.num_jobs(), "num_jobs diverged: {ctx}");
    assert_eq!(s.num_nodes(), m.num_nodes(), "num_nodes diverged: {ctx}");
    assert_eq!(&s.to_dense(), m, "dense view diverged: {ctx}");
    for j in 0..m.num_jobs() {
        assert_eq!(s.dense_row(j), m.row(j), "row {j} diverged: {ctx}");
        assert!(
            s.row_equals_dense(j, m.row(j)),
            "row_equals_dense {j}: {ctx}"
        );
        assert_eq!(s.gpus_of(j), m.gpus_of(j), "gpus_of {j}: {ctx}");
        assert_eq!(s.nodes_of(j), m.nodes_of(j), "nodes_of {j}: {ctx}");
        assert_eq!(s.shape_of(j), m.shape_of(j), "shape_of {j}: {ctx}");
        assert_eq!(
            s.is_distributed(j),
            m.is_distributed(j),
            "is_distributed {j}: {ctx}"
        );
        for n in 0..m.num_nodes() {
            assert_eq!(s.get(j, n), m.get(j, n), "get({j},{n}): {ctx}");
        }
    }
    for n in 0..m.num_nodes() {
        assert_eq!(
            s.gpus_used_on(n),
            m.gpus_used_on(n),
            "gpus_used_on {n}: {ctx}"
        );
    }
    assert_eq!(s.total_gpus_used(), m.total_gpus_used(), "total: {ctx}");
}

/// Brute-force interference marking from raw placement rows: a job is
/// slowed iff it is distributed (≥ 2 nodes) and shares some node with
/// another distributed job — the rule `compute_interference` applies.
fn rescan_slowdowns(rows: &[Vec<u32>], num_nodes: usize, factor: f64) -> Vec<f64> {
    let distributed: Vec<bool> = rows
        .iter()
        .map(|r| r.iter().filter(|&&g| g > 0).count() > 1)
        .collect();
    let mut out = vec![0.0; rows.len()];
    for n in 0..num_nodes {
        let sharers: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(j, r)| distributed[*j] && r.get(n).copied().unwrap_or(0) > 0)
            .map(|(j, _)| j)
            .collect();
        if sharers.len() > 1 {
            for j in sharers {
                out[j] = factor;
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Sparse and dense allocations agree on every observable after
    /// every operation of a random mutation stream.
    #[test]
    fn sparse_equals_dense_under_random_ops(
        init_jobs in 0usize..6,
        init_nodes in 1usize..8,
        ops in proptest::collection::vec(
            (0u8..5, 0usize..16, 0usize..16, 0u32..5),
            1..60,
        ),
    ) {
        let mut m = AllocationMatrix::zeros(init_jobs, init_nodes);
        let mut s = SparseAllocation::zeros(init_jobs, init_nodes);
        assert_equivalent(&s, &m, "initial");
        for (step, &(kind, a, b, g)) in ops.iter().enumerate() {
            let ctx = format!("step {step}: op ({kind}, {a}, {b}, {g})");
            match kind {
                0 => {
                    if m.num_jobs() > 0 {
                        let j = a % m.num_jobs();
                        let n = b % m.num_nodes();
                        m.set(j, n, g);
                        s.set(j, n, g);
                    }
                }
                1 => {
                    if m.num_jobs() > 0 {
                        let j = a % m.num_jobs();
                        // A pseudorandom full row derived from the op
                        // operands: deterministic, hits many patterns.
                        let row: Vec<u32> = (0..m.num_nodes())
                            .map(|n| ((n * (b + 1) + g as usize) % 5) as u32 % 3)
                            .collect();
                        m.set_row(j, row.clone());
                        s.set_row_dense(j, &row);
                    }
                }
                2 => {
                    assert_eq!(m.push_job(), s.push_job(), "push index: {ctx}");
                }
                3 => {
                    if m.num_jobs() > 0 {
                        let j = a % m.num_jobs();
                        m.remove_job(j);
                        s.remove_job(j);
                    }
                }
                _ => {
                    let w = 1 + b % 10;
                    m.resize_nodes(w);
                    s.resize_nodes(w);
                }
            }
            assert_equivalent(&s, &m, &ctx);
        }
        // Round-trips through the other representation are lossless.
        assert_eq!(SparseAllocation::from_dense(&m), s, "from_dense round-trip");
        assert_eq!(s.to_dense(), m, "to_dense round-trip");
    }

    /// The incremental interference index marks exactly the jobs a
    /// full rescan of the placement rows would, across a random
    /// stream of placement diffs, finishes, spawns, and rebuilds.
    #[test]
    fn interference_index_equals_full_rescan(
        init_nodes in 1usize..6,
        factor in 0.05f64..0.9,
        ops in proptest::collection::vec(
            (0u8..8, 0usize..16, 0u64..1_000_000),
            1..60,
        ),
    ) {
        let mut num_nodes = init_nodes;
        let mut rows: Vec<Vec<u32>> = Vec::new();
        let mut index = InterferenceIndex::new(num_nodes);
        for (step, &(kind, pick, pattern)) in ops.iter().enumerate() {
            match kind {
                // Spawn: one new idle job.
                0 => {
                    index.push_job();
                    rows.push(vec![0; num_nodes]);
                }
                // Finish: clear a job's placement.
                1 => {
                    if !rows.is_empty() {
                        let j = pick % rows.len();
                        index.clear_job(j, &rows[j]);
                        rows[j].iter_mut().for_each(|g| *g = 0);
                    }
                }
                // Resize: change the node count and rebuild.
                2 => {
                    num_nodes = 1 + (pick % 8);
                    for row in &mut rows {
                        row.resize(num_nodes, 0);
                    }
                    index.rebuild(num_nodes, rows.iter().map(|r| r.as_slice()));
                }
                // Reallocation diff: replace one job's row with a
                // pattern-derived placement (0-2 GPUs per node).
                _ => {
                    if !rows.is_empty() {
                        let j = pick % rows.len();
                        let new: Vec<u32> = (0..num_nodes)
                            .map(|n| ((pattern >> (2 * (n % 32))) % 3) as u32)
                            .collect();
                        index.apply(j, &rows[j], &new);
                        rows[j] = new;
                    }
                }
            }
            let mut marked = vec![0.0; rows.len()];
            index.mark_slowdowns(factor, &mut marked);
            let expected = rescan_slowdowns(&rows, num_nodes, factor);
            assert_eq!(
                marked, expected,
                "step {step}: op ({kind}, {pick}, {pattern}) over {num_nodes} nodes, rows {rows:?}"
            );
        }
    }
}
