//! Property tests for the staged-scheduler composition contract.
//!
//! Whatever stages a `StagedScheduler` composes, three invariants must
//! hold (DESIGN.md §10):
//!
//! - **Feasibility**: the composed matrix fits the cluster spec, so
//!   the round planner's defensive clamp never fires. Placement owns
//!   this; the tests drive every zoo policy over random jobs, random
//!   cluster shapes, and random pre-existing (collectively feasible)
//!   placements.
//! - **Preemption scope**: a preemption stage only yields *running*
//!   rows, ascending and at most once — the composer indexes `held`
//!   by them. A no-preemption composition keeps every running job's
//!   placement byte-identical on a static cluster.
//! - **Determinism**: the full simulated trajectory is a pure function
//!   of the seed, never of `sched_threads` / `engine_threads` — the
//!   admission order feeds placement directly, so one out-of-order
//!   admit would flip the serialized `SimResult`.

use pollux_baselines::{
    fifo_backfill, gandiva_packing, optimus, or_etal, srsf, srtf, tiresias, TiresiasConfig,
};
use pollux_cluster::{ClusterSpec, JobId};
use pollux_control::pack_consolidated;
use pollux_core::{run_trace, ConfigChoice};
use pollux_models::BatchSizeLimits;
use pollux_simulator::{
    NoPreemption, PolicyJobView, PreemptAll, PreemptionPolicy, SchedulingPolicy, SimConfig,
    StagedScheduler,
};
use pollux_workload::{JobSpec, ModelKind, TraceConfig, TraceGenerator, UserConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Raw per-job generator output: `(requested gpus, submit time,
/// wants-to-be-running flag, attained gpu-time)`.
type RawJob = (u32, f64, u32, f64);

fn raw_jobs() -> impl Strategy<Value = Vec<RawJob>> {
    proptest::collection::vec(
        (1u32..=6, 0.0..10_000.0f64, 0u32..2, 0.0..20_000.0f64),
        1..12,
    )
}

/// Builds collectively-feasible placements for the jobs flagged
/// running: each packs consolidated into what capacity is left, and
/// jobs that no longer fit fall back to pending. Returns one
/// placement row per job (all-zero = pending).
fn seed_placements(raw: &[RawJob], spec: &ClusterSpec) -> Vec<Vec<u32>> {
    let mut free: Vec<u32> = spec.iter().map(|(_, s)| s.gpus).collect();
    raw.iter()
        .map(|&(gpus, _, running, _)| {
            if running == 0 {
                return vec![0u32; free.len()];
            }
            // `pack_consolidated` deducts granted GPUs in place, so
            // later jobs see the shrunk capacities.
            pack_consolidated(gpus, &mut free).unwrap_or_else(|| vec![0u32; free.len()])
        })
        .collect()
}

fn views<'a>(raw: &[RawJob], placements: &'a [Vec<u32>]) -> Vec<PolicyJobView<'a>> {
    raw.iter()
        .zip(placements)
        .enumerate()
        .map(
            |(i, (&(gpus, submit, _, gputime), placement))| PolicyJobView {
                id: JobId(i as u32),
                user: UserConfig {
                    gpus,
                    batch_size: 128,
                },
                profile: None,
                limits: BatchSizeLimits::new(128, 1024, 512).unwrap(),
                report: None,
                gputime,
                submit_time: submit,
                current_placement: placement,
                started: placement.iter().any(|&g| g > 0),
                batch_size: 128,
                remaining_work: 1e6 * (1.0 + gputime),
            },
        )
        .collect()
}

/// Every staged policy in the zoo, freshly built.
fn zoo() -> Vec<StagedScheduler> {
    vec![
        tiresias(TiresiasConfig::default()),
        optimus(4),
        or_etal(Default::default()),
        srtf(),
        srsf(),
        fifo_backfill(),
        gandiva_packing(),
    ]
}

proptest! {
    /// The composed matrix always fits the spec — the planner clamp
    /// downstream is dead code for every zoo policy.
    #[test]
    fn composed_output_is_feasible(
        raw in raw_jobs(),
        nodes in 1u32..=6,
        gpn in 1u32..=8,
        seed in 0u64..1024,
    ) {
        let spec = ClusterSpec::homogeneous(nodes, gpn).unwrap();
        let placements = seed_placements(&raw, &spec);
        let jobs = views(&raw, &placements);
        for mut policy in zoo() {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = policy.schedule(0.0, &jobs, &spec, &mut rng);
            prop_assert!(
                m.is_feasible(&spec),
                "{} produced an infeasible matrix on {nodes}x{gpn}: {m:?}",
                policy.name()
            );
            prop_assert_eq!(m.num_jobs(), jobs.len());
        }
    }

    /// Preemption stages only ever yield running rows, ascending and
    /// at most once (the composer's `held` bookkeeping indexes by
    /// them).
    #[test]
    fn preemption_yields_are_running_rows(
        raw in raw_jobs(),
        nodes in 1u32..=6,
        gpn in 1u32..=8,
    ) {
        let spec = ClusterSpec::homogeneous(nodes, gpn).unwrap();
        let placements = seed_placements(&raw, &spec);
        let jobs = views(&raw, &placements);
        let mut rng = StdRng::seed_from_u64(7);
        let victims = PreemptAll.yield_rows(0.0, &jobs, &spec, &mut rng);
        let running: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].is_running()).collect();
        prop_assert_eq!(victims, running, "preempt-all yields exactly the running rows");
        let none = NoPreemption.yield_rows(0.0, &jobs, &spec, &mut rng);
        prop_assert!(none.is_empty(), "no-preemption must yield nothing");
    }

    /// A no-preemption composition on a static cluster keeps every
    /// running job's placement row byte-identical: preempted ⊆
    /// victims = ∅.
    #[test]
    fn no_preemption_never_disturbs_running_jobs(
        raw in raw_jobs(),
        nodes in 1u32..=6,
        gpn in 1u32..=8,
        seed in 0u64..1024,
    ) {
        let spec = ClusterSpec::homogeneous(nodes, gpn).unwrap();
        let placements = seed_placements(&raw, &spec);
        let jobs = views(&raw, &placements);
        let mut policy = fifo_backfill();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = policy.schedule(0.0, &jobs, &spec, &mut rng);
        for (row, job) in jobs.iter().enumerate() {
            if job.is_running() {
                prop_assert_eq!(
                    m.row(row),
                    job.current_placement,
                    "running row {row} disturbed under no-preemption"
                );
            }
        }
    }
}

/// 16 staggered jobs for the cross-thread determinism runs (small
/// enough that 7 policies × 3 thread counts stay cheap).
fn churn_trace_16() -> Vec<JobSpec> {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 80,
        seed: 13,
        ..Default::default()
    })
    .unwrap()
    .generate();
    trace
        .into_iter()
        .filter(|j| j.kind == ModelKind::ResNet18Cifar10 || j.kind == ModelKind::NeuMFMovieLens)
        .take(16)
        .enumerate()
        .map(|(i, mut spec)| {
            spec.id = JobId(i as u32);
            spec.submit_time = i as f64 * 120.0;
            spec.work *= 0.05;
            spec
        })
        .collect()
}

/// FNV-1a 64-bit digest of the serialized result — tiny failure
/// output instead of two multi-megabyte JSON strings.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs every zoo policy at one thread count and digests each
/// trajectory.
fn run_all(threads: usize, trace: &[JobSpec], spec: &ClusterSpec) -> Vec<(String, u64)> {
    zoo()
        .into_iter()
        .map(|policy| {
            let sim = SimConfig {
                max_sim_time: 12.0 * 3600.0,
                interference_slowdown: 0.3,
                seed: 17,
                sched_threads: threads,
                engine_threads: threads,
                ..Default::default()
            };
            let name = policy.name().to_string();
            let res = run_trace(policy, trace, ConfigChoice::Tuned, spec.clone(), sim)
                .expect("valid simulation inputs");
            let bytes = serde_json::to_string(&res).expect("SimResult serializes");
            (name, fnv1a64(bytes.as_bytes()))
        })
        .collect()
}

/// The full simulated trajectory — admission order included — is
/// identical at 1, 2, and 4 worker threads for every zoo policy.
#[test]
fn staged_trajectories_are_thread_count_invariant() {
    let trace = churn_trace_16();
    let spec = ClusterSpec::homogeneous(8, 4).unwrap();
    let base = run_all(1, &trace, &spec);
    assert_eq!(base.len(), 7, "zoo shrank");
    for threads in [2usize, 4] {
        assert_eq!(
            base,
            run_all(threads, &trace, &spec),
            "some trajectory differs at {threads} threads"
        );
    }
}
