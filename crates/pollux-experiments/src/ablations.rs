//! Ablation studies of Pollux's design choices (beyond the paper's own
//! Table 3 / Fig 9 ablations):
//!
//! 1. **Overlap model (γ-norm)** — Sec. 3.2 interpolates between
//!    `T_grad + T_sync` (γ = 1) and `max(T_grad, T_sync)` (γ → ∞).
//!    How much fit accuracy does the learnable γ buy over either
//!    extreme?
//! 2. **Restart penalty** — Sec. 4.2.1 subtracts 0.25 from re-placed
//!    jobs' speedups. What happens to restarts and JCT at 0 / 0.25 /
//!    1.0?
//! 3. **Genetic algorithm vs random search** — the GA's operators vs
//!    an equal-budget random sampler on the same allocation problem.

use crate::common::{mean, render_table};
use pollux_cluster::{ClusterSpec, JobId};
use pollux_core::{run_trace_recorded, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_models::{
    fit_throughput_params_constrained, EfficiencyModel, FitObservation, FitPriors, GoodputModel,
    PlacementShape, ThroughputParams,
};
use pollux_sched::{fitness, FitnessConfig, GaConfig, GeneticAlgorithm, SchedJob, SpeedupTable};
use pollux_simulator::SimConfig;
use pollux_workload::{ModelKind, TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of the overlap-model ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapAblation {
    /// Held-out relative throughput error with learnable γ.
    pub gamma_free: f64,
    /// Error with γ pinned to 1 (no overlap).
    pub gamma_sum: f64,
    /// Error with γ pinned to 10 (≈ perfect overlap).
    pub gamma_max: f64,
}

/// Fits the three overlap variants against noisy data from a γ = 2.2
/// ground truth (the ResNet-50 profile) and evaluates held-out error.
pub fn overlap_ablation(seed: u64) -> OverlapAblation {
    let profile = ModelKind::ResNet50ImageNet.profile();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut obs = Vec::new();
    for (gpus, nodes) in [(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 2), (16, 4)] {
        let shape = PlacementShape::new(gpus, nodes).expect("static");
        for mult in [1u64, 2, 4, 8] {
            let m = profile.m0 * mult;
            if profile
                .limits
                .range(shape)
                .is_some_and(|(lo, hi)| m >= lo && m <= hi)
            {
                let eps: f64 = rng.gen_range(-0.05..=0.05);
                obs.push(FitObservation {
                    shape,
                    batch_size: m,
                    t_iter: profile.params.t_iter(shape, m) * (1.0 + eps),
                });
            }
        }
    }
    let priors = FitPriors::from_observations(&obs);

    // Held-out configurations (not in the training grid).
    let held_out: Vec<(PlacementShape, u64)> = [(3u32, 1u32, 3u64), (6, 2, 6), (12, 3, 12)]
        .iter()
        .map(|&(g, n, mult)| {
            (
                PlacementShape::new(g, n).expect("static"),
                profile.m0 * mult,
            )
        })
        .collect();
    let error = |params: &ThroughputParams| -> f64 {
        let errs: Vec<f64> = held_out
            .iter()
            .map(|&(shape, m)| {
                let truth = profile.params.throughput(shape, m);
                let pred = params.throughput(shape, m);
                (pred - truth).abs() / truth
            })
            .collect();
        mean(&errs).unwrap_or(f64::INFINITY)
    };

    let fit = |range: (f64, f64)| -> f64 {
        fit_throughput_params_constrained(&obs, priors, range)
            .map(|r| error(&r.params))
            .unwrap_or(f64::INFINITY)
    };
    OverlapAblation {
        gamma_free: fit((1.0, 10.0)),
        gamma_sum: fit((1.0, 1.0)),
        gamma_max: fit((10.0, 10.0)),
    }
}

/// One restart-penalty ablation row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RestartPenaltyPoint {
    /// The penalty value.
    pub penalty: f64,
    /// Average JCT (hours).
    pub avg_jct_hours: f64,
    /// Total checkpoint-restarts across all jobs.
    pub total_restarts: u32,
}

/// Runs Pollux on a small workload with different restart penalties.
pub fn restart_penalty_ablation(seed: u64) -> Vec<RestartPenaltyPoint> {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 40,
        duration_hours: 2.0,
        seed,
        ..Default::default()
    })
    .expect("static config")
    .generate();
    let spec = ClusterSpec::homogeneous(8, 4).expect("static");
    [0.0, 0.25, 1.0]
        .iter()
        .map(|&penalty| {
            let mut cfg = PolluxConfig::default();
            cfg.sched.ga = GaConfig {
                population: 32,
                generations: 15,
                fitness: FitnessConfig {
                    restart_penalty: penalty,
                },
                ..Default::default()
            };
            let policy = PolluxPolicy::new(cfg).expect("valid config");
            let sim = SimConfig {
                max_sim_time: 48.0 * 3600.0,
                seed,
                ..Default::default()
            };
            let res = run_trace_recorded(
                policy,
                &trace,
                ConfigChoice::Tuned,
                spec.clone(),
                sim,
                crate::common::capture_recorder(),
            )
            .expect("valid inputs");
            RestartPenaltyPoint {
                penalty,
                avg_jct_hours: res.avg_jct().unwrap_or(f64::NAN) / 3600.0,
                total_restarts: res.records.iter().map(|r| r.num_restarts).sum(),
            }
        })
        .collect()
}

/// Result of the allocation-search ablation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchAblation {
    /// Best fitness found by the genetic algorithm.
    pub ga_fitness: f64,
    /// Best fitness from equal-budget greedy hill climbing.
    pub local_search_fitness: f64,
    /// Best fitness from equal-budget uniform random sampling.
    pub random_fitness: f64,
}

fn ablation_jobs(n: u32) -> Vec<SchedJob> {
    let kinds = [
        ModelKind::ResNet18Cifar10,
        ModelKind::NeuMFMovieLens,
        ModelKind::DeepSpeech2Arctic,
        ModelKind::Yolov3Voc,
    ];
    (0..n)
        .map(|i| {
            let profile = kinds[i as usize % kinds.len()].profile();
            let phi = profile.phi_at(0.3 + 0.1 * (i % 5) as f64);
            let eff = EfficiencyModel::from_noise_scale(profile.m0, phi).expect("phi > 0");
            SchedJob {
                id: JobId(i),
                model: GoodputModel::new(profile.params, eff, profile.limits)
                    .expect("m0 == limits.min"),
                min_gpus: 1,
                gpu_cap: 16,
                weight: 1.0,
                current_placement: vec![],
            }
        })
        .collect()
}

/// Compares the GA against random search with the same number of
/// fitness evaluations.
pub fn search_ablation(seed: u64) -> SearchAblation {
    let jobs = ablation_jobs(24);
    let spec = ClusterSpec::homogeneous(16, 4).expect("static");
    let ga_cfg = GaConfig {
        population: 40,
        generations: 20,
        early_stop_gens: 0,
        ..Default::default()
    };
    // GA budget: initial pop + gens × (2 × pop) evaluations.
    let budget = ga_cfg.population + ga_cfg.generations * 2 * ga_cfg.population;

    let ga = GeneticAlgorithm::new(ga_cfg);
    // One dense table shared by all three search arms: every arm pays
    // the same (zero) per-lookup cost, so the comparison isolates the
    // search strategies themselves.
    let table = SpeedupTable::build(&jobs, &spec, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let out = ga.evolve(&jobs, &spec, vec![], &table, &mut rng);

    // Local search: same evaluation budget, first-improvement moves.
    let ls = pollux_sched::LocalSearch::new(pollux_sched::LocalSearchConfig {
        iterations: budget / 2,
        restarts: 2,
        ..Default::default()
    });
    let mut rng_ls = StdRng::seed_from_u64(seed ^ 0x5151);
    let (_, local_search_fitness) = ls.optimize(&jobs, &spec, &table, &mut rng_ls);

    // Random search: sample, repair, evaluate.
    let mut best_random = f64::NEG_INFINITY;
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
    let fitness_cfg = FitnessConfig::default();
    for _ in 0..budget {
        let mut m = pollux_cluster::AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        for j in 0..jobs.len() {
            for n in 0..spec.num_nodes() {
                m.set(j, n, rng2.gen_range(0..=4));
            }
        }
        ga.repair(&mut m, &jobs, &spec, &mut rng2);
        let f = fitness(&jobs, &m, &table, &fitness_cfg);
        if f > best_random {
            best_random = f;
        }
    }

    SearchAblation {
        ga_fitness: out.best_fitness,
        local_search_fitness,
        random_fitness: best_random,
    }
}

/// Result of the co-adaptation ablation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoAdaptationAblation {
    /// Avg JCT with full co-adaptation (hours).
    pub pollux_jct_hours: f64,
    /// Avg JCT with the GA allocator but *fixed* user batch sizes.
    pub fixed_batch_jct_hours: f64,
    /// Cluster statistical efficiency, full Pollux.
    pub pollux_efficiency: f64,
    /// Cluster statistical efficiency, fixed batches.
    pub fixed_batch_efficiency: f64,
}

/// Isolates the value of batch-size co-adaptation: the same genetic
/// allocator with agents' batch tuning disabled (jobs keep their tuned
/// user batch sizes). The gap between the two rows is the part of
/// Pollux's win that *only* co-adaptation delivers.
pub fn coadaptation_ablation(seed: u64) -> CoAdaptationAblation {
    let trace = TraceGenerator::new(TraceConfig {
        num_jobs: 60,
        duration_hours: 3.0,
        seed,
        ..Default::default()
    })
    .expect("static config")
    .generate();
    let spec = ClusterSpec::homogeneous(8, 4).expect("static");
    let run_variant = |adapt: bool| {
        let mut cfg = PolluxConfig::default();
        cfg.sched.ga = GaConfig {
            population: 32,
            generations: 15,
            ..Default::default()
        };
        cfg.adapt_batch_size = adapt;
        let policy = PolluxPolicy::new(cfg).expect("valid config");
        let sim = SimConfig {
            max_sim_time: 72.0 * 3600.0,
            seed,
            ..Default::default()
        };
        run_trace_recorded(
            policy,
            &trace,
            ConfigChoice::Tuned,
            spec.clone(),
            sim,
            crate::common::capture_recorder(),
        )
        .expect("valid inputs")
    };
    let full = run_variant(true);
    let fixed = run_variant(false);
    CoAdaptationAblation {
        pollux_jct_hours: full.avg_jct().unwrap_or(f64::NAN) / 3600.0,
        fixed_batch_jct_hours: fixed.avg_jct().unwrap_or(f64::NAN) / 3600.0,
        pollux_efficiency: full.avg_cluster_efficiency().unwrap_or(0.0),
        fixed_batch_efficiency: fixed.avg_cluster_efficiency().unwrap_or(0.0),
    }
}

/// Combined ablation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// γ-norm overlap-model ablation.
    pub overlap: OverlapAblation,
    /// Restart-penalty sweep.
    pub restart: Vec<RestartPenaltyPoint>,
    /// GA vs random search.
    pub search: SearchAblation,
    /// Co-adaptation (batch tuning) on/off.
    pub coadaptation: CoAdaptationAblation,
}

/// Runs all four ablations.
pub fn run(seed: u64) -> AblationResult {
    AblationResult {
        overlap: overlap_ablation(seed),
        restart: restart_penalty_ablation(seed),
        search: search_ablation(seed),
        coadaptation: coadaptation_ablation(seed),
    }
}

impl std::fmt::Display for AblationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation 1: overlap model — held-out relative throughput error"
        )?;
        let rows = vec![
            vec![
                "γ learnable (Eqn 11)".into(),
                format!("{:.1}%", self.overlap.gamma_free * 100.0),
            ],
            vec![
                "γ = 1 (sum)".into(),
                format!("{:.1}%", self.overlap.gamma_sum * 100.0),
            ],
            vec![
                "γ = 10 (≈max)".into(),
                format!("{:.1}%", self.overlap.gamma_max * 100.0),
            ],
        ];
        write!(f, "{}", render_table(&["overlap model", "error"], &rows))?;

        writeln!(
            f,
            "\nAblation 2: restart penalty (Pollux, 40 jobs, 8x4 GPUs)"
        )?;
        let rows: Vec<Vec<String>> = self
            .restart
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.penalty),
                    format!("{:.2}", p.avg_jct_hours),
                    p.total_restarts.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["penalty", "avg JCT (h)", "restarts"], &rows)
        )?;

        writeln!(
            f,
            "\nAblation 3: allocation search, equal budgets (24 jobs, 64 GPUs)"
        )?;
        let rows = vec![
            vec![
                "genetic algorithm".into(),
                format!("{:.3}", self.search.ga_fitness),
            ],
            vec![
                "hill climbing".into(),
                format!("{:.3}", self.search.local_search_fitness),
            ],
            vec![
                "random search".into(),
                format!("{:.3}", self.search.random_fitness),
            ],
        ];
        write!(f, "{}", render_table(&["search", "best fitness"], &rows))?;

        writeln!(
            f,
            "\nAblation 4: co-adaptation (batch tuning) on vs off, same GA allocator"
        )?;
        let rows = vec![
            vec![
                "pollux (co-adaptive)".into(),
                format!("{:.2}", self.coadaptation.pollux_jct_hours),
                format!("{:.1}%", self.coadaptation.pollux_efficiency * 100.0),
            ],
            vec![
                "pollux-fixed-batch".into(),
                format!("{:.2}", self.coadaptation.fixed_batch_jct_hours),
                format!("{:.1}%", self.coadaptation.fixed_batch_efficiency * 100.0),
            ],
        ];
        write!(
            f,
            "{}",
            render_table(&["variant", "avg JCT (h)", "stat. eff."], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learnable_gamma_beats_pinned_extremes() {
        let a = overlap_ablation(3);
        assert!(a.gamma_free < a.gamma_sum, "{a:?}");
        assert!(a.gamma_free < a.gamma_max, "{a:?}");
        assert!(a.gamma_free < 0.1, "free-γ error too large: {a:?}");
    }

    #[test]
    fn ga_beats_random_search() {
        let s = search_ablation(1);
        assert!(
            s.ga_fitness > s.random_fitness,
            "GA {} vs random {}",
            s.ga_fitness,
            s.random_fitness
        );
        // Hill climbing also beats blind sampling.
        assert!(
            s.local_search_fitness > s.random_fitness,
            "local {} vs random {}",
            s.local_search_fitness,
            s.random_fitness
        );
    }

    #[test]
    #[ignore = "runs three full simulations; exercised by bench_ablations"]
    fn restart_penalty_reduces_restarts() {
        let pts = restart_penalty_ablation(2);
        assert_eq!(pts.len(), 3);
        // More penalty, fewer restarts.
        assert!(pts[0].total_restarts >= pts[1].total_restarts);
        assert!(pts[1].total_restarts >= pts[2].total_restarts);
    }
}
