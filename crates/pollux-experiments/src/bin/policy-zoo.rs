//! `policy-zoo` — one config-driven head-to-head run across the
//! scheduler registry: every policy plays the same traces on the same
//! cluster, and the result is a single JCT / queue-percentile /
//! goodput table plus the stage composition of each staged policy.
//!
//! ```sh
//! policy-zoo [--list] [--policies a,b,c] [--traces N] [--jobs N]
//!            [--load F] [--interference F] [--realistic]
//!            [--trace-dir DIR] [--json PATH]
//! ```
//!
//! - `--list`: print the registry (name, stages, summary) and exit.
//! - `--policies`: comma-separated registry names (default: all).
//! - `--traces`: independently-seeded traces averaged per policy
//!   (default 2).
//! - `--jobs`: jobs per trace (default: the standard 160-job
//!   workload).
//! - `--load`: workload scale, 1.0 = the paper's 8-hour window.
//! - `--interference`: injected co-location slowdown (default 0).
//! - `--realistic`: submit trace-derived user configs instead of
//!   idealized tuned configs.
//! - `--trace-dir DIR`: per-policy telemetry — writes
//!   `DIR/<policy>.jsonl` (JSONL capture) and `DIR/<policy>.trace.json`
//!   (Chrome trace, open in <https://ui.perfetto.dev>) for every
//!   policy in the run.
//! - `--json PATH`: also dump the structured `ZooResult` as JSON.
//!
//! Without `--trace-dir`, telemetry follows the process-wide
//! `POLLUX_TELEMETRY_OUT` capture like every other experiment driver.

use pollux_core::ConfigChoice;
use pollux_experiments::common::render_table;
use pollux_experiments::zoo::{self, ZooOptions};
use pollux_telemetry::{chrome, Event, JsonlSink, Recorder};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: policy-zoo [--list] [--policies a,b,c] [--traces N] [--jobs N] [--load F] \
         [--interference F] [--realistic] [--trace-dir DIR] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.as_deref().map(T::from_str) {
        Some(Ok(x)) => x,
        _ => {
            eprintln!("invalid or missing value for {flag}");
            usage();
        }
    }
}

/// Registry names are filesystem-safe except for `+` aesthetics; keep
/// them verbatim but make that decision explicit here.
fn capture_path(dir: &Path, policy: &str, ext: &str) -> PathBuf {
    dir.join(format!("{policy}.{ext}"))
}

fn export_chrome(dir: &Path, policy: &str) {
    let capture = capture_path(dir, policy, "jsonl");
    let text = match std::fs::read_to_string(&capture) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read capture {capture:?}: {e}");
            return;
        }
    };
    let events: Vec<Event> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(Event::parse_jsonl)
        .collect();
    let (trace, stats) = chrome::export_with_stats(&events);
    let out = capture_path(dir, policy, "trace.json");
    match std::fs::write(&out, &trace) {
        Ok(()) => eprintln!(
            "chrome trace: {out:?} ({} slices, {} counter samples, {} instants)",
            stats.slices, stats.counters, stats.instants
        ),
        Err(e) => eprintln!("cannot write chrome trace {out:?}: {e}"),
    }
}

fn main() {
    let mut opts = ZooOptions::default();
    let mut list = false;
    let mut trace_dir: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--policies" => {
                let v: String = parse("--policies", args.next());
                opts.policies = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--traces" => opts.traces = parse("--traces", args.next()),
            "--jobs" => opts.jobs = Some(parse("--jobs", args.next())),
            "--load" => opts.load = parse("--load", args.next()),
            "--interference" => opts.interference = parse("--interference", args.next()),
            "--realistic" => opts.choice = ConfigChoice::Realistic,
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(parse::<String>("--trace-dir", args.next())))
            }
            "--json" => json_out = Some(PathBuf::from(parse::<String>("--json", args.next()))),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage();
            }
        }
    }

    if list {
        let rows: Vec<Vec<String>> = zoo::registry()
            .iter()
            .map(|e| {
                let stages = match e.build().stage_names() {
                    Some((a, p, y)) => format!("{a} / {p} / {y}"),
                    None => "direct".into(),
                };
                vec![e.name.to_string(), stages, e.summary.to_string()]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["policy", "admission / placement / preemption", "summary"],
                &rows
            )
        );
        return;
    }

    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --trace-dir {dir:?}: {e}");
            std::process::exit(1);
        }
    }

    let result = match &trace_dir {
        None => zoo::run(&opts),
        Some(dir) => zoo::run_with_recorder(&opts, |policy| {
            let path = capture_path(dir, policy, "jsonl");
            match JsonlSink::create(&path) {
                Ok(sink) => Recorder::new(Arc::new(sink)),
                Err(e) => {
                    eprintln!("capture {path:?} not writable ({e}); telemetry off for {policy}");
                    Recorder::disabled()
                }
            }
        }),
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    println!("{result}");

    if let Some(dir) = &trace_dir {
        for row in &result.rows {
            export_chrome(dir, &row.policy);
        }
    }
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("cannot write --json {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("json: {path:?}");
    }
}
