//! `pollux-sim` — run one scheduling policy on the standard evaluation
//! workload (160 jobs, 8-hour submission window, 16 nodes × 4 GPUs)
//! and print summary statistics.
//!
//! ```sh
//! pollux-sim [pollux|optimus|tiresias|all] [seed]
//! ```
//!
//! Environment:
//! - `POLLUX_SIM_JOBS=<n>` — override the trace size (default 160
//!   jobs; e.g. 64 for a quick capture).
//! - `POLLUX_SIM_DEBUG=1` — mirror every telemetry event to stderr as
//!   JSONL while the simulation runs.
//! - `POLLUX_TELEMETRY_OUT=<path>` — capture telemetry (spans,
//!   counters, histograms, the goodput time-series) to a JSONL file;
//!   summarize it with `telemetry_report`.
//! - `POLLUX_JSON_OUT=<path>` — also dump the full `SimResult` (per-job
//!   records, cluster series, allocation timeline) as JSON per policy,
//!   to `<path>.<policy>.json`.
//! - `POLLUX_TRACE_OUT=<path>` — save the generated workload trace as
//!   JSON (reusable input for custom drivers).
//! - `POLLUX_CHROME_TRACE=<path>` — after all runs, export the
//!   telemetry capture as a Chrome trace (requires
//!   `POLLUX_TELEMETRY_OUT`); open it in <https://ui.perfetto.dev>.

use pollux_baselines::{optimus, tiresias, TiresiasConfig};
use pollux_cluster::ClusterSpec;
use pollux_core::{run_trace_recorded, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_experiments::common::{capture_recorder, dump_timeline_artifacts};
use pollux_sched::GaConfig;
use pollux_simulator::{SchedulingPolicy, SimConfig};
use pollux_workload::{TraceConfig, TraceGenerator};
use std::time::Instant;

fn run_one(name: &str, policy: Box<dyn SchedulingPolicy>, seed: u64) {
    let mut trace_cfg = TraceConfig {
        seed,
        ..Default::default()
    };
    if let Ok(jobs) = std::env::var("POLLUX_SIM_JOBS") {
        match jobs.parse() {
            Ok(n) if n > 0 => trace_cfg.num_jobs = n,
            _ => {
                eprintln!("invalid POLLUX_SIM_JOBS {jobs:?}; expected a positive integer");
                std::process::exit(2);
            }
        }
    }
    let trace = TraceGenerator::new(trace_cfg)
        .expect("valid trace config")
        .generate();
    let spec = ClusterSpec::homogeneous(16, 4).expect("valid cluster");
    let sim = SimConfig {
        max_sim_time: 96.0 * 3600.0,
        seed,
        ..Default::default()
    };
    if let Ok(path) = std::env::var("POLLUX_TRACE_OUT") {
        let json = serde_json::to_string_pretty(&trace).expect("trace serializes");
        std::fs::write(&path, json).expect("trace file writable");
    }
    let t0 = Instant::now();
    let res = run_trace_recorded(
        policy,
        &trace,
        ConfigChoice::Tuned,
        spec,
        sim,
        capture_recorder(),
    )
    .expect("valid simulation inputs");
    if let Ok(path) = std::env::var("POLLUX_JSON_OUT") {
        let json = serde_json::to_string_pretty(&res).expect("result serializes");
        std::fs::write(format!("{path}.{name}.json"), json).expect("output file writable");
    }
    let s = res.summary();
    let h = |v: Option<f64>| v.unwrap_or(0.0) / 3600.0;
    println!(
        "{name:<10} wall {:>8.2?}  jobs {}  unfinished {}  avg JCT {:.2}h  p99 {:.1}h  \
         makespan {:.1}h  stat-eff {:.1}%",
        t0.elapsed(),
        res.records.len(),
        res.unfinished(),
        s.avg_jct.unwrap_or(0.0) / 3600.0,
        h(s.p99_jct),
        res.makespan() / 3600.0,
        res.avg_cluster_efficiency().unwrap_or(0.0) * 100.0,
    );
    println!(
        "{:<10} JCT p50/p95/p99 {:.2}/{:.2}/{:.2}h  wait avg {:.2}h p50/p95/p99 \
         {:.2}/{:.2}/{:.2}h  never-started {}",
        "",
        h(s.p50_jct),
        h(s.p95_jct),
        h(s.p99_jct),
        s.avg_wait.unwrap_or(0.0) / 3600.0,
        h(s.p50_wait),
        h(s.p95_wait),
        h(s.p99_wait),
        s.never_started,
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let seed = match std::env::args().nth(2) {
        None => 1u64,
        Some(v) => match v.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("invalid seed {v:?}; usage: pollux-sim [policy] [seed]");
                std::process::exit(2);
            }
        },
    };
    if !matches!(which.as_str(), "pollux" | "optimus" | "tiresias" | "all") {
        eprintln!("usage: pollux-sim [pollux|optimus|tiresias|all] [seed]");
        std::process::exit(2);
    }
    if which == "tiresias" || which == "all" {
        run_one(
            "tiresias",
            Box::new(tiresias(TiresiasConfig::default())),
            seed,
        );
    }
    if which == "optimus" || which == "all" {
        run_one("optimus", Box::new(optimus(4)), seed);
    }
    if which == "pollux" || which == "all" {
        let mut cfg = PolluxConfig::default();
        cfg.sched.ga = GaConfig {
            population: 40,
            generations: 20,
            ..Default::default()
        };
        run_one(
            "pollux",
            Box::new(PolluxPolicy::new(cfg).expect("valid config")),
            seed,
        );
    }
    dump_timeline_artifacts();
}
