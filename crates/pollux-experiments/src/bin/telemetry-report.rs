//! `telemetry-report` — summarize a JSONL telemetry capture.
//!
//! ```sh
//! POLLUX_TELEMETRY_OUT=/tmp/cap.jsonl pollux-sim pollux 1
//! telemetry-report /tmp/cap.jsonl
//! ```
//!
//! Prints a wall-clock span breakdown per subsystem, cumulative
//! counter totals, histogram percentiles, and a digest of each
//! time-series (e.g. the per-interval cluster goodput samples).
//! Counters and histograms are cumulative snapshots re-emitted at
//! every flush, so the report keeps the *latest* snapshot per name;
//! spans and points are summed/collected over the whole file.

use pollux_experiments::common::render_table;
use pollux_telemetry::{Event, HistogramSnapshot};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct PointAgg {
    count: u64,
    first_time: f64,
    last_time: f64,
    /// Last value per field, in first-seen order.
    last_fields: Vec<(String, f64)>,
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: telemetry-report <capture.jsonl>");
            std::process::exit(2);
        }
    };
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut spans: BTreeMap<(String, String), SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut hists: BTreeMap<(String, String), HistogramSnapshot> = BTreeMap::new();
    let mut points: BTreeMap<(String, String), PointAgg> = BTreeMap::new();
    let mut lines = 0u64;
    let mut skipped = 0u64;

    for line in BufReader::new(file).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("read error after {lines} lines: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let Some(event) = Event::parse_jsonl(&line) else {
            skipped += 1;
            continue;
        };
        let key = (event.subsystem().to_string(), event.name().to_string());
        match event {
            Event::Span { dur_ns, .. } => {
                let agg = spans.entry(key).or_default();
                agg.count += 1;
                agg.total_ns += dur_ns;
                agg.max_ns = agg.max_ns.max(dur_ns);
            }
            Event::Count { value, .. } => {
                counters.insert(key, value);
            }
            Event::Hist { buckets, .. } => {
                hists.insert(key, HistogramSnapshot::from_sparse(buckets));
            }
            Event::Point { time, fields, .. } => {
                let agg = points.entry(key).or_default();
                if agg.count == 0 {
                    agg.first_time = time;
                }
                agg.count += 1;
                agg.last_time = time;
                agg.last_fields = fields
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v))
                    .collect();
            }
        }
    }

    println!("capture: {path} ({lines} events, {skipped} unparseable)\n");

    if !spans.is_empty() {
        let total: u64 = spans.values().map(|a| a.total_ns).sum();
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|((sub, name), a)| {
                vec![
                    format!("{sub}/{name}"),
                    a.count.to_string(),
                    ms(a.total_ns),
                    ms(a.total_ns / a.count.max(1)),
                    ms(a.max_ns),
                    format!("{:.1}%", 100.0 * a.total_ns as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        println!("spans (wall clock):");
        print!(
            "{}",
            render_table(
                &["span", "count", "total ms", "mean ms", "max ms", "share"],
                &rows,
            )
        );
        println!();
    }

    if !counters.is_empty() {
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|((sub, name), v)| vec![format!("{sub}/{name}"), v.to_string()])
            .collect();
        println!("counters (cumulative):");
        print!("{}", render_table(&["counter", "total"], &rows));
        println!();
    }

    if !hists.is_empty() {
        let pct = |s: &HistogramSnapshot, p: f64| {
            s.percentile(p)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into())
        };
        let rows: Vec<Vec<String>> = hists
            .iter()
            .map(|((sub, name), s)| {
                vec![
                    format!("{sub}/{name}"),
                    s.count.to_string(),
                    pct(s, 50.0),
                    pct(s, 90.0),
                    pct(s, 99.0),
                ]
            })
            .collect();
        println!("histograms (log₂ buckets; percentiles are bucket midpoints):");
        print!(
            "{}",
            render_table(&["histogram", "count", "p50", "p90", "p99"], &rows)
        );
        println!();
    }

    if !points.is_empty() {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|((sub, name), a)| {
                let last = a
                    .last_fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.2}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                vec![
                    format!("{sub}/{name}"),
                    a.count.to_string(),
                    format!("{:.0}..{:.0}", a.first_time, a.last_time),
                    last,
                ]
            })
            .collect();
        println!("time-series:");
        print!(
            "{}",
            render_table(&["series", "points", "time range (s)", "last point"], &rows)
        );
    }
}
