//! `telemetry-report` — summarize a JSONL telemetry capture.
//!
//! ```sh
//! POLLUX_TELEMETRY_OUT=/tmp/cap.jsonl pollux-sim pollux 1
//! telemetry-report /tmp/cap.jsonl
//! telemetry-report /tmp/cap.jsonl --chrome-trace /tmp/trace.json
//! telemetry-report /tmp/cap.jsonl --prefix sched/ --kind span
//! ```
//!
//! Prints a wall-clock span breakdown per subsystem, cumulative
//! counter totals, histogram percentiles, a digest of each
//! time-series (e.g. the per-interval cluster goodput samples), the
//! simulation-time timeline summary, and the scheduling-round decision
//! audit. Counters and histograms are cumulative snapshots re-emitted
//! at every flush, so the report keeps the *latest* snapshot per name;
//! spans, points, and timeline events are summed/collected over the
//! whole file.
//!
//! Flags:
//! - `--chrome-trace <out.json>`: also export the capture as a Chrome
//!   trace (open in Perfetto / `chrome://tracing`). The export always
//!   uses the full capture, unaffected by the filters below.
//! - `--prefix <p>`: only report `subsystem/name` entries starting
//!   with `p`.
//! - `--kind <span|count|hist|point|timeline|meta|round>`: only report
//!   one event kind (repeatable).

use pollux_experiments::common::render_table;
use pollux_telemetry::{chrome, Event, HistogramSnapshot, RoundExplain};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct PointAgg {
    count: u64,
    first_time: f64,
    last_time: f64,
    /// Last value per field, in first-seen order.
    last_fields: Vec<(String, f64)>,
}

#[derive(Default)]
struct TimelineAgg {
    count: u64,
    first_time: f64,
    last_time: f64,
    jobs: std::collections::BTreeSet<u64>,
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn event_kind(e: &Event) -> &'static str {
    match e {
        Event::Span { .. } => "span",
        Event::Count { .. } => "count",
        Event::Hist { .. } => "hist",
        Event::Point { .. } => "point",
        Event::Timeline { .. } => "timeline",
        Event::Meta { .. } => "meta",
        Event::Round(_) => "round",
    }
}

struct Options {
    path: String,
    chrome_out: Option<String>,
    prefix: Option<String>,
    kinds: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry-report <capture.jsonl> [--chrome-trace <out.json>] \
         [--prefix <p>] [--kind <span|count|hist|point|timeline|meta|round>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut chrome_out = None;
    let mut prefix = None;
    let mut kinds = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome-trace" => chrome_out = Some(args.next().unwrap_or_else(|| usage())),
            "--prefix" => prefix = Some(args.next().unwrap_or_else(|| usage())),
            "--kind" => {
                let k = args.next().unwrap_or_else(|| usage());
                if ![
                    "span", "count", "hist", "point", "timeline", "meta", "round",
                ]
                .contains(&k.as_str())
                {
                    usage();
                }
                kinds.push(k);
            }
            _ if path.is_none() && !a.starts_with("--") => path = Some(a),
            _ => usage(),
        }
    }
    Options {
        path: path.unwrap_or_else(|| usage()),
        chrome_out,
        prefix,
        kinds,
    }
}

fn main() {
    let opts = parse_args();
    let file = match std::fs::File::open(&opts.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {}: {e}", opts.path);
            std::process::exit(1);
        }
    };

    let mut spans: BTreeMap<(String, String), SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut hists: BTreeMap<(String, String), HistogramSnapshot> = BTreeMap::new();
    let mut points: BTreeMap<(String, String), PointAgg> = BTreeMap::new();
    let mut timeline: BTreeMap<(String, String), TimelineAgg> = BTreeMap::new();
    let mut meta: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut rounds: Vec<RoundExplain> = Vec::new();
    let mut all_events: Vec<Event> = Vec::new();
    let mut lines = 0u64;
    let mut skipped = 0u64;
    let mut filtered = 0u64;

    for line in BufReader::new(file).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("read error after {lines} lines: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let Some(event) = Event::parse_jsonl(&line) else {
            skipped += 1;
            continue;
        };
        if opts.chrome_out.is_some() {
            // The trace wants the unfiltered capture.
            all_events.push(event.clone());
        }
        let ident = format!("{}/{}", event.subsystem(), event.name());
        if let Some(p) = &opts.prefix {
            if !ident.starts_with(p.as_str()) {
                filtered += 1;
                continue;
            }
        }
        if !opts.kinds.is_empty() && !opts.kinds.iter().any(|k| k == event_kind(&event)) {
            filtered += 1;
            continue;
        }
        let key = (event.subsystem().to_string(), event.name().to_string());
        match event {
            Event::Span { dur_ns, .. } => {
                let agg = spans.entry(key).or_default();
                agg.count += 1;
                agg.total_ns += dur_ns;
                agg.max_ns = agg.max_ns.max(dur_ns);
            }
            Event::Count { value, .. } => {
                counters.insert(key, value);
            }
            Event::Hist { buckets, .. } => {
                hists.insert(key, HistogramSnapshot::from_sparse(buckets));
            }
            Event::Point { time, fields, .. } => {
                let agg = points.entry(key).or_default();
                if agg.count == 0 {
                    agg.first_time = time;
                }
                agg.count += 1;
                agg.last_time = time;
                agg.last_fields = fields
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v))
                    .collect();
            }
            Event::Timeline { time, job, .. } => {
                let agg = timeline.entry(key).or_default();
                if agg.count == 0 {
                    agg.first_time = time;
                }
                agg.count += 1;
                agg.last_time = time;
                agg.jobs.insert(job);
            }
            Event::Meta { value, .. } => {
                // Latest value wins, like counters.
                meta.insert(key, value.into_owned());
            }
            Event::Round(explain) => rounds.push(explain),
        }
    }

    print!(
        "capture: {} ({lines} events, {skipped} unparseable",
        opts.path
    );
    if filtered > 0 {
        print!(", {filtered} filtered out");
    }
    println!(")\n");

    // A lossy capture can silently understate everything below: shout.
    if let Some(&dropped) = counters.get(&("telemetry".into(), "dropped_events".into())) {
        if dropped > 0 {
            eprintln!(
                "WARNING: the sink dropped {dropped} events (capacity overflow); \
                 totals and timelines below are incomplete.\n"
            );
        }
    }

    if !meta.is_empty() {
        let rows: Vec<Vec<String>> = meta
            .iter()
            .map(|((sub, name), v)| vec![format!("{sub}/{name}"), v.clone()])
            .collect();
        println!("metadata:");
        print!("{}", render_table(&["key", "value"], &rows));
        println!();
    }

    if !spans.is_empty() {
        let total: u64 = spans.values().map(|a| a.total_ns).sum();
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|((sub, name), a)| {
                vec![
                    format!("{sub}/{name}"),
                    a.count.to_string(),
                    ms(a.total_ns),
                    ms(a.total_ns / a.count.max(1)),
                    ms(a.max_ns),
                    format!("{:.1}%", 100.0 * a.total_ns as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        println!("spans (wall clock):");
        print!(
            "{}",
            render_table(
                &["span", "count", "total ms", "mean ms", "max ms", "share"],
                &rows,
            )
        );
        println!();
    }

    if !counters.is_empty() {
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|((sub, name), v)| vec![format!("{sub}/{name}"), v.to_string()])
            .collect();
        println!("counters (cumulative):");
        print!("{}", render_table(&["counter", "total"], &rows));
        println!();
    }

    if !hists.is_empty() {
        let pct = |s: &HistogramSnapshot, p: f64| {
            s.percentile(p)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into())
        };
        let rows: Vec<Vec<String>> = hists
            .iter()
            .map(|((sub, name), s)| {
                vec![
                    format!("{sub}/{name}"),
                    s.count.to_string(),
                    pct(s, 50.0),
                    pct(s, 95.0),
                    pct(s, 99.0),
                ]
            })
            .collect();
        println!("histograms (log₂ buckets; percentiles are bucket midpoints):");
        print!(
            "{}",
            render_table(&["histogram", "count", "p50", "p95", "p99"], &rows)
        );
        println!();
    }

    if !points.is_empty() {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|((sub, name), a)| {
                let last = a
                    .last_fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.2}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                vec![
                    format!("{sub}/{name}"),
                    a.count.to_string(),
                    format!("{:.0}..{:.0}", a.first_time, a.last_time),
                    last,
                ]
            })
            .collect();
        println!("time-series:");
        print!(
            "{}",
            render_table(&["series", "points", "time range (s)", "last point"], &rows)
        );
        println!();
    }

    if !timeline.is_empty() {
        let rows: Vec<Vec<String>> = timeline
            .iter()
            .map(|((sub, name), a)| {
                vec![
                    format!("{sub}/{name}"),
                    a.count.to_string(),
                    a.jobs.len().to_string(),
                    format!("{:.0}..{:.0}", a.first_time, a.last_time),
                ]
            })
            .collect();
        println!("timeline (simulation time):");
        print!(
            "{}",
            render_table(&["event", "count", "jobs", "time range (s)"], &rows)
        );
        println!();
    }

    if !rounds.is_empty() {
        const SHOW: usize = 20;
        let skipped_rounds = rounds.len().saturating_sub(SHOW);
        let rows: Vec<Vec<String>> = rounds
            .iter()
            .skip(skipped_rounds)
            .map(|r| {
                let moved = r.jobs.iter().filter(|j| j.restart_penalty > 0.0).count();
                let rack_moves = r
                    .jobs
                    .iter()
                    .filter(|j| j.rack_before >= 0 && j.rack_before != j.rack_after)
                    .count();
                let interfering = r.jobs.iter().filter(|j| !j.co_residents.is_empty()).count();
                vec![
                    format!("{:.0}", r.time),
                    r.jobs.len().to_string(),
                    format!("{:.3}", r.fitness_before),
                    format!("{:.3}", r.fitness),
                    format!("{:+.3}", r.fitness - r.fitness_before),
                    if r.racked { "yes" } else { "no" }.to_string(),
                    moved.to_string(),
                    rack_moves.to_string(),
                    interfering.to_string(),
                ]
            })
            .collect();
        println!("scheduling-round audit ({} rounds total):", rounds.len());
        if skipped_rounds > 0 {
            println!("  (showing the last {SHOW}; {skipped_rounds} earlier rounds elided)");
        }
        print!(
            "{}",
            render_table(
                &[
                    "time (s)",
                    "jobs",
                    "fitness before",
                    "fitness",
                    "delta",
                    "racked",
                    "restarts charged",
                    "rack moves",
                    "co-resident jobs",
                ],
                &rows,
            )
        );
        println!();
    }

    if let Some(out) = &opts.chrome_out {
        let (trace, stats) = chrome::export_with_stats(&all_events);
        if let Err(e) = std::fs::write(out, &trace) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!(
            "chrome trace: {out} ({} slices, {} counter samples, {} instants) — \
             open in https://ui.perfetto.dev or chrome://tracing",
            stats.slices, stats.counters, stats.instants
        );
    }
}
