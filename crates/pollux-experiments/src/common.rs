//! Shared experiment infrastructure: table printing, standard
//! configurations, and multi-trace averaging.

use pollux_cluster::ClusterSpec;
use pollux_sched::GaConfig;
use pollux_simulator::SimConfig;
use pollux_telemetry::{chrome, Event, JsonlSink, Recorder};
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator};
use std::sync::{Arc, OnceLock};

/// The paper's testbed: 16 nodes × 4 Tesla T4 GPUs (Sec. 5.1).
pub fn testbed_cluster() -> ClusterSpec {
    ClusterSpec::homogeneous(16, 4).expect("static dimensions")
}

/// GA settings for experiments: smaller than the paper's
/// 100×100 (which targets a 60 s wall-clock budget per interval on a
/// real cluster) but converged for a 64-GPU cluster; see DESIGN.md.
pub fn experiment_ga() -> GaConfig {
    GaConfig {
        population: 40,
        generations: 20,
        ..Default::default()
    }
}

/// Default simulation settings for workload experiments.
pub fn experiment_sim(seed: u64) -> SimConfig {
    SimConfig {
        max_sim_time: 96.0 * 3600.0,
        seed,
        ..Default::default()
    }
}

/// Generates the `i`-th evaluation trace (the paper averages 8
/// different traces with the same distributions, Sec. 5.3).
pub fn evaluation_trace(i: u64, load: f64) -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig {
        seed: 1000 + i,
        load_multiplier: load,
        ..Default::default()
    })
    .expect("static config is valid")
    .generate()
}

/// The process-wide experiment recorder. When `POLLUX_TELEMETRY_OUT`
/// names a file, telemetry from every simulation run through the
/// experiment drivers is captured there as JSONL (summarize it with
/// the `telemetry_report` bin); otherwise recording is disabled and
/// every call site degrades to a no-op. The decision is made once per
/// process so sweeps over many traces append into one capture.
pub fn capture_recorder() -> Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER
        .get_or_init(|| match std::env::var_os("POLLUX_TELEMETRY_OUT") {
            Some(path) => match JsonlSink::create(&path) {
                Ok(sink) => Recorder::new(Arc::new(sink)),
                Err(e) => {
                    eprintln!("POLLUX_TELEMETRY_OUT {path:?} not writable ({e}); telemetry off");
                    Recorder::disabled()
                }
            },
            None => Recorder::disabled(),
        })
        .clone()
}

/// Dumps end-of-run timeline artifacts from the process capture.
///
/// When `POLLUX_CHROME_TRACE` names an output file, the JSONL capture
/// written via [`capture_recorder`] (so `POLLUX_TELEMETRY_OUT` must
/// also be set) is flushed, re-read, and exported as a Chrome trace —
/// per-node placement slices, goodput/queue counter tracks, restart
/// instants — loadable in Perfetto or `chrome://tracing`. Call this
/// once, after every simulation in the process has finished; it is a
/// no-op when the variable is unset.
pub fn dump_timeline_artifacts() {
    let Some(out) = std::env::var_os("POLLUX_CHROME_TRACE") else {
        return;
    };
    let Some(capture) = std::env::var_os("POLLUX_TELEMETRY_OUT") else {
        eprintln!("POLLUX_CHROME_TRACE is set but POLLUX_TELEMETRY_OUT is not; nothing captured");
        return;
    };
    capture_recorder().flush();
    let text = match std::fs::read_to_string(&capture) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read capture {capture:?}: {e}");
            return;
        }
    };
    let events: Vec<Event> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(Event::parse_jsonl)
        .collect();
    let (trace, stats) = chrome::export_with_stats(&events);
    match std::fs::write(&out, &trace) {
        Ok(()) => eprintln!(
            "chrome trace: {out:?} ({} slices, {} counter samples, {} instants)",
            stats.slices, stats.counters, stats.instants
        ),
        Err(e) => eprintln!("cannot write chrome trace {out:?}: {e}"),
    }
}

/// Mean of a slice (None when empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Renders an ASCII table with aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(c).unwrap_or(&empty);
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Renders an ASCII line chart of one or more `(x, y)` series, labeled
/// per series, in a fixed `width × height` character grid. Used to make
/// the figure benches visually resemble the paper's plots.
pub fn render_chart(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if all.is_empty() {
        return format!("{title}\n(empty)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', 'o', '+', 'x', '#'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts.iter() {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.2} |")
        } else if i == height - 1 {
            format!("{y_min:>9.2} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>11}{:<12.2}{:>width$.2}\n",
        "",
        x_min,
        x_max,
        width = width - 12
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", marks[i % marks.len()]))
        .collect();
    out.push_str(&format!("{:>11}legend: {}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_marks_and_legend() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (10 - i) as f64)).collect();
        let s = render_chart("demo", &[("up", &a), ("down", &b)], 40, 10);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("legend: * up   o down"));
        assert!(s.contains("demo"));
        // Y-axis bounds rendered.
        assert!(s.contains("10.00") && s.contains("0.00"));
    }

    #[test]
    fn chart_handles_degenerate_input() {
        assert!(render_chart("t", &[("e", &[])], 30, 8).contains("(empty)"));
        let flat = [(1.0, 5.0)];
        let s = render_chart("t", &[("p", &flat)], 30, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn table_renders_all_cells() {
        let s = render_table(
            &["policy", "jct"],
            &[
                vec!["pollux".into(), "1.2".into()],
                vec!["tiresias".into(), "2.4".into()],
            ],
        );
        assert!(s.contains("pollux"));
        assert!(s.contains("2.4"));
        // Header and 2 rows and 3 separators.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn traces_differ_by_index() {
        let a = evaluation_trace(0, 1.0);
        let b = evaluation_trace(1, 1.0);
        assert_ne!(a, b);
        assert_eq!(a.len(), 160);
        assert_eq!(evaluation_trace(0, 0.5).len(), 80);
    }
}
