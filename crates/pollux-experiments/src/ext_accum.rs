//! Extension experiment: gradient accumulation in the goodput search.
//!
//! The deployed AdaptDL system (the paper's artifact) extends Pollux's
//! batch-size search with accumulation steps so memory-constrained
//! models can reach the large batch sizes that late-training noise
//! scales justify. This experiment reports the optimal
//! `(m*, s*, goodput)` across training progress, with and without
//! accumulation, for a chosen model profile and placement.
//!
//! Accumulation only pays when (a) the per-GPU memory cap binds the
//! single-step search and (b) synchronization is expensive enough to
//! amortize — i.e. large models on multi-node placements late in
//! training.

use crate::common::render_table;
use pollux_models::{AccumulatedGoodput, EfficiencyModel, GoodputModel, PlacementShape};
pub use pollux_workload::ModelKind;
use serde::{Deserialize, Serialize};

/// One progress point of the sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccumPoint {
    /// Normalized training progress.
    pub progress: f64,
    /// Noise scale at that progress.
    pub phi: f64,
    /// Goodput-optimal batch without accumulation.
    pub m_single: u64,
    /// Goodput without accumulation.
    pub goodput_single: f64,
    /// Goodput-optimal `(m, s)` with accumulation.
    pub m_accum: u64,
    /// Chosen accumulation steps.
    pub steps: u32,
    /// Goodput with accumulation.
    pub goodput_accum: f64,
}

/// The full extension-experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccumResult {
    /// Model profile used.
    pub model: String,
    /// Placement used.
    pub gpus: u32,
    /// Nodes used.
    pub nodes: u32,
    /// Sweep over training progress.
    pub points: Vec<AccumPoint>,
}

/// Runs the sweep for `kind` under `gpus` GPUs spread over `nodes`
/// nodes, with the profile's own per-GPU memory cap.
pub fn run(kind: ModelKind, gpus: u32, nodes: u32) -> AccumResult {
    run_with_cap(kind, gpus, nodes, None)
}

/// Like [`run`], but overriding the per-GPU batch cap — modelling a
/// larger model variant or smaller GPUs, where memory binds the
/// single-step search and accumulation becomes load-bearing.
pub fn run_with_cap(
    kind: ModelKind,
    gpus: u32,
    nodes: u32,
    per_gpu_cap: Option<u64>,
) -> AccumResult {
    let mut profile = kind.profile();
    if let Some(cap) = per_gpu_cap {
        let limits = pollux_models::BatchSizeLimits::new(
            profile.limits.min,
            profile.limits.max_global,
            cap.max(1),
        )
        .expect("max_per_gpu >= 1 by clamping");
        profile.limits = limits;
    }
    let shape = PlacementShape::new(gpus, nodes).expect("caller passes valid shape");
    let points = [0.05, 0.25, 0.5, 0.75, 0.95]
        .iter()
        .map(|&p| {
            let phi = profile.phi_at(p);
            let eff = EfficiencyModel::from_noise_scale(profile.m0, phi).expect("phi > 0");
            let base = GoodputModel::new(profile.params, eff, profile.limits).expect("m0 matches");
            let acc = AccumulatedGoodput::new(base, 8).expect("steps > 0");
            let (m_single, goodput_single) =
                base.optimal_batch_size(shape).unwrap_or((profile.m0, 0.0));
            let (m_accum, steps, goodput_accum) =
                acc.optimal(shape).unwrap_or((profile.m0, 1, 0.0));
            AccumPoint {
                progress: p,
                phi,
                m_single,
                goodput_single,
                m_accum,
                steps,
                goodput_accum,
            }
        })
        .collect();
    AccumResult {
        model: match per_gpu_cap {
            Some(cap) => format!("{} (per-GPU cap {})", profile.name, cap),
            None => profile.name.to_string(),
        },
        gpus,
        nodes,
        points,
    }
}

impl std::fmt::Display for AccumResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension: gradient accumulation, {} on {} GPUs / {} node(s)",
            self.model, self.gpus, self.nodes
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.progress * 100.0),
                    format!("{:.0}", p.phi),
                    format!("{}", p.m_single),
                    format!("{:.0}", p.goodput_single),
                    format!("{} x{}", p.m_accum, p.steps),
                    format!("{:.0}", p.goodput_accum),
                    format!(
                        "{:+.1}%",
                        (p.goodput_accum / p.goodput_single.max(1e-9) - 1.0) * 100.0
                    ),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &[
                    "progress",
                    "phi",
                    "m* (s=1)",
                    "goodput",
                    "m* (accum)",
                    "goodput",
                    "gain"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_never_hurts() {
        // The accumulation search space contains s = 1, so it can
        // never do worse than the single-step search.
        for r in [
            run(ModelKind::ResNet50ImageNet, 16, 4),
            run(ModelKind::DeepSpeech2Arctic, 8, 2),
        ] {
            for p in &r.points {
                assert!(
                    p.goodput_accum >= p.goodput_single * (1.0 - 1e-9),
                    "progress {}: accum {} < single {}",
                    p.progress,
                    p.goodput_accum,
                    p.goodput_single
                );
            }
        }
    }

    #[test]
    fn calibrated_profiles_are_efficiency_limited() {
        // Honest negative result: with the Table-1 calibration the
        // goodput-optimal batch stays below the memory cap, so
        // accumulation never engages (s* = 1 everywhere).
        let r = run(ModelKind::ResNet50ImageNet, 16, 4);
        assert!(r.points.iter().all(|p| p.steps == 1), "{r}");
    }

    #[test]
    fn memory_tight_variant_engages_accumulation() {
        // Shrink the per-GPU cap 4x (a bigger model / smaller GPUs):
        // late in training the cap binds and accumulation wins.
        let r = run_with_cap(ModelKind::ResNet50ImageNet, 16, 4, Some(64));
        let late = r.points.last().unwrap();
        assert!(late.steps > 1, "late steps = {}\n{r}", late.steps);
        assert!(late.m_accum > late.m_single);
        assert!(
            late.goodput_accum > late.goodput_single * 1.05,
            "gain too small: {} vs {}",
            late.goodput_accum,
            late.goodput_single
        );
    }

    #[test]
    fn single_gpu_accumulation_is_modest() {
        // Co-located single GPU: no sync to amortize, so accumulation
        // buys little or nothing beyond the memory extension.
        let r = run(ModelKind::DeepSpeech2Arctic, 1, 1);
        for p in &r.points {
            assert!(p.goodput_accum >= p.goodput_single * (1.0 - 1e-9));
        }
    }
}
