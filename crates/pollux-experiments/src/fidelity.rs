//! Simulator-fidelity check (Sec. 5.3).
//!
//! The paper validates its simulator by comparing the simulated JCT
//! reductions against the testbed ones: simulated Pollux reduces avg
//! JCT by 26 % vs Optimus+Oracle and 40 % vs Tiresias+TunedJobs
//! (testbed: 25 % and 50 %). This module derives the same reduction
//! factors from a [`crate::table2`] run.

use crate::table2::{Policy, Table2Result};
use serde::{Deserialize, Serialize};

/// JCT-reduction factors relative to the baselines.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FidelityResult {
    /// Avg-JCT reduction vs Optimus+Oracle (paper simulation: 0.26).
    pub reduction_vs_optimus: f64,
    /// Avg-JCT reduction vs Tiresias+TunedJobs (paper simulation: 0.40).
    pub reduction_vs_tiresias: f64,
}

/// Derives the reductions from a Table-2 result.
pub fn from_table2(t: &Table2Result) -> Option<FidelityResult> {
    let jct = |p: Policy| {
        t.outcomes
            .iter()
            .find(|o| o.policy == p)
            .map(|o| o.avg_jct_hours)
    };
    let pollux = jct(Policy::Pollux)?;
    let optimus = jct(Policy::OptimusOracle)?;
    let tiresias = jct(Policy::Tiresias)?;
    if optimus <= 0.0 || tiresias <= 0.0 {
        return None;
    }
    Some(FidelityResult {
        reduction_vs_optimus: 1.0 - pollux / optimus,
        reduction_vs_tiresias: 1.0 - pollux / tiresias,
    })
}

impl std::fmt::Display for FidelityResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Simulator fidelity (Sec 5.3): avg JCT reduction by Pollux"
        )?;
        writeln!(
            f,
            "  vs Optimus+Oracle:     {:.0}%   (paper simulation: 26%, testbed: 25%)",
            self.reduction_vs_optimus * 100.0
        )?;
        write!(
            f,
            "  vs Tiresias+TunedJobs: {:.0}%   (paper simulation: 40%, testbed: 50%)",
            self.reduction_vs_tiresias * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::PolicyOutcome;

    fn outcome(policy: Policy, jct: f64) -> PolicyOutcome {
        PolicyOutcome {
            policy,
            avg_jct_hours: jct,
            p99_jct_hours: 0.0,
            makespan_hours: 0.0,
            avg_efficiency: 0.0,
            job_throughput: 0.0,
            job_goodput: 0.0,
            unfinished: 0,
        }
    }

    #[test]
    fn reductions_from_synthetic_table() {
        let t = Table2Result {
            outcomes: vec![
                outcome(Policy::Pollux, 1.2),
                outcome(Policy::OptimusOracle, 1.6),
                outcome(Policy::Tiresias, 2.4),
            ],
            traces: 1,
        };
        let f = from_table2(&t).unwrap();
        assert!((f.reduction_vs_optimus - 0.25).abs() < 1e-9);
        assert!((f.reduction_vs_tiresias - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_tables_rejected() {
        let t = Table2Result {
            outcomes: vec![outcome(Policy::Pollux, 1.0)],
            traces: 1,
        };
        assert!(from_table2(&t).is_none());
    }
}
