//! Fig 1: the motivating trade-offs (ResNet18 on CIFAR-10).
//!
//! - **Fig 1a** — system throughput vs number of GPUs, for batch sizes
//!   512 and 2048: the larger batch scales to more GPUs.
//! - **Fig 1b** — the most efficient batch size vs number of GPUs, for
//!   the first and second half of training: later training tolerates
//!   much larger batches.

use crate::common::render_table;
use pollux_models::{EfficiencyModel, GoodputModel, PlacementShape};
use pollux_workload::ModelKind;
use serde::{Deserialize, Serialize};

/// One Fig 1a series point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// GPUs allocated (packed onto 4-GPU nodes).
    pub gpus: u32,
    /// Throughput at batch 512 (images/s).
    pub batch_512: f64,
    /// Throughput at batch 2048 (images/s).
    pub batch_2048: f64,
}

/// One Fig 1b series point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BestBatchPoint {
    /// GPUs allocated.
    pub gpus: u32,
    /// Goodput-optimal batch size in the first half of training.
    pub first_half: u64,
    /// Goodput-optimal batch size in the second half of training.
    pub second_half: u64,
}

/// The full Fig 1 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Fig 1a series.
    pub throughput: Vec<ThroughputPoint>,
    /// Fig 1b series.
    pub best_batch: Vec<BestBatchPoint>,
}

fn packed(gpus: u32) -> PlacementShape {
    PlacementShape::new(gpus, gpus.div_ceil(4)).expect("gpus >= 1")
}

/// Runs the Fig 1 computation from the ResNet18 ground-truth profile.
pub fn run() -> Fig1Result {
    let profile = ModelKind::ResNet18Cifar10.profile();

    let throughput = (1..=16u32)
        .map(|gpus| {
            let shape = packed(gpus);
            ThroughputPoint {
                gpus,
                batch_512: profile.params.throughput(shape, 512),
                batch_2048: profile.params.throughput(shape, 2048),
            }
        })
        .collect();

    let model_at = |p: f64| {
        let eff = EfficiencyModel::from_noise_scale(profile.m0, profile.phi_at(p))
            .expect("profile phi > 0");
        GoodputModel::new(profile.params, eff, profile.limits).expect("m0 == limits.min")
    };
    let early = model_at(0.25);
    let late = model_at(0.75);
    let best_batch = [2u32, 4, 8, 16]
        .iter()
        .map(|&gpus| {
            let shape = packed(gpus);
            BestBatchPoint {
                gpus,
                first_half: early.optimal_batch_size(shape).map_or(0, |(m, _)| m),
                second_half: late.optimal_batch_size(shape).map_or(0, |(m, _)| m),
            }
        })
        .collect();

    Fig1Result {
        throughput,
        best_batch,
    }
}

impl std::fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 1a: throughput (imgs/s) vs GPUs, ResNet18/CIFAR-10")?;
        let rows: Vec<Vec<String>> = self
            .throughput
            .iter()
            .map(|p| {
                vec![
                    p.gpus.to_string(),
                    format!("{:.0}", p.batch_512),
                    format!("{:.0}", p.batch_2048),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["GPUs", "batch 512", "batch 2048"], &rows)
        )?;
        let s512: Vec<(f64, f64)> = self
            .throughput
            .iter()
            .map(|p| (p.gpus as f64, p.batch_512))
            .collect();
        let s2048: Vec<(f64, f64)> = self
            .throughput
            .iter()
            .map(|p| (p.gpus as f64, p.batch_2048))
            .collect();
        writeln!(
            f,
            "\n{}",
            crate::common::render_chart(
                "Fig 1a: throughput (imgs/s) vs GPUs",
                &[("batch 512", &s512), ("batch 2048", &s2048)],
                60,
                12,
            )
        )?;
        writeln!(f, "\nFig 1b: goodput-optimal batch size vs GPUs")?;
        let rows: Vec<Vec<String>> = self
            .best_batch
            .iter()
            .map(|p| {
                vec![
                    p.gpus.to_string(),
                    p.first_half.to_string(),
                    p.second_half.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["GPUs", "first half", "second half"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_large_batch_scales_better() {
        let r = run();
        let first = &r.throughput[0];
        let last = &r.throughput[15];
        let scale_small = last.batch_512 / first.batch_512;
        let scale_large = last.batch_2048 / first.batch_2048;
        // The paper's headline: scalability depends on the batch size.
        assert!(
            scale_large > 1.5 * scale_small,
            "512: {scale_small:.1}x vs 2048: {scale_large:.1}x"
        );
        // Throughput is monotone in GPUs within each series... up to
        // node-boundary effects; check endpoints at least.
        assert!(last.batch_2048 > first.batch_2048);
    }

    #[test]
    fn fig1b_best_batch_grows_with_gpus_and_progress() {
        let r = run();
        for p in &r.best_batch {
            assert!(
                p.second_half >= p.first_half,
                "GPUs {}: {} vs {}",
                p.gpus,
                p.first_half,
                p.second_half
            );
        }
        // More GPUs ⇒ larger optimal batch (both halves).
        let g2 = &r.best_batch[0];
        let g16 = &r.best_batch[3];
        assert!(g16.first_half > g2.first_half);
        assert!(g16.second_half > g2.second_half);
    }

    #[test]
    fn display_contains_both_series() {
        let s = run().to_string();
        assert!(s.contains("Fig 1a"));
        assert!(s.contains("Fig 1b"));
        assert!(s.contains("batch 2048"));
    }
}
