//! Fig 10: goodput-based vs throughput-based cloud auto-scaling for a
//! single large ImageNet training job (Sec. 5.3.3).
//!
//! Pollux provisions few nodes early (large batches are statistically
//! wasteful while the gradient noise scale is low) and grows the
//! cluster as training progresses; Or et al.'s throughput-based
//! autoscaler jumps to a large, flat cluster immediately. The paper
//! reports Pollux trains ImageNet ~25 % cheaper at ~6 % longer
//! completion time.

use crate::common::render_table;
use pollux_baselines::or_etal;
use pollux_cluster::{ClusterSpec, JobId};
use pollux_core::{run_trace_recorded, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_sched::{AutoscaleConfig, GaConfig};
use pollux_simulator::{SimConfig, SimResult};
use pollux_workload::{JobSpec, ModelKind, UserConfig};
use serde::{Deserialize, Serialize};

/// One time-series sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Simulation time (s).
    pub time: f64,
    /// Cluster size (nodes).
    pub nodes: u32,
    /// Statistical efficiency of the running job.
    pub efficiency: f64,
}

/// One autoscaler's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscaleOutcome {
    /// Policy name.
    pub policy: String,
    /// Job completion time (s), or `None` if it hit the horizon.
    pub completion_seconds: Option<f64>,
    /// Cost proxy: integral of cluster size (node-seconds).
    pub node_seconds: f64,
    /// Time-averaged statistical efficiency.
    pub avg_efficiency: f64,
    /// Downsampled (time, nodes, efficiency) series.
    pub series: Vec<ScalePoint>,
}

/// The full Fig 10 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Goodput-based (Pollux) outcome.
    pub pollux: AutoscaleOutcome,
    /// Throughput-based (Or et al.) outcome.
    pub or_etal: AutoscaleOutcome,
}

impl Fig10Result {
    /// Cost saving of Pollux relative to Or et al. (positive = Pollux
    /// cheaper).
    pub fn cost_saving(&self) -> f64 {
        1.0 - self.pollux.node_seconds / self.or_etal.node_seconds.max(1e-9)
    }

    /// Relative completion-time overhead of Pollux (positive =
    /// slower).
    pub fn time_overhead(&self) -> Option<f64> {
        let a = self.pollux.completion_seconds?;
        let b = self.or_etal.completion_seconds?;
        Some(a / b - 1.0)
    }
}

/// The single-job ImageNet workload.
fn imagenet_job(work_scale: f64) -> JobSpec {
    let profile = ModelKind::ResNet50ImageNet.profile();
    JobSpec {
        id: JobId(0),
        kind: ModelKind::ResNet50ImageNet,
        submit_time: 0.0,
        work: profile.total_work * work_scale,
        tuned: UserConfig {
            gpus: 4,
            batch_size: profile.m0,
        },
        realistic: UserConfig {
            gpus: 4,
            batch_size: profile.m0,
        },
    }
}

fn extract(res: SimResult) -> AutoscaleOutcome {
    let completion = res.records.first().and_then(|r| r.finish_time);
    let samples = res.series.len();
    let stride = (samples / 60).max(1);
    let series = res
        .series
        .iter()
        .step_by(stride)
        .map(|s| ScalePoint {
            time: s.time,
            nodes: s.nodes,
            efficiency: s.mean_efficiency,
        })
        .collect();
    AutoscaleOutcome {
        policy: res.policy.clone(),
        completion_seconds: completion,
        node_seconds: res.node_seconds,
        avg_efficiency: res.avg_cluster_efficiency().unwrap_or(0.0),
        series,
    }
}

/// Runs the comparison. `work_scale` shrinks the ImageNet job for
/// faster experimentation (1.0 = the full ~130 M effective examples).
pub fn run(work_scale: f64, max_nodes: u32) -> Fig10Result {
    let job = imagenet_job(work_scale);
    let sim = SimConfig {
        max_sim_time: 48.0 * 3600.0,
        seed: 42,
        ..Default::default()
    };
    // Both start from a single 4-GPU node; autoscaling takes it from
    // there.
    let start = ClusterSpec::homogeneous(1, 4).expect("static");

    let pollux = {
        let mut cfg = PolluxConfig::default();
        cfg.sched.ga = GaConfig {
            population: 30,
            generations: 15,
            ..Default::default()
        };
        cfg.autoscale = Some(AutoscaleConfig {
            max_nodes,
            ga: GaConfig {
                population: 20,
                generations: 10,
                ..Default::default()
            },
            ..Default::default()
        });
        let policy = PolluxPolicy::new(cfg).expect("valid config");
        extract(
            run_trace_recorded(
                policy,
                std::slice::from_ref(&job),
                ConfigChoice::Tuned,
                start.clone(),
                sim,
                crate::common::capture_recorder(),
            )
            .expect("valid inputs"),
        )
    };

    let or_etal = {
        let cfg = pollux_baselines::or_etal::OrEtAlConfig {
            max_nodes,
            ..Default::default()
        };
        let policy = or_etal(cfg);
        extract(
            run_trace_recorded(
                policy,
                std::slice::from_ref(&job),
                ConfigChoice::Tuned,
                start,
                sim,
                crate::common::capture_recorder(),
            )
            .expect("valid inputs"),
        )
    };

    Fig10Result { pollux, or_etal }
}

impl std::fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 10: auto-scaling ImageNet — goodput (Pollux) vs throughput (Or et al.)"
        )?;
        let fmt_one = |o: &AutoscaleOutcome| {
            vec![
                o.policy.clone(),
                o.completion_seconds
                    .map(|s| format!("{:.2}h", s / 3600.0))
                    .unwrap_or_else(|| "horizon".into()),
                format!("{:.0}", o.node_seconds / 3600.0),
                format!("{:.1}%", o.avg_efficiency * 100.0),
            ]
        };
        let rows = vec![fmt_one(&self.pollux), fmt_one(&self.or_etal)];
        write!(
            f,
            "{}",
            render_table(
                &["policy", "completion", "node-hours", "avg stat. eff."],
                &rows
            )
        )?;
        writeln!(
            f,
            "\ncost saving: {:.0}%   time overhead: {}",
            self.cost_saving() * 100.0,
            self.time_overhead()
                .map(|t| format!("{:.0}%", t * 100.0))
                .unwrap_or_else(|| "n/a".into())
        )?;
        let nodes_series = |o: &AutoscaleOutcome| -> Vec<(f64, f64)> {
            o.series
                .iter()
                .map(|p| (p.time / 3600.0, p.nodes as f64))
                .collect()
        };
        let eff_series = |o: &AutoscaleOutcome| -> Vec<(f64, f64)> {
            o.series
                .iter()
                .map(|p| (p.time / 3600.0, p.efficiency))
                .collect()
        };
        let pn = nodes_series(&self.pollux);
        let on = nodes_series(&self.or_etal);
        writeln!(
            f,
            "\n{}",
            crate::common::render_chart(
                "Fig 10a: nodes over time (hours)",
                &[("pollux", &pn), ("or-etal", &on)],
                60,
                12,
            )
        )?;
        let pe = eff_series(&self.pollux);
        let oe = eff_series(&self.or_etal);
        write!(
            f,
            "{}",
            crate::common::render_chart(
                "Fig 10b: statistical efficiency over time (hours)",
                &[("pollux", &pe), ("or-etal", &oe)],
                60,
                12,
            )
        )
    }
}
