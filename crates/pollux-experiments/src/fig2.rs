//! Fig 2: statistical efficiency for ImageNet-scale training.
//!
//! - **Fig 2a** — efficiency vs statistical epochs at batch sizes 800
//!   and 8000, from the ResNet-50 profile's φ trajectory (with its
//!   learning-rate-decay jumps at epochs 30 and 60).
//! - **Fig 2b** — predicted (Eqn 7) vs actual efficiency across batch
//!   sizes. The paper measures this on real ImageNet training; we
//!   measure it on the `pollux-trainer` substrate: actual efficiency
//!   is the ratio of examples needed to reach a matched loss at `m0`
//!   vs at batch `m`, and the prediction uses φ̂ measured at a single
//!   reference batch size.

use crate::common::render_table;
use pollux_models::EfficiencyModel;
use pollux_trainer::{AdaptiveTrainer, Dataset, LinearModel, TrainerConfig};
use pollux_workload::ModelKind;
use serde::{Deserialize, Serialize};

/// One Fig 2a series point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Statistical epoch (0–90, ImageNet convention).
    pub epoch: f64,
    /// Efficiency at batch 800.
    pub batch_800: f64,
    /// Efficiency at batch 8000.
    pub batch_8000: f64,
}

/// One Fig 2b comparison point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PredictionPoint {
    /// Batch size.
    pub batch_size: u64,
    /// Efficiency predicted by Eqn 7 from φ̂ at the reference batch.
    pub predicted: f64,
    /// Efficiency measured as an examples-to-target ratio.
    pub actual: f64,
}

/// The full Fig 2 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Fig 2a series (profile-driven).
    pub trajectory: Vec<EfficiencyPoint>,
    /// Fig 2b series (real gradients on the trainer substrate).
    pub prediction: Vec<PredictionPoint>,
}

/// Runs the profile-driven part (Fig 2a).
pub fn run_trajectory() -> Vec<EfficiencyPoint> {
    let profile = ModelKind::ResNet50ImageNet.profile();
    let total_epochs = 90.0;
    (0..=90)
        .step_by(2)
        .map(|e| {
            let p = e as f64 / total_epochs;
            let eff = EfficiencyModel::from_noise_scale(profile.m0, profile.phi_at(p))
                .expect("profile phi > 0");
            EfficiencyPoint {
                epoch: e as f64,
                batch_800: eff.efficiency(800),
                batch_8000: eff.efficiency(8000),
            }
        })
        .collect()
}

/// Runs the real-gradient validation (Fig 2b), following the paper's
/// methodology: the noise scale is measured **at a fixed checkpoint**
/// (the paper uses epoch 15 of ImageNet training) and Eqn 7 predicts
/// the efficiency *at that point in training*.
///
/// 1. Train a reference model at `m0` until a checkpoint loss.
/// 2. Measure φ̂ at the frozen checkpoint (no parameter updates).
/// 3. From the same checkpoint, for each batch size `m`, train with
///    AdaScale until the loss drops by a fixed amount, counting
///    examples; actual efficiency is `examples(m0) / examples(m)`.
pub fn run_prediction() -> Vec<PredictionPoint> {
    let m0 = 32u64;
    let checkpoint_loss = 0.5;
    let target_loss = 0.3;
    let max_steps = 400_000;
    let data = Dataset::linear_regression(4000, 8, 0.5, 77).unwrap().0;

    // 1. Reach the checkpoint.
    let mut reference = AdaptiveTrainer::new(
        LinearModel::new(8),
        data,
        TrainerConfig {
            replicas: 4,
            batch_size: m0,
            m0,
            eta0: 0.04,
            gns_smoothing: 0.05,
            use_adascale: true,
            momentum: 0.0,
            seed: 1234,
        },
    )
    .expect("valid trainer config");
    reference
        .train_until_loss(checkpoint_loss, max_steps, 5)
        .expect("checkpoint reachable");

    // 2. φ̂ at the frozen checkpoint.
    let phi_hat = {
        let mut probe = reference.clone();
        probe.measure_phi_static(400, 128).unwrap_or(0.0).max(0.0)
    };
    let eff_model = EfficiencyModel::from_noise_scale(m0, phi_hat).expect("phi >= 0");

    // 3. Descend from the checkpoint at each batch size.
    let examples_to_target = |m: u64| -> f64 {
        let mut t = reference.clone();
        assert!(t.set_batch_size(m), "batch below replica count");
        let before = t.total_examples();
        t.train_until_loss(target_loss, max_steps, 5)
            .map(|(_, ex)| (ex - before) as f64)
            .unwrap_or(f64::INFINITY)
    };
    let base_examples = examples_to_target(m0);

    [64u64, 128, 256, 512, 1024]
        .iter()
        .map(|&m| {
            let ex = examples_to_target(m);
            PredictionPoint {
                batch_size: m,
                predicted: eff_model.efficiency(m),
                actual: if ex.is_finite() {
                    base_examples / ex
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Runs both parts.
pub fn run() -> Fig2Result {
    Fig2Result {
        trajectory: run_trajectory(),
        prediction: run_prediction(),
    }
}

impl std::fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 2a: stat. efficiency vs statistical epoch (ResNet-50/ImageNet profile)"
        )?;
        let rows: Vec<Vec<String>> = self
            .trajectory
            .iter()
            .step_by(5)
            .map(|p| {
                vec![
                    format!("{:.0}", p.epoch),
                    format!("{:.3}", p.batch_800),
                    format!("{:.3}", p.batch_8000),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["epoch", "batch 800", "batch 8000"], &rows)
        )?;
        let s800: Vec<(f64, f64)> = self
            .trajectory
            .iter()
            .map(|p| (p.epoch, p.batch_800))
            .collect();
        let s8000: Vec<(f64, f64)> = self
            .trajectory
            .iter()
            .map(|p| (p.epoch, p.batch_8000))
            .collect();
        writeln!(
            f,
            "\n{}",
            crate::common::render_chart(
                "Fig 2a: efficiency vs statistical epoch",
                &[("batch 800", &s800), ("batch 8000", &s8000)],
                60,
                12,
            )
        )?;
        writeln!(
            f,
            "\nFig 2b: Eqn 7 prediction vs measured efficiency (trainer substrate)"
        )?;
        let rows: Vec<Vec<String>> = self
            .prediction
            .iter()
            .map(|p| {
                vec![
                    p.batch_size.to_string(),
                    format!("{:.3}", p.predicted),
                    format!("{:.3}", p.actual),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["batch", "predicted", "actual"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_shows_lr_decay_jumps() {
        let t = run_trajectory();
        // Batch-8000 efficiency is low early and much higher late.
        let early = t.iter().find(|p| p.epoch == 4.0).unwrap();
        let late = t.iter().find(|p| p.epoch == 80.0).unwrap();
        assert!(early.batch_8000 < 0.3, "early: {}", early.batch_8000);
        assert!(late.batch_8000 > 0.55, "late: {}", late.batch_8000);
        // Batch 800 stays comparatively high throughout.
        assert!(t.iter().all(|p| p.batch_800 > 0.4));
        // A visible jump at epoch 30 (the first LR decay).
        let before = t.iter().find(|p| p.epoch == 28.0).unwrap();
        let after = t.iter().find(|p| p.epoch == 32.0).unwrap();
        assert!(
            after.batch_8000 > before.batch_8000 * 1.5,
            "jump: {} -> {}",
            before.batch_8000,
            after.batch_8000
        );
    }

    #[test]
    fn trajectory_efficiency_is_ordered() {
        for p in run_trajectory() {
            assert!(p.batch_800 > p.batch_8000, "epoch {}", p.epoch);
            assert!(p.batch_800 <= 1.0 + 1e-9 && p.batch_8000 > 0.0);
        }
    }

    #[test]
    #[ignore = "trains many SGD runs; exercised by the fig2 bench"]
    fn prediction_matches_measurement() {
        let pts = run_prediction();
        for p in &pts {
            let ratio = p.actual / p.predicted.max(1e-9);
            assert!(
                (0.5..2.0).contains(&ratio),
                "batch {}: predicted {:.3} vs actual {:.3}",
                p.batch_size,
                p.predicted,
                p.actual
            );
        }
        // Efficiency must fall monotonically with batch size in both
        // columns.
        for w in pts.windows(2) {
            assert!(w[1].predicted <= w[0].predicted);
            assert!(w[1].actual <= w[0].actual + 1e-9);
        }
    }
}
