//! Fig 3: the throughput model (Eqn 11) fit to measured values
//! (ResNet-50/ImageNet).
//!
//! We reproduce the paper's procedure end-to-end: generate noisy
//! iteration-time measurements from the ground-truth profile over a
//! grid of configurations, fit θsys with the agent's RMSLE pipeline,
//! and compare model predictions against the true ("actual")
//! throughput — **Fig 3a** varies the number of nodes at a fixed batch
//! size, **Fig 3b** varies the batch size at a fixed allocation.

use crate::common::render_table;
use pollux_models::{fit_throughput_params, FitObservation, FitPriors, PlacementShape};
use pollux_workload::ModelKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One actual-vs-model comparison point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FitPoint {
    /// The varied quantity (nodes for Fig 3a, batch size for Fig 3b).
    pub x: u64,
    /// Ground-truth throughput (examples/s).
    pub actual: f64,
    /// Fitted-model prediction (examples/s).
    pub model: f64,
}

/// The full Fig 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Fig 3a: throughput vs nodes (1 GPU per node, batch 2048).
    pub vs_nodes: Vec<FitPoint>,
    /// Fig 3b: throughput vs batch size (4 nodes × 1 GPU).
    pub vs_batch: Vec<FitPoint>,
    /// RMSLE of the fit on its training observations.
    pub rmsle: f64,
}

/// Runs the fit + comparison.
pub fn run(noise: f64, seed: u64) -> Fig3Result {
    let profile = ModelKind::ResNet50ImageNet.profile();
    let mut rng = StdRng::seed_from_u64(seed);

    // Training observations: the grid of Sec. 5.3 (batch sizes spaced
    // by ~sqrt(2), placements up to 8 nodes).
    let mut obs = Vec::new();
    for (gpus, nodes) in [
        (1u32, 1u32),
        (2, 1),
        (2, 2),
        (4, 1),
        (4, 4),
        (6, 3),
        (8, 2),
        (8, 8),
    ] {
        let shape = PlacementShape::new(gpus, nodes).expect("static");
        let mut m = profile.m0;
        let cap = (profile.limits.max_per_gpu * gpus as u64).min(profile.limits.max_global);
        while m <= cap {
            let t = profile.params.t_iter(shape, m);
            let eps: f64 = rng.gen_range(-noise..=noise);
            obs.push(FitObservation {
                shape,
                batch_size: m,
                t_iter: t * (1.0 + eps),
            });
            m = ((m as f64) * std::f64::consts::SQRT_2).round() as u64;
        }
    }
    let report = fit_throughput_params(&obs, FitPriors::from_observations(&obs))
        .expect("non-empty observations");

    let vs_nodes = (1..=8u32)
        .map(|nodes| {
            let shape = PlacementShape::new(nodes, nodes).expect("one GPU per node");
            let m = 2048u64;
            FitPoint {
                x: nodes as u64,
                actual: profile.params.throughput(shape, m),
                model: report.params.throughput(shape, m),
            }
        })
        .collect();

    let shape_b = PlacementShape::new(4, 4).expect("static");
    let vs_batch = [512u64, 724, 1024, 1448, 2048, 2896]
        .iter()
        .map(|&m| FitPoint {
            x: m,
            actual: profile.params.throughput(shape_b, m),
            model: report.params.throughput(shape_b, m),
        })
        .collect();

    Fig3Result {
        vs_nodes,
        vs_batch,
        rmsle: report.rmsle,
    }
}

impl std::fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 3a: throughput vs nodes (ImageNet, batch 2048), RMSLE {:.4}",
            self.rmsle
        )?;
        let rows: Vec<Vec<String>> = self
            .vs_nodes
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    format!("{:.0}", p.actual),
                    format!("{:.0}", p.model),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["nodes", "actual", "model"], &rows))?;
        writeln!(f, "\nFig 3b: throughput vs batch size (4 nodes)")?;
        let rows: Vec<Vec<String>> = self
            .vs_batch
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    format!("{:.0}", p.actual),
                    format!("{:.0}", p.model),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["batch", "actual", "model"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_actual_closely() {
        let r = run(0.05, 1);
        for p in r.vs_nodes.iter().chain(&r.vs_batch) {
            let rel = (p.model - p.actual).abs() / p.actual;
            assert!(
                rel < 0.15,
                "x = {}: model {} vs actual {}",
                p.x,
                p.model,
                p.actual
            );
        }
        assert!(r.rmsle < 0.05, "rmsle = {}", r.rmsle);
    }

    #[test]
    fn throughput_saturates_with_nodes() {
        // Fig 3a's shape: increasing but saturating.
        let r = run(0.05, 2);
        let first = r.vs_nodes.first().unwrap().actual;
        let last = r.vs_nodes.last().unwrap().actual;
        assert!(last > first);
        let gain_early = r.vs_nodes[1].actual / r.vs_nodes[0].actual;
        let gain_late = r.vs_nodes[7].actual / r.vs_nodes[6].actual;
        assert!(gain_late < gain_early, "{gain_early} vs {gain_late}");
    }

    #[test]
    fn throughput_increases_with_batch() {
        let r = run(0.05, 3);
        for w in r.vs_batch.windows(2) {
            assert!(w[1].actual >= w[0].actual);
        }
    }
}
