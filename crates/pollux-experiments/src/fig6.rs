//! Fig 6: job submissions per hour of the synthetic workload window.
//!
//! The paper samples its 8-hour evaluation window around the daily
//! peak of the Microsoft trace, where the peak hour submits at ~3× the
//! rate of the first hour. This experiment regenerates the histogram
//! from our trace generator.

use crate::common::render_table;
use pollux_workload::{TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};

/// The Fig 6 reproduction: submissions per hour, averaged over traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Mean submissions in each of the 8 window hours.
    pub hourly: Vec<f64>,
    /// Ratio of the peak hour to the first hour (the paper reports 3×).
    pub peak_ratio: f64,
}

/// Generates and averages `traces` histograms.
pub fn run(traces: u64) -> Fig6Result {
    let traces = traces.max(1);
    let mut totals = vec![0.0f64; 8];
    for seed in 0..traces {
        let gen = TraceGenerator::new(TraceConfig {
            seed: 1000 + seed,
            ..Default::default()
        })
        .expect("static config");
        let jobs = gen.generate();
        for (h, c) in gen.hourly_counts(&jobs).iter().enumerate() {
            totals[h] += *c as f64;
        }
    }
    for t in &mut totals {
        *t /= traces as f64;
    }
    let peak = totals.iter().cloned().fold(0.0, f64::max);
    let peak_ratio = peak / totals[0].max(1e-9);
    Fig6Result {
        hourly: totals,
        peak_ratio,
    }
}

impl std::fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 6: submissions per hour (peak/first ratio = {:.2})",
            self.peak_ratio
        )?;
        let rows: Vec<Vec<String>> = self
            .hourly
            .iter()
            .enumerate()
            .map(|(h, c)| vec![format!("{h}"), format!("{c:.1}")])
            .collect();
        write!(f, "{}", render_table(&["hour", "submissions"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_hour_three_at_about_3x() {
        let r = run(16);
        let peak_hour = r
            .hourly
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_hour, 3, "hourly = {:?}", r.hourly);
        assert!(
            (2.2..4.0).contains(&r.peak_ratio),
            "ratio = {}",
            r.peak_ratio
        );
    }

    #[test]
    fn total_is_160_per_trace() {
        let r = run(4);
        let total: f64 = r.hourly.iter().sum();
        assert!((total - 160.0).abs() < 1e-9);
    }
}
