//! Fig 7: sensitivity to realistic, user-configured jobs (Sec. 5.3.1).
//!
//! Sweeps the fraction of jobs that use the Microsoft-trace-derived
//! user configurations (0 %, 33 %, 67 %, 100 %) instead of the
//! idealized tuned configurations, and reports each baseline's average
//! JCT normalized to Pollux's.

use crate::common::{mean, render_table};
use crate::table2::{run_one, Policy, Table2Options};
use pollux_core::ConfigChoice;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Fraction of user-configured jobs.
    pub user_fraction: f64,
    /// Average JCT per policy (hours), `Policy::ALL` order.
    pub avg_jct_hours: [f64; 3],
    /// Average JCT normalized to Pollux.
    pub normalized: [f64; 3],
}

/// The full Fig 7 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Sweep points at 0, 1/3, 2/3, 1.
    pub points: Vec<Fig7Point>,
    /// Traces averaged per cell.
    pub traces: u64,
    /// Workload scale the sweep ran at.
    pub load: f64,
}

/// Default workload scale for this experiment.
///
/// Our calibration's 1.0× load is more contended than the paper's
/// testbed: there, the queueing relief that small user GPU requests
/// provide outweighs their under-parallelization, inverting the Fig 7
/// trend. At 0.6× the baseline-vs-Pollux starting ratios match the
/// paper's and the degradation direction reproduces. See
/// EXPERIMENTS.md.
pub const DEFAULT_LOAD: f64 = 0.6;

/// Runs the sweep with `traces` traces per cell at `DEFAULT_LOAD`.
pub fn run(traces: u64) -> Fig7Result {
    run_at_load(traces, DEFAULT_LOAD)
}

/// Runs the sweep at an explicit workload scale.
pub fn run_at_load(traces: u64, load: f64) -> Fig7Result {
    let fractions = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];
    let points = fractions
        .iter()
        .map(|&frac| {
            let mut jct = [0.0f64; 3];
            for (pi, &policy) in Policy::ALL.iter().enumerate() {
                let per_trace: Vec<f64> = (0..traces.max(1))
                    .map(|t| {
                        let opts = Table2Options {
                            traces: 1,
                            load,
                            choice: if frac <= 0.0 {
                                ConfigChoice::Tuned
                            } else if frac >= 1.0 {
                                ConfigChoice::Realistic
                            } else {
                                ConfigChoice::Mixed {
                                    fraction: frac,
                                    seed: 500 + t,
                                }
                            },
                            ..Default::default()
                        };
                        run_one(policy, t, &opts)
                            .avg_jct()
                            .map(|v| v / 3600.0)
                            .unwrap_or(f64::NAN)
                    })
                    .filter(|v| v.is_finite())
                    .collect();
                jct[pi] = mean(&per_trace).unwrap_or(0.0);
            }
            let base = jct[0].max(1e-9);
            Fig7Point {
                user_fraction: frac,
                avg_jct_hours: jct,
                normalized: [jct[0] / base, jct[1] / base, jct[2] / base],
            }
        })
        .collect();
    Fig7Result {
        points,
        traces: traces.max(1),
        load,
    }
}

impl std::fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 7: normalized avg JCT vs ratio of user-configured jobs ({} trace/cell, {:.2}x load)",
            self.traces, self.load
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.user_fraction * 100.0),
                    format!("{:.2}", p.normalized[0]),
                    format!("{:.2}", p.normalized[1]),
                    format!("{:.2}", p.normalized[2]),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["user-configured", "Pollux", "Optimus+Oracle", "Tiresias"],
                &rows
            )
        )
    }
}
