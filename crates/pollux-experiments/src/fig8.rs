//! Fig 8: sensitivity to cluster load (Sec. 5.3.2).
//!
//! Sweeps the job-submission rate from 0.5× to 2× the base workload
//! and reports average JCT per policy. The paper's observation: every
//! policy degrades under load, but Pollux degrades most gracefully.

use crate::common::{mean, render_table};
use crate::sweep::sweep;
use crate::table2::{run_one, Policy, Table2Options};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Load multiplier (relative job submission count).
    pub load: f64,
    /// Average JCT (hours) per policy, `Policy::ALL` order.
    pub avg_jct_hours: [f64; 3],
}

/// The full Fig 8 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Sweep points at 0.5×, 1×, 1.5×, 2×.
    pub points: Vec<Fig8Point>,
    /// Traces averaged per cell.
    pub traces: u64,
}

/// Runs the sweep with `traces` traces per cell.
pub fn run(traces: u64) -> Fig8Result {
    let loads = [0.5, 1.0, 1.5, 2.0];
    let points = loads
        .iter()
        .map(|&load| {
            let mut jct = [0.0f64; 3];
            for (pi, &policy) in Policy::ALL.iter().enumerate() {
                let per_trace: Vec<f64> = sweep(traces.max(1), |t| {
                    let opts = Table2Options {
                        traces: 1,
                        load,
                        ..Default::default()
                    };
                    run_one(policy, t, &opts)
                        .avg_jct()
                        .map(|v| v / 3600.0)
                        .unwrap_or(f64::NAN)
                })
                .into_iter()
                .filter(|v| v.is_finite())
                .collect();
                jct[pi] = mean(&per_trace).unwrap_or(0.0);
            }
            Fig8Point {
                load,
                avg_jct_hours: jct,
            }
        })
        .collect();
    Fig8Result {
        points,
        traces: traces.max(1),
    }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 8: avg JCT (hours) vs relative load ({} trace/cell)",
            self.traces
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.load),
                    format!("{:.2}", p.avg_jct_hours[0]),
                    format!("{:.2}", p.avg_jct_hours[1]),
                    format!("{:.2}", p.avg_jct_hours[2]),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["load", "Pollux", "Optimus+Oracle", "Tiresias"], &rows)
        )
    }
}
