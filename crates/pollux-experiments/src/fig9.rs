//! Fig 9: impact of interference avoidance (Sec. 5.3.2).
//!
//! Injects artificial slowdowns (0 %, 25 %, 50 %) for distributed jobs
//! that share a node, with Pollux's interference-avoidance constraint
//! enabled vs disabled. The paper: with avoidance enabled, JCT is flat
//! across slowdowns (conflicts never happen); disabled, JCT grows up
//! to 1.4×; with zero slowdown, disabling buys only ~2 %.

use crate::common::{mean, render_table};
use crate::table2::{run_one, Policy, Table2Options};
use serde::{Deserialize, Serialize};

/// One slowdown × avoidance cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Injected slowdown fraction.
    pub slowdown: f64,
    /// Avg JCT (hours) with avoidance enabled.
    pub enabled_jct_hours: f64,
    /// Avg JCT (hours) with avoidance disabled.
    pub disabled_jct_hours: f64,
}

/// The full Fig 9 sweep (Pollux only, like the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Points at slowdown 0, 0.25, 0.5.
    pub points: Vec<Fig9Point>,
    /// Traces averaged per cell.
    pub traces: u64,
}

/// Runs the sweep.
pub fn run(traces: u64) -> Fig9Result {
    let slowdowns = [0.0, 0.25, 0.5];
    let cell = |slowdown: f64, disable_avoidance: bool| -> f64 {
        let per_trace: Vec<f64> = (0..traces.max(1))
            .map(|t| {
                let opts = Table2Options {
                    traces: 1,
                    interference: slowdown,
                    disable_avoidance,
                    ..Default::default()
                };
                run_one(Policy::Pollux, t, &opts)
                    .avg_jct()
                    .map(|v| v / 3600.0)
                    .unwrap_or(f64::NAN)
            })
            .filter(|v| v.is_finite())
            .collect();
        mean(&per_trace).unwrap_or(0.0)
    };
    let points = slowdowns
        .iter()
        .map(|&s| Fig9Point {
            slowdown: s,
            enabled_jct_hours: cell(s, false),
            disabled_jct_hours: cell(s, true),
        })
        .collect();
    Fig9Result {
        points,
        traces: traces.max(1),
    }
}

impl std::fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 9: avg JCT vs interference slowdown, normalized to avoidance-enabled ({} trace/cell)",
            self.traces
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.slowdown * 100.0),
                    format!("{:.2}h (1.00)", p.enabled_jct_hours),
                    format!(
                        "{:.2}h ({:.2})",
                        p.disabled_jct_hours,
                        p.disabled_jct_hours / p.enabled_jct_hours.max(1e-9)
                    ),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["slowdown", "avoidance enabled", "avoidance disabled"],
                &rows
            )
        )
    }
}
