//! Reproduction harness for every table and figure in the Pollux
//! paper's evaluation (Sec. 5).
//!
//! One module per experiment; each exposes a `run(...)` returning
//! structured data plus a `Display` implementation that prints the
//! same rows/series the paper reports. The `pollux-bench` crate wires
//! each module to a `cargo bench` target, and EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig 1a/1b — batch size vs scalability trade-offs |
//! | [`fig2`] | Fig 2a/2b — statistical efficiency and Eqn 7 validation |
//! | [`fig3`] | Fig 3a/3b — throughput-model fit |
//! | [`fig6`] | Fig 6 — workload submission histogram |
//! | [`table2`] | Table 2 — JCT/makespan vs baselines (+Sec 5.2.1 factors) |
//! | [`fidelity`] | Sec 5.3 — simulator fidelity factors |
//! | [`fig7`] | Fig 7 — realistic user-configured job sweep |
//! | [`fig8`] | Fig 8 — load sweep |
//! | [`table3`] | Table 3 — job-weight decay sweep |
//! | [`fig9`] | Fig 9 — interference-avoidance sweep |
//! | [`fig10`] | Fig 10a/10b — cloud auto-scaling comparison |
//! | [`ablations`] | extra ablations: γ-norm, restart penalty, search backends |
//! | [`ext_accum`] | extension: gradient accumulation in the goodput search |
//! | [`zoo`] | policy-zoo head-to-head across every registered scheduler |
//!
//! Multi-trace averages run their independent `(policy, trace)` cells
//! on a worker pool via [`sweep`]; results are byte-identical to the
//! serial loop at any thread count.

pub mod ablations;
pub mod common;
pub mod ext_accum;
pub mod fidelity;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sweep;
pub mod table2;
pub mod table3;
pub mod zoo;
