//! Deterministic multi-trace sweep runner.
//!
//! Every table/figure experiment averages several independently-seeded
//! traces, and each `(policy, trace)` cell is an isolated simulation:
//! it builds its own trace, policy, and RNG from the trace index alone.
//! That makes the sweep embarrassingly parallel, and the macro-stepped
//! engine makes individual runs cheap enough that the sweep — not the
//! single run — is now the wall-clock unit worth parallelizing.
//!
//! Parallelism here is purely a wall-clock knob: cells are computed by
//! [`pollux_sched::parallel_map`], which preserves index order, so the
//! collected results are byte-identical to the serial loop at any
//! thread count.

use pollux_sched::parallel_map;
use std::sync::OnceLock;

/// Worker threads used by [`sweep`]: `POLLUX_SWEEP_THREADS` when set
/// to a positive integer, otherwise the machine's available
/// parallelism. Read once and cached for the process lifetime.
pub fn sweep_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("POLLUX_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs `f(0), f(1), …, f(n-1)` on a worker pool and returns the
/// results in index order. Results are a pure function of `f` — never
/// of the thread count — provided each call is independent (true for
/// all `run_one`-style experiment cells, which derive everything from
/// the index).
pub fn sweep<T, F>(n: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    sweep_with_threads(n, sweep_threads(), f)
}

/// [`sweep`] with an explicit thread count (1 = fully serial).
pub fn sweep_with_threads<T, F>(n: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    parallel_map(n as usize, threads, |i| f(i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap stand-in for a simulation cell: a seeded mix so wrong
    /// ordering or wrong indices produce different values.
    fn cell(i: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ i;
        for _ in 0..8 {
            h = h.wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17);
        }
        h
    }

    #[test]
    fn sweep_preserves_index_order() {
        let serial: Vec<u64> = (0..64).map(cell).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                sweep_with_threads(64, threads, cell),
                serial,
                "order broken at {threads} threads"
            );
        }
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        assert!(sweep_with_threads(0, 4, cell).is_empty());
        assert_eq!(sweep_with_threads(1, 4, cell), vec![cell(0)]);
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }
}
