//! Table 2: Pollux vs Optimus+Oracle vs Tiresias+TunedJobs with
//! ideally-configured jobs (Sec. 5.2), plus the Sec. 5.2.1 breakdown
//! (statistical efficiency, throughput and goodput factors).

use crate::common::{
    capture_recorder, evaluation_trace, experiment_ga, experiment_sim, mean, render_table,
    testbed_cluster,
};
use crate::sweep::sweep;
use pollux_baselines::{optimus, tiresias, TiresiasConfig};
use pollux_core::{run_trace_recorded, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_simulator::{SchedulingPolicy, SimResult};
use serde::{Deserialize, Serialize};

/// Which scheduler to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Pollux (co-adaptive).
    Pollux,
    /// Optimus with a remaining-work oracle (only-resource-adaptive).
    OptimusOracle,
    /// Tiresias with idealized tuned configurations
    /// (non-resource-adaptive).
    Tiresias,
}

impl Policy {
    /// All three Table-2 policies.
    pub const ALL: [Policy; 3] = [Policy::Pollux, Policy::OptimusOracle, Policy::Tiresias];

    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Pollux => "Pollux",
            Policy::OptimusOracle => "Optimus+Oracle",
            Policy::Tiresias => "Tiresias+TunedJobs",
        }
    }
}

/// Aggregated per-policy results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Which policy.
    pub policy: Policy,
    /// Mean of per-trace average JCTs (hours).
    pub avg_jct_hours: f64,
    /// Mean of per-trace 99th-percentile JCTs (hours).
    pub p99_jct_hours: f64,
    /// Mean makespan (hours).
    pub makespan_hours: f64,
    /// Mean time-averaged cluster statistical efficiency.
    pub avg_efficiency: f64,
    /// Mean per-job lifetime throughput (examples/s).
    pub job_throughput: f64,
    /// Mean per-job lifetime goodput (useful examples/s).
    pub job_goodput: f64,
    /// Jobs that failed to finish within the horizon (should be 0).
    pub unfinished: usize,
}

/// The full Table-2 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// One outcome per policy, in `Policy::ALL` order.
    pub outcomes: Vec<PolicyOutcome>,
    /// Number of traces averaged.
    pub traces: usize,
}

/// Options for sizing the experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table2Options {
    /// Number of traces to average (the paper uses 8).
    pub traces: u64,
    /// Workload scale (1.0 = the paper's 160 jobs / 8 h).
    pub load: f64,
    /// Per-job configuration source.
    pub choice: ConfigChoice,
    /// Interference slowdown injected (0 in Table 2).
    pub interference: f64,
    /// Disable Pollux's interference-avoidance constraint (Fig 9).
    pub disable_avoidance: bool,
    /// Pollux job-weight decay λ (0.5 default; Table 3 sweeps it).
    pub lambda: f64,
}

impl Default for Table2Options {
    fn default() -> Self {
        Self {
            traces: 8,
            load: 1.0,
            choice: ConfigChoice::Tuned,
            interference: 0.0,
            disable_avoidance: false,
            lambda: 0.5,
        }
    }
}

/// Builds one policy instance.
fn make_policy(policy: Policy, opts: &Table2Options) -> Box<dyn SchedulingPolicy> {
    match policy {
        Policy::Pollux => {
            let mut cfg = PolluxConfig::default();
            cfg.sched.ga = experiment_ga();
            cfg.sched.ga.interference_avoidance = !opts.disable_avoidance;
            cfg.sched.weights.lambda = opts.lambda;
            Box::new(PolluxPolicy::new(cfg).expect("valid config"))
        }
        Policy::OptimusOracle => Box::new(optimus(4)),
        Policy::Tiresias => Box::new(tiresias(TiresiasConfig::default())),
    }
}

/// Runs one `(policy, trace index)` cell and returns the raw result.
pub fn run_one(policy: Policy, trace_idx: u64, opts: &Table2Options) -> SimResult {
    let trace = evaluation_trace(trace_idx, opts.load);
    let mut sim = experiment_sim(trace_idx);
    sim.interference_slowdown = opts.interference;
    let boxed = make_policy(policy, opts);
    run_trace_recorded(
        boxed,
        &trace,
        opts.choice,
        testbed_cluster(),
        sim,
        capture_recorder(),
    )
    .expect("valid simulation inputs")
}

/// Runs the full experiment. Per-trace cells run on the [`sweep`]
/// worker pool; cells are independent, so the aggregate is identical
/// to a serial loop.
pub fn run(opts: &Table2Options) -> Table2Result {
    let outcomes = Policy::ALL
        .iter()
        .map(|&policy| {
            let results: Vec<SimResult> = sweep(opts.traces.max(1), |i| run_one(policy, i, opts));
            summarize(policy, &results)
        })
        .collect();
    Table2Result {
        outcomes,
        traces: opts.traces.max(1) as usize,
    }
}

/// Aggregates per-trace results into one row.
pub fn summarize(policy: Policy, results: &[SimResult]) -> PolicyOutcome {
    let collect = |f: &dyn Fn(&SimResult) -> Option<f64>| -> f64 {
        let vals: Vec<f64> = results.iter().filter_map(f).collect();
        mean(&vals).unwrap_or(0.0)
    };
    PolicyOutcome {
        policy,
        avg_jct_hours: collect(&|r| r.avg_jct().map(|v| v / 3600.0)),
        p99_jct_hours: collect(&|r| r.percentile_jct(99.0).map(|v| v / 3600.0)),
        makespan_hours: collect(&|r| Some(r.makespan() / 3600.0)),
        avg_efficiency: collect(&|r| r.avg_cluster_efficiency()),
        job_throughput: collect(&|r| r.mean_job_throughput()),
        job_goodput: collect(&|r| r.mean_job_goodput()),
        unfinished: results.iter().map(|r| r.unfinished()).sum(),
    }
}

impl std::fmt::Display for Table2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 2: ideally-tuned workload, {} trace(s) averaged",
            self.traces
        )?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.label().to_string(),
                    format!("{:.2}", o.avg_jct_hours),
                    format!("{:.1}", o.p99_jct_hours),
                    format!("{:.1}", o.makespan_hours),
                    format!("{:.1}%", o.avg_efficiency * 100.0),
                    format!("{}", o.unfinished),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &[
                    "policy",
                    "avg JCT (h)",
                    "99% JCT (h)",
                    "makespan (h)",
                    "stat. eff.",
                    "unfinished"
                ],
                &rows
            )
        )?;
        if let Some(pollux) = self.outcomes.iter().find(|o| o.policy == Policy::Pollux) {
            writeln!(f, "\nSec 5.2.1 factors relative to Pollux:")?;
            for o in &self.outcomes {
                if o.policy == Policy::Pollux {
                    continue;
                }
                writeln!(
                    f,
                    "  vs {}: JCT -{:.0}%, throughput x{:.2}, goodput x{:.2}",
                    o.policy.label(),
                    (1.0 - pollux.avg_jct_hours / o.avg_jct_hours) * 100.0,
                    pollux.job_throughput / o.job_throughput.max(1e-9),
                    pollux.job_goodput / o.job_goodput.max(1e-9),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full Table-2 runs are exercised by the bench harness; unit tests
    // here cover the aggregation plumbing on tiny workloads.

    #[test]
    fn summarize_averages_across_traces() {
        use pollux_simulator::SimResult;
        let a = SimResult {
            records: vec![],
            ..Default::default()
        };
        let out = summarize(Policy::Pollux, &[a]);
        assert_eq!(out.policy, Policy::Pollux);
        assert_eq!(out.avg_jct_hours, 0.0);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<&str> = Policy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"Pollux"));
    }

    #[test]
    #[ignore = "several minutes of simulation; run via bench_table2"]
    fn full_table2_ordering() {
        let opts = Table2Options {
            traces: 1,
            ..Default::default()
        };
        let r = run(&opts);
        let get = |p: Policy| {
            r.outcomes
                .iter()
                .find(|o| o.policy == p)
                .unwrap()
                .avg_jct_hours
        };
        assert!(get(Policy::Pollux) < get(Policy::OptimusOracle));
        assert!(get(Policy::OptimusOracle) < get(Policy::Tiresias));
    }
}
