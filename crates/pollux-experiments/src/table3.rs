//! Table 3: impact of the job-weight decay λ (Eqn 16, Sec. 5.3.2).
//!
//! Runs Pollux with λ ∈ {0, 0.5, 1.0} and reports avg/50p/99p JCT
//! relative to λ = 0. The paper: larger λ strongly improves the median
//! JCT (small jobs finish first), mildly hurts the tail.

use crate::common::{mean, render_table};
use crate::sweep::sweep;
use crate::table2::{run_one, Policy, Table2Options};
use serde::{Deserialize, Serialize};

/// One λ row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Decay exponent λ.
    pub lambda: f64,
    /// Average JCT (hours).
    pub avg_jct_hours: f64,
    /// Median JCT (hours).
    pub p50_jct_hours: f64,
    /// 99th-percentile JCT (hours).
    pub p99_jct_hours: f64,
}

/// The full Table 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// Rows for λ = 0, 0.5, 1.0.
    pub rows: Vec<Table3Row>,
    /// Traces averaged per cell.
    pub traces: u64,
}

/// Runs the sweep.
pub fn run(traces: u64) -> Table3Result {
    let rows = [0.0, 0.5, 1.0]
        .iter()
        .map(|&lambda| {
            let mut avg = Vec::new();
            let mut p50 = Vec::new();
            let mut p99 = Vec::new();
            let cells = sweep(traces.max(1), |t| {
                let opts = Table2Options {
                    traces: 1,
                    lambda,
                    ..Default::default()
                };
                run_one(Policy::Pollux, t, &opts)
            });
            for r in cells {
                if let Some(v) = r.avg_jct() {
                    avg.push(v / 3600.0);
                }
                if let Some(v) = r.percentile_jct(50.0) {
                    p50.push(v / 3600.0);
                }
                if let Some(v) = r.percentile_jct(99.0) {
                    p99.push(v / 3600.0);
                }
            }
            Table3Row {
                lambda,
                avg_jct_hours: mean(&avg).unwrap_or(0.0),
                p50_jct_hours: mean(&p50).unwrap_or(0.0),
                p99_jct_hours: mean(&p99).unwrap_or(0.0),
            }
        })
        .collect();
    Table3Result {
        rows,
        traces: traces.max(1),
    }
}

impl std::fmt::Display for Table3Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 3: JCT vs job-weight decay λ, relative to λ = 0 ({} trace/cell)",
            self.traces
        )?;
        let base = &self.rows[0];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.lambda),
                    format!("{:.2}", r.avg_jct_hours / base.avg_jct_hours.max(1e-9)),
                    format!("{:.2}", r.p50_jct_hours / base.p50_jct_hours.max(1e-9)),
                    format!("{:.2}", r.p99_jct_hours / base.p99_jct_hours.max(1e-9)),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["lambda", "avg JCT", "50% JCT", "99% JCT"], &rows)
        )
    }
}
