//! The policy zoo: a name → constructor registry over every scheduler
//! in the repo, plus a config-driven head-to-head sweep.
//!
//! The Blox-style stage decomposition (DESIGN.md §10) makes new
//! schedulers one-stage cheap, so the zoo is how they earn their keep:
//! [`registry`] lists every policy by name, [`run`] plays any subset
//! of them against the same traces on the same cluster, and the
//! resulting [`ZooResult`] is one table of JCT / queue-percentile /
//! goodput columns per policy. Staged entries also report which
//! admission / placement / preemption stages they compose, so
//! one-stage-apart pairs (e.g. `tiresias` vs `gandiva-packing`) read
//! as controlled comparisons.
//!
//! The `policy-zoo` bin wraps this module in a CLI; per-policy
//! telemetry captures and Chrome traces hang off the same run via
//! [`run_with_recorder`].

use crate::common::{experiment_ga, experiment_sim, mean, render_table, testbed_cluster};
use crate::sweep::sweep;
use pollux_baselines::{
    fifo_backfill, gandiva_packing, optimus, or_etal, srsf, srtf, tiresias, TiresiasConfig,
};
use pollux_core::{run_trace_recorded, ConfigChoice, PolluxConfig, PolluxPolicy};
use pollux_simulator::{SchedulingPolicy, SimResult, StagedScheduler};
use pollux_telemetry::Recorder;
use pollux_workload::{JobSpec, TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};

/// A freshly-built zoo policy: either the Pollux GA scheduler on its
/// direct [`SchedulingPolicy`] implementation, or a staged
/// composition.
pub enum ZooPolicy {
    /// A policy with its own monolithic `schedule` (Pollux).
    Direct(Box<dyn SchedulingPolicy>),
    /// A Blox-style admission/placement/preemption composition.
    Staged(StagedScheduler),
}

impl ZooPolicy {
    /// Stage names of a staged composition (`None` for direct
    /// policies).
    pub fn stage_names(&self) -> Option<(&'static str, &'static str, &'static str)> {
        match self {
            ZooPolicy::Direct(_) => None,
            ZooPolicy::Staged(s) => Some(s.stage_names()),
        }
    }

    /// Erases the construction detail for the simulation driver.
    pub fn into_policy(self) -> Box<dyn SchedulingPolicy> {
        match self {
            ZooPolicy::Direct(p) => p,
            ZooPolicy::Staged(s) => Box::new(s),
        }
    }
}

/// One registry entry: a stable name plus a constructor.
#[derive(Debug)]
pub struct ZooEntry {
    /// Policy name as it appears in tables, configs, and telemetry
    /// (`sched/policy`).
    pub name: &'static str,
    /// One-line description for `policy-zoo --list` and the README.
    pub summary: &'static str,
    ctor: fn() -> ZooPolicy,
}

impl ZooEntry {
    /// Builds a fresh policy instance.
    pub fn build(&self) -> ZooPolicy {
        (self.ctor)()
    }
}

fn build_pollux() -> ZooPolicy {
    let mut cfg = PolluxConfig::default();
    cfg.sched.ga = experiment_ga();
    ZooPolicy::Direct(Box::new(
        PolluxPolicy::new(cfg).expect("default config is valid"),
    ))
}
fn build_tiresias() -> ZooPolicy {
    ZooPolicy::Staged(tiresias(TiresiasConfig::default()))
}
fn build_optimus() -> ZooPolicy {
    ZooPolicy::Staged(optimus(4))
}
fn build_or_etal() -> ZooPolicy {
    ZooPolicy::Staged(or_etal(Default::default()))
}
fn build_srtf() -> ZooPolicy {
    ZooPolicy::Staged(srtf())
}
fn build_srsf() -> ZooPolicy {
    ZooPolicy::Staged(srsf())
}
fn build_fifo() -> ZooPolicy {
    ZooPolicy::Staged(fifo_backfill())
}
fn build_gandiva() -> ZooPolicy {
    ZooPolicy::Staged(gandiva_packing())
}

static REGISTRY: &[ZooEntry] = &[
    ZooEntry {
        name: "pollux",
        summary: "co-adaptive goodput optimization (the paper's scheduler)",
        ctor: build_pollux,
    },
    ZooEntry {
        name: "tiresias",
        summary: "least-attained-service two-queue, consolidated placement",
        ctor: build_tiresias,
    },
    ZooEntry {
        name: "optimus+oracle",
        summary: "marginal-gain allocation with a remaining-work oracle",
        ctor: build_optimus,
    },
    ZooEntry {
        name: "or-etal",
        summary: "single-tenant throughput-based autoscaling (Or et al.)",
        ctor: build_or_etal,
    },
    ZooEntry {
        name: "srtf",
        summary: "shortest remaining time first, backfilled",
        ctor: build_srtf,
    },
    ZooEntry {
        name: "srsf",
        summary: "shortest remaining service (time x GPUs) first",
        ctor: build_srsf,
    },
    ZooEntry {
        name: "fifo+backfill",
        summary: "gang FIFO with backfill, never preempts",
        ctor: build_fifo,
    },
    ZooEntry {
        name: "gandiva-packing",
        summary: "LAS admission with Gandiva-style best-fit packing",
        ctor: build_gandiva,
    },
];

/// Every registered policy, in fixed table order.
pub fn registry() -> &'static [ZooEntry] {
    REGISTRY
}

/// Looks a policy up by name.
pub fn lookup(name: &str) -> Option<&'static ZooEntry> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// A `--policies` name that is not in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        write!(
            f,
            "unknown policy {:?}; registered: {}",
            self.0,
            known.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Options sizing the head-to-head run.
#[derive(Debug, Clone)]
pub struct ZooOptions {
    /// Policies to run (empty = the whole registry).
    pub policies: Vec<String>,
    /// Independently-seeded traces averaged per policy.
    pub traces: u64,
    /// Jobs per trace (`None` = the standard 160-job workload).
    pub jobs: Option<usize>,
    /// Workload scale (1.0 = the paper's 8-hour submission window).
    pub load: f64,
    /// Per-job configuration source.
    pub choice: ConfigChoice,
    /// Interference slowdown injected (0 = none).
    pub interference: f64,
}

impl Default for ZooOptions {
    fn default() -> Self {
        Self {
            policies: Vec::new(),
            traces: 2,
            jobs: None,
            load: 1.0,
            choice: ConfigChoice::Tuned,
            interference: 0.0,
        }
    }
}

/// One policy's row of the head-to-head table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooRow {
    /// Registry name.
    pub policy: String,
    /// `(admission, placement, preemption)` for staged policies.
    pub stages: Option<(String, String, String)>,
    /// Mean of per-trace average JCTs (hours).
    pub avg_jct_hours: f64,
    /// Mean median JCT (hours).
    pub p50_jct_hours: f64,
    /// Mean 95th-percentile JCT (hours).
    pub p95_jct_hours: f64,
    /// Mean 99th-percentile JCT (hours).
    pub p99_jct_hours: f64,
    /// Mean queueing delay (hours).
    pub avg_wait_hours: f64,
    /// Mean 99th-percentile queueing delay (hours).
    pub p99_wait_hours: f64,
    /// Mean makespan (hours).
    pub makespan_hours: f64,
    /// Mean time-averaged cluster statistical efficiency.
    pub avg_efficiency: f64,
    /// Mean per-job lifetime goodput (useful examples/s).
    pub job_goodput: f64,
    /// Jobs unfinished at the horizon, summed over traces.
    pub unfinished: usize,
}

/// The full head-to-head result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooResult {
    /// One row per policy, in request (or registry) order.
    pub rows: Vec<ZooRow>,
    /// Traces averaged per policy.
    pub traces: usize,
    /// Jobs per trace.
    pub jobs: usize,
}

impl ZooResult {
    /// Renders the result as *real* JSON (the vendored `serde_json`
    /// stub emits `Debug` text, so machine-readable dumps are
    /// hand-rolled here, like the telemetry JSONL codec and the
    /// Chrome exporter). The row schema is pinned by the CI zoo
    /// smoke, which parses this output with Python's `json`.
    pub fn to_json(&self) -> String {
        use pollux_telemetry::json::{write_f64, write_str};
        let mut out = String::with_capacity(256 * self.rows.len() + 64);
        out.push_str("{\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"policy\":");
            write_str(&mut out, &row.policy);
            out.push_str(",\"stages\":");
            match &row.stages {
                Some((adm, plc, pre)) => {
                    out.push('[');
                    write_str(&mut out, adm);
                    out.push(',');
                    write_str(&mut out, plc);
                    out.push(',');
                    write_str(&mut out, pre);
                    out.push(']');
                }
                None => out.push_str("null"),
            }
            let nums: &[(&str, f64)] = &[
                ("avg_jct_hours", row.avg_jct_hours),
                ("p50_jct_hours", row.p50_jct_hours),
                ("p95_jct_hours", row.p95_jct_hours),
                ("p99_jct_hours", row.p99_jct_hours),
                ("avg_wait_hours", row.avg_wait_hours),
                ("p99_wait_hours", row.p99_wait_hours),
                ("makespan_hours", row.makespan_hours),
                ("avg_efficiency", row.avg_efficiency),
                ("job_goodput", row.job_goodput),
            ];
            for (key, v) in nums {
                out.push(',');
                write_str(&mut out, key);
                out.push(':');
                write_f64(&mut out, *v);
            }
            out.push_str(&format!(",\"unfinished\":{}}}", row.unfinished));
        }
        out.push_str(&format!(
            "],\"traces\":{},\"jobs\":{}}}\n",
            self.traces, self.jobs
        ));
        out
    }
}

/// The head-to-head table's column headers. Pinned by the CI smoke
/// test so downstream parsers can rely on the schema.
pub fn table_headers() -> &'static [&'static str] {
    &[
        "policy",
        "avg JCT (h)",
        "p50/p95/p99 JCT (h)",
        "avg wait (h)",
        "p99 wait (h)",
        "makespan (h)",
        "stat. eff.",
        "goodput (ex/s)",
        "unfinished",
    ]
}

/// Generates the `i`-th zoo trace (the standard evaluation trace,
/// optionally resized).
pub fn zoo_trace(i: u64, opts: &ZooOptions) -> Vec<JobSpec> {
    let mut cfg = TraceConfig {
        seed: 1000 + i,
        load_multiplier: opts.load,
        ..Default::default()
    };
    if let Some(jobs) = opts.jobs {
        cfg.num_jobs = jobs;
    }
    TraceGenerator::new(cfg)
        .expect("static config is valid")
        .generate()
}

/// Runs one `(policy, trace index)` cell.
fn run_cell(entry: &ZooEntry, i: u64, opts: &ZooOptions, recorder: Recorder) -> SimResult {
    let trace = zoo_trace(i, opts);
    let mut sim = experiment_sim(i);
    sim.interference_slowdown = opts.interference;
    run_trace_recorded(
        entry.build().into_policy(),
        &trace,
        opts.choice,
        testbed_cluster(),
        sim,
        recorder,
    )
    .expect("valid simulation inputs")
}

fn summarize(entry: &ZooEntry, results: &[SimResult]) -> ZooRow {
    let collect = |f: &dyn Fn(&SimResult) -> Option<f64>| -> f64 {
        let vals: Vec<f64> = results.iter().filter_map(f).collect();
        mean(&vals).unwrap_or(0.0)
    };
    let h = 1.0 / 3600.0;
    let stages = entry
        .build()
        .stage_names()
        .map(|(a, p, y)| (a.to_string(), p.to_string(), y.to_string()));
    ZooRow {
        policy: entry.name.to_string(),
        stages,
        avg_jct_hours: collect(&|r| r.avg_jct().map(|v| v * h)),
        p50_jct_hours: collect(&|r| r.percentile_jct(50.0).map(|v| v * h)),
        p95_jct_hours: collect(&|r| r.percentile_jct(95.0).map(|v| v * h)),
        p99_jct_hours: collect(&|r| r.percentile_jct(99.0).map(|v| v * h)),
        avg_wait_hours: collect(&|r| r.summary().avg_wait.map(|v| v * h)),
        p99_wait_hours: collect(&|r| r.summary().p99_wait.map(|v| v * h)),
        makespan_hours: collect(&|r| Some(r.makespan() * h)),
        avg_efficiency: collect(&|r| r.avg_cluster_efficiency()),
        job_goodput: collect(&|r| r.mean_job_goodput()),
        unfinished: results.iter().map(|r| r.unfinished()).sum(),
    }
}

/// Resolves `opts.policies` against the registry (empty = all).
///
/// # Errors
///
/// [`UnknownPolicy`] naming the first unrecognized entry.
pub fn resolve(opts: &ZooOptions) -> Result<Vec<&'static ZooEntry>, UnknownPolicy> {
    if opts.policies.is_empty() {
        return Ok(registry().iter().collect());
    }
    opts.policies
        .iter()
        .map(|n| lookup(n).ok_or_else(|| UnknownPolicy(n.clone())))
        .collect()
}

/// Runs the head-to-head sweep with the process-wide capture recorder
/// (`POLLUX_TELEMETRY_OUT`).
///
/// # Errors
///
/// [`UnknownPolicy`] when `opts.policies` names an unregistered
/// policy.
pub fn run(opts: &ZooOptions) -> Result<ZooResult, UnknownPolicy> {
    run_with_recorder(opts, |_| crate::common::capture_recorder())
}

/// [`run`] with a caller-supplied recorder per policy, so each policy's
/// telemetry (and Chrome trace) can land in its own capture file.
/// Per-trace cells run on the [`sweep`] worker pool; cells are
/// independent, so the table is identical to a serial loop.
///
/// # Errors
///
/// [`UnknownPolicy`] when `opts.policies` names an unregistered
/// policy.
pub fn run_with_recorder(
    opts: &ZooOptions,
    recorder_for: impl Fn(&'static str) -> Recorder,
) -> Result<ZooResult, UnknownPolicy> {
    let entries = resolve(opts)?;
    let traces = opts.traces.max(1);
    let rows = entries
        .iter()
        .map(|entry| {
            let recorder = recorder_for(entry.name);
            let results: Vec<SimResult> =
                sweep(traces, |i| run_cell(entry, i, opts, recorder.clone()));
            recorder.flush();
            summarize(entry, &results)
        })
        .collect();
    Ok(ZooResult {
        rows,
        traces: traces as usize,
        jobs: zoo_trace(0, opts).len(),
    })
}

impl std::fmt::Display for ZooResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Policy zoo: {} policies x {} trace(s), {} jobs on 16x4 GPUs",
            self.rows.len(),
            self.traces,
            self.jobs
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.2}", r.avg_jct_hours),
                    format!(
                        "{:.2}/{:.1}/{:.1}",
                        r.p50_jct_hours, r.p95_jct_hours, r.p99_jct_hours
                    ),
                    format!("{:.2}", r.avg_wait_hours),
                    format!("{:.1}", r.p99_wait_hours),
                    format!("{:.1}", r.makespan_hours),
                    format!("{:.1}%", r.avg_efficiency * 100.0),
                    format!("{:.1}", r.job_goodput),
                    format!("{}", r.unfinished),
                ]
            })
            .collect();
        write!(f, "{}", render_table(table_headers(), &rows))?;
        writeln!(f, "\nstage composition (staged policies):")?;
        let stage_rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| match &r.stages {
                Some((a, p, y)) => vec![r.policy.clone(), a.clone(), p.clone(), y.clone()],
                None => vec![r.policy.clone(), "-".into(), "-".into(), "-".into()],
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["policy", "admission", "placement", "preemption"],
                &stage_rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_advertised_zoo() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        assert!(names.len() >= 7, "zoo shrank: {names:?}");
        for expect in [
            "pollux",
            "tiresias",
            "optimus+oracle",
            "or-etal",
            "srtf",
            "srsf",
            "fifo+backfill",
            "gandiva-packing",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        // Names are unique (they key telemetry and output files).
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn staged_entries_report_their_stages() {
        let s = lookup("gandiva-packing").unwrap().build();
        assert_eq!(
            s.stage_names(),
            Some(("las-two-queue", "best-fit-packing", "preempt-all"))
        );
        assert_eq!(lookup("pollux").unwrap().build().stage_names(), None);
        // tiresias and gandiva-packing differ in exactly one stage.
        let t = lookup("tiresias").unwrap().build().stage_names().unwrap();
        let g = lookup("gandiva-packing")
            .unwrap()
            .build()
            .stage_names()
            .unwrap();
        assert_eq!(t.0, g.0);
        assert_ne!(t.1, g.1);
        assert_eq!(t.2, g.2);
    }

    #[test]
    fn unknown_policy_is_a_typed_error() {
        let opts = ZooOptions {
            policies: vec!["tiresias".into(), "nope".into()],
            ..Default::default()
        };
        let err = resolve(&opts).unwrap_err();
        assert_eq!(err, UnknownPolicy("nope".into()));
        assert!(err.to_string().contains("registered"));
    }

    #[test]
    fn table_schema_is_stable() {
        // CI and downstream parsers pin this schema; change it
        // deliberately (update EXPERIMENTS.md and the README) or not
        // at all.
        assert_eq!(
            table_headers(),
            &[
                "policy",
                "avg JCT (h)",
                "p50/p95/p99 JCT (h)",
                "avg wait (h)",
                "p99 wait (h)",
                "makespan (h)",
                "stat. eff.",
                "goodput (ex/s)",
                "unfinished",
            ]
        );
    }

    #[test]
    fn to_json_parses_back_with_the_pinned_row_schema() {
        // The CI zoo smoke feeds `--json` output to Python's `json`
        // module; the in-repo parser must accept it too, with every
        // pinned key present.
        let result = ZooResult {
            rows: vec![ZooRow {
                policy: "optimus+oracle".into(),
                stages: Some((
                    "marginal-gain".into(),
                    "consolidated-largest-first".into(),
                    "preempt-all".into(),
                )),
                avg_jct_hours: 0.5,
                p50_jct_hours: 0.25,
                p95_jct_hours: 1.5,
                p99_jct_hours: 2.0,
                avg_wait_hours: 0.1,
                p99_wait_hours: 0.4,
                makespan_hours: 6.0,
                avg_efficiency: 0.9,
                job_goodput: 1234.5,
                unfinished: 3,
            }],
            traces: 2,
            jobs: 64,
        };
        let parsed = pollux_telemetry::json::parse(&result.to_json()).expect("valid JSON");
        let rows = parsed.get("rows").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(
            row.get("policy").and_then(|v| v.as_str()),
            Some("optimus+oracle")
        );
        let stages = row.get("stages").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(stages[0].as_str(), Some("marginal-gain"));
        for key in [
            "avg_jct_hours",
            "p50_jct_hours",
            "p95_jct_hours",
            "p99_jct_hours",
            "avg_wait_hours",
            "p99_wait_hours",
            "makespan_hours",
            "avg_efficiency",
            "job_goodput",
            "unfinished",
        ] {
            assert!(
                row.get(key).and_then(|v| v.as_f64()).is_some(),
                "missing {key}"
            );
        }
        assert_eq!(parsed.get("traces").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(parsed.get("jobs").and_then(|v| v.as_u64()), Some(64));
    }
}
