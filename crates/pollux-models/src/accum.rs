//! Gradient accumulation: batch sizes beyond GPU memory.
//!
//! The deployed Pollux system (AdaptDL) extends the goodput search
//! with *accumulation steps* `s`: each replica computes gradients over
//! `s` micro-batches before synchronizing once, so the effective total
//! batch size is `m = K · per_gpu · s` even when `m / K` no longer
//! fits in GPU memory. The iteration-time model becomes
//!
//! ```text
//! T_grad^micro = α_grad + β_grad · m / (s · K)
//! T_iter(a, m, s) = (s − 1) · T_grad^micro
//!                 + (T_grad^micro^γ + T_sync^γ)^(1/γ)
//! ```
//!
//! — only the final micro-batch overlaps with synchronization; the
//! first `s − 1` are pure compute. Statistical efficiency is unchanged
//! (it depends on `m` only), so accumulation trades per-iteration
//! overhead (`s · α_grad`) for access to large, late-training batch
//! sizes on memory-constrained models.

use crate::goodput::GoodputModel;
use crate::throughput::{gamma_norm, PlacementShape};
use pollux_opt::golden_section_max_int;
use serde::{Deserialize, Serialize};

/// Goodput model extended with gradient accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccumulatedGoodput {
    /// The base (single-step) goodput model.
    pub base: GoodputModel,
    /// Largest accumulation step count to consider (AdaptDL caps this
    /// at a small constant; 8 is typical).
    pub max_accum_steps: u32,
}

impl AccumulatedGoodput {
    /// Wraps a goodput model. Returns `None` when `max_accum_steps`
    /// is 0.
    pub fn new(base: GoodputModel, max_accum_steps: u32) -> Option<Self> {
        if max_accum_steps == 0 {
            None
        } else {
            Some(Self {
                base,
                max_accum_steps,
            })
        }
    }

    /// The feasible total-batch interval under `shape` with `s`
    /// accumulation steps: memory now caps the *micro* batch.
    pub fn range(&self, shape: PlacementShape, steps: u32) -> Option<(u64, u64)> {
        if steps == 0 || steps > self.max_accum_steps {
            return None;
        }
        let limits = self.base.limits;
        let cap = limits
            .max_per_gpu
            .saturating_mul(shape.gpus as u64)
            .saturating_mul(steps as u64);
        let hi = cap.min(limits.max_global);
        if hi >= limits.min {
            Some((limits.min, hi))
        } else {
            None
        }
    }

    /// `T_iter` with accumulation.
    pub fn t_iter(&self, shape: PlacementShape, m: u64, steps: u32) -> f64 {
        let s = steps.max(1) as f64;
        let p = &self.base.throughput;
        let micro_grad = p.alpha_grad + p.beta_grad * m as f64 / (s * shape.gpus as f64);
        let sync = p.t_sync(shape);
        (s - 1.0) * micro_grad + gamma_norm(micro_grad, sync, p.gamma)
    }

    /// `GOODPUT(a, m, s)`; 0 when `(m, s)` is infeasible under `shape`.
    pub fn goodput(&self, shape: PlacementShape, m: u64, steps: u32) -> f64 {
        match self.range(shape, steps) {
            Some((lo, hi)) if m >= lo && m <= hi => {
                let t = self.t_iter(shape, m, steps);
                if t > 0.0 {
                    (m as f64 / t) * self.base.efficiency.efficiency(m)
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }

    /// The most efficient `(m*, s*)` under `shape` and the goodput
    /// achieved: golden-section over `m` inside each step count.
    ///
    /// Returns `None` when no feasible configuration exists.
    pub fn optimal(&self, shape: PlacementShape) -> Option<(u64, u32, f64)> {
        let mut best: Option<(u64, u32, f64)> = None;
        for steps in 1..=self.max_accum_steps {
            let Some((lo, hi)) = self.range(shape, steps) else {
                continue;
            };
            if let Ok((m, g)) = golden_section_max_int(|m| self.goodput(shape, m, steps), lo, hi) {
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((m, steps, g));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::EfficiencyModel;
    use crate::goodput::BatchSizeLimits;
    use crate::throughput::ThroughputParams;

    /// A memory-constrained, sync-heavy model (DeepSpeech2-like):
    /// per-GPU cap 64, so large batches require accumulation.
    fn constrained_model(phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 1.0e-2, 0.10, 0.005, 0.30, 0.010, 1.6).unwrap();
        let eff = EfficiencyModel::from_noise_scale(32, phi).unwrap();
        let limits = BatchSizeLimits::new(32, 4096, 64).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(AccumulatedGoodput::new(constrained_model(100.0), 0).is_none());
        assert!(AccumulatedGoodput::new(constrained_model(100.0), 8).is_some());
    }

    #[test]
    fn single_step_matches_base_model() {
        let base = constrained_model(500.0);
        let acc = AccumulatedGoodput::new(base, 8).unwrap();
        for (g, n) in [(1u32, 1u32), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            assert_eq!(acc.range(shape, 1), base.limits.range(shape));
            for m in [32u64, 64, 128, 256] {
                let a = acc.goodput(shape, m, 1);
                let b = base.goodput(shape, m);
                assert!((a - b).abs() < 1e-9, "({g},{n},{m}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn accumulation_extends_the_feasible_range() {
        let acc = AccumulatedGoodput::new(constrained_model(500.0), 8).unwrap();
        let shape = PlacementShape::new(4, 1).unwrap();
        let (_, hi1) = acc.range(shape, 1).unwrap();
        let (_, hi4) = acc.range(shape, 4).unwrap();
        assert_eq!(hi1, 256); // 4 GPUs x 64.
        assert_eq!(hi4, 1024); // 4 GPUs x 64 x 4 steps.
    }

    #[test]
    fn accumulation_wins_when_sync_dominates() {
        // Accumulation pays when synchronization is expensive relative
        // to the per-micro-batch overhead (α_grad): each extra step
        // amortizes one T_sync at the cost of one α_grad. Cross-node
        // placement, cheap α_grad, late training (huge φ).
        let tp = ThroughputParams::new(0.01, 1.0e-2, 0.10, 0.005, 0.50, 0.010, 1.6).unwrap();
        let eff = EfficiencyModel::from_noise_scale(32, 50_000.0).unwrap();
        let limits = BatchSizeLimits::new(32, 8192, 64).unwrap();
        let base = GoodputModel::new(tp, eff, limits).unwrap();
        let acc = AccumulatedGoodput::new(base, 8).unwrap();
        let shape = PlacementShape::new(8, 2).unwrap();
        let (m, s, g) = acc.optimal(shape).unwrap();
        assert!(s > 1, "expected accumulation, got s = {s}");
        assert!(m > 512, "m = {m} does not exceed the no-accum cap");
        // Strictly better than the best single-step configuration.
        let (_, hi1) = acc.range(shape, 1).unwrap();
        let mut best1 = 0.0f64;
        let mut mm = 32;
        while mm <= hi1 {
            best1 = best1.max(acc.goodput(shape, mm, 1));
            mm += 8;
        }
        assert!(g > best1 * 1.1, "accum {g} vs single-step {best1}");
    }

    #[test]
    fn accumulation_loses_for_low_noise_scale() {
        // Early in training small batches are optimal; paying s·α_grad
        // for a bigger batch is a pure loss, so s* = 1.
        let acc = AccumulatedGoodput::new(constrained_model(20.0), 8).unwrap();
        let shape = PlacementShape::new(4, 1).unwrap();
        let (_, s, _) = acc.optimal(shape).unwrap();
        assert_eq!(s, 1);
    }

    #[test]
    fn t_iter_grows_with_steps_at_fixed_batch() {
        // At fixed m, more steps = more fixed per-micro-batch overhead.
        let acc = AccumulatedGoodput::new(constrained_model(500.0), 8).unwrap();
        let shape = PlacementShape::new(4, 1).unwrap();
        let t1 = acc.t_iter(shape, 256, 1);
        let t2 = acc.t_iter(shape, 256, 2);
        let t4 = acc.t_iter(shape, 256, 4);
        assert!(t1 < t2 && t2 < t4, "{t1} {t2} {t4}");
    }

    #[test]
    fn infeasible_configurations_return_zero() {
        let acc = AccumulatedGoodput::new(constrained_model(500.0), 4).unwrap();
        let shape = PlacementShape::new(1, 1).unwrap();
        // Above the s=2 cap of 128.
        assert_eq!(acc.goodput(shape, 256, 2), 0.0);
        // Steps beyond the configured maximum.
        assert_eq!(acc.goodput(shape, 64, 5), 0.0);
        assert_eq!(acc.range(shape, 0), None);
    }
}
