//! AdaScale SGD learning-rate scaling (Sec. 2.2, Eqn 5).
//!
//! When a job trained at `(m0, η0)` runs with a larger batch size
//! `m > m0`, AdaScale scales the learning rate at iteration `t` by the
//! gain
//!
//! ```text
//! r_t = (φ_t / m0 + 1) / (φ_t / m + 1)   ∈ [1, m / m0]
//! ```
//!
//! One iteration at batch size `m` then makes the same progress as
//! `r_t` iterations at `m0`; summing `r_t` yields the *scale-invariant
//! iteration count* that Pollux uses for progress accounting (the
//! "statistical epochs" of Fig 2a).

use crate::efficiency::EfficiencyModel;
use serde::{Deserialize, Serialize};

/// AdaScale state for one training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaScale {
    /// User-submitted initial learning rate η0.
    eta0: f64,
    /// User-submitted initial batch size m0.
    m0: u64,
    /// Accumulated scale-invariant iterations Σ r_t.
    scale_invariant_iters: f64,
    /// Accumulated real iterations.
    real_iters: u64,
}

impl AdaScale {
    /// Creates AdaScale state. Returns `None` when `η0 ≤ 0`, non-finite,
    /// or `m0 == 0`.
    pub fn new(eta0: f64, m0: u64) -> Option<Self> {
        if eta0 > 0.0 && eta0.is_finite() && m0 >= 1 {
            Some(Self {
                eta0,
                m0,
                scale_invariant_iters: 0.0,
                real_iters: 0,
            })
        } else {
            None
        }
    }

    /// Initial learning rate η0.
    pub fn eta0(&self) -> f64 {
        self.eta0
    }

    /// Initial batch size m0.
    pub fn m0(&self) -> u64 {
        self.m0
    }

    /// The gain `r_t` for batch size `m` given the current efficiency
    /// snapshot (which carries φ_t).
    ///
    /// `eff` must share this job's `m0`; debug builds assert it.
    pub fn gain(&self, eff: &EfficiencyModel, m: u64) -> f64 {
        debug_assert_eq!(eff.m0(), self.m0, "efficiency model belongs to another job");
        eff.gain(m)
    }

    /// The scaled learning rate `η = r_t · η0` for batch size `m`.
    ///
    /// At `m = m0` the gain is exactly 1 and the original `η0` is
    /// recovered; the gain is capped by the linear-scaling value
    /// `m / m0`.
    pub fn learning_rate(&self, eff: &EfficiencyModel, m: u64) -> f64 {
        self.eta0 * self.gain(eff, m)
    }

    /// Records one completed iteration at batch size `m`, accumulating
    /// `r_t` scale-invariant iterations.
    pub fn step(&mut self, eff: &EfficiencyModel, m: u64) {
        self.scale_invariant_iters += self.gain(eff, m);
        self.real_iters += 1;
    }

    /// Accumulated scale-invariant iterations Σ r_t (progress measured
    /// in units of m0-iterations).
    pub fn scale_invariant_iters(&self) -> f64 {
        self.scale_invariant_iters
    }

    /// Accumulated real iterations.
    pub fn real_iters(&self) -> u64 {
        self.real_iters
    }

    /// Progress in units of *examples at m0 efficiency*: Σ r_t · m0.
    ///
    /// This is the quantity the simulator accumulates as
    /// `GOODPUT · Δt`.
    pub fn effective_examples(&self) -> f64 {
        self.scale_invariant_iters * self.m0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn eff(phi: f64) -> EfficiencyModel {
        EfficiencyModel::from_noise_scale(100, phi).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(AdaScale::new(0.1, 100).is_some());
        assert!(AdaScale::new(0.0, 100).is_none());
        assert!(AdaScale::new(-0.1, 100).is_none());
        assert!(AdaScale::new(f64::NAN, 100).is_none());
        assert!(AdaScale::new(0.1, 0).is_none());
    }

    #[test]
    fn lr_at_m0_is_eta0() {
        let a = AdaScale::new(0.05, 100).unwrap();
        let e = eff(1234.0);
        assert!((a.learning_rate(&e, 100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn lr_bounded_by_linear_scaling() {
        let a = AdaScale::new(0.05, 100).unwrap();
        let e = eff(500.0);
        for m in [100u64, 200, 800, 6400] {
            let lr = a.learning_rate(&e, m);
            assert!(lr >= 0.05 - 1e-12);
            let linear = 0.05 * m as f64 / 100.0;
            assert!(lr <= linear + 1e-12, "m = {m}: lr {lr} > linear {linear}");
        }
    }

    #[test]
    fn high_noise_scale_approaches_linear_scaling() {
        // With huge φ, AdaScale reduces to the linear scaling rule.
        let a = AdaScale::new(0.1, 100).unwrap();
        let e = eff(1e12);
        let lr = a.learning_rate(&e, 800);
        assert!((lr - 0.8).abs() < 1e-6, "lr = {lr}");
    }

    #[test]
    fn low_noise_scale_keeps_lr_flat() {
        // With φ → 0 the gain stays ~1: larger batches don't help, and
        // cranking the LR would hurt.
        let a = AdaScale::new(0.1, 100).unwrap();
        let e = eff(1e-9);
        let lr = a.learning_rate(&e, 6400);
        assert!((lr - 0.1).abs() < 1e-6, "lr = {lr}");
    }

    #[test]
    fn step_accumulates_gain() {
        let mut a = AdaScale::new(0.1, 100).unwrap();
        let e = eff(100.0);
        // gain(200) = (1 + 1)/(0.5 + 1) = 4/3.
        a.step(&e, 200);
        a.step(&e, 200);
        assert_eq!(a.real_iters(), 2);
        assert!((a.scale_invariant_iters() - 8.0 / 3.0).abs() < 1e-9);
        assert!((a.effective_examples() - 800.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn step_at_m0_counts_one() {
        let mut a = AdaScale::new(0.1, 100).unwrap();
        let e = eff(777.0);
        for _ in 0..10 {
            a.step(&e, 100);
        }
        assert!((a.scale_invariant_iters() - 10.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn gain_equivalence_with_efficiency(
            phi in 0.0f64..1e6,
            m in 100u64..1_000_000,
        ) {
            // r_t · m0 = EFFICIENCY(m) · m  (both equal progress/iter).
            let a = AdaScale::new(0.1, 100).unwrap();
            let e = eff(phi);
            let lhs = a.gain(&e, m) * 100.0;
            let rhs = e.efficiency(m) * m as f64;
            prop_assert!((lhs - rhs).abs() / rhs.max(1.0) < 1e-9);
        }
    }
}
