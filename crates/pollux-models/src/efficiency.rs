//! Statistical efficiency and the gradient noise scale (Sec. 3.1).
//!
//! The gradient noise scale at iteration `t` is
//!
//! ```text
//! φ_t = m0 · σ_t² / µ_t²
//! ```
//!
//! where `σ_t² = Var[ĝ(t)]` is the gradient variance and
//! `µ_t² = |E[ĝ(t)]|²` the squared gradient norm, both measured at the
//! initial batch size `m0`. Statistical efficiency at batch size
//! `m ≥ m0` is then (Eqn 7):
//!
//! ```text
//! EFFICIENCY_t(m) = (φ_t + m0) / (φ_t + m)  ∈ (0, 1]
//! ```
//!
//! Training at batch size `m` must process `1 / EFFICIENCY_t(m)` times
//! as many examples to make the same progress as at `m0`.

use serde::{Deserialize, Serialize};

/// Raw gradient statistics measured at the initial batch size `m0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientStats {
    /// Gradient variance `σ_t² = Var[ĝ(t)]` (trace of the covariance).
    pub variance: f64,
    /// Squared gradient norm `µ_t² = |E[ĝ(t)]|²`.
    pub sqr_norm: f64,
}

impl GradientStats {
    /// Creates gradient statistics, validating non-negativity.
    ///
    /// Returns `None` when either statistic is negative or non-finite.
    /// A zero `sqr_norm` is accepted (the noise scale becomes infinite,
    /// meaning arbitrarily large batches stay efficient).
    pub fn new(variance: f64, sqr_norm: f64) -> Option<Self> {
        if variance >= 0.0 && sqr_norm >= 0.0 && variance.is_finite() && sqr_norm.is_finite() {
            Some(Self { variance, sqr_norm })
        } else {
            None
        }
    }

    /// The gradient noise scale `φ_t = m0 σ² / µ²` in units of examples.
    pub fn noise_scale(&self, m0: u64) -> f64 {
        if self.sqr_norm <= 0.0 {
            f64::INFINITY
        } else {
            m0 as f64 * self.variance / self.sqr_norm
        }
    }
}

/// The statistical-efficiency model `EFFICIENCY_t(m)` at one instant.
///
/// Snapshots are cheap to copy; `PolluxAgent` refreshes the noise scale
/// every reporting interval and rebuilds the model.
///
/// # Examples
///
/// ```
/// use pollux_models::EfficiencyModel;
///
/// // A job with initial batch size 128 and noise scale φ = 1000.
/// let eff = EfficiencyModel::from_noise_scale(128, 1000.0).unwrap();
/// assert_eq!(eff.efficiency(128), 1.0);            // m0 is the reference
/// assert!(eff.efficiency(1024) > 0.5);              // 8x batch stays useful
/// assert!(eff.efficiency(100_000) < 0.02);          // huge batches waste data
/// // AdaScale gain: one step at m=1024 ≈ 4.46 steps at m0.
/// assert!((eff.gain(1024) - 4.458).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyModel {
    /// Initial (user-submitted) batch size `m0`.
    m0: u64,
    /// Gradient noise scale `φ_t` in units of examples, `≥ 0`.
    phi: f64,
}

impl EfficiencyModel {
    /// Builds the model from the noise scale `φ_t` directly.
    ///
    /// Returns `None` when `m0 == 0`, or `φ_t` is negative or NaN
    /// (`+∞` is allowed and means "perfectly scalable right now").
    pub fn from_noise_scale(m0: u64, phi: f64) -> Option<Self> {
        if m0 == 0 || phi.is_nan() || phi < 0.0 {
            None
        } else {
            Some(Self { m0, phi })
        }
    }

    /// Builds the model from raw gradient statistics measured at `m0`.
    pub fn from_gradient_stats(m0: u64, stats: GradientStats) -> Option<Self> {
        Self::from_noise_scale(m0, stats.noise_scale(m0))
    }

    /// The initial batch size `m0`.
    pub fn m0(&self) -> u64 {
        self.m0
    }

    /// The gradient noise scale `φ_t` (examples).
    pub fn noise_scale(&self) -> f64 {
        self.phi
    }

    /// `EFFICIENCY_t(m) = (φ_t + m0) / (φ_t + m)` for `m ≥ m0`.
    ///
    /// Pollux only considers batch sizes at or above the user's initial
    /// `m0`; smaller arguments are clamped to `m0`, which yields an
    /// efficiency of exactly 1 (the paper's normalization point).
    pub fn efficiency(&self, m: u64) -> f64 {
        let m = m.max(self.m0) as f64;
        if self.phi.is_infinite() {
            return 1.0;
        }
        (self.phi + self.m0 as f64) / (self.phi + m)
    }

    /// The AdaScale gain `r_t(m) = (φ_t/m0 + 1) / (φ_t/m + 1)` (Eqn 5).
    ///
    /// One iteration at batch size `m` makes as much progress as `r_t`
    /// iterations at `m0`. Equivalently
    /// `EFFICIENCY_t(m) = r_t(m) · m0 / m` (Appendix A).
    pub fn gain(&self, m: u64) -> f64 {
        let m = m.max(self.m0) as f64;
        if self.phi.is_infinite() {
            // lim φ→∞ of (φ/m0 + 1)/(φ/m + 1) = m / m0.
            return m / self.m0 as f64;
        }
        (self.phi / self.m0 as f64 + 1.0) / (self.phi / m + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gradient_stats_validation() {
        assert!(GradientStats::new(1.0, 1.0).is_some());
        assert!(GradientStats::new(0.0, 0.0).is_some());
        assert!(GradientStats::new(-1.0, 1.0).is_none());
        assert!(GradientStats::new(1.0, -1.0).is_none());
        assert!(GradientStats::new(f64::NAN, 1.0).is_none());
        assert!(GradientStats::new(f64::INFINITY, 1.0).is_none());
    }

    #[test]
    fn noise_scale_formula() {
        let s = GradientStats::new(2.0, 4.0).unwrap();
        // φ = m0 σ²/µ² = 100 · 2 / 4 = 50.
        assert!((s.noise_scale(100) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_norm_means_infinite_noise_scale() {
        let s = GradientStats::new(1.0, 0.0).unwrap();
        assert!(s.noise_scale(32).is_infinite());
        let e = EfficiencyModel::from_gradient_stats(32, s).unwrap();
        assert_eq!(e.efficiency(1 << 20), 1.0);
    }

    #[test]
    fn efficiency_is_one_at_m0() {
        let e = EfficiencyModel::from_noise_scale(128, 500.0).unwrap();
        assert!((e.efficiency(128) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_clamps_below_m0() {
        let e = EfficiencyModel::from_noise_scale(128, 500.0).unwrap();
        assert_eq!(e.efficiency(1), e.efficiency(128));
    }

    #[test]
    fn efficiency_matches_paper_formula() {
        // φ = 1000, m0 = 100, m = 400:
        // eff = (1000 + 100) / (1000 + 400) = 1100 / 1400.
        let e = EfficiencyModel::from_noise_scale(100, 1000.0).unwrap();
        assert!((e.efficiency(400) - 1100.0 / 1400.0).abs() < 1e-12);
    }

    #[test]
    fn gain_times_m0_over_m_equals_efficiency() {
        // The Appendix A identity: EFFICIENCY = r_t · m0 / m.
        let e = EfficiencyModel::from_noise_scale(64, 321.5).unwrap();
        for m in [64u64, 100, 256, 1024, 50_000] {
            let lhs = e.efficiency(m);
            let rhs = e.gain(m) * 64.0 / m as f64;
            assert!((lhs - rhs).abs() < 1e-12, "m = {m}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn high_noise_scale_tolerates_large_batches() {
        let low = EfficiencyModel::from_noise_scale(100, 100.0).unwrap();
        let high = EfficiencyModel::from_noise_scale(100, 10_000.0).unwrap();
        // At 8x the base batch size, the high-φ model retains much more
        // efficiency — the core premise behind Pollux's time-varying
        // batch size adaptation (Sec. 2.2).
        assert!(high.efficiency(800) > 0.9);
        assert!(low.efficiency(800) < 0.6);
    }

    #[test]
    fn gain_is_bounded_by_linear_speedup() {
        let e = EfficiencyModel::from_noise_scale(100, 1234.0).unwrap();
        for m in [100u64, 200, 400, 1600, 12_800] {
            let g = e.gain(m);
            assert!(g >= 1.0 - 1e-12);
            assert!(g <= m as f64 / 100.0 + 1e-12);
        }
    }

    #[test]
    fn infinite_phi_gain_is_linear() {
        let e = EfficiencyModel::from_noise_scale(100, f64::INFINITY).unwrap();
        assert!((e.gain(800) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_models_rejected() {
        assert!(EfficiencyModel::from_noise_scale(0, 1.0).is_none());
        assert!(EfficiencyModel::from_noise_scale(10, -1.0).is_none());
        assert!(EfficiencyModel::from_noise_scale(10, f64::NAN).is_none());
        assert!(EfficiencyModel::from_noise_scale(10, f64::INFINITY).is_some());
    }

    proptest! {
        #[test]
        fn efficiency_in_unit_interval_and_monotone(
            m0 in 1u64..10_000,
            phi in 0.0f64..1e9,
            m1 in 1u64..1_000_000,
            m2 in 1u64..1_000_000,
        ) {
            let e = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
            let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
            let e_lo = e.efficiency(lo);
            let e_hi = e.efficiency(hi);
            prop_assert!(e_lo > 0.0 && e_lo <= 1.0 + 1e-12);
            prop_assert!(e_hi > 0.0 && e_hi <= 1.0 + 1e-12);
            // Efficiency is non-increasing in m.
            prop_assert!(e_hi <= e_lo + 1e-12);
        }

        #[test]
        fn gain_is_monotone_in_m(
            m0 in 1u64..10_000,
            phi in 0.0f64..1e9,
            m in 1u64..1_000_000,
        ) {
            let e = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
            // More data per iteration never makes an iteration less useful.
            prop_assert!(e.gain(m.saturating_add(1000)) >= e.gain(m) - 1e-12);
        }
    }
}
