//! Online fitting of the θsys throughput parameters (Sec. 4.1).
//!
//! `PolluxAgent` records `(placement shape, batch size, T_iter)` triples
//! for every configuration its job runs under, and periodically re-fits
//! θsys by minimizing the root-mean-squared *logarithmic* error between
//! the model (Eqn 11) and the observations, subject to the box
//! constraints `α, β ≥ 0`, `γ ∈ [1, 10]`.
//!
//! **Prior-driven exploration** (Sec. 4.1): while some configurations
//! remain unexplored, the corresponding parameters are pinned to zero so
//! the model optimistically predicts perfect scaling, which encourages
//! `PolluxSched` to try larger allocations:
//!
//! - no multi-GPU observation yet → all four sync parameters pinned to 0;
//! - no multi-node observation yet → `α_sync^node`, `β_sync^node`
//!   pinned to 0;
//! - no observation with more than two GPUs yet → both retrogression
//!   slopes `β_sync^·` pinned to 0 (they multiply `K − 2` and are
//!   unidentifiable otherwise).

use crate::throughput::{PlacementShape, ThroughputParams};
use pollux_opt::{lbfgsb_minimize, nelder_mead_minimize, Bounds, LbfgsbOptions, NelderMeadOptions};
use serde::{Deserialize, Serialize};

/// One throughput observation collected during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitObservation {
    /// Placement shape the job ran under.
    pub shape: PlacementShape,
    /// Total batch size used.
    pub batch_size: u64,
    /// Measured time per iteration in seconds (noisy).
    pub t_iter: f64,
}

/// Exploration state driving the prior masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FitPriors {
    /// Largest GPU count among observations.
    pub max_gpus_seen: u32,
    /// Largest node count among observations.
    pub max_nodes_seen: u32,
}

impl FitPriors {
    /// Derives the priors from a set of observations.
    pub fn from_observations(obs: &[FitObservation]) -> Self {
        let mut p = Self::default();
        for o in obs {
            p.max_gpus_seen = p.max_gpus_seen.max(o.shape.gpus);
            p.max_nodes_seen = p.max_nodes_seen.max(o.shape.nodes);
        }
        p
    }

    /// Per-parameter mask: `true` means the parameter is free,
    /// `false` means pinned to its prior value (0 for α/β).
    fn free_mask(&self) -> [bool; ThroughputParams::DIM] {
        let multi_gpu = self.max_gpus_seen >= 2;
        let multi_node = self.max_nodes_seen >= 2;
        let beyond_two = self.max_gpus_seen > 2;
        [
            true,                     // alpha_grad
            true,                     // beta_grad
            multi_gpu,                // alpha_sync_local
            multi_gpu && beyond_two,  // beta_sync_local
            multi_node,               // alpha_sync_node
            multi_node && beyond_two, // beta_sync_node
            true,                     // gamma
        ]
    }
}

/// Outcome of a θsys fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Fitted parameters (valid under the box constraints).
    pub params: ThroughputParams,
    /// Final RMSLE loss value.
    pub rmsle: f64,
    /// Number of observations used.
    pub num_observations: usize,
    /// The priors that masked the fit.
    pub priors: FitPriors,
    /// Whether the fit converged from a warm start (previous round's
    /// parameters), skipping the multi-start restarts.
    #[serde(default)]
    pub used_warm_start: bool,
}

/// Root-mean-squared logarithmic error between the model and the
/// observations; the paper's fitting objective.
pub fn rmsle(params: &ThroughputParams, obs: &[FitObservation]) -> f64 {
    if obs.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for o in obs {
        let pred = params.t_iter(o.shape, o.batch_size);
        let d = (pred.max(0.0).ln_1p()) - (o.t_iter.max(0.0).ln_1p());
        acc += d * d;
    }
    (acc / obs.len() as f64).sqrt()
}

/// Fits θsys to the observations under the given priors.
///
/// Runs a small multi-start of bound-constrained quasi-Newton solves
/// (over the free parameters only) followed by a Nelder-Mead polish of
/// the best candidate, and returns the best feasible parameters found.
///
/// Returns `None` when `obs` is empty or contains no finite `t_iter`.
pub fn fit_throughput_params(obs: &[FitObservation], priors: FitPriors) -> Option<FitReport> {
    fit_impl(obs, priors, (1.0, ThroughputParams::GAMMA_MAX), None)
}

/// RMSLE at which a warm-started solve is accepted without running the
/// multi-start restarts. The agent's own observation noise dominates
/// below this level, so multi-start would spend 4x the solver budget to
/// reshuffle noise.
const WARM_ACCEPT_RMSLE: f64 = 0.02;

/// Like [`fit_throughput_params`] but seeded from the previous round's
/// fitted parameters.
///
/// Consecutive refits see nearly the same observation set, so the old
/// optimum almost always lies in the new optimum's basin: one
/// quasi-Newton solve from `warm` typically converges immediately. When
/// that solve reaches an RMSLE of at most `WARM_ACCEPT_RMSLE` the
/// multi-start restarts are skipped entirely
/// ([`FitReport::used_warm_start`] is set); otherwise the warm
/// candidate merely competes with the cold-start seeds, so the result
/// is never worse than a cold fit. `warm = None` is exactly
/// [`fit_throughput_params`].
pub fn fit_throughput_params_warm(
    obs: &[FitObservation],
    priors: FitPriors,
    warm: Option<&ThroughputParams>,
) -> Option<FitReport> {
    fit_impl(obs, priors, (1.0, ThroughputParams::GAMMA_MAX), warm)
}

/// Like [`fit_throughput_params`] but with an explicit γ range.
///
/// Used by the overlap-model ablation: pinning γ to `(1, 1)` forces
/// the no-overlap model `T_iter = T_grad + T_sync`, and pinning it to
/// `(10, 10)` approximates the perfect-overlap model
/// `T_iter = max(T_grad, T_sync)` (Sec. 3.2).
pub fn fit_throughput_params_constrained(
    obs: &[FitObservation],
    priors: FitPriors,
    gamma_range: (f64, f64),
) -> Option<FitReport> {
    fit_impl(obs, priors, gamma_range, None)
}

fn fit_impl(
    obs: &[FitObservation],
    priors: FitPriors,
    gamma_range: (f64, f64),
    warm: Option<&ThroughputParams>,
) -> Option<FitReport> {
    if !(1.0..=ThroughputParams::GAMMA_MAX).contains(&gamma_range.0)
        || gamma_range.1 < gamma_range.0
        || gamma_range.1 > ThroughputParams::GAMMA_MAX
    {
        return None;
    }
    let clean: Vec<FitObservation> = obs
        .iter()
        .copied()
        .filter(|o| o.t_iter.is_finite() && o.t_iter > 0.0)
        .collect();
    if clean.is_empty() {
        return None;
    }

    let mask = priors.free_mask();
    let free_idx: Vec<usize> = (0..ThroughputParams::DIM).filter(|&i| mask[i]).collect();

    // Embed a free-parameter vector into a full θsys vector; pinned
    // parameters stay at 0 (γ is always free).
    let embed = |free: &[f64]| -> ThroughputParams {
        let mut full = [0.0; ThroughputParams::DIM];
        full[6] = 1.0; // Default γ when somehow pinned (never happens).
        for (slot, &i) in free_idx.iter().enumerate() {
            full[i] = free[slot];
        }
        ThroughputParams::from_slice_unchecked(&full)
    };

    let loss = |free: &[f64]| -> f64 { rmsle(&embed(free), &clean) };

    // Box constraints on the free coordinates.
    let mut lo = Vec::with_capacity(free_idx.len());
    let mut hi = Vec::with_capacity(free_idx.len());
    for &i in &free_idx {
        lo.push(if i == 6 {
            gamma_range.0
        } else {
            ThroughputParams::LOWER[i]
        });
        hi.push(if i == 6 { gamma_range.1 } else { f64::INFINITY });
    }
    let bounds = Bounds::new(lo.clone(), hi.clone()).expect("static bounds are well-formed");

    let lb_opts = LbfgsbOptions {
        // 7 parameters: quasi-Newton converges in a few dozen steps;
        // the agent refits often, so the budget is kept tight.
        max_iters: 80,
        ..Default::default()
    };
    let nm_opts = NelderMeadOptions {
        max_evals: 1200,
        ..Default::default()
    };

    // Warm start: one quasi-Newton solve (plus polish) from the
    // previous round's optimum before spending any restarts.
    let mut warm_candidate: Option<(Vec<f64>, f64)> = None;
    if let Some(w) = warm {
        let full = w.to_vec();
        let seed: Vec<f64> = free_idx
            .iter()
            .enumerate()
            .map(|(slot, &i)| full[i].clamp(lo[slot], hi[slot]))
            .collect();
        let mut cand = (seed.clone(), loss(&seed));
        if let Ok(r) = lbfgsb_minimize(loss, &seed, &bounds, &lb_opts) {
            if r.fx < cand.1 {
                cand = (r.x, r.fx);
            }
        }
        if let Ok(r) = nelder_mead_minimize(loss, &cand.0, &bounds, &nm_opts) {
            if r.fx < cand.1 {
                cand = (r.x, r.fx);
            }
        }
        if cand.1 <= WARM_ACCEPT_RMSLE {
            let params = embed(&cand.0);
            debug_assert!(
                params.is_valid(),
                "warm fit produced invalid params: {params:?}"
            );
            return Some(FitReport {
                params,
                rmsle: cand.1,
                num_observations: clean.len(),
                priors,
                used_warm_start: true,
            });
        }
        warm_candidate = Some(cand);
    }

    // Heuristic multi-starts derived from the data scale: the mean
    // iteration time and per-example time seed α and β.
    let mean_t = clean.iter().map(|o| o.t_iter).sum::<f64>() / clean.len() as f64;
    let mean_per_example = clean
        .iter()
        .map(|o| o.t_iter * o.shape.gpus as f64 / o.batch_size.max(1) as f64)
        .sum::<f64>()
        / clean.len() as f64;
    let seeds_full: [[f64; ThroughputParams::DIM]; 4] = [
        [
            0.5 * mean_t,
            0.5 * mean_per_example,
            0.1 * mean_t,
            0.01 * mean_t,
            0.2 * mean_t,
            0.02 * mean_t,
            2.0f64.clamp(gamma_range.0, gamma_range.1),
        ],
        [
            0.1 * mean_t,
            mean_per_example,
            0.0,
            0.0,
            0.0,
            0.0,
            gamma_range.0,
        ],
        [
            mean_t,
            0.1 * mean_per_example,
            mean_t,
            0.0,
            mean_t,
            0.0,
            4.0f64.clamp(gamma_range.0, gamma_range.1),
        ],
        [
            1e-3,
            1e-5,
            1e-3,
            1e-4,
            1e-2,
            1e-3,
            1.5f64.clamp(gamma_range.0, gamma_range.1),
        ],
    ];

    // A warm candidate that failed the early-accept threshold still
    // competes with the cold-start restarts.
    let mut best: Option<(Vec<f64>, f64)> = warm_candidate;
    for seed_full in &seeds_full {
        let seed: Vec<f64> = free_idx.iter().map(|&i| seed_full[i]).collect();
        if let Ok(r) = lbfgsb_minimize(loss, &seed, &bounds, &lb_opts) {
            if best.as_ref().is_none_or(|(_, f)| r.fx < *f) {
                best = Some((r.x, r.fx));
            }
        }
    }
    let (start, _) = best.clone().unwrap_or_else(|| {
        let seed: Vec<f64> = free_idx.iter().map(|&i| seeds_full[0][i]).collect();
        let fx = loss(&seed);
        (seed, fx)
    });

    // Nelder-Mead polish: robust to flat RMSLE regions where numeric
    // gradients vanish.
    if let Ok(r) = nelder_mead_minimize(loss, &start, &bounds, &nm_opts) {
        if best.as_ref().is_none_or(|(_, f)| r.fx < *f) {
            best = Some((r.x, r.fx));
        }
    }

    let (x, fx) = best?;
    let params = embed(&x);
    debug_assert!(params.is_valid(), "fit produced invalid params: {params:?}");
    Some(FitReport {
        params,
        rmsle: fx,
        num_observations: clean.len(),
        priors,
        used_warm_start: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn truth() -> ThroughputParams {
        ThroughputParams::new(0.08, 8.0e-4, 0.05, 0.002, 0.25, 0.008, 1.8).unwrap()
    }

    /// Generates observations over a grid of placements and batch sizes,
    /// with multiplicative noise of the given relative magnitude.
    fn synth_observations(noise: f64, seed: u64) -> Vec<FitObservation> {
        let p = truth();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = Vec::new();
        for (gpus, nodes) in [
            (1u32, 1u32),
            (2, 1),
            (4, 1),
            (4, 2),
            (8, 2),
            (8, 4),
            (16, 4),
        ] {
            for m in [128u64, 256, 512, 1024, 2048] {
                let shape = PlacementShape::new(gpus, nodes).unwrap();
                let t = p.t_iter(shape, m);
                let eps: f64 = rng.gen_range(-noise..=noise);
                obs.push(FitObservation {
                    shape,
                    batch_size: m,
                    t_iter: t * (1.0 + eps),
                });
            }
        }
        obs
    }

    #[test]
    fn priors_derived_from_observations() {
        let obs = synth_observations(0.0, 1);
        let p = FitPriors::from_observations(&obs);
        assert_eq!(p.max_gpus_seen, 16);
        assert_eq!(p.max_nodes_seen, 4);
        assert_eq!(p.free_mask(), [true; 7]);
    }

    #[test]
    fn prior_masks_progressively_unlock() {
        let single = FitPriors {
            max_gpus_seen: 1,
            max_nodes_seen: 1,
        };
        assert_eq!(
            single.free_mask(),
            [true, true, false, false, false, false, true]
        );
        let two_gpu = FitPriors {
            max_gpus_seen: 2,
            max_nodes_seen: 1,
        };
        assert_eq!(
            two_gpu.free_mask(),
            [true, true, true, false, false, false, true]
        );
        let two_node = FitPriors {
            max_gpus_seen: 4,
            max_nodes_seen: 2,
        };
        assert_eq!(two_node.free_mask(), [true; 7]);
        let two_gpu_two_node = FitPriors {
            max_gpus_seen: 2,
            max_nodes_seen: 2,
        };
        assert_eq!(
            two_gpu_two_node.free_mask(),
            [true, true, true, false, true, false, true]
        );
    }

    #[test]
    fn rmsle_zero_for_exact_model() {
        let obs = synth_observations(0.0, 2);
        assert!(rmsle(&truth(), &obs) < 1e-12);
    }

    #[test]
    fn fit_recovers_noiseless_predictions() {
        let obs = synth_observations(0.0, 3);
        let report = fit_throughput_params(&obs, FitPriors::from_observations(&obs)).unwrap();
        assert!(report.rmsle < 5e-3, "rmsle = {}", report.rmsle);
        // Predictions (not necessarily parameters — the model can be
        // weakly identified) must match on held-out configurations.
        let p = truth();
        for (gpus, nodes, m) in [(3u32, 1u32, 384u64), (12, 3, 1536), (6, 2, 768)] {
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            let a = report.params.t_iter(shape, m);
            let b = p.t_iter(shape, m);
            assert!(
                (a - b).abs() / b < 0.15,
                "held-out ({gpus},{nodes},{m}): fit {a} vs truth {b}"
            );
        }
    }

    #[test]
    fn fit_is_robust_to_noise() {
        let obs = synth_observations(0.10, 4);
        let report = fit_throughput_params(&obs, FitPriors::from_observations(&obs)).unwrap();
        let p = truth();
        let shape = PlacementShape::new(8, 2).unwrap();
        let a = report.params.throughput(shape, 1024);
        let b = p.throughput(shape, 1024);
        assert!((a - b).abs() / b < 0.2, "fit {a} vs truth {b}");
    }

    #[test]
    fn fit_with_single_gpu_data_predicts_perfect_scaling() {
        // Only single-GPU observations: priors pin all sync params to 0,
        // so predicted throughput scales ~linearly with GPUs (the
        // optimistic prior that drives exploration).
        let p = truth();
        let obs: Vec<FitObservation> = [128u64, 256, 512]
            .iter()
            .map(|&m| FitObservation {
                shape: PlacementShape::single(),
                batch_size: m,
                t_iter: p.t_iter(PlacementShape::single(), m),
            })
            .collect();
        let report = fit_throughput_params(&obs, FitPriors::from_observations(&obs)).unwrap();
        assert_eq!(report.params.alpha_sync_local, 0.0);
        assert_eq!(report.params.alpha_sync_node, 0.0);
        let t1 = report.params.throughput(PlacementShape::single(), 512);
        let t8 = report
            .params
            .throughput(PlacementShape::new(8, 2).unwrap(), 4096);
        // With 8 GPUs and 8x the batch, predicted throughput is ~8x:
        // T_iter is unchanged (same local batch), m is 8x.
        assert!(t8 / t1 > 6.0, "scaling = {}", t8 / t1);
    }

    #[test]
    fn fit_rejects_empty_and_degenerate_input() {
        assert!(fit_throughput_params(&[], FitPriors::default()).is_none());
        let bad = [FitObservation {
            shape: PlacementShape::single(),
            batch_size: 128,
            t_iter: f64::NAN,
        }];
        assert!(fit_throughput_params(&bad, FitPriors::default()).is_none());
    }

    #[test]
    fn fit_params_always_satisfy_box() {
        let obs = synth_observations(0.3, 7);
        let report = fit_throughput_params(&obs, FitPriors::from_observations(&obs)).unwrap();
        assert!(report.params.is_valid());
    }

    #[test]
    fn warm_start_converges_and_skips_restarts() {
        // Cold fit once, then refit the slightly grown observation set
        // warm: the solve from the previous optimum converges below the
        // acceptance threshold.
        let obs = synth_observations(0.0, 8);
        let priors = FitPriors::from_observations(&obs);
        let cold = fit_throughput_params(&obs, priors).unwrap();
        assert!(!cold.used_warm_start);

        let mut grown = obs.clone();
        let p = truth();
        let shape = PlacementShape::new(6, 2).unwrap();
        grown.push(FitObservation {
            shape,
            batch_size: 768,
            t_iter: p.t_iter(shape, 768),
        });
        let warm = fit_throughput_params_warm(
            &grown,
            FitPriors::from_observations(&grown),
            Some(&cold.params),
        )
        .unwrap();
        assert!(warm.used_warm_start, "rmsle = {}", warm.rmsle);
        assert!(warm.rmsle <= WARM_ACCEPT_RMSLE);
        assert!(warm.params.is_valid());
        // The warm fit predicts as well as the cold one on held-out
        // configurations.
        for (gpus, nodes, m) in [(3u32, 1u32, 384u64), (12, 3, 1536)] {
            let s = PlacementShape::new(gpus, nodes).unwrap();
            let a = warm.params.t_iter(s, m);
            let b = p.t_iter(s, m);
            assert!((a - b).abs() / b < 0.15, "held-out: warm {a} vs truth {b}");
        }
    }

    #[test]
    fn warm_none_matches_cold_fit_exactly() {
        let obs = synth_observations(0.05, 9);
        let priors = FitPriors::from_observations(&obs);
        let cold = fit_throughput_params(&obs, priors).unwrap();
        let warm = fit_throughput_params_warm(&obs, priors, None).unwrap();
        assert_eq!(cold, warm);
    }

    #[test]
    fn bad_warm_start_falls_back_to_multi_start() {
        // Absurd warm parameters: the warm solve cannot reach the
        // acceptance threshold from there... but the multi-start must
        // still rescue the fit, no worse than cold.
        let obs = synth_observations(0.0, 10);
        let priors = FitPriors::from_observations(&obs);
        let junk = ThroughputParams::new(500.0, 50.0, 400.0, 90.0, 300.0, 80.0, 10.0).unwrap();
        let warm = fit_throughput_params_warm(&obs, priors, Some(&junk)).unwrap();
        let cold = fit_throughput_params(&obs, priors).unwrap();
        assert!(
            warm.rmsle <= cold.rmsle + 1e-9,
            "warm {} vs cold {}",
            warm.rmsle,
            cold.rmsle
        );
        assert!(warm.params.is_valid());
    }

    #[test]
    fn warm_start_respects_prior_masks() {
        // Warm params with non-zero sync costs, but priors that pin all
        // sync parameters: the warm path must not leak them through.
        let p = truth();
        let obs: Vec<FitObservation> = [128u64, 256, 512]
            .iter()
            .map(|&m| FitObservation {
                shape: PlacementShape::single(),
                batch_size: m,
                t_iter: p.t_iter(PlacementShape::single(), m),
            })
            .collect();
        let report =
            fit_throughput_params_warm(&obs, FitPriors::from_observations(&obs), Some(&p)).unwrap();
        assert_eq!(report.params.alpha_sync_local, 0.0);
        assert_eq!(report.params.alpha_sync_node, 0.0);
        assert_eq!(report.params.beta_sync_local, 0.0);
        assert_eq!(report.params.beta_sync_node, 0.0);
    }
}
