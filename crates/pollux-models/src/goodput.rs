//! The combined goodput model (Eqn 6), batch-size optimization
//! (Eqn 13), and `SPEEDUP` (Eqn 15).

use crate::efficiency::EfficiencyModel;
use crate::throughput::{PlacementShape, ThroughputParams};
use pollux_opt::golden_section_max_int;
use serde::{Deserialize, Serialize};

/// Feasible batch-size range for a job.
///
/// The lower limit is the user's initial batch size `m0` (Pollux only
/// considers `m ≥ m0`); the upper limit is the smaller of a global cap
/// (e.g. dataset-size or convergence-driven) and per-GPU memory
/// capacity times the number of allocated GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSizeLimits {
    /// Initial and minimum total batch size `m0 ≥ 1`.
    pub min: u64,
    /// Largest total batch size that is ever worth considering.
    pub max_global: u64,
    /// Largest per-GPU local batch size that fits in GPU memory.
    pub max_per_gpu: u64,
}

impl BatchSizeLimits {
    /// Creates limits, validating `1 ≤ min ≤ max_global` and
    /// `max_per_gpu ≥ 1`.
    pub fn new(min: u64, max_global: u64, max_per_gpu: u64) -> Option<Self> {
        if min >= 1 && min <= max_global && max_per_gpu >= 1 {
            Some(Self {
                min,
                max_global,
                max_per_gpu,
            })
        } else {
            None
        }
    }

    /// The feasible total-batch-size interval under `shape`, or `None`
    /// when even `m0` does not fit on the allocated GPUs.
    pub fn range(&self, shape: PlacementShape) -> Option<(u64, u64)> {
        let cap = self.max_per_gpu.saturating_mul(shape.gpus as u64);
        let hi = cap.min(self.max_global);
        if hi >= self.min {
            Some((self.min, hi))
        } else {
            None
        }
    }

    /// The minimum number of GPUs on which `m0` fits.
    pub fn min_gpus(&self) -> u32 {
        self.min.div_ceil(self.max_per_gpu).min(u32::MAX as u64) as u32
    }
}

/// A job's goodput model at one instant of training:
/// `GOODPUT_t(a, m) = THROUGHPUT(a, m) × EFFICIENCY_t(m)`.
///
/// # Examples
///
/// ```
/// use pollux_models::{
///     BatchSizeLimits, EfficiencyModel, GoodputModel, PlacementShape, ThroughputParams,
/// };
///
/// let model = GoodputModel::new(
///     ThroughputParams::new(0.01, 1e-3, 0.02, 0.002, 0.07, 0.008, 1.8).unwrap(),
///     EfficiencyModel::from_noise_scale(128, 2000.0).unwrap(),
///     BatchSizeLimits::new(128, 8192, 1024).unwrap(),
/// )
/// .unwrap();
///
/// // The most efficient batch size grows with the allocation (Eqn 13).
/// let (m_small, _) = model.optimal_batch_size(PlacementShape::new(2, 1).unwrap()).unwrap();
/// let (m_large, _) = model.optimal_batch_size(PlacementShape::new(16, 4).unwrap()).unwrap();
/// assert!(m_large > m_small);
///
/// // SPEEDUP (Eqn 15) is 1 on a single GPU and sub-linear beyond.
/// assert!((model.speedup(PlacementShape::single()) - 1.0).abs() < 1e-9);
/// let s16 = model.speedup(PlacementShape::new(16, 4).unwrap());
/// assert!(s16 > 1.0 && s16 < 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputModel {
    /// The fitted (or ground-truth) system-throughput parameters.
    pub throughput: ThroughputParams,
    /// The statistical-efficiency snapshot at the current iteration.
    pub efficiency: EfficiencyModel,
    /// Feasible batch sizes for this job.
    pub limits: BatchSizeLimits,
}

impl GoodputModel {
    /// Creates the combined model. Returns `None` when the efficiency
    /// model's `m0` disagrees with `limits.min` (they must be the same
    /// quantity).
    pub fn new(
        throughput: ThroughputParams,
        efficiency: EfficiencyModel,
        limits: BatchSizeLimits,
    ) -> Option<Self> {
        if efficiency.m0() != limits.min {
            return None;
        }
        Some(Self {
            throughput,
            efficiency,
            limits,
        })
    }

    /// Evaluates `GOODPUT_t(a, m)` in useful examples per second.
    ///
    /// Returns 0 when `m` is infeasible under `shape`.
    pub fn goodput(&self, shape: PlacementShape, m: u64) -> f64 {
        match self.limits.range(shape) {
            Some((lo, hi)) if m >= lo && m <= hi => {
                self.throughput.throughput(shape, m) * self.efficiency.efficiency(m)
            }
            _ => 0.0,
        }
    }

    /// Raw throughput (examples/s) at `m` under `shape`, 0 if infeasible.
    pub fn raw_throughput(&self, shape: PlacementShape, m: u64) -> f64 {
        match self.limits.range(shape) {
            Some((lo, hi)) if m >= lo && m <= hi => self.throughput.throughput(shape, m),
            _ => 0.0,
        }
    }

    /// The most efficient batch size `m* = argmax_m GOODPUT(a, m)`
    /// (Eqn 13), found by golden-section search over the feasible range
    /// (goodput is unimodal in `m`; Sec. 4.1).
    ///
    /// Returns `(m*, GOODPUT(a, m*))`, or `None` when no feasible batch
    /// size exists under `shape`.
    pub fn optimal_batch_size(&self, shape: PlacementShape) -> Option<(u64, f64)> {
        let (lo, hi) = self.limits.range(shape)?;
        golden_section_max_int(|m| self.goodput(shape, m), lo, hi).ok()
    }

    /// `max_m GOODPUT(a, m)` or 0 when infeasible.
    pub fn max_goodput(&self, shape: PlacementShape) -> f64 {
        self.optimal_batch_size(shape).map_or(0.0, |(_, g)| g)
    }

    /// `SPEEDUP_j(A_j)` (Eqn 15): the goodput at `shape` (batch size
    /// re-optimized) relative to the goodput of a single GPU (batch
    /// size re-optimized).
    ///
    /// When `m0` does not fit on a single GPU the denominator instead
    /// uses the minimum feasible co-located allocation, preserving the
    /// property that the smallest feasible allocation has speedup 1.
    pub fn speedup(&self, shape: PlacementShape) -> f64 {
        let num = self.max_goodput(shape);
        if num <= 0.0 {
            return 0.0;
        }
        let base_shape = self.reference_shape();
        let den = self.max_goodput(base_shape);
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// The reference (denominator) placement for [`Self::speedup`]:
    /// one GPU when feasible, otherwise the fewest co-located GPUs on
    /// which `m0` fits.
    pub fn reference_shape(&self) -> PlacementShape {
        let k = self.limits.min_gpus().max(1);
        PlacementShape::new(k, 1).unwrap_or(PlacementShape::single())
    }

    /// Evaluates `SPEEDUP` for every GPU count in one pass, producing a
    /// dense profile indexed by `K − 1` for both locality classes.
    ///
    /// `T_sync` (Eqn 10) only distinguishes co-located (`N = 1`) from
    /// cross-node (`N ≥ 2`) placements, so two rows of length `len`
    /// cover the entire feasible shape space. Entries outside
    /// `feasible` (and the impossible distributed `K = 1` cell) are 0,
    /// matching [`Self::speedup`]'s treatment of infeasible shapes.
    /// When `include_distributed` is false the distributed row is all
    /// zeros and its golden-section solves are skipped (single-node
    /// clusters can never query it).
    ///
    /// Every stored value is bit-identical to the corresponding
    /// [`Self::speedup`] call: both divide `max_goodput(shape)` by a
    /// once-computed `max_goodput(reference_shape())`.
    pub fn speedup_profile(
        &self,
        feasible: std::ops::RangeInclusive<u32>,
        len: u32,
        include_distributed: bool,
    ) -> SpeedupProfile {
        let mut profile = SpeedupProfile {
            colocated: vec![0.0; len as usize],
            distributed: vec![0.0; len as usize],
            solves: 0,
        };
        let lo = (*feasible.start()).max(1);
        let hi = (*feasible.end()).min(len);
        if lo > hi {
            return profile;
        }
        profile.solves += 1;
        let denom = self.max_goodput(self.reference_shape());
        if denom <= 0.0 {
            return profile;
        }
        for k in lo..=hi {
            profile.solves += 1;
            let colocated = PlacementShape::new(k, 1).expect("k >= 1");
            profile.colocated[(k - 1) as usize] = self.max_goodput(colocated) / denom;
            if include_distributed && k >= 2 {
                profile.solves += 1;
                let spread = PlacementShape::new(k, 2).expect("k >= 2");
                profile.distributed[(k - 1) as usize] = self.max_goodput(spread) / denom;
            }
        }
        profile
    }
}

/// Dense `SPEEDUP` values over `K = 1..=len` for both locality classes
/// of one model, produced by [`GoodputModel::speedup_profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupProfile {
    /// `SPEEDUP(K, N = 1)` at index `K − 1`; 0 outside the feasible range.
    pub colocated: Vec<f64>,
    /// `SPEEDUP(K, N = 2)` at index `K − 1` (the canonical value for
    /// every `N ≥ 2` placement); 0 outside the feasible range and for
    /// the impossible `K = 1` cell.
    pub distributed: Vec<f64>,
    /// Golden-section batch-size solves performed while building the
    /// profile (reference denominator plus one per stored entry).
    pub solves: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn throughput_params() -> ThroughputParams {
        ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap()
    }

    fn model(phi: f64) -> GoodputModel {
        let tp = throughput_params();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    #[test]
    fn limits_validation() {
        assert!(BatchSizeLimits::new(1, 1, 1).is_some());
        assert!(BatchSizeLimits::new(0, 10, 1).is_none());
        assert!(BatchSizeLimits::new(10, 9, 1).is_none());
        assert!(BatchSizeLimits::new(1, 10, 0).is_none());
    }

    #[test]
    fn range_respects_gpu_memory() {
        let l = BatchSizeLimits::new(128, 10_000, 256).unwrap();
        // 1 GPU: cap 256.
        assert_eq!(l.range(PlacementShape::single()), Some((128, 256)));
        // 8 GPUs: cap 2048.
        assert_eq!(
            l.range(PlacementShape::new(8, 2).unwrap()),
            Some((128, 2048))
        );
        // Global cap binds with many GPUs.
        assert_eq!(
            l.range(PlacementShape::new(64, 16).unwrap()),
            Some((128, 10_000))
        );
    }

    #[test]
    fn infeasible_when_m0_does_not_fit() {
        let l = BatchSizeLimits::new(1024, 10_000, 256).unwrap();
        assert_eq!(l.range(PlacementShape::single()), None);
        assert_eq!(l.range(PlacementShape::new(3, 1).unwrap()), None);
        assert!(l.range(PlacementShape::new(4, 1).unwrap()).is_some());
        assert_eq!(l.min_gpus(), 4);
    }

    #[test]
    fn model_rejects_m0_mismatch() {
        let tp = throughput_params();
        let eff = EfficiencyModel::from_noise_scale(100, 10.0).unwrap();
        let limits = BatchSizeLimits::new(128, 1000, 512).unwrap();
        assert!(GoodputModel::new(tp, eff, limits).is_none());
    }

    #[test]
    fn goodput_is_throughput_times_efficiency() {
        let g = model(1000.0);
        let shape = PlacementShape::new(4, 1).unwrap();
        let m = 512;
        let expected = g.throughput.throughput(shape, m) * g.efficiency.efficiency(m);
        assert!((g.goodput(shape, m) - expected).abs() < 1e-9);
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        let g = model(700.0);
        for k in [1u32, 2, 4, 8, 16] {
            let shape = PlacementShape::new(k, k.div_ceil(4)).unwrap();
            for m in [128u64, 256, 1024, 4096] {
                assert!(g.goodput(shape, m) <= g.raw_throughput(shape, m) + 1e-9);
            }
        }
    }

    #[test]
    fn goodput_zero_outside_feasible_range() {
        let g = model(1000.0);
        let shape = PlacementShape::single();
        // Above the 1-GPU memory cap of 512.
        assert_eq!(g.goodput(shape, 1024), 0.0);
        // Below m0 = 128.
        assert_eq!(g.goodput(shape, 64), 0.0);
    }

    #[test]
    fn optimal_batch_size_beats_endpoints() {
        let g = model(2000.0);
        let shape = PlacementShape::new(8, 2).unwrap();
        let (m_star, best) = g.optimal_batch_size(shape).unwrap();
        let (lo, hi) = g.limits.range(shape).unwrap();
        assert!(m_star >= lo && m_star <= hi);
        assert!(best >= g.goodput(shape, lo) - 1e-9);
        assert!(best >= g.goodput(shape, hi) - 1e-9);
        // Sanity: sample the range and confirm near-optimality.
        let mut sampled_best = 0.0f64;
        let mut m = lo;
        while m <= hi {
            sampled_best = sampled_best.max(g.goodput(shape, m));
            m += 16;
        }
        assert!(
            best >= sampled_best * 0.999,
            "{best} vs sampled {sampled_best}"
        );
    }

    #[test]
    fn higher_noise_scale_prefers_larger_batches() {
        // Fig 1b: later in training (higher φ), the best batch size grows.
        let early = model(500.0);
        let late = model(8000.0);
        let shape = PlacementShape::new(16, 4).unwrap();
        let (m_early, _) = early.optimal_batch_size(shape).unwrap();
        let (m_late, _) = late.optimal_batch_size(shape).unwrap();
        assert!(
            m_late > m_early,
            "late m* {m_late} should exceed early m* {m_early}"
        );
    }

    #[test]
    fn speedup_of_single_gpu_is_one() {
        let g = model(1500.0);
        let s = g.speedup(PlacementShape::single());
        assert!((s - 1.0).abs() < 1e-9, "speedup = {s}");
    }

    #[test]
    fn speedup_scales_sublinearly() {
        let g = model(1500.0);
        // Within a fixed locality class (all co-located), speedup is
        // monotone in K and bounded by the ideal linear speedup.
        let mut prev = 1.0;
        for k in [2u32, 3, 4] {
            let shape = PlacementShape::new(k, 1).unwrap();
            let s = g.speedup(shape);
            assert!(s >= prev - 1e-9, "speedup should not decrease: K={k} s={s}");
            assert!(s <= k as f64 + 1e-9, "speedup {s} exceeds ideal {k}");
            prev = s;
        }
        // Distributed placements stay bounded by linear speedup too.
        for k in [8u32, 16] {
            let shape = PlacementShape::new(k, k.div_ceil(4)).unwrap();
            let s = g.speedup(shape);
            assert!(s <= k as f64 + 1e-9);
            assert!(s > 0.0);
        }
    }

    #[test]
    fn colocated_beats_spread_placement() {
        // Sec 2.1: T_sync is smaller when replicas are co-located, so
        // goodput at equal K favors fewer nodes.
        let g = model(1500.0);
        let packed = PlacementShape::new(4, 1).unwrap();
        let spread = PlacementShape::new(4, 4).unwrap();
        assert!(g.max_goodput(packed) > g.max_goodput(spread));
    }

    #[test]
    fn speedup_reference_uses_min_feasible_gpus() {
        let tp = throughput_params();
        let eff = EfficiencyModel::from_noise_scale(1024, 3000.0).unwrap();
        // m0 = 1024 needs at least 4 GPUs at 256/GPU.
        let limits = BatchSizeLimits::new(1024, 65_536, 256).unwrap();
        let g = GoodputModel::new(tp, eff, limits).unwrap();
        assert_eq!(g.reference_shape(), PlacementShape::new(4, 1).unwrap());
        // Infeasible shapes have zero speedup.
        assert_eq!(g.speedup(PlacementShape::single()), 0.0);
        // The reference shape itself has speedup 1.
        let s = g.speedup(g.reference_shape());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_profile_matches_speedup_bitwise() {
        let g = model(1500.0);
        let profile = g.speedup_profile(1..=12, 12, true);
        for k in 1u32..=12 {
            let co = g.speedup(PlacementShape::new(k, 1).unwrap());
            assert_eq!(
                profile.colocated[(k - 1) as usize].to_bits(),
                co.to_bits(),
                "colocated K={k}"
            );
            if k >= 2 {
                let sp = g.speedup(PlacementShape::new(k, 2).unwrap());
                assert_eq!(
                    profile.distributed[(k - 1) as usize].to_bits(),
                    sp.to_bits(),
                    "distributed K={k}"
                );
            }
        }
        assert_eq!(profile.distributed[0], 0.0, "K=1 cannot span two nodes");
        // 1 reference + 12 colocated + 11 distributed solves.
        assert_eq!(profile.solves, 24);
    }

    #[test]
    fn speedup_profile_respects_feasible_range_and_locality_gate() {
        let g = model(900.0);
        let profile = g.speedup_profile(3..=6, 8, false);
        for k in 1u32..=8 {
            let idx = (k - 1) as usize;
            assert_eq!(profile.distributed[idx], 0.0, "distributed gated off");
            if !(3..=6).contains(&k) {
                assert_eq!(profile.colocated[idx], 0.0, "K={k} infeasible");
            } else {
                assert!(profile.colocated[idx] > 0.0, "K={k} feasible");
            }
        }
        // Empty feasible range: no solves at all.
        #[allow(clippy::reversed_empty_ranges)]
        let empty = g.speedup_profile(5..=4, 8, true);
        assert_eq!(empty.solves, 0);
        assert!(empty.colocated.iter().all(|&v| v == 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn goodput_is_unimodal_in_batch_size(
            alpha_grad in 0.0f64..0.5,
            beta_grad in 1e-5f64..1e-2,
            alpha_sync in 0.0f64..0.5,
            beta_sync in 0.0f64..0.05,
            gamma in 1.0f64..10.0,
            phi in 1.0f64..1e5,
            gpus in 1u32..32,
        ) {
            // Sec 4.1 asserts GOODPUT(a, m) is unimodal in m, which is
            // what justifies golden-section search. Verify on a grid:
            // once the sampled values start decreasing, they never
            // meaningfully increase again.
            let tp = ThroughputParams::new(
                alpha_grad, beta_grad, alpha_sync, beta_sync,
                alpha_sync * 2.0, beta_sync * 2.0, gamma,
            ).unwrap();
            let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
            let limits = BatchSizeLimits::new(128, 65_536, 2048).unwrap();
            let g = GoodputModel::new(tp, eff, limits).unwrap();
            let nodes = gpus.div_ceil(4);
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            let (lo, hi) = g.limits.range(shape).unwrap();
            let step = ((hi - lo) / 200).max(1);
            let mut vals = Vec::new();
            let mut m = lo;
            while m <= hi {
                vals.push(g.goodput(shape, m));
                m += step;
            }
            // Once the sequence turns downward, every later value must
            // stay (weakly) below its predecessor — a second local rise
            // would break unimodality.
            let mut decreasing = false;
            for w in vals.windows(2) {
                let (prev, v) = (w[0], w[1]);
                if decreasing {
                    prop_assert!(v <= prev * (1.0 + 1e-9),
                        "goodput rebounds after decreasing: {prev} -> {v}");
                } else if v < prev * (1.0 - 1e-9) {
                    decreasing = true;
                }
            }
        }

        #[test]
        fn optimal_batch_is_feasible_and_near_global_max(
            phi in 10.0f64..50_000.0,
            gpus in 1u32..32,
        ) {
            let g = model(phi);
            let nodes = gpus.div_ceil(4);
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            let (m_star, best) = g.optimal_batch_size(shape).unwrap();
            let (lo, hi) = g.limits.range(shape).unwrap();
            prop_assert!(m_star >= lo && m_star <= hi);
            // Coarse sampling should never beat golden-section by >0.5%.
            let step = ((hi - lo) / 64).max(1);
            let mut m = lo;
            while m <= hi {
                prop_assert!(g.goodput(shape, m) <= best * 1.005 + 1e-9,
                    "m = {} beats m* = {}", m, m_star);
                m += step;
            }
        }
    }
}
