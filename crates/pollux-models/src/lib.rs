//! The Pollux goodput model (Sec. 3 of the paper).
//!
//! Goodput is the product of **system throughput** (training examples
//! processed per second, Eqns 8–11) and **statistical efficiency**
//! (progress per example relative to the user's initial batch size,
//! Eqn 7):
//!
//! ```text
//! GOODPUT_t(a, m) = THROUGHPUT(a, m) × EFFICIENCY_t(m)
//! ```
//!
//! This crate contains the pure math: no scheduling, no simulation.
//!
//! - [`efficiency`] — gradient noise scale φ_t and `EFFICIENCY_t(m)`.
//! - [`throughput`] — the 7-parameter θsys model of `T_iter` and
//!   `THROUGHPUT(a, m)`.
//! - [`goodput`] — the combined model, batch-size optimization (Eqn 13)
//!   and `SPEEDUP` (Eqn 15).
//! - [`adascale`] — AdaScale learning-rate scaling (Eqn 5) and
//!   scale-invariant progress accounting.
//! - [`fit`] — fitting θsys to observed `(placement, m, T_iter)`
//!   triples by RMSLE minimization with the paper's prior-driven
//!   exploration masks.

pub mod accum;
pub mod adascale;
pub mod efficiency;
pub mod fit;
pub mod goodput;
pub mod rack;
pub mod throughput;

pub use accum::AccumulatedGoodput;
pub use adascale::AdaScale;
pub use efficiency::{EfficiencyModel, GradientStats};
pub use fit::{
    fit_throughput_params, fit_throughput_params_constrained, fit_throughput_params_warm,
    FitObservation, FitPriors, FitReport,
};
pub use goodput::{BatchSizeLimits, GoodputModel, SpeedupProfile};
pub use rack::{RackAwareParams, RackPlacementShape};
pub use throughput::{PlacementShape, ThroughputParams};
