//! Rack-level locality extension of the throughput model.
//!
//! Sec. 3.2 notes that the `T_sync` model "can be extended to account
//! for rack-level locality by adding a third pair of parameters". This
//! module implements that extension: placements are summarized by
//! `(K, N, R)` — GPUs, nodes, racks — and synchronization takes the
//! slowest locality tier actually crossed:
//!
//! ```text
//! T_sync = 0                                   K = 1
//!        = α_local + β_local (K−2)             N = 1
//!        = α_node  + β_node  (K−2)             N ≥ 2, R = 1
//!        = α_rack  + β_rack  (K−2)             R ≥ 2
//! ```

use crate::throughput::{gamma_norm, PlacementShape, ThroughputParams};
use serde::{Deserialize, Serialize};

/// A placement summarized with rack-level locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RackPlacementShape {
    /// Total allocated GPUs `K ≥ 1`.
    pub gpus: u32,
    /// Occupied nodes `1 ≤ N ≤ K`.
    pub nodes: u32,
    /// Occupied racks `1 ≤ R ≤ N`.
    pub racks: u32,
}

impl RackPlacementShape {
    /// Creates a shape, validating `1 ≤ racks ≤ nodes ≤ gpus`.
    pub fn new(gpus: u32, nodes: u32, racks: u32) -> Option<Self> {
        if gpus >= 1 && nodes >= 1 && nodes <= gpus && racks >= 1 && racks <= nodes {
            Some(Self { gpus, nodes, racks })
        } else {
            None
        }
    }

    /// The rack-blind projection (drops the rack dimension).
    pub fn flat(&self) -> PlacementShape {
        PlacementShape::new(self.gpus, self.nodes).expect("validated at construction")
    }
}

/// θsys extended with the rack synchronization pair (9 parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackAwareParams {
    /// The base 7-parameter model (its `α_node`/`β_node` now describe
    /// *intra-rack* cross-node synchronization).
    pub base: ThroughputParams,
    /// Synchronization constant across racks (s).
    pub alpha_sync_rack: f64,
    /// Synchronization retrogression per extra GPU, across racks (s).
    pub beta_sync_rack: f64,
}

impl RackAwareParams {
    /// Creates rack-aware parameters. The rack tier must be at least
    /// as slow as the node tier at two GPUs (physical consistency);
    /// negative or non-finite rack parameters are rejected.
    pub fn new(base: ThroughputParams, alpha_sync_rack: f64, beta_sync_rack: f64) -> Option<Self> {
        if !alpha_sync_rack.is_finite()
            || !beta_sync_rack.is_finite()
            || alpha_sync_rack < base.alpha_sync_node
            || beta_sync_rack < 0.0
        {
            return None;
        }
        Some(Self {
            base,
            alpha_sync_rack,
            beta_sync_rack,
        })
    }

    /// `T_sync` with three locality tiers.
    pub fn t_sync(&self, shape: RackPlacementShape) -> f64 {
        let k = shape.gpus;
        if k <= 1 {
            0.0
        } else if shape.racks > 1 {
            self.alpha_sync_rack + self.beta_sync_rack * (k - 2) as f64
        } else {
            self.base.t_sync(shape.flat())
        }
    }

    /// `T_iter` with the base γ-norm overlap model.
    pub fn t_iter(&self, shape: RackPlacementShape, batch_size: u64) -> f64 {
        let tg = self.base.t_grad(shape.flat(), batch_size);
        let ts = self.t_sync(shape);
        gamma_norm(tg, ts, self.base.gamma)
    }

    /// `THROUGHPUT(a, m)` with rack awareness.
    pub fn throughput(&self, shape: RackPlacementShape, batch_size: u64) -> f64 {
        let t = self.t_iter(shape, batch_size);
        if t > 0.0 {
            batch_size as f64 / t
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ThroughputParams {
        ThroughputParams::new(0.05, 1.0e-3, 0.02, 0.001, 0.08, 0.004, 2.0).unwrap()
    }

    fn params() -> RackAwareParams {
        RackAwareParams::new(base(), 0.25, 0.01).unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(RackPlacementShape::new(8, 4, 2).is_some());
        assert!(RackPlacementShape::new(8, 4, 5).is_none(), "racks > nodes");
        assert!(RackPlacementShape::new(2, 4, 1).is_none(), "nodes > gpus");
        assert!(RackPlacementShape::new(0, 0, 0).is_none());
    }

    #[test]
    fn params_validation() {
        assert!(RackAwareParams::new(base(), 0.25, 0.01).is_some());
        // Rack tier faster than node tier is physically inconsistent.
        assert!(RackAwareParams::new(base(), 0.01, 0.01).is_none());
        assert!(RackAwareParams::new(base(), f64::NAN, 0.0).is_none());
        assert!(RackAwareParams::new(base(), 0.25, -0.1).is_none());
    }

    #[test]
    fn locality_tiers_are_ordered() {
        let p = params();
        let single = RackPlacementShape::new(1, 1, 1).unwrap();
        let local = RackPlacementShape::new(4, 1, 1).unwrap();
        let node = RackPlacementShape::new(4, 2, 1).unwrap();
        let rack = RackPlacementShape::new(4, 2, 2).unwrap();
        assert_eq!(p.t_sync(single), 0.0);
        assert!(p.t_sync(local) < p.t_sync(node));
        assert!(p.t_sync(node) < p.t_sync(rack));
    }

    #[test]
    fn single_rack_matches_base_model() {
        // With one rack the extension reduces exactly to Eqn 10.
        let p = params();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 4)] {
            let shape = RackPlacementShape::new(g, n, 1).unwrap();
            let m = 512;
            assert_eq!(p.t_iter(shape, m), base().t_iter(shape.flat(), m));
            assert_eq!(p.throughput(shape, m), base().throughput(shape.flat(), m));
        }
    }

    #[test]
    fn cross_rack_throughput_is_lower() {
        let p = params();
        let intra = RackPlacementShape::new(8, 2, 1).unwrap();
        let cross = RackPlacementShape::new(8, 2, 2).unwrap();
        assert!(p.throughput(cross, 2048) < p.throughput(intra, 2048));
    }
}
