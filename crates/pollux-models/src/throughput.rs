//! The system-throughput model (Sec. 3.2, Eqns 8–11).
//!
//! Per-iteration time is decomposed into gradient computation and
//! gradient synchronization:
//!
//! ```text
//! T_grad(a, m) = α_grad + β_grad · m / K
//! T_sync(a)    = 0                              if K = 1
//!              = α_sync^local + β_sync^local (K−2)   if N = 1, K ≥ 2
//!              = α_sync^node  + β_sync^node  (K−2)   otherwise
//! T_iter       = (T_grad^γ + T_sync^γ)^(1/γ)        γ ∈ [1, 10]
//! THROUGHPUT(a, m) = m / T_iter(a, m)
//! ```
//!
//! `K` is the total number of allocated GPUs and `N` the number of
//! distinct physical nodes occupied. The γ-norm smoothly interpolates
//! between no compute/communication overlap (γ = 1, `T_iter = T_grad +
//! T_sync`) and perfect overlap (γ → ∞, `T_iter = max(T_grad, T_sync)`).

use serde::{Deserialize, Serialize};

/// A placement summarized by the only two quantities `T_iter` depends
/// on: total GPUs `K` and occupied nodes `N`.
///
/// Full allocation vectors (which GPUs on which nodes) live in
/// `pollux-cluster`; they reduce to this shape for throughput
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlacementShape {
    /// Total number of allocated GPUs, `K ≥ 1`.
    pub gpus: u32,
    /// Number of physical nodes with at least one allocated GPU,
    /// `1 ≤ N ≤ K`.
    pub nodes: u32,
}

impl PlacementShape {
    /// Creates a placement shape, validating `1 ≤ nodes ≤ gpus`.
    pub fn new(gpus: u32, nodes: u32) -> Option<Self> {
        if gpus >= 1 && nodes >= 1 && nodes <= gpus {
            Some(Self { gpus, nodes })
        } else {
            None
        }
    }

    /// A single GPU on a single node.
    pub fn single() -> Self {
        Self { gpus: 1, nodes: 1 }
    }

    /// True when replicas span more than one physical node.
    pub fn is_distributed(&self) -> bool {
        self.nodes > 1
    }
}

/// The seven learnable system-throughput parameters θsys (Eqn 12).
///
/// All `α`/`β` parameters are in seconds (per iteration, or per
/// `(K−2)` retrogression step); `β_grad` is seconds per local example.
///
/// # Examples
///
/// ```
/// use pollux_models::{PlacementShape, ThroughputParams};
///
/// let p = ThroughputParams::new(0.01, 1e-3, 0.02, 0.002, 0.07, 0.008, 1.8).unwrap();
/// let one = PlacementShape::single();
/// let sixteen = PlacementShape::new(16, 4).unwrap();
/// // At a fixed small batch, 16 GPUs are sync-bound (Amdahl's law)...
/// let small_scaling = p.throughput(sixteen, 512) / p.throughput(one, 512);
/// // ...while a large batch amortizes the synchronization.
/// let large_scaling = p.throughput(sixteen, 2048) / p.throughput(one, 2048);
/// assert!(large_scaling > 2.0 * small_scaling);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputParams {
    /// Fixed per-iteration gradient-computation overhead (s).
    pub alpha_grad: f64,
    /// Per-local-example gradient-computation cost (s/example).
    pub beta_grad: f64,
    /// Synchronization constant when all GPUs share one node (s).
    pub alpha_sync_local: f64,
    /// Synchronization retrogression per extra GPU, co-located (s).
    pub beta_sync_local: f64,
    /// Synchronization constant across nodes (s).
    pub alpha_sync_node: f64,
    /// Synchronization retrogression per extra GPU, across nodes (s).
    pub beta_sync_node: f64,
    /// Overlap exponent γ ∈ [1, 10].
    pub gamma: f64,
}

impl ThroughputParams {
    /// Number of parameters (the θsys 7-tuple).
    pub const DIM: usize = 7;

    /// Lower bounds used when fitting: α, β ≥ 0 and γ ≥ 1.
    pub const LOWER: [f64; Self::DIM] = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0];

    /// Upper bound on γ used when fitting.
    pub const GAMMA_MAX: f64 = 10.0;

    /// Creates parameters, validating the fitting box constraints.
    ///
    /// Returns `None` if any α/β is negative, γ is outside `[1, 10]`,
    /// or any value is non-finite.
    pub fn new(
        alpha_grad: f64,
        beta_grad: f64,
        alpha_sync_local: f64,
        beta_sync_local: f64,
        alpha_sync_node: f64,
        beta_sync_node: f64,
        gamma: f64,
    ) -> Option<Self> {
        let p = Self {
            alpha_grad,
            beta_grad,
            alpha_sync_local,
            beta_sync_local,
            alpha_sync_node,
            beta_sync_node,
            gamma,
        };
        if p.is_valid() {
            Some(p)
        } else {
            None
        }
    }

    /// True when all parameters satisfy the fitting box constraints.
    pub fn is_valid(&self) -> bool {
        let v = self.to_vec();
        v.iter().all(|x| x.is_finite())
            && v[..6].iter().all(|&x| x >= 0.0)
            && (1.0..=Self::GAMMA_MAX).contains(&self.gamma)
    }

    /// Packs the parameters into a vector in the canonical θsys order.
    pub fn to_vec(&self) -> [f64; Self::DIM] {
        [
            self.alpha_grad,
            self.beta_grad,
            self.alpha_sync_local,
            self.beta_sync_local,
            self.alpha_sync_node,
            self.beta_sync_node,
            self.gamma,
        ]
    }

    /// Unpacks parameters from the canonical order without validation.
    pub fn from_slice_unchecked(v: &[f64]) -> Self {
        Self {
            alpha_grad: v[0],
            beta_grad: v[1],
            alpha_sync_local: v[2],
            beta_sync_local: v[3],
            alpha_sync_node: v[4],
            beta_sync_node: v[5],
            gamma: v[6],
        }
    }

    /// `T_grad(a, m) = α_grad + β_grad · m / K` (Eqn 9).
    pub fn t_grad(&self, shape: PlacementShape, batch_size: u64) -> f64 {
        self.alpha_grad + self.beta_grad * batch_size as f64 / shape.gpus as f64
    }

    /// `T_sync(a)` (Eqn 10): zero for one GPU, locality-dependent
    /// otherwise.
    pub fn t_sync(&self, shape: PlacementShape) -> f64 {
        let k = shape.gpus;
        if k <= 1 {
            0.0
        } else if shape.nodes == 1 {
            self.alpha_sync_local + self.beta_sync_local * (k - 2) as f64
        } else {
            self.alpha_sync_node + self.beta_sync_node * (k - 2) as f64
        }
    }

    /// `T_iter = (T_grad^γ + T_sync^γ)^{1/γ}` (Eqn 11).
    pub fn t_iter(&self, shape: PlacementShape, batch_size: u64) -> f64 {
        let tg = self.t_grad(shape, batch_size);
        let ts = self.t_sync(shape);
        gamma_norm(tg, ts, self.gamma)
    }

    /// `THROUGHPUT(a, m) = m / T_iter(a, m)` in examples per second
    /// (Eqn 8). Returns 0 when `T_iter` is not positive.
    pub fn throughput(&self, shape: PlacementShape, batch_size: u64) -> f64 {
        let t = self.t_iter(shape, batch_size);
        if t > 0.0 {
            batch_size as f64 / t
        } else {
            0.0
        }
    }
}

/// The γ-norm combination `(a^γ + b^γ)^{1/γ}` for non-negative `a`, `b`.
///
/// Evaluated in a numerically stable way by factoring out the larger
/// term, so `γ` up to 10 never overflows even for large iteration times.
pub fn gamma_norm(a: f64, b: f64, gamma: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi <= 0.0 {
        return 0.0;
    }
    let r = lo / hi;
    hi * (1.0 + r.powf(gamma)).powf(1.0 / gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> ThroughputParams {
        ThroughputParams::new(0.05, 1.0e-3, 0.02, 0.001, 0.1, 0.004, 2.0).unwrap()
    }

    #[test]
    fn placement_shape_validation() {
        assert!(PlacementShape::new(4, 2).is_some());
        assert!(PlacementShape::new(0, 0).is_none());
        assert!(PlacementShape::new(2, 3).is_none());
        assert!(PlacementShape::new(1, 0).is_none());
        assert!(PlacementShape::single().gpus == 1);
        assert!(!PlacementShape::new(4, 1).unwrap().is_distributed());
        assert!(PlacementShape::new(4, 2).unwrap().is_distributed());
    }

    #[test]
    fn params_validation() {
        assert!(ThroughputParams::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0).is_some());
        assert!(ThroughputParams::new(-0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0).is_none());
        assert!(ThroughputParams::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5).is_none());
        assert!(ThroughputParams::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 11.0).is_none());
        assert!(ThroughputParams::new(f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn roundtrip_vec() {
        let p = params();
        let q = ThroughputParams::from_slice_unchecked(&p.to_vec());
        assert_eq!(p, q);
    }

    #[test]
    fn t_grad_scales_with_local_batch() {
        let p = params();
        let s1 = PlacementShape::new(1, 1).unwrap();
        let s4 = PlacementShape::new(4, 1).unwrap();
        // 4 GPUs each process m/4 examples: T_grad shrinks accordingly.
        let t1 = p.t_grad(s1, 1024);
        let t4 = p.t_grad(s4, 1024);
        assert!((t1 - (0.05 + 1.0e-3 * 1024.0)).abs() < 1e-12);
        assert!((t4 - (0.05 + 1.0e-3 * 256.0)).abs() < 1e-12);
    }

    #[test]
    fn t_sync_is_zero_for_single_gpu() {
        let p = params();
        assert_eq!(p.t_sync(PlacementShape::single()), 0.0);
    }

    #[test]
    fn t_sync_uses_locality_parameters() {
        let p = params();
        let local = PlacementShape::new(4, 1).unwrap();
        let multi = PlacementShape::new(4, 2).unwrap();
        assert!((p.t_sync(local) - (0.02 + 0.001 * 2.0)).abs() < 1e-12);
        assert!((p.t_sync(multi) - (0.1 + 0.004 * 2.0)).abs() < 1e-12);
        // Cross-node sync is slower than co-located sync.
        assert!(p.t_sync(multi) > p.t_sync(local));
    }

    #[test]
    fn t_sync_at_exactly_two_gpus_is_alpha_only() {
        let p = params();
        assert!((p.t_sync(PlacementShape::new(2, 1).unwrap()) - 0.02).abs() < 1e-12);
        assert!((p.t_sync(PlacementShape::new(2, 2).unwrap()) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gamma_one_is_sum_gamma_inf_is_max() {
        assert!((gamma_norm(3.0, 4.0, 1.0) - 7.0).abs() < 1e-12);
        // Large gamma approaches max(a, b).
        assert!((gamma_norm(3.0, 4.0, 200.0) - 4.0).abs() < 1e-9);
        // Gamma-norm is between max and sum for gamma in (1, inf).
        let v = gamma_norm(3.0, 4.0, 2.0);
        assert!(v > 4.0 && v < 7.0);
        assert!((v - 5.0).abs() < 1e-12); // 3-4-5 triangle.
    }

    #[test]
    fn gamma_norm_handles_zeros() {
        assert_eq!(gamma_norm(0.0, 0.0, 2.0), 0.0);
        assert!((gamma_norm(5.0, 0.0, 2.0) - 5.0).abs() < 1e-12);
        assert!((gamma_norm(0.0, 5.0, 3.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_saturates_with_gpus_at_fixed_batch() {
        // Amdahl's law (Sec. 2.1): at a fixed batch size, adding GPUs
        // shrinks T_grad but not T_sync, so throughput saturates below
        // m / T_sync.
        let p = params();
        let m = 1024;
        let mut last = 0.0;
        for k in 1..=16u32 {
            let shape = PlacementShape::new(k, k.div_ceil(4)).unwrap();
            let x = p.throughput(shape, m);
            if k > 2 {
                let bound = m as f64 / p.t_sync(shape);
                assert!(x <= bound + 1e-9, "K = {k}: {x} > {bound}");
            }
            if k >= 4 {
                // Diminishing returns: relative gain per GPU shrinks.
                assert!(x < last * 2.0);
            }
            last = x;
        }
    }

    #[test]
    fn larger_batch_enables_better_scaling() {
        // Fig 1a: the 2048 batch scales to more GPUs than the 512 batch.
        let p = params();
        let k16 = PlacementShape::new(16, 4).unwrap();
        let k1 = PlacementShape::single();
        let scale_small = p.throughput(k16, 512) / p.throughput(k1, 512);
        let scale_large = p.throughput(k16, 2048) / p.throughput(k1, 2048);
        assert!(
            scale_large > scale_small,
            "large-batch speedup {scale_large} should exceed small-batch {scale_small}"
        );
    }

    proptest! {
        #[test]
        fn t_iter_bounded_by_sum_and_max(
            ag in 0.0f64..1.0, bg in 0.0f64..0.01,
            asl in 0.0f64..1.0, bsl in 0.0f64..0.1,
            asn in 0.0f64..1.0, bsn in 0.0f64..0.1,
            gamma in 1.0f64..10.0,
            gpus in 1u32..64, m in 1u64..100_000,
        ) {
            let p = ThroughputParams::new(ag, bg, asl, bsl, asn, bsn, gamma).unwrap();
            let nodes = gpus.div_ceil(4).max(1).min(gpus);
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            let tg = p.t_grad(shape, m);
            let ts = p.t_sync(shape);
            let ti = p.t_iter(shape, m);
            prop_assert!(ti <= tg + ts + 1e-9, "t_iter {} > sum {}", ti, tg + ts);
            prop_assert!(ti >= tg.max(ts) - 1e-9, "t_iter {} < max {}", ti, tg.max(ts));
        }

        #[test]
        fn throughput_monotone_in_batch_size(
            m in 64u64..100_000,
            gpus in 1u32..32,
        ) {
            // More examples per iteration never reduces examples/sec in
            // this model (T_iter grows sub-linearly in m).
            let p = ThroughputParams::new(0.05, 1e-3, 0.02, 0.001, 0.1, 0.004, 2.0).unwrap();
            let nodes = gpus.div_ceil(4).max(1);
            let shape = PlacementShape::new(gpus, nodes).unwrap();
            prop_assert!(p.throughput(shape, m * 2) >= p.throughput(shape, m) - 1e-9);
        }
    }
}
