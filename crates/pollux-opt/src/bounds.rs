//! Box constraints for bound-constrained optimization.

/// A rectangular (box) constraint set: `lo[i] <= x[i] <= hi[i]`.
///
/// Either side may be infinite. Construction validates that every
/// interval is non-empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// Creates a box from lower and upper coordinate bounds.
    ///
    /// Returns `None` if lengths differ, any `lo[i] > hi[i]`, or any
    /// bound is NaN.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Option<Self> {
        if lo.len() != hi.len() {
            return None;
        }
        for (&l, &h) in lo.iter().zip(&hi) {
            if l.is_nan() || h.is_nan() || l > h {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// An unconstrained box of dimension `dim`.
    pub fn unbounded(dim: usize) -> Self {
        Self {
            lo: vec![f64::NEG_INFINITY; dim],
            hi: vec![f64::INFINITY; dim],
        }
    }

    /// A box where every coordinate shares the same `[lo, hi]` interval.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Option<Self> {
        Self::new(vec![lo; dim], vec![hi; dim])
    }

    /// Number of coordinates.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound of coordinate `i`.
    pub fn lo(&self, i: usize) -> f64 {
        self.lo[i]
    }

    /// Upper bound of coordinate `i`.
    pub fn hi(&self, i: usize) -> f64 {
        self.hi[i]
    }

    /// Projects `x` onto the box in place (componentwise clamp).
    pub fn project(&self, x: &mut [f64]) {
        for (xi, (&l, &h)) in x.iter_mut().zip(self.lo.iter().zip(&self.hi)) {
            if *xi < l {
                *xi = l;
            } else if *xi > h {
                *xi = h;
            }
        }
    }

    /// Returns a projected copy of `x`.
    pub fn projected(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.project(&mut y);
        y
    }

    /// True when `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&xi, (&l, &h))| xi >= l && xi <= h)
    }

    /// True when coordinate `i` of `x` is at (or numerically on) a bound
    /// and the gradient pushes it further outside.
    ///
    /// Used to zero search directions along active constraints.
    pub fn is_active(&self, x: &[f64], grad: &[f64], i: usize) -> bool {
        let eps = 1e-12;
        (x[i] <= self.lo[i] + eps && grad[i] > 0.0) || (x[i] >= self.hi[i] - eps && grad[i] < 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_bad_boxes() {
        assert!(Bounds::new(vec![0.0], vec![1.0, 2.0]).is_none());
        assert!(Bounds::new(vec![2.0], vec![1.0]).is_none());
        assert!(Bounds::new(vec![f64::NAN], vec![1.0]).is_none());
        assert!(Bounds::new(vec![0.0], vec![0.0]).is_some());
    }

    #[test]
    fn project_clamps_each_coordinate() {
        let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]).unwrap();
        let mut x = vec![-5.0, 0.5];
        b.project(&mut x);
        assert_eq!(x, vec![0.0, 0.5]);
        let mut x = vec![2.0, 9.0];
        b.project(&mut x);
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn unbounded_contains_everything_finite() {
        let b = Bounds::unbounded(3);
        assert!(b.contains(&[1e300, -1e300, 0.0]));
    }

    #[test]
    fn active_set_detection() {
        let b = Bounds::new(vec![0.0], vec![10.0]).unwrap();
        // At the lower bound with a gradient pushing down (positive grad on
        // a minimization step moves x down): active.
        assert!(b.is_active(&[0.0], &[1.0], 0));
        assert!(!b.is_active(&[0.0], &[-1.0], 0));
        assert!(b.is_active(&[10.0], &[-1.0], 0));
        assert!(!b.is_active(&[5.0], &[1.0], 0));
    }

    proptest! {
        #[test]
        fn projection_is_idempotent_and_feasible(
            lo in -100.0f64..0.0,
            width in 0.0f64..100.0,
            x in proptest::collection::vec(-1e4f64..1e4, 1..8)
        ) {
            let dim = x.len();
            let b = Bounds::uniform(dim, lo, lo + width).unwrap();
            let p1 = b.projected(&x);
            prop_assert!(b.contains(&p1));
            let p2 = b.projected(&p1);
            prop_assert_eq!(p1, p2);
        }

        #[test]
        fn projection_is_closest_point_componentwise(
            x in proptest::collection::vec(-1e4f64..1e4, 1..8)
        ) {
            let dim = x.len();
            let b = Bounds::uniform(dim, -1.0, 1.0).unwrap();
            let p = b.projected(&x);
            for i in 0..dim {
                // No feasible coordinate can be closer than the clamp.
                let closest = x[i].clamp(-1.0, 1.0);
                prop_assert!((p[i] - closest).abs() < 1e-15);
            }
        }
    }
}
