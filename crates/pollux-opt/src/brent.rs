//! Brent's method for one-dimensional minimization.
//!
//! Combines golden-section's guaranteed linear convergence with
//! successive parabolic interpolation's superlinear convergence on
//! smooth functions — typically 2–3× fewer evaluations than pure
//! golden-section on the goodput batch-size objective. Provided as an
//! alternative to [`crate::golden`]; the Pollux pipeline defaults to
//! golden-section (the paper's choice) but either works.

use crate::OptError;

/// Inverse golden ratio complement, `(3 − sqrt(5)) / 2`.
const CGOLD: f64 = 0.381_966_011_250_105_1;

/// Minimizes a unimodal function `f` on `[lo, hi]` with Brent's method.
///
/// Returns `(x_min, f(x_min))` once the bracketing interval shrinks
/// below `tol` (absolute) or after `max_iters` iterations.
///
/// # Errors
///
/// - [`OptError::InvalidDomain`] for inverted or non-finite bounds.
/// - [`OptError::NonFiniteObjective`] when `f` is non-finite at the
///   initial probe point.
pub fn brent_min<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(f64, f64), OptError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::InvalidDomain(format!("[{lo}, {hi}]")));
    }
    let (mut a, mut b) = (lo, hi);
    let mut x = a + CGOLD * (b - a);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    if !fx.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iters {
        let m = 0.5 * (a + b);
        let tol1 = tol.max(1e-12) * x.abs().max(1.0) + 1e-15;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (b - a) {
            break;
        }

        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try a parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q_ = (x - v) * (fx - fw);
            let mut p = (x - v) * q_ - (x - w) * r;
            let mut q2 = 2.0 * (q_ - r);
            if q2 > 0.0 {
                p = -p;
            }
            q2 = q2.abs();
            let e_old = e;
            e = d;
            // Accept the parabolic step only when it falls inside the
            // bracket and shrinks faster than the golden fallback.
            if p.abs() < (0.5 * q2 * e_old).abs() && p > q2 * (a - x) && p < q2 * (b - x) {
                d = p / q2;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { b - x } else { a - x };
            d = CGOLD * e;
        }

        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        let fu_cmp = if fu.is_finite() { fu } else { f64::INFINITY };

        if fu_cmp <= fx {
            if u < x {
                b = x;
            } else {
                a = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu_cmp;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu_cmp <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu_cmp;
            } else if fu_cmp <= fv || v == x || v == w {
                v = u;
                fv = fu_cmp;
            }
        }
    }

    if !fx.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }
    Ok((x, fx))
}

/// Maximizes a unimodal function by minimizing its negation.
pub fn brent_max<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(f64, f64), OptError>
where
    F: FnMut(f64) -> f64,
{
    let (x, neg) = brent_min(|x| -f(x), lo, hi, tol, max_iters)?;
    Ok((x, -neg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_parabola_minimum() {
        let (x, fx) = brent_min(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 1e-10, 200).unwrap();
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn max_wrapper() {
        let (x, fx) = brent_max(|x| -(x - 2.0) * (x - 2.0) + 5.0, -10.0, 10.0, 1e-10, 200).unwrap();
        assert!((x - 2.0).abs() < 1e-6);
        assert!((fx - 5.0).abs() < 1e-9);
    }

    #[test]
    fn edge_optima() {
        let (x, _) = brent_min(|x| x, 0.0, 5.0, 1e-9, 200).unwrap();
        assert!(x < 1e-3, "x = {x}");
        let (x, _) = brent_min(|x| -x, 0.0, 5.0, 1e-9, 200).unwrap();
        assert!((x - 5.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            brent_min(|x| x, 1.0, 0.0, 1e-9, 10),
            Err(OptError::InvalidDomain(_))
        ));
        assert!(matches!(
            brent_min(|_| f64::NAN, 0.0, 1.0, 1e-9, 10),
            Err(OptError::NonFiniteObjective)
        ));
    }

    #[test]
    fn converges_faster_than_golden_on_smooth_objective() {
        use crate::golden::golden_section_min;
        let count_brent = std::cell::Cell::new(0usize);
        let count_golden = std::cell::Cell::new(0usize);
        let f_b = |x: f64| {
            count_brent.set(count_brent.get() + 1);
            (x - 1.234).powi(2) + 0.1 * (x - 1.234).powi(4)
        };
        let f_g = |x: f64| {
            count_golden.set(count_golden.get() + 1);
            (x - 1.234).powi(2) + 0.1 * (x - 1.234).powi(4)
        };
        let (xb, _) = brent_min(f_b, -10.0, 10.0, 1e-9, 300).unwrap();
        let (xg, _) = golden_section_min(f_g, -10.0, 10.0, 1e-9, 300).unwrap();
        assert!((xb - 1.234).abs() < 1e-5);
        assert!((xg - 1.234).abs() < 1e-5);
        assert!(
            count_brent.get() < count_golden.get(),
            "brent {} vs golden {}",
            count_brent.get(),
            count_golden.get()
        );
    }

    proptest! {
        #[test]
        fn agrees_with_golden_on_random_parabolas(
            peak in -50.0f64..50.0,
            scale in 0.1f64..10.0,
        ) {
            use crate::golden::golden_section_min;
            let f = |x: f64| scale * (x - peak) * (x - peak);
            let (xb, _) = brent_min(f, -100.0, 100.0, 1e-8, 300).unwrap();
            let (xg, _) = golden_section_min(f, -100.0, 100.0, 1e-8, 300).unwrap();
            prop_assert!((xb - peak).abs() < 1e-4, "brent x = {}", xb);
            prop_assert!((xb - xg).abs() < 1e-3);
        }
    }
}
