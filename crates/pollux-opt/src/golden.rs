//! Golden-section search for unimodal functions.
//!
//! Pollux uses golden-section search (Kiefer, 1953) in two places:
//!
//! - `PolluxAgent` maximizes `GOODPUT(a, m)` over the batch size `m`
//!   (Eqn 13).
//! - `PolluxSched` evaluates `SPEEDUP_j` (Eqn 15), whose numerator and
//!   denominator are each a maximization of goodput over `m`.
//!
//! Goodput is unimodal in `m` (throughput is increasing and saturating,
//! efficiency is decreasing), so golden-section converges to the global
//! maximum on the interval.

use crate::OptError;

/// Inverse golden ratio, `(sqrt(5) - 1) / 2`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Maximizes a unimodal function `f` on `[lo, hi]`.
///
/// Returns `(x_max, f(x_max))`. The search runs until the bracketing
/// interval is narrower than `tol` (absolute) or `max_iters` shrink
/// steps have been performed, whichever comes first.
///
/// # Examples
///
/// ```
/// use pollux_opt::golden_section_max;
///
/// let (x, fx) = golden_section_max(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-8, 200).unwrap();
/// assert!((x - 3.0).abs() < 1e-6);
/// assert!(fx.abs() < 1e-10);
/// ```
///
/// # Errors
///
/// Returns [`OptError::InvalidDomain`] when `lo > hi` or either end is
/// non-finite, and [`OptError::NonFiniteObjective`] when `f` is
/// non-finite at both initial probe points.
pub fn golden_section_max<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(f64, f64), OptError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::InvalidDomain(format!("[{lo}, {hi}]")));
    }
    if hi - lo <= tol {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        if !v.is_finite() {
            return Err(OptError::NonFiniteObjective);
        }
        return Ok((mid, v));
    }

    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    if !fc.is_finite() && !fd.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }

    for _ in 0..max_iters {
        if b - a <= tol {
            break;
        }
        // Treat non-finite values as -inf so the search retreats from them.
        let fc_cmp = if fc.is_finite() {
            fc
        } else {
            f64::NEG_INFINITY
        };
        let fd_cmp = if fd.is_finite() {
            fd
        } else {
            f64::NEG_INFINITY
        };
        if fc_cmp > fd_cmp {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }

    let x = 0.5 * (a + b);
    let fx = f(x);
    // Return the best of the evaluated points to be robust to plateaus.
    let mut best = (x, fx);
    for (p, v) in [(c, fc), (d, fd)] {
        if v.is_finite() && (v > best.1 || !best.1.is_finite()) {
            best = (p, v);
        }
    }
    if !best.1.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }
    Ok(best)
}

/// Minimizes a unimodal function by maximizing its negation.
pub fn golden_section_min<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(f64, f64), OptError>
where
    F: FnMut(f64) -> f64,
{
    let (x, neg) = golden_section_max(|x| -f(x), lo, hi, tol, max_iters)?;
    Ok((x, -neg))
}

/// Maximizes a unimodal function over the **integers** in `[lo, hi]`.
///
/// Batch sizes are integer sample counts; this wrapper runs the
/// continuous search and then polishes by evaluating the integer
/// neighborhood of the continuous optimum, guaranteeing the returned
/// point is an integer in range.
///
/// # Errors
///
/// Propagates the continuous-search errors.
pub fn golden_section_max_int<F>(mut f: F, lo: u64, hi: u64) -> Result<(u64, f64), OptError>
where
    F: FnMut(u64) -> f64,
{
    if lo > hi {
        return Err(OptError::InvalidDomain(format!("[{lo}, {hi}]")));
    }
    if hi - lo <= 8 {
        // Small range: exhaustive scan.
        let mut best: Option<(u64, f64)> = None;
        for m in lo..=hi {
            let v = f(m);
            if v.is_finite() && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((m, v));
            }
        }
        return best.ok_or(OptError::NonFiniteObjective);
    }

    let (xc, _) = golden_section_max(|x| f(x.round() as u64), lo as f64, hi as f64, 0.5, 128)?;
    let center = xc.round() as i64;
    let mut best: Option<(u64, f64)> = None;
    for dm in -2i64..=2 {
        let m = (center + dm).clamp(lo as i64, hi as i64) as u64;
        let v = f(m);
        if v.is_finite() && best.is_none_or(|(_, bv)| v > bv) {
            best = Some((m, v));
        }
    }
    best.ok_or(OptError::NonFiniteObjective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_parabola_peak() {
        let (x, fx) = golden_section_max(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-8, 200).unwrap();
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
        assert!(fx.abs() < 1e-10);
    }

    #[test]
    fn finds_minimum_via_min_wrapper() {
        let (x, fx) =
            golden_section_min(|x| (x - 1.5).powi(2) + 2.0, -10.0, 10.0, 1e-9, 200).unwrap();
        assert!((x - 1.5).abs() < 1e-6);
        assert!((fx - 2.0).abs() < 1e-10);
    }

    #[test]
    fn peak_at_interval_edge() {
        // Monotone increasing: maximum at hi.
        let (x, _) = golden_section_max(|x| x, 0.0, 5.0, 1e-9, 200).unwrap();
        assert!((x - 5.0).abs() < 1e-6);
        // Monotone decreasing: maximum at lo.
        let (x, _) = golden_section_max(|x| -x, 0.0, 5.0, 1e-9, 200).unwrap();
        assert!(x.abs() < 1e-6);
    }

    #[test]
    fn degenerate_interval_returns_midpoint() {
        let (x, fx) = golden_section_max(|x| x * x, 2.0, 2.0, 1e-9, 100).unwrap();
        assert_eq!(x, 2.0);
        assert_eq!(fx, 4.0);
    }

    #[test]
    fn rejects_inverted_interval() {
        assert!(matches!(
            golden_section_max(|x| x, 1.0, 0.0, 1e-9, 10),
            Err(OptError::InvalidDomain(_))
        ));
    }

    #[test]
    fn rejects_nan_objective() {
        assert!(matches!(
            golden_section_max(|_| f64::NAN, 0.0, 1.0, 1e-9, 10),
            Err(OptError::NonFiniteObjective)
        ));
    }

    #[test]
    fn tolerates_partial_nan_region() {
        // NaN below 2.0, unimodal above; the search should still find ~3.
        let f = |x: f64| {
            if x < 2.0 {
                f64::NAN
            } else {
                -(x - 3.0).powi(2)
            }
        };
        let (x, _) = golden_section_max(f, 0.0, 10.0, 1e-6, 300).unwrap();
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn integer_search_small_range_is_exact() {
        let (m, v) = golden_section_max_int(|m| -((m as f64) - 5.0).powi(2), 3, 9).unwrap();
        assert_eq!(m, 5);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn integer_search_large_range() {
        let (m, _) =
            golden_section_max_int(|m| -((m as f64) - 1234.0).powi(2), 1, 100_000).unwrap();
        assert_eq!(m, 1234);
    }

    #[test]
    fn integer_search_respects_bounds() {
        // Optimum at 0 is below the domain; should return lo.
        let (m, _) = golden_section_max_int(|m| -(m as f64), 10, 1000).unwrap();
        assert_eq!(m, 10);
    }

    proptest! {
        #[test]
        fn converges_on_random_shifted_parabolas(peak in -50.0f64..50.0, scale in 0.1f64..10.0) {
            let (x, _) = golden_section_max(
                |x| -scale * (x - peak) * (x - peak),
                -100.0, 100.0, 1e-7, 400,
            ).unwrap();
            prop_assert!((x - peak).abs() < 1e-4, "x = {}, peak = {}", x, peak);
        }

        #[test]
        fn integer_search_matches_exhaustive(peak in 0u64..2000, hi in 2000u64..4000) {
            let f = |m: u64| -((m as f64) - (peak as f64)).powi(2);
            let (m, _) = golden_section_max_int(f, 0, hi).unwrap();
            prop_assert_eq!(m, peak);
        }
    }
}
