//! Bound-constrained limited-memory quasi-Newton minimization.
//!
//! A practical replacement for the L-BFGS-B routine the original Pollux
//! implementation calls through SciPy: limited-memory BFGS directions
//! computed on the free variables (gradient-projection active set), with
//! a projected-path backtracking Armijo line search. For the 7-parameter
//! θsys fit this converges in a few dozen iterations.

use crate::bounds::Bounds;
use crate::numgrad::central_gradient;
use crate::OptError;

/// Options controlling [`lbfgsb_minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsbOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// History length for the limited-memory Hessian approximation.
    pub history: usize,
    /// Convergence tolerance on the projected-gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence tolerance on the relative objective decrease.
    pub f_tol: f64,
    /// Relative step used for numerical gradients.
    pub grad_eps: f64,
}

impl Default for LbfgsbOptions {
    fn default() -> Self {
        Self {
            max_iters: 200,
            history: 8,
            grad_tol: 1e-8,
            f_tol: 1e-12,
            grad_eps: 1e-7,
        }
    }
}

/// Result of a bound-constrained minimization.
#[derive(Debug, Clone)]
pub struct LbfgsbResult {
    /// Final (feasible) point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Outer iterations performed.
    pub iters: usize,
    /// True when a convergence criterion was met (vs. iteration cap).
    pub converged: bool,
}

/// Minimizes `f` over the box `bounds` starting from `x0`.
///
/// The objective only needs to be defined inside the box: all probe
/// points (including numeric-gradient probes after projection) stay
/// feasible up to the gradient step `grad_eps`.
///
/// # Errors
///
/// - [`OptError::DimensionMismatch`] when `x0` and `bounds` disagree.
/// - [`OptError::NonFiniteObjective`] when `f` is non-finite at the
///   projected initial point.
pub fn lbfgsb_minimize<F>(
    mut f: F,
    x0: &[f64],
    bounds: &Bounds,
    opts: &LbfgsbOptions,
) -> Result<LbfgsbResult, OptError>
where
    F: FnMut(&[f64]) -> f64,
{
    if x0.len() != bounds.dim() {
        return Err(OptError::DimensionMismatch {
            point: x0.len(),
            bounds: bounds.dim(),
        });
    }
    let n = x0.len();
    let mut x = bounds.projected(x0);
    let mut fx = f(&x);
    if !fx.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }

    // Wrap the objective so any excursion outside the box is projected
    // back first; this keeps numeric-gradient probes feasible.
    let mut safe_f = |p: &[f64]| {
        if bounds.contains(p) {
            f(p)
        } else {
            f(&bounds.projected(p))
        }
    };

    let mut grad = central_gradient(&mut safe_f, &x, opts.grad_eps);
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();
    let mut converged = false;
    let mut iters = 0;

    for iter in 0..opts.max_iters {
        iters = iter + 1;

        // Projected-gradient stationarity check: || P(x - g) - x ||_inf.
        let mut pg_norm: f64 = 0.0;
        for i in 0..n {
            let stepped = (x[i] - grad[i]).clamp(bounds.lo(i), bounds.hi(i));
            pg_norm = pg_norm.max((stepped - x[i]).abs());
        }
        if pg_norm < opts.grad_tol {
            converged = true;
            break;
        }

        // Restrict to free variables: zero the gradient along active bounds.
        let mut g_free = grad.clone();
        for (i, gi) in g_free.iter_mut().enumerate() {
            if bounds.is_active(&x, &grad, i) {
                *gi = 0.0;
            }
        }

        // Two-loop recursion for d = -H * g_free.
        let mut d = two_loop_direction(&g_free, &s_hist, &y_hist, &rho_hist);
        // Zero the direction along active constraints too, so the line
        // search does not fight the projection.
        for (i, di) in d.iter_mut().enumerate() {
            if bounds.is_active(&x, &grad, i) {
                *di = 0.0;
            }
        }
        let dir_dot_grad: f64 = d.iter().zip(&grad).map(|(a, b)| a * b).sum();
        if dir_dot_grad >= 0.0 || !dir_dot_grad.is_finite() {
            // Not a descent direction (stale curvature); reset to steepest
            // descent on the free variables.
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
            d = g_free.iter().map(|g| -g).collect();
            if d.iter().all(|&v| v == 0.0) {
                converged = true;
                break;
            }
        }

        // Projected backtracking line search (Armijo).
        let dd: f64 = d.iter().zip(&grad).map(|(a, b)| a * b).sum();
        let mut alpha = 1.0;
        let c1 = 1e-4;
        let mut accepted = false;
        let mut x_new = x.clone();
        let mut f_new = fx;
        for _ in 0..50 {
            for i in 0..n {
                x_new[i] = (x[i] + alpha * d[i]).clamp(bounds.lo(i), bounds.hi(i));
            }
            f_new = safe_f(&x_new);
            // The Armijo condition along the projected path uses the true
            // displacement rather than alpha * d.
            let disp_dot_grad: f64 = x_new
                .iter()
                .zip(&x)
                .zip(&grad)
                .map(|((xn, xo), g)| (xn - xo) * g)
                .sum();
            if f_new.is_finite() && f_new <= fx + c1 * disp_dot_grad.min(alpha * dd) {
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            // The line search failed: we are at (numerical) stationarity.
            converged = true;
            break;
        }

        let grad_new = central_gradient(&mut safe_f, &x_new, opts.grad_eps);
        let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(a, b)| a - b).collect();
        let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
        if sy > 1e-12 && sy.is_finite() {
            if s_hist.len() == opts.history {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            s_hist.push(s);
            y_hist.push(y);
            rho_hist.push(1.0 / sy);
        }

        let f_decrease = (fx - f_new).abs();
        let f_scale = fx.abs().max(f_new.abs()).max(1.0);
        x = x_new.clone();
        fx = f_new;
        grad = grad_new;
        if f_decrease / f_scale < opts.f_tol {
            converged = true;
            break;
        }
    }

    Ok(LbfgsbResult {
        x,
        fx,
        iters,
        converged,
    })
}

/// L-BFGS two-loop recursion producing `-H * g`.
fn two_loop_direction(
    g: &[f64],
    s_hist: &[Vec<f64>],
    y_hist: &[Vec<f64>],
    rho_hist: &[f64],
) -> Vec<f64> {
    let mut q = g.to_vec();
    let k = s_hist.len();
    let mut alphas = vec![0.0; k];
    for i in (0..k).rev() {
        let a = rho_hist[i] * dot(&s_hist[i], &q);
        alphas[i] = a;
        for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
            *qj -= a * yj;
        }
    }
    // Initial Hessian scaling H0 = (s·y / y·y) I.
    if k > 0 {
        let last = k - 1;
        let yy = dot(&y_hist[last], &y_hist[last]);
        if yy > 0.0 {
            let gamma = 1.0 / (rho_hist[last] * yy);
            for qj in q.iter_mut() {
                *qj *= gamma;
            }
        }
    }
    for i in 0..k {
        let beta = rho_hist[i] * dot(&y_hist[i], &q);
        for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
            *qj += (alphas[i] - beta) * sj;
        }
    }
    q.iter_mut().for_each(|v| *v = -*v);
    q
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn default_opts() -> LbfgsbOptions {
        LbfgsbOptions::default()
    }

    #[test]
    fn minimizes_unconstrained_quadratic() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2);
        let r = lbfgsb_minimize(f, &[5.0, 5.0], &Bounds::unbounded(2), &default_opts()).unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn respects_active_lower_bound() {
        // Unconstrained minimum at (-3, -3); feasible minimum at (0, 0).
        let f = |x: &[f64]| (x[0] + 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let b = Bounds::uniform(2, 0.0, 10.0).unwrap();
        let r = lbfgsb_minimize(f, &[5.0, 5.0], &b, &default_opts()).unwrap();
        assert!(r.x[0].abs() < 1e-5 && r.x[1].abs() < 1e-5, "{:?}", r.x);
    }

    #[test]
    fn respects_active_upper_bound() {
        let f = |x: &[f64]| (x[0] - 100.0).powi(2);
        let b = Bounds::new(vec![0.0], vec![7.0]).unwrap();
        let r = lbfgsb_minimize(f, &[1.0], &b, &default_opts()).unwrap();
        assert!((r.x[0] - 7.0).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn mixed_active_and_free_coordinates() {
        // Min at (-5, 2): x0 pinned to its lower bound 0, x1 free.
        let f = |x: &[f64]| (x[0] + 5.0).powi(2) + (x[1] - 2.0).powi(2);
        let b = Bounds::new(vec![0.0, -10.0], vec![10.0, 10.0]).unwrap();
        let r = lbfgsb_minimize(f, &[3.0, -3.0], &b, &default_opts()).unwrap();
        assert!(r.x[0].abs() < 1e-5);
        assert!((r.x[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn solves_constrained_rosenbrock() {
        let f = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            a * a + 100.0 * b * b
        };
        let b = Bounds::uniform(2, -2.0, 2.0).unwrap();
        let mut opts = default_opts();
        opts.max_iters = 2000;
        let r = lbfgsb_minimize(f, &[-1.5, 1.5], &b, &opts).unwrap();
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
            "{:?}",
            r.x
        );
    }

    #[test]
    fn infeasible_start_is_projected() {
        let f = |x: &[f64]| x[0] * x[0];
        let b = Bounds::new(vec![1.0], vec![5.0]).unwrap();
        let r = lbfgsb_minimize(f, &[-100.0], &b, &default_opts()).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let f = |_: &[f64]| 0.0;
        let b = Bounds::unbounded(3);
        assert!(matches!(
            lbfgsb_minimize(f, &[0.0], &b, &default_opts()),
            Err(OptError::DimensionMismatch {
                point: 1,
                bounds: 3
            })
        ));
    }

    #[test]
    fn nan_at_start_is_an_error() {
        let f = |_: &[f64]| f64::NAN;
        let b = Bounds::unbounded(1);
        assert!(matches!(
            lbfgsb_minimize(f, &[0.0], &b, &default_opts()),
            Err(OptError::NonFiniteObjective)
        ));
    }

    #[test]
    fn already_optimal_converges_immediately() {
        let f = |x: &[f64]| x[0] * x[0];
        let r = lbfgsb_minimize(f, &[0.0], &Bounds::unbounded(1), &default_opts()).unwrap();
        assert!(r.converged);
        assert!(r.iters <= 2);
    }

    #[test]
    fn seven_dim_box_like_theta_sys() {
        // A synthetic strongly-convex objective in the same box the agent
        // uses for θsys: six non-negative parameters and γ in [1, 10].
        let target = [0.1, 0.01, 0.05, 0.0, 0.2, 0.002, 1.6];
        let f =
            move |x: &[f64]| -> f64 { x.iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum() };
        let lo = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let hi = vec![f64::INFINITY; 6].into_iter().chain([10.0]).collect();
        let b = Bounds::new(lo, hi).unwrap();
        let r = lbfgsb_minimize(f, &[1.0; 7], &b, &default_opts()).unwrap();
        for (xi, ti) in r.x.iter().zip(&target) {
            assert!((xi - ti).abs() < 1e-4, "{:?}", r.x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn result_is_always_feasible(
            start in proptest::collection::vec(-20.0f64..20.0, 2..5),
            shift in proptest::collection::vec(-20.0f64..20.0, 2..5),
        ) {
            let dim = start.len().min(shift.len());
            let s = shift[..dim].to_vec();
            let f = move |x: &[f64]| -> f64 {
                x.iter().zip(&s).map(|(a, b)| (a - b).powi(2)).sum()
            };
            let b = Bounds::uniform(dim, -5.0, 5.0).unwrap();
            let r = lbfgsb_minimize(f, &start[..dim], &b, &default_opts()).unwrap();
            prop_assert!(b.contains(&r.x));
            // The clamped shift is the true constrained optimum.
            for (xi, si) in r.x.iter().zip(&shift) {
                prop_assert!((xi - si.clamp(-5.0, 5.0)).abs() < 1e-3,
                    "x = {:?}, shift = {:?}", r.x, shift);
            }
        }
    }
}
