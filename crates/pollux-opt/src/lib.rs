//! Small-scale numerical optimization primitives used throughout Pollux.
//!
//! The Pollux paper relies on two optimizers:
//!
//! - **Golden-section search** ([`golden`]) to maximize the unimodal
//!   `GOODPUT(a, m)` over the batch size `m` (Eqn 13 and Eqn 15 of the
//!   paper).
//! - **L-BFGS-B** (SciPy, in the original implementation) to fit the
//!   seven system-throughput parameters `θsys` by minimizing a
//!   root-mean-squared-logarithmic-error loss subject to box constraints
//!   (`α, β ≥ 0`, `γ ∈ [1, 10]`). We provide an equivalent
//!   bound-constrained quasi-Newton optimizer in [`lbfgsb`], plus a
//!   derivative-free [`nelder_mead`] fallback used for robustness when
//!   the loss surface is flat or noisy.
//!
//! All optimizers are deterministic given their inputs; none of them
//! allocate per-iteration beyond small work vectors.

pub mod bounds;
pub mod brent;
pub mod golden;
pub mod lbfgsb;
pub mod nelder_mead;
pub mod numgrad;

pub use bounds::Bounds;
pub use brent::{brent_max, brent_min};
pub use golden::{golden_section_max, golden_section_max_int, golden_section_min};
pub use lbfgsb::{lbfgsb_minimize, LbfgsbOptions, LbfgsbResult};
pub use nelder_mead::{nelder_mead_minimize, NelderMeadOptions, NelderMeadResult};
pub use numgrad::central_gradient;

/// Error type for optimizer misuse (invalid domains, NaN objectives).
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The search interval or box was empty or inverted.
    InvalidDomain(String),
    /// The objective returned a non-finite value at the initial point.
    NonFiniteObjective,
    /// Dimension mismatch between the initial point and the bounds.
    DimensionMismatch { point: usize, bounds: usize },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            OptError::NonFiniteObjective => {
                write!(f, "objective was non-finite at the initial point")
            }
            OptError::DimensionMismatch { point, bounds } => write!(
                f,
                "dimension mismatch: point has {point} coordinates but bounds have {bounds}"
            ),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = OptError::InvalidDomain("lo > hi".to_string());
        assert!(e.to_string().contains("lo > hi"));
        let e = OptError::DimensionMismatch {
            point: 3,
            bounds: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
        assert!(OptError::NonFiniteObjective
            .to_string()
            .contains("non-finite"));
    }
}
