//! Derivative-free Nelder-Mead simplex minimization with box constraints.
//!
//! Used as a robustness fallback for the θsys fit when few observations
//! are available and the RMSLE surface has flat regions where numeric
//! gradients vanish. Infeasible simplex vertices are projected back
//! onto the box.

use crate::bounds::Bounds;
use crate::OptError;

/// Options controlling [`nelder_mead_minimize`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Relative size of the initial simplex.
    pub init_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_evals: 4000,
            f_tol: 1e-10,
            x_tol: 1e-10,
            init_step: 0.1,
        }
    }
}

/// Result of a Nelder-Mead minimization.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found (always feasible).
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub fx: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// True when a tolerance criterion was met.
    pub converged: bool,
}

/// Minimizes `f` over `bounds` starting from `x0` using Nelder-Mead.
///
/// Projection onto the box can collapse the simplex onto a constraint
/// face; to recover, the search restarts with a fresh axis-aligned
/// simplex around the incumbent best point (up to three times) and
/// keeps the best result.
///
/// # Errors
///
/// - [`OptError::DimensionMismatch`] when `x0` and `bounds` disagree.
/// - [`OptError::NonFiniteObjective`] when `f` is non-finite at the
///   projected start.
pub fn nelder_mead_minimize<F>(
    mut f: F,
    x0: &[f64],
    bounds: &Bounds,
    opts: &NelderMeadOptions,
) -> Result<NelderMeadResult, OptError>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut total_evals = 0usize;
    let mut best: Option<NelderMeadResult> = None;
    let mut start = x0.to_vec();
    let mut step = opts.init_step;
    for _restart in 0..4 {
        let mut sub_opts = opts.clone();
        sub_opts.init_step = step;
        sub_opts.max_evals = opts.max_evals.saturating_sub(total_evals);
        if sub_opts.max_evals == 0 {
            break;
        }
        let r = nelder_mead_single(&mut f, &start, bounds, &sub_opts)?;
        total_evals += r.evals;
        let improved = best.as_ref().is_none_or(|b| r.fx < b.fx - 1e-15);
        start = r.x.clone();
        if best.as_ref().is_none_or(|b| r.fx <= b.fx) {
            best = Some(r);
        }
        if !improved {
            break;
        }
        step *= 0.25;
    }
    let mut out = best.expect("at least one restart ran");
    out.evals = total_evals;
    Ok(out)
}

/// One Nelder-Mead run without restarts.
fn nelder_mead_single<F>(
    f: &mut F,
    x0: &[f64],
    bounds: &Bounds,
    opts: &NelderMeadOptions,
) -> Result<NelderMeadResult, OptError>
where
    F: FnMut(&[f64]) -> f64,
{
    if x0.len() != bounds.dim() {
        return Err(OptError::DimensionMismatch {
            point: x0.len(),
            bounds: bounds.dim(),
        });
    }
    let n = x0.len();
    let mut evals = 0usize;
    let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(p);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: x0 plus a perturbation along each axis, projected.
    let x0p = bounds.projected(x0);
    let f0 = eval(&x0p, &mut evals);
    if !f0.is_finite() {
        return Err(OptError::NonFiniteObjective);
    }
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0p.clone(), f0));
    for i in 0..n {
        let mut v = x0p.clone();
        let step = opts.init_step * v[i].abs().max(1.0);
        v[i] += step;
        bounds.project(&mut v);
        if v == x0p {
            // Perturbation collided with a bound; go the other way.
            v[i] -= 2.0 * step;
            bounds.project(&mut v);
        }
        let fv = eval(&v, &mut evals);
        simplex.push((v, fv));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut converged = false;

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best_f = simplex[0].1;
        let worst_f = simplex[n].1;
        let diameter = simplex
            .iter()
            .skip(1)
            .map(|(v, _)| {
                v.iter()
                    .zip(&simplex[0].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if (worst_f - best_f).abs() < opts.f_tol || diameter < opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, vi) in centroid.iter_mut().zip(v) {
                *c += vi / n as f64;
            }
        }

        let reflect = |from: &[f64], coeff: f64| -> Vec<f64> {
            let mut p: Vec<f64> = centroid
                .iter()
                .zip(from)
                .map(|(c, w)| c + coeff * (c - w))
                .collect();
            bounds.project(&mut p);
            p
        };

        let worst = simplex[n].0.clone();
        let xr = reflect(&worst, alpha);
        let fr = eval(&xr, &mut evals);

        if fr < simplex[0].1 {
            // Try expansion.
            let xe = reflect(&worst, gamma);
            let fe = eval(&xe, &mut evals);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
        } else {
            // Contraction.
            let xc = reflect(&worst, -rho);
            let fc = eval(&xc, &mut evals);
            if fc < simplex[n].1 {
                simplex[n] = (xc, fc);
            } else {
                // Shrink towards the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let mut v: Vec<f64> = entry
                        .0
                        .iter()
                        .zip(&best)
                        .map(|(vi, bi)| bi + sigma * (vi - bi))
                        .collect();
                    bounds.project(&mut v);
                    let fv = eval(&v, &mut evals);
                    *entry = (v, fv);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, fx) = simplex.swap_remove(0);
    Ok(NelderMeadResult {
        x,
        fx,
        evals,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
        let r = nelder_mead_minimize(f, &[0.0, 0.0], &Bounds::unbounded(2), &Default::default())
            .unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn respects_bounds() {
        let f = |x: &[f64]| (x[0] + 10.0).powi(2);
        let b = Bounds::new(vec![0.0], vec![5.0]).unwrap();
        let r = nelder_mead_minimize(f, &[3.0], &b, &Default::default()).unwrap();
        assert!(r.x[0] >= 0.0 && r.x[0] <= 5.0);
        assert!(r.x[0] < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn start_at_bound_corner_still_moves() {
        // Start at the corner (0, 0) of [0, 5]^2, optimum at (3, 4).
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 4.0).powi(2);
        let b = Bounds::uniform(2, 0.0, 5.0).unwrap();
        let r = nelder_mead_minimize(f, &[0.0, 0.0], &b, &Default::default()).unwrap();
        assert!(
            (r.x[0] - 3.0).abs() < 1e-3 && (r.x[1] - 4.0).abs() < 1e-3,
            "{:?}",
            r.x
        );
    }

    #[test]
    fn handles_nan_regions_as_infeasible() {
        // NaN for x < 0 (infeasible side of the box anyway).
        let f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                (x[0] - 1.0).powi(2)
            }
        };
        let b = Bounds::new(vec![0.0], vec![10.0]).unwrap();
        let r = nelder_mead_minimize(f, &[5.0], &b, &Default::default()).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rosenbrock_4d() {
        let f = |x: &[f64]| {
            (0..x.len() - 1)
                .map(|i| {
                    let a = 1.0 - x[i];
                    let b = x[i + 1] - x[i] * x[i];
                    a * a + 100.0 * b * b
                })
                .sum::<f64>()
        };
        let opts = NelderMeadOptions {
            max_evals: 50_000,
            ..Default::default()
        };
        let b = Bounds::uniform(4, -3.0, 3.0).unwrap();
        let r = nelder_mead_minimize(f, &[-1.0, 2.0, -2.0, 1.0], &b, &opts).unwrap();
        assert!(r.fx < 1e-4, "fx = {}", r.fx);
    }

    #[test]
    fn dimension_mismatch() {
        let f = |_: &[f64]| 0.0;
        assert!(
            nelder_mead_minimize(f, &[0.0], &Bounds::unbounded(2), &Default::default()).is_err()
        );
    }

    #[test]
    fn eval_budget_is_respected() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let opts = NelderMeadOptions {
            max_evals: 25,
            f_tol: 0.0,
            x_tol: 0.0,
            ..Default::default()
        };
        let r = nelder_mead_minimize(f, &[10.0, 10.0], &Bounds::unbounded(2), &opts).unwrap();
        // A handful of evals past the budget are allowed (the final
        // operation completes), but not unbounded.
        assert!(r.evals <= 35, "evals = {}", r.evals);
    }
}
