//! Central-difference numerical gradients.
//!
//! The θsys fitting loss (RMSLE of the throughput model) has a simple
//! closed form but awkward analytic derivatives through the γ-norm
//! combination (Eqn 11); with only seven parameters, central
//! differences are fast, accurate, and far less error-prone.

/// Computes the central-difference gradient of `f` at `x`.
///
/// The step for each coordinate is `eps * max(1, |x[i]|)`, a standard
/// relative step that behaves well for both tiny and large parameter
/// magnitudes.
pub fn central_gradient<F>(f: &mut F, x: &[f64], eps: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let h = eps * x[i].abs().max(1.0);
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Computes a forward-difference gradient, for objectives that are only
/// defined on one side of a constraint boundary.
pub fn forward_gradient<F>(f: &mut F, x: &[f64], fx: f64, eps: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let h = eps * x[i].abs().max(1.0);
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fx) / h;
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gradient_of_quadratic() {
        // f(x) = sum x_i^2, grad = 2x.
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let x = [1.0, -2.0, 3.5];
        let g = central_gradient(&mut f, &x, 1e-6);
        for (gi, xi) in g.iter().zip(&x) {
            assert!((gi - 2.0 * xi).abs() < 1e-6, "{gi} vs {}", 2.0 * xi);
        }
    }

    #[test]
    fn gradient_of_exp_cross_terms() {
        // f(x, y) = exp(x) * y; df/dx = exp(x) y, df/dy = exp(x).
        let mut f = |x: &[f64]| x[0].exp() * x[1];
        let g = central_gradient(&mut f, &[0.5, 2.0], 1e-6);
        assert!((g[0] - 0.5f64.exp() * 2.0).abs() < 1e-5);
        assert!((g[1] - 0.5f64.exp()).abs() < 1e-5);
    }

    #[test]
    fn forward_gradient_close_to_central() {
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
        let x = [0.0, 0.0];
        let fx = f(&x);
        let gf = forward_gradient(&mut f, &x, fx, 1e-7);
        let gc = central_gradient(&mut f, &x, 1e-6);
        for (a, b) in gf.iter().zip(&gc) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    proptest! {
        #[test]
        fn linear_functions_have_exact_gradients(
            coeffs in proptest::collection::vec(-10.0f64..10.0, 1..6),
            point in proptest::collection::vec(-10.0f64..10.0, 1..6),
        ) {
            let dim = coeffs.len().min(point.len());
            let c = coeffs[..dim].to_vec();
            let x = point[..dim].to_vec();
            let mut f = |v: &[f64]| v.iter().zip(&c).map(|(a, b)| a * b).sum::<f64>();
            let g = central_gradient(&mut f, &x, 1e-6);
            for (gi, ci) in g.iter().zip(&c) {
                prop_assert!((gi - ci).abs() < 1e-6);
            }
        }
    }
}
