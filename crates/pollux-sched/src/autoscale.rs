//! Goodput-driven cloud auto-scaling (Sec. 4.2.2).
//!
//! The cluster-utility measure
//!
//! ```text
//! UTILITY(A) = Σ_j SPEEDUP_j(A_j) / TOTAL_GPUS ∈ [0, 1]      (Eqn 17)
//! ```
//!
//! drives node provisioning: when utility is above
//! `HIGH_UTIL_THRES`, jobs would put additional GPUs to good use, so
//! nodes are requested; when it falls below `LOW_UTIL_THRES`, nodes
//! are released. The desired cluster size is found by binary search
//! under the assumption that utility decreases with cluster size, each
//! probe running the genetic algorithm to (re-)optimize allocations
//! for the probed size.
//!
//! Because `SPEEDUP_j` is computed from the *goodput*, a job whose
//! statistical efficiency currently tolerates only small batches shows
//! a low speedup ceiling — so Pollux provisions few nodes early in
//! training and grows the cluster as the gradient noise scale rises
//! (Fig 10a), unlike throughput-based autoscalers.

use crate::fitness::utility;
use crate::ga::{GaConfig, GeneticAlgorithm};
use crate::speedup::{SchedJob, SpeedupTable};
use pollux_cluster::{AllocationMatrix, ClusterSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Release nodes when utility falls below this.
    pub low_util: f64,
    /// Request nodes when utility rises above this.
    pub high_util: f64,
    /// Smallest allowed cluster size (nodes).
    pub min_nodes: u32,
    /// Largest allowed cluster size (nodes).
    pub max_nodes: u32,
    /// GPUs per provisioned node.
    pub gpus_per_node: u32,
    /// Genetic-algorithm settings used for the per-size probes.
    pub ga: GaConfig,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            low_util: 0.45,
            high_util: 0.85,
            min_nodes: 1,
            max_nodes: 16,
            gpus_per_node: 4,
            ga: GaConfig {
                population: 40,
                generations: 25,
                ..Default::default()
            },
        }
    }
}

/// A scale recommendation.
#[derive(Debug, Clone)]
pub struct ScaleDecision {
    /// The recommended number of nodes.
    pub nodes: u32,
    /// The optimized allocation for that size.
    pub alloc: AllocationMatrix,
    /// The utility achieved at that size.
    pub utility: f64,
}

/// Goodput-based cluster autoscaler.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    ga: GeneticAlgorithm,
}

impl Autoscaler {
    /// Creates an autoscaler. Returns `None` for inconsistent
    /// thresholds or an empty node range.
    pub fn new(config: AutoscaleConfig) -> Option<Self> {
        if config.low_util < 0.0
            || config.high_util > 1.0
            || config.low_util > config.high_util
            || config.min_nodes == 0
            || config.min_nodes > config.max_nodes
            || config.gpus_per_node == 0
        {
            return None;
        }
        Some(Self {
            ga: GeneticAlgorithm::new(config.ga),
            config,
        })
    }

    /// The target utility: the midpoint of the configured band.
    pub fn target_utility(&self) -> f64 {
        0.5 * (self.config.low_util + self.config.high_util)
    }

    /// Optimizes allocations for a cluster of `nodes` nodes and
    /// returns `(best allocation, utility)`.
    pub fn probe<R: Rng>(
        &self,
        jobs: &[SchedJob],
        nodes: u32,
        rng: &mut R,
    ) -> (AllocationMatrix, f64) {
        let spec = ClusterSpec::homogeneous(nodes, self.config.gpus_per_node)
            .expect("nodes and gpus_per_node validated at construction");
        let table = SpeedupTable::build(jobs, &spec, self.config.ga.threads.max(1));
        let outcome = self.ga.evolve(jobs, &spec, vec![], &table, rng);
        let u = utility(jobs, &outcome.best, &table, spec.total_gpus());
        (outcome.best, u)
    }

    /// Recommends a cluster size for the current jobs.
    ///
    /// When the utility at `current_nodes` is already inside the
    /// configured band, the current size is kept (hysteresis).
    /// Otherwise a binary search over `[min_nodes, max_nodes]` finds
    /// the size whose utility is closest to the band midpoint
    /// (Sec. 4.2.2).
    pub fn recommend<R: Rng>(
        &self,
        jobs: &[SchedJob],
        current_nodes: u32,
        rng: &mut R,
    ) -> ScaleDecision {
        let current = current_nodes.clamp(self.config.min_nodes, self.config.max_nodes);
        let (cur_alloc, cur_util) = self.probe(jobs, current, rng);
        if cur_util >= self.config.low_util && cur_util <= self.config.high_util {
            return ScaleDecision {
                nodes: current,
                alloc: cur_alloc,
                utility: cur_util,
            };
        }

        let target = self.target_utility();
        let mut lo = self.config.min_nodes;
        let mut hi = self.config.max_nodes;
        let mut best = ScaleDecision {
            nodes: current,
            alloc: cur_alloc,
            utility: cur_util,
        };
        let mut best_dist = (cur_util - target).abs();
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let (alloc, u) = self.probe(jobs, mid, rng);
            let dist = (u - target).abs();
            if dist < best_dist {
                best_dist = dist;
                best = ScaleDecision {
                    nodes: mid,
                    alloc,
                    utility: u,
                };
            }
            // Utility decreases with more nodes: utility above target
            // means the cluster is too small.
            if u > target {
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid.saturating_sub(1);
                if hi < self.config.min_nodes {
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job(id: u32, phi: f64, cap: u32) -> SchedJob {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        SchedJob {
            id: JobId(id),
            model: GoodputModel::new(tp, eff, limits).unwrap(),
            min_gpus: 1,
            gpu_cap: cap,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    fn autoscaler() -> Autoscaler {
        let mut cfg = AutoscaleConfig::default();
        cfg.ga.population = 20;
        cfg.ga.generations = 10;
        cfg.max_nodes = 8;
        Autoscaler::new(cfg).unwrap()
    }

    #[test]
    fn config_validation() {
        let c = AutoscaleConfig {
            low_util: 0.9,
            high_util: 0.5,
            ..Default::default()
        };
        assert!(Autoscaler::new(c).is_none());
        let c = AutoscaleConfig {
            min_nodes: 0,
            ..Default::default()
        };
        assert!(Autoscaler::new(c).is_none());
        let c = AutoscaleConfig {
            min_nodes: 9,
            max_nodes: 8,
            ..Default::default()
        };
        assert!(Autoscaler::new(c).is_none());
        let c = AutoscaleConfig {
            gpus_per_node: 0,
            ..Default::default()
        };
        assert!(Autoscaler::new(c).is_none());
        assert!(Autoscaler::new(AutoscaleConfig::default()).is_some());
    }

    #[test]
    fn low_phi_job_keeps_cluster_small() {
        // A job with tiny noise scale can't use big batches: speedup
        // ceiling is low, so the recommended cluster stays small.
        let a = autoscaler();
        let jobs = vec![job(0, 50.0, 64)];
        let mut rng = StdRng::seed_from_u64(1);
        let d = a.recommend(&jobs, 8, &mut rng);
        assert!(d.nodes <= 2, "nodes = {} (util {})", d.nodes, d.utility);
    }

    #[test]
    fn high_phi_job_grows_cluster() {
        // A job late in training (huge φ) scales well: more nodes are
        // justified than for the low-φ job.
        let a = autoscaler();
        let low = {
            let jobs = vec![job(0, 50.0, 64)];
            let mut rng = StdRng::seed_from_u64(2);
            a.recommend(&jobs, 4, &mut rng).nodes
        };
        let high = {
            let jobs = vec![job(0, 100_000.0, 64)];
            let mut rng = StdRng::seed_from_u64(2);
            a.recommend(&jobs, 4, &mut rng).nodes
        };
        assert!(high > low, "high-φ nodes {high} <= low-φ nodes {low}");
    }

    #[test]
    fn hysteresis_keeps_in_band_sizes() {
        // A scalable job on a small cluster: utility near 1 is above
        // the band... pick a size where utility lands inside the band
        // and verify no change is recommended.
        let a = autoscaler();
        let jobs = vec![job(0, 20_000.0, 64)];
        let mut rng = StdRng::seed_from_u64(3);
        let d = a.recommend(&jobs, 4, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        let d2 = a.recommend(&jobs, d.nodes, &mut rng2);
        assert!(
            d2.nodes.abs_diff(d.nodes) <= 1,
            "unstable recommendation: {} then {}",
            d.nodes,
            d2.nodes
        );
    }

    #[test]
    fn recommendation_within_configured_range() {
        let a = autoscaler();
        let jobs: Vec<SchedJob> = (0..4).map(|i| job(i, 100_000.0, 64)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let d = a.recommend(&jobs, 1, &mut rng);
        assert!(d.nodes >= 1 && d.nodes <= 8);
        assert!(d.utility >= 0.0 && d.utility <= 1.0 + 1e-9);
        assert_eq!(d.alloc.num_jobs(), 4);
    }

    #[test]
    fn probe_returns_feasible_alloc_and_unit_utility() {
        let a = autoscaler();
        let jobs = vec![job(0, 5000.0, 64)];
        let mut rng = StdRng::seed_from_u64(6);
        let (alloc, u) = a.probe(&jobs, 2, &mut rng);
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        assert!(alloc.is_feasible(&spec));
        assert!((0.0..=1.0 + 1e-9).contains(&u));
    }
}
