//! The scheduling fitness function (Eqn 14) with restart penalties.

use crate::speedup::{SchedJob, SpeedupCache};
use pollux_cluster::AllocationMatrix;
use serde::{Deserialize, Serialize};

/// Configuration of the fitness evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessConfig {
    /// Speedup subtracted from every job whose placement changes
    /// relative to its currently applied one (Sec. 4.2.1; the paper
    /// uses 0.25 to reflect the 30–60 s checkpoint-restart cost).
    pub restart_penalty: f64,
}

impl Default for FitnessConfig {
    fn default() -> Self {
        Self {
            restart_penalty: 0.25,
        }
    }
}

/// Evaluates `FITNESS(A) = Σ_j w_j (SPEEDUP_j(A_j) − penalty_j) / Σ_j w_j`.
///
/// - A job's speedup is 0 when unallocated (its row is all zeros) or
///   when its row is infeasible for the job (below `min_gpus`, above
///   `gpu_cap`).
/// - The restart penalty applies to *running* jobs whose row in `alloc`
///   differs from their currently applied placement. Newly started
///   (previously pending) jobs are not penalized.
///
/// Rows of `alloc` correspond to `jobs` by index; `alloc` must have at
/// least `jobs.len()` rows (extra rows are ignored).
pub fn fitness(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    cache: &SpeedupCache,
    config: &FitnessConfig,
) -> f64 {
    debug_assert!(
        alloc.num_jobs() >= jobs.len(),
        "allocation matrix too small"
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for (j, job) in jobs.iter().enumerate() {
        let mut s = match alloc.shape_of(j) {
            Some(shape) => cache.speedup(job, shape),
            None => 0.0,
        };
        if job.is_running() && alloc.row(j) != job.current_placement.as_slice() {
            s -= config.restart_penalty;
        }
        num += job.weight * s;
        den += job.weight;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// The cluster-utility measure for auto-scaling (Eqn 17):
/// `UTILITY(A) = Σ_j SPEEDUP_j(A_j) / TOTAL_GPUS` (unweighted, no
/// restart penalty).
pub fn utility(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    cache: &SpeedupCache,
    total_gpus: u32,
) -> f64 {
    if total_gpus == 0 {
        return 0.0;
    }
    let sum: f64 = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| match alloc.shape_of(j) {
            Some(shape) => cache.speedup(job, shape),
            None => 0.0,
        })
        .sum();
    sum / total_gpus as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};

    fn model() -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, 2000.0).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, weight: f64, current: Vec<u32>) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(),
            min_gpus: 1,
            gpu_cap: 64,
            weight,
            current_placement: current,
        }
    }

    #[test]
    fn empty_cluster_has_zero_fitness() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let alloc = AllocationMatrix::zeros(2, 4);
        let cache = SpeedupCache::new();
        assert_eq!(fitness(&jobs, &alloc, &cache, &Default::default()), 0.0);
    }

    #[test]
    fn single_gpu_each_gives_fitness_one() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 4);
        alloc.set(0, 0, 1);
        alloc.set(1, 1, 1);
        let cache = SpeedupCache::new();
        let f = fitness(&jobs, &alloc, &cache, &Default::default());
        assert!((f - 1.0).abs() < 1e-9, "f = {f}");
    }

    #[test]
    fn more_gpus_increase_fitness() {
        let jobs = vec![job(0, 1.0, vec![])];
        let mut a1 = AllocationMatrix::zeros(1, 4);
        a1.set(0, 0, 1);
        let mut a4 = AllocationMatrix::zeros(1, 4);
        a4.set(0, 0, 4);
        let cache = SpeedupCache::new();
        let f1 = fitness(&jobs, &a1, &cache, &Default::default());
        let f4 = fitness(&jobs, &a4, &cache, &Default::default());
        assert!(f4 > f1, "{f4} vs {f1}");
    }

    #[test]
    fn restart_penalty_applies_to_changed_running_jobs() {
        // Job currently running on node 0 with 2 GPUs.
        let jobs = vec![job(0, 1.0, vec![2, 0, 0, 0])];
        let cfg = FitnessConfig {
            restart_penalty: 0.25,
        };
        let cache = SpeedupCache::new();

        // Same placement: no penalty.
        let mut same = AllocationMatrix::zeros(1, 4);
        same.set(0, 0, 2);
        let f_same = fitness(&jobs, &same, &cache, &cfg);

        // Same shape on a different node: penalized.
        let mut moved = AllocationMatrix::zeros(1, 4);
        moved.set(0, 1, 2);
        let f_moved = fitness(&jobs, &moved, &cache, &cfg);
        assert!(
            (f_same - f_moved - 0.25).abs() < 1e-9,
            "{f_same} vs {f_moved}"
        );
    }

    #[test]
    fn pending_jobs_start_without_penalty() {
        let jobs = vec![job(0, 1.0, vec![0, 0, 0, 0])];
        let mut alloc = AllocationMatrix::zeros(1, 4);
        alloc.set(0, 0, 1);
        let cache = SpeedupCache::new();
        let f = fitness(&jobs, &alloc, &cache, &Default::default());
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_shift_the_optimum() {
        // Two identical jobs, 1 GPU to give away: the heavier job's
        // allocation dominates the weighted mean.
        let heavy = job(0, 1.0, vec![]);
        let light = job(1, 0.1, vec![]);
        let jobs = vec![heavy, light];
        let mut to_heavy = AllocationMatrix::zeros(2, 1);
        to_heavy.set(0, 0, 2);
        to_heavy.set(1, 0, 1);
        let mut to_light = AllocationMatrix::zeros(2, 1);
        to_light.set(0, 0, 1);
        to_light.set(1, 0, 2);
        let cache = SpeedupCache::new();
        let f_heavy = fitness(&jobs, &to_heavy, &cache, &Default::default());
        let f_light = fitness(&jobs, &to_light, &cache, &Default::default());
        assert!(f_heavy > f_light);
    }

    #[test]
    fn utility_normalizes_by_total_gpus() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 4);
        alloc.set(0, 0, 1);
        alloc.set(1, 1, 1);
        let cache = SpeedupCache::new();
        // Two jobs at speedup 1 on a 16-GPU cluster: utility = 2/16.
        let u = utility(&jobs, &alloc, &cache, 16);
        assert!((u - 2.0 / 16.0).abs() < 1e-9);
        assert_eq!(utility(&jobs, &alloc, &cache, 0), 0.0);
    }

    #[test]
    fn utility_is_at_most_one() {
        // Speedup_j <= K_j, so Σ speedup <= total GPUs.
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 2);
        alloc.set(0, 0, 4);
        alloc.set(1, 1, 4);
        let cache = SpeedupCache::new();
        let u = utility(&jobs, &alloc, &cache, 8);
        assert!(u <= 1.0 + 1e-9 && u > 0.0, "u = {u}");
    }
}
