//! The scheduling fitness function (Eqn 14) with restart penalties.
//!
//! `FITNESS(A) = Σ_j w_j (SPEEDUP_j(A_j) − penalty_j) / Σ_j w_j` is a
//! weighted mean of independent per-job terms, which is what makes the
//! GA's incremental evaluation possible: each chromosome carries a
//! per-job **contribution vector** `c_j = w_j (SPEEDUP_j − penalty_j)`
//! and only the rows touched by mutation/crossover/repair are
//! recomputed. [`fitness_of`] folds a contribution vector in index
//! order with the exact multiply-then-add sequence the full
//! recomputation uses, so incremental and full evaluation are
//! bit-identical.
//!
//! Speedup lookups go through the dense per-interval [`SpeedupTable`];
//! [`fitness_with_cache`] keeps the previous sharded-`SpeedupCache`
//! path alive as the `bench_fitness` baseline.

use crate::speedup::{SchedJob, SpeedupCache, SpeedupTable};
use pollux_cluster::AllocationMatrix;
use serde::{Deserialize, Serialize};

/// Configuration of the fitness evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessConfig {
    /// Speedup subtracted from every job whose placement changes
    /// relative to its currently applied one (Sec. 4.2.1; the paper
    /// uses 0.25 to reflect the 30–60 s checkpoint-restart cost).
    pub restart_penalty: f64,
}

impl Default for FitnessConfig {
    fn default() -> Self {
        Self {
            restart_penalty: 0.25,
        }
    }
}

/// `Σ_j w_j`, accumulated in job order (the Eqn 14 denominator).
pub fn weight_sum(jobs: &[SchedJob]) -> f64 {
    let mut den = 0.0;
    for job in jobs {
        den += job.weight;
    }
    den
}

/// One job's fitness contribution `w_j (SPEEDUP_j(A_j) − penalty_j)`.
///
/// - The speedup is 0 when the job is unallocated (row all zeros) or
///   its row is infeasible (below `min_gpus`, above `gpu_cap`).
/// - The restart penalty applies to *running* jobs whose row in `alloc`
///   differs from their currently applied placement. Newly started
///   (previously pending) jobs are not penalized.
#[inline]
pub fn contribution(
    jobs: &[SchedJob],
    j: usize,
    alloc: &AllocationMatrix,
    table: &SpeedupTable,
    config: &FitnessConfig,
) -> f64 {
    let job = &jobs[j];
    let mut s = match alloc.shape_of(j) {
        Some(shape) => table.speedup(j, shape),
        None => 0.0,
    };
    if job.is_running() && alloc.row(j) != job.current_placement.as_slice() {
        s -= config.restart_penalty;
    }
    job.weight * s
}

/// The full contribution vector of one allocation matrix.
pub fn contributions(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    table: &SpeedupTable,
    config: &FitnessConfig,
) -> Vec<f64> {
    debug_assert!(
        alloc.num_jobs() >= jobs.len(),
        "allocation matrix too small"
    );
    (0..jobs.len())
        .map(|j| contribution(jobs, j, alloc, table, config))
        .collect()
}

/// Folds a contribution vector into the Eqn 14 fitness value.
///
/// Sums in index order — the same multiply-then-add sequence as a full
/// recomputation — so a chromosome whose stale rows were patched
/// incrementally evaluates to the exact bits of a from-scratch pass.
pub fn fitness_of(contrib: &[f64], weight_sum: f64) -> f64 {
    let mut num = 0.0;
    for &c in contrib {
        num += c;
    }
    if weight_sum > 0.0 {
        num / weight_sum
    } else {
        0.0
    }
}

/// Evaluates `FITNESS(A)` from scratch against the dense table.
///
/// Rows of `alloc` correspond to `jobs` by index; `alloc` must have at
/// least `jobs.len()` rows (extra rows are ignored).
pub fn fitness(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    table: &SpeedupTable,
    config: &FitnessConfig,
) -> f64 {
    debug_assert!(
        alloc.num_jobs() >= jobs.len(),
        "allocation matrix too small"
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for (j, job) in jobs.iter().enumerate() {
        num += contribution(jobs, j, alloc, table, config);
        den += job.weight;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Legacy fitness evaluation against the sharded [`SpeedupCache`].
///
/// Identical semantics (and bits) to [`fitness`]; kept as the
/// hash-cache baseline arm of `bench_fitness`.
pub fn fitness_with_cache(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    cache: &SpeedupCache,
    config: &FitnessConfig,
) -> f64 {
    debug_assert!(
        alloc.num_jobs() >= jobs.len(),
        "allocation matrix too small"
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for (j, job) in jobs.iter().enumerate() {
        let mut s = match alloc.shape_of(j) {
            Some(shape) => cache.speedup(job, shape),
            None => 0.0,
        };
        if job.is_running() && alloc.row(j) != job.current_placement.as_slice() {
            s -= config.restart_penalty;
        }
        num += job.weight * s;
        den += job.weight;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// The cluster-utility measure for auto-scaling (Eqn 17):
/// `UTILITY(A) = Σ_j SPEEDUP_j(A_j) / TOTAL_GPUS` (unweighted, no
/// restart penalty).
pub fn utility(
    jobs: &[SchedJob],
    alloc: &AllocationMatrix,
    table: &SpeedupTable,
    total_gpus: u32,
) -> f64 {
    if total_gpus == 0 {
        return 0.0;
    }
    let sum: f64 = jobs
        .iter()
        .enumerate()
        .map(|(j, _)| match alloc.shape_of(j) {
            Some(shape) => table.speedup(j, shape),
            None => 0.0,
        })
        .sum();
    sum / total_gpus as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::{ClusterSpec, JobId};
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};

    fn model() -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, 2000.0).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, weight: f64, current: Vec<u32>) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(),
            min_gpus: 1,
            gpu_cap: 64,
            weight,
            current_placement: current,
        }
    }

    fn table_for(jobs: &[SchedJob], nodes: u32, gpus_per_node: u32) -> SpeedupTable {
        let spec = ClusterSpec::homogeneous(nodes, gpus_per_node).unwrap();
        SpeedupTable::build(jobs, &spec, 1)
    }

    #[test]
    fn empty_cluster_has_zero_fitness() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let alloc = AllocationMatrix::zeros(2, 4);
        let table = table_for(&jobs, 4, 4);
        assert_eq!(fitness(&jobs, &alloc, &table, &Default::default()), 0.0);
    }

    #[test]
    fn single_gpu_each_gives_fitness_one() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 4);
        alloc.set(0, 0, 1);
        alloc.set(1, 1, 1);
        let table = table_for(&jobs, 4, 4);
        let f = fitness(&jobs, &alloc, &table, &Default::default());
        assert!((f - 1.0).abs() < 1e-9, "f = {f}");
    }

    #[test]
    fn more_gpus_increase_fitness() {
        let jobs = vec![job(0, 1.0, vec![])];
        let mut a1 = AllocationMatrix::zeros(1, 4);
        a1.set(0, 0, 1);
        let mut a4 = AllocationMatrix::zeros(1, 4);
        a4.set(0, 0, 4);
        let table = table_for(&jobs, 4, 4);
        let f1 = fitness(&jobs, &a1, &table, &Default::default());
        let f4 = fitness(&jobs, &a4, &table, &Default::default());
        assert!(f4 > f1, "{f4} vs {f1}");
    }

    #[test]
    fn restart_penalty_applies_to_changed_running_jobs() {
        // Job currently running on node 0 with 2 GPUs.
        let jobs = vec![job(0, 1.0, vec![2, 0, 0, 0])];
        let cfg = FitnessConfig {
            restart_penalty: 0.25,
        };
        let table = table_for(&jobs, 4, 4);

        // Same placement: no penalty.
        let mut same = AllocationMatrix::zeros(1, 4);
        same.set(0, 0, 2);
        let f_same = fitness(&jobs, &same, &table, &cfg);

        // Same shape on a different node: penalized.
        let mut moved = AllocationMatrix::zeros(1, 4);
        moved.set(0, 1, 2);
        let f_moved = fitness(&jobs, &moved, &table, &cfg);
        assert!(
            (f_same - f_moved - 0.25).abs() < 1e-9,
            "{f_same} vs {f_moved}"
        );
    }

    #[test]
    fn pending_jobs_start_without_penalty() {
        let jobs = vec![job(0, 1.0, vec![0, 0, 0, 0])];
        let mut alloc = AllocationMatrix::zeros(1, 4);
        alloc.set(0, 0, 1);
        let table = table_for(&jobs, 4, 4);
        let f = fitness(&jobs, &alloc, &table, &Default::default());
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_shift_the_optimum() {
        // Two identical jobs, 1 GPU to give away: the heavier job's
        // allocation dominates the weighted mean.
        let heavy = job(0, 1.0, vec![]);
        let light = job(1, 0.1, vec![]);
        let jobs = vec![heavy, light];
        let mut to_heavy = AllocationMatrix::zeros(2, 1);
        to_heavy.set(0, 0, 2);
        to_heavy.set(1, 0, 1);
        let mut to_light = AllocationMatrix::zeros(2, 1);
        to_light.set(0, 0, 1);
        to_light.set(1, 0, 2);
        let table = table_for(&jobs, 1, 4);
        let f_heavy = fitness(&jobs, &to_heavy, &table, &Default::default());
        let f_light = fitness(&jobs, &to_light, &table, &Default::default());
        assert!(f_heavy > f_light);
    }

    #[test]
    fn incremental_contributions_match_full_fitness_bitwise() {
        let jobs = vec![
            job(0, 1.0, vec![2, 0, 0, 0]),
            job(1, 1.3, vec![]),
            job(2, 0.7, vec![0, 0, 1, 0]),
        ];
        let table = table_for(&jobs, 4, 4);
        let cfg = FitnessConfig::default();
        let mut alloc = AllocationMatrix::zeros(3, 4);
        alloc.set(0, 0, 2);
        alloc.set(1, 1, 3);
        alloc.set(2, 2, 1);
        let mut contrib = contributions(&jobs, &alloc, &table, &cfg);
        let den = weight_sum(&jobs);
        assert_eq!(
            fitness_of(&contrib, den).to_bits(),
            fitness(&jobs, &alloc, &table, &cfg).to_bits()
        );
        // Patch one row and recompute only its contribution: still
        // bit-identical to a from-scratch evaluation.
        alloc.set(1, 1, 0);
        alloc.set(1, 3, 2);
        contrib[1] = contribution(&jobs, 1, &alloc, &table, &cfg);
        assert_eq!(
            fitness_of(&contrib, den).to_bits(),
            fitness(&jobs, &alloc, &table, &cfg).to_bits()
        );
    }

    #[test]
    fn table_fitness_matches_legacy_cache_fitness_bitwise() {
        let jobs = vec![
            job(0, 1.0, vec![2, 0, 0, 0]),
            job(1, 1.3, vec![]),
            job(2, 0.7, vec![0, 0, 1, 0]),
        ];
        let table = table_for(&jobs, 4, 4);
        let cache = SpeedupCache::new();
        let cfg = FitnessConfig::default();
        for (a, b, c) in [(2u32, 3u32, 1u32), (1, 0, 4), (4, 4, 0)] {
            let mut alloc = AllocationMatrix::zeros(3, 4);
            alloc.set(0, 0, a);
            alloc.set(1, 1, b);
            alloc.set(2, 2, c);
            assert_eq!(
                fitness(&jobs, &alloc, &table, &cfg).to_bits(),
                fitness_with_cache(&jobs, &alloc, &cache, &cfg).to_bits()
            );
        }
    }

    #[test]
    fn utility_normalizes_by_total_gpus() {
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 4);
        alloc.set(0, 0, 1);
        alloc.set(1, 1, 1);
        let table = table_for(&jobs, 4, 4);
        // Two jobs at speedup 1 on a 16-GPU cluster: utility = 2/16.
        let u = utility(&jobs, &alloc, &table, 16);
        assert!((u - 2.0 / 16.0).abs() < 1e-9);
        assert_eq!(utility(&jobs, &alloc, &table, 0), 0.0);
    }

    #[test]
    fn utility_is_at_most_one() {
        // Speedup_j <= K_j, so Σ speedup <= total GPUs.
        let jobs = vec![job(0, 1.0, vec![]), job(1, 1.0, vec![])];
        let mut alloc = AllocationMatrix::zeros(2, 2);
        alloc.set(0, 0, 4);
        alloc.set(1, 1, 4);
        let table = table_for(&jobs, 2, 4);
        let u = utility(&jobs, &alloc, &table, 8);
        assert!(u <= 1.0 + 1e-9 && u > 0.0, "u = {u}");
    }
}
