//! The genetic algorithm over allocation matrices (Sec. 4.2.1, Fig 5).
//!
//! Each generation:
//!
//! 1. **Mutation** — every element `A[j][n]` of every member mutates
//!    with probability `1/N` (one expected mutation per job row) to a
//!    uniform random GPU count in `[0, capacity(n)]`.
//! 2. **Crossover** — offspring rows are mixed from two parents chosen
//!    by tournament selection.
//! 3. **Repair** — offspring are made feasible: node capacities
//!    (random decrements within over-capacity columns), per-job
//!    minimums and scale caps, and (optionally) the
//!    interference-avoidance constraint that at most one *distributed*
//!    job occupies any node.
//! 4. **Survival** — the population is truncated back to its constant
//!    size by discarding the lowest-fitness members.
//!
//! # Incremental fitness evaluation
//!
//! Eqn 14 is a weighted mean of independent per-job terms, so each
//! chromosome carries its per-job **contribution vector**
//! `c_j = w_j (SPEEDUP_j − penalty_j)` alongside the matrix. Mutation,
//! crossover, and repair report which rows they touched; only those
//! contributions are recomputed against the dense [`SpeedupTable`],
//! and crossover copies each row's contribution from the parent that
//! supplied the row (a contribution is a pure function of its row).
//! [`crate::fitness::fitness_of`] folds the vector in index order with
//! the exact arithmetic of a full pass, so the incremental fitness is
//! bit-identical to a from-scratch evaluation — an invariant checked
//! by a `debug_assert` full recompute on every offspring in debug
//! builds and pinned by the determinism test suite.
//!
//! # Parallel evaluation and determinism
//!
//! With [`GaConfig::threads`] > 1, member construction (mutate,
//! crossover, repair) and fitness evaluation fan out over a scoped
//! worker pool ([`crate::par::parallel_map`]). Determinism across
//! thread counts is achieved by **seed-per-slot RNG splitting**: the
//! master RNG is only ever advanced serially, drawing one `u64` seed
//! per population slot; each slot then derives its own private
//! `StdRng` from that seed and performs every random decision for that
//! slot locally. No slot observes another slot's RNG stream, so the
//! result is a pure function of `(slot index, master seed)` and is
//! bit-identical whether slots run on 1 thread or 8 — a property
//! pinned by this crate's determinism tests. `threads == 1` runs the
//! identical per-slot code inline without spawning any threads.

use crate::fitness::{contribution, contributions, fitness_of, weight_sum, FitnessConfig};
use crate::par::parallel_map;
use crate::speedup::{SchedJob, SpeedupTable};
use pollux_cluster::{AllocationMatrix, ClusterSpec, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the genetic algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Constant population size (the paper uses 100).
    pub population: usize,
    /// Generations per scheduling interval (the paper uses 100).
    pub generations: usize,
    /// Tournament size for crossover parent selection.
    pub tournament_size: usize,
    /// Enforce the interference-avoidance constraint during repair.
    pub interference_avoidance: bool,
    /// Stop early after this many generations without improvement of
    /// the best fitness (0 = always run all `generations`, like the
    /// paper's fixed 100-generation budget).
    pub early_stop_gens: usize,
    /// Worker threads for member construction and fitness evaluation.
    /// `1` (the default) runs fully serially without spawning; any
    /// value yields bit-identical results for a fixed master seed (see
    /// the module docs).
    pub threads: usize,
    /// Fitness evaluation settings (restart penalty).
    pub fitness: FitnessConfig,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 100,
            tournament_size: 2,
            interference_avoidance: true,
            early_stop_gens: 8,
            threads: 1,
            fitness: FitnessConfig::default(),
        }
    }
}

/// Evaluation counters of one `evolve` call, accumulated in
/// deterministic slot order (thread-count-invariant for a fixed seed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaRunStats {
    /// Generations actually executed (≤ `GaConfig::generations` when
    /// early stopping triggers).
    pub generations_run: u64,
    /// Chromosome fitness evaluations, full and incremental.
    pub fitness_evals: u64,
    /// The subset of `fitness_evals` served by patching a parent's
    /// contribution vector instead of recomputing every row.
    pub incremental_evals: u64,
    /// Per-job contribution rows recomputed across all evaluations
    /// (`jobs × full evals + touched rows of incremental evals`).
    pub rows_recomputed: u64,
}

impl GaRunStats {
    fn absorb(&mut self, slot: SlotStats) {
        self.fitness_evals += slot.fitness_evals;
        self.incremental_evals += slot.incremental_evals;
        self.rows_recomputed += slot.rows_recomputed;
    }
}

/// Outcome of one `evolve` call.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// The highest-fitness allocation matrix found.
    pub best: AllocationMatrix,
    /// Its fitness value.
    pub best_fitness: f64,
    /// The final population, for bootstrapping the next interval
    /// (Sec. 4.3: "the entire population is saved and used to
    /// bootstrap the genetic algorithm in the next scheduling
    /// interval").
    pub population: Vec<AllocationMatrix>,
    /// Evaluation counters for this run.
    pub stats: GaRunStats,
}

/// The genetic optimizer. Stateless between calls; population
/// persistence is handled by the caller (see `scheduler`).
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GaConfig,
}

/// Borrowed evaluation inputs shared by every population slot; handed
/// to the per-slot builders so worker closures capture one reference.
struct EvalCtx<'a> {
    jobs: &'a [SchedJob],
    spec: &'a ClusterSpec,
    table: &'a SpeedupTable,
    weight_sum: f64,
}

/// One chromosome with its cached per-job fitness contributions.
#[derive(Debug, Clone)]
struct Member {
    matrix: AllocationMatrix,
    contrib: Vec<f64>,
    fitness: f64,
}

/// Per-slot evaluation counters, merged into [`GaRunStats`] in slot
/// order.
#[derive(Debug, Clone, Copy, Default)]
struct SlotStats {
    fitness_evals: u64,
    incremental_evals: u64,
    rows_recomputed: u64,
}

impl GeneticAlgorithm {
    /// Creates the optimizer with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Mutates `m` in place: each element flips with probability `1/N`
    /// to a uniform GPU count within the node's capacity.
    pub fn mutate<R: Rng>(&self, m: &mut AllocationMatrix, spec: &ClusterSpec, rng: &mut R) {
        self.mutate_impl(m, spec, rng, None);
    }

    /// Mutation core; when `touched` is provided, every row that had a
    /// cell rewritten is marked (conservatively: a cell rewritten to
    /// its old value still marks the row — recomputing an unchanged
    /// row yields the same contribution bits).
    fn mutate_impl<R: Rng>(
        &self,
        m: &mut AllocationMatrix,
        spec: &ClusterSpec,
        rng: &mut R,
        mut touched: Option<&mut [bool]>,
    ) {
        let n = m.num_nodes().max(1);
        let p = 1.0 / n as f64;
        for j in 0..m.num_jobs() {
            for node in 0..m.num_nodes() {
                if rng.gen_bool(p) {
                    let cap = spec.gpus_on(NodeId(node as u32));
                    m.set(j, node, rng.gen_range(0..=cap));
                    if let Some(t) = touched.as_deref_mut() {
                        if j < t.len() {
                            t[j] = true;
                        }
                    }
                }
            }
        }
    }

    /// Produces an offspring whose rows are randomly mixed from the
    /// two parents.
    pub fn crossover<R: Rng>(
        &self,
        a: &AllocationMatrix,
        b: &AllocationMatrix,
        rng: &mut R,
    ) -> AllocationMatrix {
        debug_assert_eq!(a.num_jobs(), b.num_jobs());
        debug_assert_eq!(a.num_nodes(), b.num_nodes());
        let mut child = AllocationMatrix::zeros(a.num_jobs(), a.num_nodes());
        for j in 0..a.num_jobs() {
            let src = if rng.gen_bool(0.5) { a } else { b };
            child.set_row(j, src.row(j).to_vec());
        }
        child
    }

    /// Crossover that also carries contributions: each row's cached
    /// contribution is copied from the parent supplying the row (a
    /// contribution is a pure function of its row), so the child needs
    /// no evaluation for rows repair leaves untouched. Draws the same
    /// one `gen_bool` per row as [`Self::crossover`].
    fn crossover_members<R: Rng>(&self, a: &Member, b: &Member, rng: &mut R) -> Member {
        debug_assert_eq!(a.matrix.num_jobs(), b.matrix.num_jobs());
        debug_assert_eq!(a.matrix.num_nodes(), b.matrix.num_nodes());
        let num_jobs = a.matrix.num_jobs();
        let mut matrix = AllocationMatrix::zeros(num_jobs, a.matrix.num_nodes());
        let mut contrib = Vec::with_capacity(a.contrib.len());
        for j in 0..num_jobs {
            let src = if rng.gen_bool(0.5) { a } else { b };
            matrix.set_row(j, src.matrix.row(j).to_vec());
            if j < src.contrib.len() {
                contrib.push(src.contrib[j]);
            }
        }
        Member {
            matrix,
            contrib,
            fitness: 0.0,
        }
    }

    /// Tournament selection: returns the index of the best of
    /// `tournament_size` uniformly sampled members.
    pub fn tournament_select<R: Rng>(&self, fitnesses: &[f64], rng: &mut R) -> usize {
        let k = self.config.tournament_size.max(1);
        let mut best = rng.gen_range(0..fitnesses.len());
        for _ in 1..k {
            let c = rng.gen_range(0..fitnesses.len());
            if fitnesses[c] > fitnesses[best] {
                best = c;
            }
        }
        best
    }

    /// Repairs `m` into a feasible allocation:
    ///
    /// 1. per-job scale caps — random decrements until `K ≤ gpu_cap`;
    /// 2. per-job minimums — rows with `0 < K < min_gpus` are zeroed
    ///    (the job stays pending rather than holding useless GPUs);
    /// 3. node capacities — random decrements within over-capacity
    ///    columns (Fig 5's repair step);
    /// 4. optionally, interference avoidance — while any node hosts two
    ///    or more distributed jobs, one of the extras loses its GPUs on
    ///    that node (Sec. 4.2.1).
    ///
    /// Steps interleave because each can re-trigger another; the loop
    /// terminates since every action strictly decreases total GPUs.
    pub fn repair<R: Rng>(
        &self,
        m: &mut AllocationMatrix,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) {
        repair_matrix(m, jobs, spec, self.config.interference_avoidance, rng);
    }

    /// Builds one initial-population member from its slot seed:
    /// optionally mutated from its template, repaired, and evaluated
    /// with a full contribution pass.
    fn init_member(
        &self,
        template: &AllocationMatrix,
        fresh: bool,
        slot_seed: u64,
        ctx: &EvalCtx<'_>,
    ) -> (Member, SlotStats) {
        let mut rng = StdRng::seed_from_u64(slot_seed);
        let mut matrix = template.clone();
        if fresh {
            self.mutate(&mut matrix, ctx.spec, &mut rng);
        }
        self.repair(&mut matrix, ctx.jobs, ctx.spec, &mut rng);
        let contrib = contributions(ctx.jobs, &matrix, ctx.table, &self.config.fitness);
        let fitness = fitness_of(&contrib, ctx.weight_sum);
        let stats = SlotStats {
            fitness_evals: 1,
            incremental_evals: 0,
            rows_recomputed: ctx.jobs.len() as u64,
        };
        (
            Member {
                matrix,
                contrib,
                fitness,
            },
            stats,
        )
    }

    /// Builds one offspring from its slot seed. Slots below
    /// `population.len()` are mutated copies of the same-index member;
    /// the rest are crossover children of tournament-selected parents.
    /// Either way only the rows touched by mutation/crossover/repair
    /// have their contributions recomputed.
    fn offspring_member(
        &self,
        slot: usize,
        slot_seed: u64,
        population: &[Member],
        fitnesses: &[f64],
        ctx: &EvalCtx<'_>,
    ) -> (Member, SlotStats) {
        let mut rng = StdRng::seed_from_u64(slot_seed);
        let mut touched = vec![false; ctx.jobs.len()];
        let mut member = if slot < population.len() {
            let mut c = population[slot].clone();
            self.mutate_impl(&mut c.matrix, ctx.spec, &mut rng, Some(&mut touched));
            c
        } else {
            let a = self.tournament_select(fitnesses, &mut rng);
            let b = self.tournament_select(fitnesses, &mut rng);
            self.crossover_members(&population[a], &population[b], &mut rng)
        };
        repair_matrix_tracked(
            &mut member.matrix,
            ctx.jobs,
            ctx.spec,
            self.config.interference_avoidance,
            &mut rng,
            &mut touched,
        );
        let mut stats = SlotStats {
            fitness_evals: 1,
            incremental_evals: 1,
            rows_recomputed: 0,
        };
        for (j, &dirty) in touched.iter().enumerate() {
            if dirty {
                member.contrib[j] =
                    contribution(ctx.jobs, j, &member.matrix, ctx.table, &self.config.fitness);
                stats.rows_recomputed += 1;
            }
        }
        member.fitness = fitness_of(&member.contrib, ctx.weight_sum);
        debug_assert!(
            {
                let full = contributions(ctx.jobs, &member.matrix, ctx.table, &self.config.fitness);
                full.iter()
                    .zip(&member.contrib)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
            },
            "incremental contributions diverged from a full recompute"
        );
        (member, stats)
    }

    /// Runs the genetic algorithm from a seed population.
    ///
    /// Seed members with mismatched dimensions are discarded; the
    /// population is refilled with repaired random members. All members
    /// are repaired before evaluation, so the returned best matrix is
    /// always feasible.
    ///
    /// Speedup lookups go through `table`, which the caller builds once
    /// per scheduling interval via [`SpeedupTable::build`] from the
    /// same `jobs` slice (and a spec with the same nodes) passed here.
    ///
    /// `rng` is the master RNG: it is advanced serially (one seed draw
    /// per population slot) regardless of [`GaConfig::threads`], so
    /// the outcome depends only on the master seed, never on the
    /// thread count.
    pub fn evolve<R: Rng>(
        &self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        seed: Vec<AllocationMatrix>,
        table: &SpeedupTable,
        rng: &mut R,
    ) -> GaOutcome {
        let num_jobs = jobs.len();
        let num_nodes = spec.num_nodes();
        let pop_size = self.config.population.max(2);
        let threads = self.config.threads.max(1);
        let mut run_stats = GaRunStats::default();

        // Templates for the initial population: retained seed members,
        // the "current allocations" member (so doing nothing is
        // representable), and fresh random members (mutated from zero)
        // to fill up to `pop_size`.
        let mut templates: Vec<(AllocationMatrix, bool)> = seed
            .into_iter()
            .filter(|m| m.num_jobs() == num_jobs && m.num_nodes() == num_nodes)
            .take(pop_size)
            .map(|m| (m, false))
            .collect();
        let mut current = AllocationMatrix::zeros(num_jobs, num_nodes);
        for (j, job) in jobs.iter().enumerate() {
            if job.current_placement.len() == num_nodes {
                current.set_row(j, job.current_placement.clone());
            }
        }
        templates.push((current, false));
        while templates.len() < pop_size {
            templates.push((AllocationMatrix::zeros(num_jobs, num_nodes), true));
        }

        // One seed per slot, drawn serially from the master RNG.
        let ctx = EvalCtx {
            jobs,
            spec,
            table,
            weight_sum: weight_sum(jobs),
        };
        let slot_seeds: Vec<u64> = (0..templates.len()).map(|_| rng.next_u64()).collect();
        let built = parallel_map(templates.len(), threads, |i| {
            let (template, fresh) = &templates[i];
            self.init_member(template, *fresh, slot_seeds[i], &ctx)
        });
        let mut members = Vec::with_capacity(built.len());
        let mut fitnesses = Vec::with_capacity(built.len());
        for (m, s) in built {
            run_stats.absorb(s);
            fitnesses.push(m.fitness);
            members.push(m);
        }

        let mut best_so_far = fitnesses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut stale_gens = 0usize;
        for _gen in 0..self.config.generations {
            run_stats.generations_run += 1;
            // One mutated copy per member plus `pop_size` crossover
            // children; again one serial seed draw per slot.
            let num_offspring = members.len() + pop_size;
            let slot_seeds: Vec<u64> = (0..num_offspring).map(|_| rng.next_u64()).collect();
            let offspring = parallel_map(num_offspring, threads, |i| {
                self.offspring_member(i, slot_seeds[i], &members, &fitnesses, &ctx)
            });
            for (m, s) in offspring {
                run_stats.absorb(s);
                fitnesses.push(m.fitness);
                members.push(m);
            }

            // Survival: keep the top `pop_size`. The sort is stable, so
            // fitness ties break by slot index — deterministically.
            let mut idx: Vec<usize> = (0..members.len()).collect();
            idx.sort_by(|&a, &b| {
                fitnesses[b]
                    .partial_cmp(&fitnesses[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            idx.truncate(pop_size);
            let mut new_members = Vec::with_capacity(pop_size);
            let mut new_fit = Vec::with_capacity(pop_size);
            for &i in &idx {
                new_members.push(members[i].clone());
                new_fit.push(fitnesses[i]);
            }
            members = new_members;
            fitnesses = new_fit;

            if self.config.early_stop_gens > 0 {
                let best_now = fitnesses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if best_now > best_so_far + 1e-12 {
                    best_so_far = best_now;
                    stale_gens = 0;
                } else {
                    stale_gens += 1;
                    if stale_gens >= self.config.early_stop_gens {
                        break;
                    }
                }
            }
        }

        let best_idx = fitnesses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        GaOutcome {
            best: members[best_idx].matrix.clone(),
            best_fitness: fitnesses[best_idx],
            population: members.into_iter().map(|m| m.matrix).collect(),
            stats: run_stats,
        }
    }
}

/// Repairs `m` into a feasible allocation (the Fig 5 repair step),
/// shared by the genetic algorithm and the local-search backend. See
/// [`GeneticAlgorithm::repair`] for the step-by-step description.
pub fn repair_matrix<R: Rng>(
    m: &mut AllocationMatrix,
    jobs: &[SchedJob],
    spec: &ClusterSpec,
    interference_avoidance: bool,
    rng: &mut R,
) {
    repair_matrix_impl(m, jobs, spec, interference_avoidance, rng, None);
}

/// [`repair_matrix`] that additionally marks every row it modifies in
/// `touched` (rows at indices ≥ `touched.len()` are repaired but not
/// marked). Draws the identical RNG stream as the untracked variant,
/// so swapping between them never changes the repair outcome.
pub fn repair_matrix_tracked<R: Rng>(
    m: &mut AllocationMatrix,
    jobs: &[SchedJob],
    spec: &ClusterSpec,
    interference_avoidance: bool,
    rng: &mut R,
    touched: &mut [bool],
) {
    repair_matrix_impl(m, jobs, spec, interference_avoidance, rng, Some(touched));
}

fn repair_matrix_impl<R: Rng>(
    m: &mut AllocationMatrix,
    jobs: &[SchedJob],
    spec: &ClusterSpec,
    interference_avoidance: bool,
    rng: &mut R,
    mut touched: Option<&mut [bool]>,
) {
    let num_nodes = m.num_nodes();
    let mark = |t: &mut Option<&mut [bool]>, j: usize| {
        if let Some(t) = t.as_deref_mut() {
            if j < t.len() {
                t[j] = true;
            }
        }
    };

    // Step 1: per-job scale caps. Random single-GPU decrements, but
    // batched so the whole step is O(excess + nodes) per job.
    for (j, job) in jobs.iter().enumerate() {
        let k = m.gpus_of(j);
        if k <= job.gpu_cap {
            continue;
        }
        mark(&mut touched, j);
        let mut excess = k - job.gpu_cap;
        let mut occupied: Vec<usize> = (0..num_nodes).filter(|&n| m.get(j, n) > 0).collect();
        while excess > 0 {
            let pick = rng.gen_range(0..occupied.len());
            let n = occupied[pick];
            let left = m.get(j, n) - 1;
            m.set(j, n, left);
            if left == 0 {
                occupied.swap_remove(pick);
            }
            excess -= 1;
        }
    }

    // Step 3: node capacities — random decrements within
    // over-capacity columns (Fig 5's repair step), batched the same
    // way.
    for node in m.over_capacity_nodes(spec) {
        let n = node.index();
        let cap = spec.gpus_on(node);
        let mut excess = m.gpus_used_on(n) - cap;
        let mut holders: Vec<usize> = (0..m.num_jobs()).filter(|&j| m.get(j, n) > 0).collect();
        while excess > 0 {
            let pick = rng.gen_range(0..holders.len());
            let j = holders[pick];
            let left = m.get(j, n) - 1;
            m.set(j, n, left);
            mark(&mut touched, j);
            if left == 0 {
                holders.swap_remove(pick);
            }
            excess -= 1;
        }
    }

    // Step 4: interference avoidance in a single random-order pass.
    // Evicting a distributed job's GPUs from a node never creates a
    // *new* distributed job, so one pass suffices.
    if interference_avoidance {
        let mut nodes_of: Vec<u32> = (0..m.num_jobs()).map(|j| m.nodes_of(j)).collect();
        let mut order: Vec<usize> = (0..num_nodes).collect();
        order.shuffle(rng);
        for &n in &order {
            let mut distributed: Vec<usize> = (0..m.num_jobs())
                .filter(|&j| m.get(j, n) > 0 && nodes_of[j] > 1)
                .collect();
            if distributed.len() <= 1 {
                continue;
            }
            // Keep one random distributed job on this node; evict
            // the others' GPUs from it.
            let keep = rng.gen_range(0..distributed.len());
            distributed.swap_remove(keep);
            for j in distributed {
                m.set(j, n, 0);
                nodes_of[j] -= 1;
                mark(&mut touched, j);
            }
        }
    }

    // Step 2 last: zero rows that ended up below their minimum
    // (possibly due to the earlier decrements).
    for (j, job) in jobs.iter().enumerate() {
        let k = m.gpus_of(j);
        if k > 0 && k < job.min_gpus {
            m.set_row(j, vec![0; num_nodes]);
            mark(&mut touched, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::RngCore;

    fn model(phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, phi: f64) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(phi),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    fn ga(gens: usize) -> GeneticAlgorithm {
        GeneticAlgorithm::new(GaConfig {
            population: 30,
            generations: gens,
            ..Default::default()
        })
    }

    fn table(jobs: &[SchedJob], spec: &ClusterSpec) -> SpeedupTable {
        SpeedupTable::build(jobs, spec, 1)
    }

    #[test]
    fn repair_enforces_node_capacity() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, 1000.0)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = AllocationMatrix::zeros(3, 4);
        m.set(0, 0, 4);
        m.set(1, 0, 4);
        m.set(2, 0, 4);
        ga(0).repair(&mut m, &jobs, &spec, &mut rng);
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn repair_enforces_gpu_cap() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut j = job(0, 1000.0);
        j.gpu_cap = 2;
        let jobs = vec![j];
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = AllocationMatrix::zeros(1, 4);
        for n in 0..4 {
            m.set(0, n, 4);
        }
        ga(0).repair(&mut m, &jobs, &spec, &mut rng);
        assert!(m.gpus_of(0) <= 2);
    }

    #[test]
    fn repair_zeroes_below_minimum_rows() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut j = job(0, 1000.0);
        j.min_gpus = 4;
        let jobs = vec![j];
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = AllocationMatrix::zeros(1, 4);
        m.set(0, 0, 2);
        ga(0).repair(&mut m, &jobs, &spec, &mut rng);
        assert_eq!(m.gpus_of(0), 0);
    }

    #[test]
    fn repair_enforces_interference_avoidance() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 1000.0)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = AllocationMatrix::zeros(2, 4);
        // Both jobs distributed and sharing nodes 1.
        m.set(0, 0, 2);
        m.set(0, 1, 2);
        m.set(1, 1, 2);
        m.set(1, 2, 2);
        ga(0).repair(&mut m, &jobs, &spec, &mut rng);
        assert!(m.satisfies_interference_avoidance());
        assert!(m.is_feasible(&spec));
    }

    #[test]
    fn repair_keeps_interference_when_disabled() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 1000.0)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GaConfig {
            interference_avoidance: false,
            ..Default::default()
        };
        let g = GeneticAlgorithm::new(cfg);
        let mut m = AllocationMatrix::zeros(2, 4);
        m.set(0, 0, 2);
        m.set(0, 1, 2);
        m.set(1, 1, 2);
        m.set(1, 2, 2);
        g.repair(&mut m, &jobs, &spec, &mut rng);
        // Feasible but interference untouched.
        assert!(m.is_feasible(&spec));
        assert!(!m.satisfies_interference_avoidance());
    }

    #[test]
    fn tracked_repair_matches_untracked_and_marks_modified_rows() {
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..4).map(|i| job(i, 1000.0)).collect();
        let mut wild = AllocationMatrix::zeros(4, 3);
        for j in 0..4 {
            for n in 0..3 {
                wild.set(j, n, 3);
            }
        }
        let mut plain = wild.clone();
        let mut tracked = wild.clone();
        let mut touched = vec![false; 4];
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        repair_matrix(&mut plain, &jobs, &spec, true, &mut rng_a);
        repair_matrix_tracked(&mut tracked, &jobs, &spec, true, &mut rng_b, &mut touched);
        assert_eq!(
            plain, tracked,
            "tracked repair must not change the RNG path"
        );
        // Every row that differs from the input must be marked.
        for (j, &mark) in touched.iter().enumerate() {
            if tracked.row(j) != wild.row(j) {
                assert!(mark, "row {j} modified but unmarked");
            }
        }
        assert!(touched.iter().any(|&t| t), "the wild matrix needed repair");
    }

    #[test]
    fn crossover_rows_come_from_parents() {
        let g = ga(0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = AllocationMatrix::zeros(3, 2);
        let mut b = AllocationMatrix::zeros(3, 2);
        for j in 0..3 {
            a.set(j, 0, 1);
            b.set(j, 1, 2);
        }
        let c = g.crossover(&a, &b, &mut rng);
        for j in 0..3 {
            let row = c.row(j);
            assert!(row == a.row(j) || row == b.row(j));
        }
    }

    #[test]
    fn tournament_prefers_fitter_members() {
        let g = GeneticAlgorithm::new(GaConfig {
            tournament_size: 4,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let fit = vec![0.1, 0.9, 0.2, 0.3];
        let mut wins = [0usize; 4];
        for _ in 0..500 {
            wins[g.tournament_select(&fit, &mut rng)] += 1;
        }
        assert!(wins[1] > wins[0] && wins[1] > wins[2] && wins[1] > wins[3]);
    }

    #[test]
    fn evolve_allocates_everything_useful() {
        // Two scalable jobs, 2 nodes x 4 GPUs: the GA should allocate
        // most GPUs and give every job at least one.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 5000.0)).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let t = table(&jobs, &spec);
        let out = ga(30).evolve(&jobs, &spec, vec![], &t, &mut rng);
        assert!(out.best.is_feasible(&spec));
        assert!(out.best_fitness > 1.0, "fitness = {}", out.best_fitness);
        for j in 0..2 {
            assert!(out.best.gpus_of(j) >= 1, "job {j} starved:\n{}", out.best);
        }
        assert_eq!(out.population.len(), 30);
    }

    #[test]
    fn evolve_prefers_scalable_jobs() {
        // One job scales well (huge φ), one barely (φ ≈ 0): with 1 node
        // of 4 GPUs the scalable job should get strictly more.
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let scalable = job(0, 50_000.0);
        let mut rigid = job(1, 0.0);
        rigid.model = model(1e-6);
        let jobs = vec![scalable, rigid];
        let mut rng = StdRng::seed_from_u64(9);
        let t = table(&jobs, &spec);
        let out = ga(40).evolve(&jobs, &spec, vec![], &t, &mut rng);
        assert!(
            out.best.gpus_of(0) > out.best.gpus_of(1),
            "scalable {} vs rigid {}\n{}",
            out.best.gpus_of(0),
            out.best.gpus_of(1),
            out.best
        );
        assert!(out.best.gpus_of(1) >= 1, "rigid job should still run");
    }

    #[test]
    fn evolve_respects_interference_avoidance() {
        let spec = ClusterSpec::homogeneous(4, 2).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, 20_000.0)).collect();
        let mut rng = StdRng::seed_from_u64(10);
        let t = table(&jobs, &spec);
        let out = ga(30).evolve(&jobs, &spec, vec![], &t, &mut rng);
        assert!(out.best.satisfies_interference_avoidance());
    }

    #[test]
    fn evolve_with_seed_population_not_worse() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 5000.0)).collect();
        let t = table(&jobs, &spec);

        let mut rng = StdRng::seed_from_u64(11);
        let first = ga(20).evolve(&jobs, &spec, vec![], &t, &mut rng);
        let resumed = ga(5).evolve(&jobs, &spec, first.population.clone(), &t, &mut rng);
        assert!(
            resumed.best_fitness >= first.best_fitness - 1e-9,
            "resumed {} < first {}",
            resumed.best_fitness,
            first.best_fitness
        );
    }

    #[test]
    fn evolve_is_deterministic_given_seed() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 5000.0)).collect();
        let t1 = table(&jobs, &spec);
        let t2 = table(&jobs, &spec);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let o1 = ga(10).evolve(&jobs, &spec, vec![], &t1, &mut r1);
        let o2 = ga(10).evolve(&jobs, &spec, vec![], &t2, &mut r2);
        assert_eq!(o1.best, o2.best);
        assert_eq!(o1.best_fitness, o2.best_fitness);
        assert_eq!(o1.stats, o2.stats);
    }

    #[test]
    fn evolve_is_identical_across_thread_counts() {
        // The core determinism contract: for a fixed master seed the
        // full outcome (best, fitness, final population, counters) is
        // bit-identical at every thread count.
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..6).map(|i| job(i, 3000.0 + 500.0 * i as f64)).collect();
        let outcomes: Vec<GaOutcome> = [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                let g = GeneticAlgorithm::new(GaConfig {
                    population: 24,
                    generations: 12,
                    threads,
                    ..Default::default()
                });
                let t = SpeedupTable::build(&jobs, &spec, threads);
                let mut rng = StdRng::seed_from_u64(77);
                g.evolve(&jobs, &spec, vec![], &t, &mut rng)
            })
            .collect();
        for o in &outcomes[1..] {
            assert_eq!(o.best, outcomes[0].best);
            assert_eq!(o.best_fitness.to_bits(), outcomes[0].best_fitness.to_bits());
            assert_eq!(o.population, outcomes[0].population);
            assert_eq!(o.stats, outcomes[0].stats);
        }
    }

    #[test]
    fn evolve_leaves_master_rng_in_same_state_for_any_thread_count() {
        // The master RNG must advance by exactly one draw per slot, so
        // downstream consumers of the same RNG see identical streams.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, 4000.0)).collect();
        let after: Vec<u64> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let g = GeneticAlgorithm::new(GaConfig {
                    population: 12,
                    generations: 6,
                    threads,
                    ..Default::default()
                });
                let t = table(&jobs, &spec);
                let mut rng = StdRng::seed_from_u64(5);
                g.evolve(&jobs, &spec, vec![], &t, &mut rng);
                rng.next_u64()
            })
            .collect();
        assert_eq!(after[0], after[1]);
    }

    #[test]
    fn best_fitness_matches_full_recompute() {
        // `best_fitness` is produced by chains of incremental updates
        // across generations; it must equal a from-scratch evaluation
        // of the winning matrix to the bit.
        let spec = ClusterSpec::homogeneous(3, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..5)
            .map(|i| {
                let mut j = job(i, 2000.0 + 700.0 * i as f64);
                if i % 2 == 0 {
                    j.current_placement = vec![1, 0, 0];
                }
                j.weight = 1.0 + 0.25 * i as f64;
                j
            })
            .collect();
        let t = table(&jobs, &spec);
        let g = ga(15);
        let mut rng = StdRng::seed_from_u64(13);
        let out = g.evolve(&jobs, &spec, vec![], &t, &mut rng);
        let full = crate::fitness::fitness(&jobs, &out.best, &t, &g.config().fitness);
        assert_eq!(out.best_fitness.to_bits(), full.to_bits());
        assert!(out.stats.fitness_evals > 0);
        assert!(
            out.stats.incremental_evals > 0,
            "offspring must evaluate incrementally"
        );
        assert!(out.stats.generations_run >= 1);
        // Incremental evaluation must actually skip rows: strictly
        // fewer rows recomputed than full recomputes would need.
        assert!(
            out.stats.rows_recomputed < out.stats.fitness_evals * jobs.len() as u64,
            "rows {} evals {}",
            out.stats.rows_recomputed,
            out.stats.fitness_evals
        );
    }

    #[test]
    fn restart_penalty_discourages_gratuitous_moves() {
        // A single job already running on 4 GPUs of node 0. An
        // equivalent placement on node 1 is available; the GA should
        // keep the current placement rather than pay the restart.
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut j = job(0, 3000.0);
        j.current_placement = vec![4, 0];
        let jobs = vec![j];
        let mut rng = StdRng::seed_from_u64(12);
        let t = table(&jobs, &spec);
        let out = ga(30).evolve(&jobs, &spec, vec![], &t, &mut rng);
        assert_eq!(
            out.best.row(0),
            &[4, 0],
            "moved without benefit:\n{}",
            out.best
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Rows, per-job `(min, cap)` bounds, node count, GPUs per
        /// node, and RNG seed.
        type World = (Vec<Vec<u32>>, Vec<(u32, u32)>, u32, u32, u64);

        /// Strategy: an arbitrary (possibly wildly infeasible) matrix
        /// plus per-job caps/minimums.
        fn arbitrary_world() -> impl Strategy<Value = World> {
            (2usize..6, 2usize..6).prop_flat_map(|(num_jobs, num_nodes)| {
                (
                    proptest::collection::vec(
                        proptest::collection::vec(0u32..10, num_nodes),
                        num_jobs,
                    ),
                    proptest::collection::vec((1u32..4, 1u32..32), num_jobs),
                    Just(num_nodes as u32),
                    2u32..6,
                    proptest::num::u64::ANY,
                )
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn repair_always_produces_feasible_matrices(
                (rows, caps, num_nodes, gpus_per_node, seed) in arbitrary_world()
            ) {
                let spec = ClusterSpec::homogeneous(num_nodes, gpus_per_node).unwrap();
                let jobs: Vec<SchedJob> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, &(min_gpus, cap))| {
                        let mut j = job(i as u32, 1000.0);
                        j.min_gpus = min_gpus;
                        j.gpu_cap = cap.max(min_gpus);
                        j
                    })
                    .collect();
                let mut m =
                    AllocationMatrix::from_rows(rows, num_nodes as usize).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                ga(0).repair(&mut m, &jobs, &spec, &mut rng);

                // 1. Node capacities hold.
                prop_assert!(m.is_feasible(&spec), "infeasible:\n{m}");
                // 2. Interference avoidance holds.
                prop_assert!(m.satisfies_interference_avoidance(), "interference:\n{m}");
                // 3. Per-job bounds hold: K = 0 or min <= K <= cap.
                for (j, job) in jobs.iter().enumerate() {
                    let k = m.gpus_of(j);
                    prop_assert!(
                        k == 0 || (k >= job.min_gpus && k <= job.gpu_cap),
                        "job {j}: K = {k}, min = {}, cap = {}",
                        job.min_gpus,
                        job.gpu_cap
                    );
                }
            }

            #[test]
            fn repair_never_adds_gpus(
                (rows, caps, num_nodes, gpus_per_node, seed) in arbitrary_world()
            ) {
                let spec = ClusterSpec::homogeneous(num_nodes, gpus_per_node).unwrap();
                let jobs: Vec<SchedJob> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, &(min_gpus, cap))| {
                        let mut j = job(i as u32, 1000.0);
                        j.min_gpus = min_gpus;
                        j.gpu_cap = cap.max(min_gpus);
                        j
                    })
                    .collect();
                let m0 = AllocationMatrix::from_rows(rows, num_nodes as usize).unwrap();
                let mut m = m0.clone();
                let mut rng = StdRng::seed_from_u64(seed);
                ga(0).repair(&mut m, &jobs, &spec, &mut rng);
                // Repair only removes GPUs, never grants new ones.
                for j in 0..m.num_jobs() {
                    for n in 0..m.num_nodes() {
                        prop_assert!(m.get(j, n) <= m0.get(j, n));
                    }
                }
            }

            #[test]
            fn tracked_repair_is_bit_identical_and_conservative(
                (rows, caps, num_nodes, gpus_per_node, seed) in arbitrary_world()
            ) {
                // The tracked variant must repair to the identical
                // matrix (same RNG stream) and mark every modified row.
                let spec = ClusterSpec::homogeneous(num_nodes, gpus_per_node).unwrap();
                let jobs: Vec<SchedJob> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, &(min_gpus, cap))| {
                        let mut j = job(i as u32, 1000.0);
                        j.min_gpus = min_gpus;
                        j.gpu_cap = cap.max(min_gpus);
                        j
                    })
                    .collect();
                let wild = AllocationMatrix::from_rows(rows, num_nodes as usize).unwrap();
                let mut plain = wild.clone();
                let mut tracked = wild.clone();
                let mut touched = vec![false; jobs.len()];
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                repair_matrix(&mut plain, &jobs, &spec, true, &mut rng_a);
                repair_matrix_tracked(
                    &mut tracked, &jobs, &spec, true, &mut rng_b, &mut touched,
                );
                prop_assert_eq!(&plain, &tracked);
                for (j, &mark) in touched.iter().enumerate() {
                    if tracked.row(j) != wild.row(j) {
                        prop_assert!(mark, "row {} modified but unmarked", j);
                    }
                }
            }

            #[test]
            fn mutation_stays_within_node_capacity(
                (rows, _caps, num_nodes, gpus_per_node, seed) in arbitrary_world()
            ) {
                // Mutation may only write values in [0, capacity(n)]:
                // it never manufactures a per-cell value a node cannot
                // hold (feasibility across jobs is repair's duty).
                let spec = ClusterSpec::homogeneous(num_nodes, gpus_per_node).unwrap();
                let mut m =
                    AllocationMatrix::from_rows(rows, num_nodes as usize).unwrap();
                // Start from a clamped matrix so pre-existing excess
                // cannot mask a mutation bug.
                for j in 0..m.num_jobs() {
                    for n in 0..m.num_nodes() {
                        m.set(j, n, m.get(j, n).min(gpus_per_node));
                    }
                }
                let mut rng = StdRng::seed_from_u64(seed);
                ga(0).mutate(&mut m, &spec, &mut rng);
                for j in 0..m.num_jobs() {
                    for n in 0..m.num_nodes() {
                        prop_assert!(m.get(j, n) <= gpus_per_node);
                    }
                }
            }

            #[test]
            fn crossover_preserves_feasibility_of_feasible_parents(
                (rows_a, caps, num_nodes, gpus_per_node, seed) in arbitrary_world()
            ) {
                // Row-wise crossover of two *repaired* parents, then
                // repair, is always feasible — the GA's generation
                // invariant.
                let spec = ClusterSpec::homogeneous(num_nodes, gpus_per_node).unwrap();
                let jobs: Vec<SchedJob> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, &(min_gpus, cap))| {
                        let mut j = job(i as u32, 1000.0);
                        j.min_gpus = min_gpus;
                        j.gpu_cap = cap.max(min_gpus);
                        j
                    })
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed);
                let g = ga(0);
                let mut a =
                    AllocationMatrix::from_rows(rows_a, num_nodes as usize).unwrap();
                g.repair(&mut a, &jobs, &spec, &mut rng);
                let mut b = a.clone();
                g.mutate(&mut b, &spec, &mut rng);
                g.repair(&mut b, &jobs, &spec, &mut rng);
                let mut child = g.crossover(&a, &b, &mut rng);
                g.repair(&mut child, &jobs, &spec, &mut rng);
                prop_assert!(child.is_feasible(&spec), "infeasible child:\n{child}");
                prop_assert!(child.satisfies_interference_avoidance());
                for (j, job) in jobs.iter().enumerate() {
                    let k = child.gpus_of(j);
                    prop_assert!(k == 0 || (k >= job.min_gpus && k <= job.gpu_cap));
                }
            }

            #[test]
            fn evolve_best_is_always_feasible(
                seed in proptest::num::u64::ANY,
                num_jobs in 1usize..5,
                num_nodes in 1u32..4,
            ) {
                let spec = ClusterSpec::homogeneous(num_nodes, 4).unwrap();
                let jobs: Vec<SchedJob> =
                    (0..num_jobs).map(|i| job(i as u32, 2000.0)).collect();
                let t = SpeedupTable::build(&jobs, &spec, 1);
                let mut rng = StdRng::seed_from_u64(seed);
                let out = ga(5).evolve(&jobs, &spec, vec![], &t, &mut rng);
                prop_assert!(out.best.is_feasible(&spec));
                prop_assert!(out.best.satisfies_interference_avoidance());
                prop_assert!(out.best_fitness.is_finite());
            }
        }
    }
}
