//! `PolluxSched` — cluster-wide optimization (Sec. 4.2).
//!
//! At every scheduling interval (60 s in the paper), the scheduler
//! re-optimizes the cluster-wide allocation matrix by maximizing the
//! fitness function
//!
//! ```text
//! FITNESS(A) = Σ_j w_j · SPEEDUP_j(A_j) / Σ_j w_j          (Eqn 14)
//! ```
//!
//! with a genetic algorithm whose operators (mutation, tournament
//! crossover, repair) are described in Sec. 4.2.1 / Fig 5. The crate
//! also implements:
//!
//! - job weights decaying with attained GPU-time (Eqn 16, [`weights`]);
//! - the restart penalty for re-allocated jobs ([`mod@fitness`]);
//! - the interference-avoidance constraint (at most one distributed
//!   job per node, enforced during repair, [`ga`]);
//! - goodput-based cloud auto-scaling via the `UTILITY` measure
//!   (Eqn 17, Sec. 4.2.2, [`autoscale`]).
//!
//! # Fitness evaluation: dense tables + incremental contributions
//!
//! At the start of every optimization round the scheduler precomputes
//! a dense [`SpeedupTable`]: one flat `f64` stripe per job over the
//! bounded shape space (GPU count × colocated/distributed locality).
//! Table construction fans out over a scoped worker pool ([`par`])
//! when [`GaConfig::threads`] > 1; after that, every fitness lookup on
//! the GA hot path is an unsynchronized array index — no hashing, no
//! locks, no golden-section solves. The GA additionally evaluates
//! fitness *incrementally*: each chromosome carries its per-job
//! contribution vector and only rows touched by mutation, crossover,
//! or repair are recomputed ([`ga`]).
//!
//! The master RNG is advanced **serially** — one seed draw per
//! population slot — and each slot derives a private `StdRng` from
//! its seed, so for a fixed seed the schedule is bit-identical at
//! every thread count. `threads == 1` (the default) runs the same
//! per-slot code inline without spawning. See [`ga`] for the full
//! determinism contract. The legacy sharded [`SpeedupCache`] is kept
//! for comparison benchmarks ([`fitness::fitness_with_cache`]).

pub mod autoscale;
pub mod fitness;
pub mod ga;
pub mod local_search;
pub mod par;
pub mod rackga;
pub mod scheduler;
pub mod speedup;
pub mod weights;

pub use autoscale::{AutoscaleConfig, Autoscaler};
pub use fitness::{
    contribution, contributions, fitness, fitness_of, fitness_with_cache, utility, weight_sum,
    FitnessConfig,
};
pub use ga::{
    repair_matrix, repair_matrix_tracked, GaConfig, GaOutcome, GaRunStats, GeneticAlgorithm,
};
pub use local_search::{LocalSearch, LocalSearchConfig};
pub use par::parallel_map;
pub use rackga::{assign_racks, home_rack};
pub use scheduler::{PolluxSched, SchedConfig, SchedIntervalStats};
pub use speedup::{CacheStats, SchedJob, SpeedupCache, SpeedupTable, SpeedupTableStats};
pub use weights::{job_weight, WeightConfig};
