//! `PolluxSched` — cluster-wide optimization (Sec. 4.2).
//!
//! At every scheduling interval (60 s in the paper), the scheduler
//! re-optimizes the cluster-wide allocation matrix by maximizing the
//! fitness function
//!
//! ```text
//! FITNESS(A) = Σ_j w_j · SPEEDUP_j(A_j) / Σ_j w_j          (Eqn 14)
//! ```
//!
//! with a genetic algorithm whose operators (mutation, tournament
//! crossover, repair) are described in Sec. 4.2.1 / Fig 5. The crate
//! also implements:
//!
//! - job weights decaying with attained GPU-time (Eqn 16, [`weights`]);
//! - the restart penalty for re-allocated jobs ([`mod@fitness`]);
//! - the interference-avoidance constraint (at most one distributed
//!   job per node, enforced during repair, [`ga`]);
//! - goodput-based cloud auto-scaling via the `UTILITY` measure
//!   (Eqn 17, Sec. 4.2.2, [`autoscale`]).
//!
//! # Parallel fitness evaluation
//!
//! Member construction and fitness evaluation fan out over a scoped
//! worker pool ([`par`]) when [`GaConfig::threads`] > 1, sharing one
//! concurrent [`SpeedupCache`] (sharded behind `RwLock`s) across all
//! workers. The master RNG is advanced **serially** — one seed draw
//! per population slot — and each slot derives a private `StdRng` from
//! its seed, so for a fixed seed the schedule is bit-identical at
//! every thread count. `threads == 1` (the default) runs the same
//! per-slot code inline without spawning. See [`ga`] for the full
//! determinism contract.

pub mod autoscale;
pub mod fitness;
pub mod ga;
pub mod local_search;
pub mod par;
pub mod scheduler;
pub mod speedup;
pub mod weights;

pub use autoscale::{AutoscaleConfig, Autoscaler};
pub use fitness::{fitness, FitnessConfig};
pub use ga::{repair_matrix, GaConfig, GaOutcome, GeneticAlgorithm};
pub use local_search::{LocalSearch, LocalSearchConfig};
pub use par::parallel_map;
pub use scheduler::{PolluxSched, SchedConfig};
pub use speedup::{CacheStats, SchedJob, SpeedupCache};
pub use weights::{job_weight, WeightConfig};
