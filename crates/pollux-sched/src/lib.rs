//! `PolluxSched` — cluster-wide optimization (Sec. 4.2).
//!
//! At every scheduling interval (60 s in the paper), the scheduler
//! re-optimizes the cluster-wide allocation matrix by maximizing the
//! fitness function
//!
//! ```text
//! FITNESS(A) = Σ_j w_j · SPEEDUP_j(A_j) / Σ_j w_j          (Eqn 14)
//! ```
//!
//! with a genetic algorithm whose operators (mutation, tournament
//! crossover, repair) are described in Sec. 4.2.1 / Fig 5. The crate
//! also implements:
//!
//! - job weights decaying with attained GPU-time (Eqn 16, [`weights`]);
//! - the restart penalty for re-allocated jobs ([`mod@fitness`]);
//! - the interference-avoidance constraint (at most one distributed
//!   job per node, enforced during repair, [`ga`]);
//! - goodput-based cloud auto-scaling via the `UTILITY` measure
//!   (Eqn 17, Sec. 4.2.2, [`autoscale`]).

pub mod autoscale;
pub mod fitness;
pub mod ga;
pub mod local_search;
pub mod scheduler;
pub mod speedup;
pub mod weights;

pub use autoscale::{AutoscaleConfig, Autoscaler};
pub use fitness::{fitness, FitnessConfig};
pub use ga::{repair_matrix, GaConfig, GeneticAlgorithm};
pub use local_search::{LocalSearch, LocalSearchConfig};
pub use scheduler::{PolluxSched, SchedConfig};
pub use speedup::{SchedJob, SpeedupCache};
pub use weights::{job_weight, WeightConfig};
