//! Greedy local-search allocator — a simpler alternative to the
//! genetic algorithm (Sec. 4.2.1), used as an ablation point and as a
//! cheap backend for small clusters.
//!
//! Starting from the repaired current allocation (and a few random
//! restarts), repeatedly propose a single-element change
//! `A[j][n] ← v`, repair, and keep the proposal when fitness improves.
//! No crossover, no population: purely first-improvement hill
//! climbing.

use crate::fitness::{fitness, FitnessConfig};
use crate::ga::repair_matrix;
use crate::speedup::{SchedJob, SpeedupTable};
use pollux_cluster::{AllocationMatrix, ClusterSpec, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the local search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalSearchConfig {
    /// Single-element proposals evaluated per restart.
    pub iterations: usize,
    /// Independent restarts (the first starts from the current
    /// allocation, the rest from random matrices).
    pub restarts: usize,
    /// Enforce the interference-avoidance constraint.
    pub interference_avoidance: bool,
    /// Fitness settings (restart penalty).
    pub fitness: FitnessConfig,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            iterations: 2000,
            restarts: 3,
            interference_avoidance: true,
            fitness: FitnessConfig::default(),
        }
    }
}

/// The hill-climbing allocator.
#[derive(Debug, Clone)]
pub struct LocalSearch {
    config: LocalSearchConfig,
}

impl LocalSearch {
    /// Creates the allocator.
    pub fn new(config: LocalSearchConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LocalSearchConfig {
        &self.config
    }

    /// Optimizes an allocation for `jobs` on `spec`.
    ///
    /// `table` must be built from the same `jobs` slice (see
    /// [`SpeedupTable::build`]); every proposal evaluation is then a
    /// handful of dense array lookups.
    ///
    /// Returns the best feasible matrix found and its fitness.
    pub fn optimize<R: Rng>(
        &self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        table: &SpeedupTable,
        rng: &mut R,
    ) -> (AllocationMatrix, f64) {
        let num_jobs = jobs.len();
        let num_nodes = spec.num_nodes();
        let avoid = self.config.interference_avoidance;

        let mut best: Option<(AllocationMatrix, f64)> = None;
        for restart in 0..self.config.restarts.max(1) {
            let mut current = if restart == 0 {
                // Start from the currently applied placements.
                let mut m = AllocationMatrix::zeros(num_jobs, num_nodes);
                for (j, job) in jobs.iter().enumerate() {
                    if job.current_placement.len() == num_nodes {
                        m.set_row(j, job.current_placement.clone());
                    }
                }
                m
            } else {
                let mut m = AllocationMatrix::zeros(num_jobs, num_nodes);
                for j in 0..num_jobs {
                    for n in 0..num_nodes {
                        let cap = spec.gpus_on(NodeId(n as u32));
                        m.set(j, n, rng.gen_range(0..=cap));
                    }
                }
                m
            };
            repair_matrix(&mut current, jobs, spec, avoid, rng);
            let mut current_fit = fitness(jobs, &current, table, &self.config.fitness);

            for _ in 0..self.config.iterations {
                if num_jobs == 0 {
                    break;
                }
                let j = rng.gen_range(0..num_jobs);
                let n = rng.gen_range(0..num_nodes);
                let cap = spec.gpus_on(NodeId(n as u32));
                let v = rng.gen_range(0..=cap);
                if current.get(j, n) == v {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.set(j, n, v);
                repair_matrix(&mut candidate, jobs, spec, avoid, rng);
                let f = fitness(jobs, &candidate, table, &self.config.fitness);
                if f > current_fit {
                    current = candidate;
                    current_fit = f;
                }
            }

            if best.as_ref().is_none_or(|(_, bf)| current_fit > *bf) {
                best = Some((current, current_fit));
            }
        }
        best.unwrap_or_else(|| (AllocationMatrix::zeros(num_jobs, num_nodes), 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job(id: u32, phi: f64) -> SchedJob {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        SchedJob {
            id: JobId(id),
            model: GoodputModel::new(tp, eff, limits).unwrap(),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    #[test]
    fn finds_feasible_improving_allocations() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(|i| job(i, 5000.0)).collect();
        let table = SpeedupTable::build(&jobs, &spec, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let ls = LocalSearch::new(LocalSearchConfig {
            iterations: 500,
            restarts: 2,
            ..Default::default()
        });
        let (m, f) = ls.optimize(&jobs, &spec, &table, &mut rng);
        assert!(m.is_feasible(&spec));
        assert!(m.satisfies_interference_avoidance());
        assert!(f > 1.0, "fitness = {f}");
        for j in 0..2 {
            assert!(m.gpus_of(j) >= 1, "job {j} starved:\n{m}");
        }
    }

    #[test]
    fn respects_constraints_like_the_ga() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut capped = job(0, 5000.0);
        capped.gpu_cap = 2;
        let mut needy = job(1, 5000.0);
        needy.min_gpus = 4;
        let jobs = vec![capped, needy];
        let table = SpeedupTable::build(&jobs, &spec, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let ls = LocalSearch::new(Default::default());
        let (m, _) = ls.optimize(&jobs, &spec, &table, &mut rng);
        assert!(m.gpus_of(0) <= 2);
        let k1 = m.gpus_of(1);
        assert!(k1 == 0 || k1 >= 4, "min violated: {k1}");
    }

    #[test]
    fn empty_job_list_is_graceful() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let table = SpeedupTable::build(&[], &spec, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let ls = LocalSearch::new(Default::default());
        let (m, f) = ls.optimize(&[], &spec, &table, &mut rng);
        assert_eq!(m.num_jobs(), 0);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, 2000.0)).collect();
        let ls = LocalSearch::new(LocalSearchConfig {
            iterations: 300,
            restarts: 2,
            ..Default::default()
        });
        let run = |seed: u64| {
            let table = SpeedupTable::build(&jobs, &spec, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            ls.optimize(&jobs, &spec, &table, &mut rng)
        };
        let (m1, f1) = run(7);
        let (m2, f2) = run(7);
        assert_eq!(m1, m2);
        assert_eq!(f1, f2);
    }
}
