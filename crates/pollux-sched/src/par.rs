//! A minimal scoped worker pool for data-parallel fitness evaluation.
//!
//! [`parallel_map`] fans an index range out over `threads` scoped
//! workers pulling from a shared atomic counter (work stealing by
//! index), then reassembles results **in index order**. Determinism is
//! therefore the caller's only obligation: as long as `f(i)` depends
//! only on `i` (and not on which worker runs it, or when), the output
//! is identical for every thread count — including the `threads <= 1`
//! serial fallback, which runs inline without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n`, running on up to `threads` worker threads.
///
/// Results are returned in index order regardless of completion order.
/// With `threads <= 1` (or `n <= 1`) no threads are spawned and `f` is
/// applied serially in index order — the results are identical either
/// way provided `f(i)` is a pure function of `i` and captured state.
///
/// # Panics
///
/// Propagates the first panic from any worker.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_every_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        for threads in [0, 1, 2, 4, 8, 300] {
            assert_eq!(parallel_map(257, threads, |i| i * 3), expect);
        }
    }

    #[test]
    fn handles_empty_and_single_item_ranges() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};
        let seen = Mutex::new(HashSet::new());
        // Items 0 and 1 rendezvous on a barrier: a single worker would
        // deadlock holding one side, so passing proves two distinct
        // threads pulled from the queue concurrently.
        let barrier = Barrier::new(2);
        parallel_map(4, 4, |i| {
            if i < 2 {
                barrier.wait();
            }
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(seen.lock().unwrap().len() > 1, "ran on a single thread");
    }

    /// Recorder counters must be *exact* (not approximate) under
    /// concurrent workers: each increment is one `fetch_add`, so the
    /// sum over any interleaving equals the serial sum.
    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counters_are_exact_under_workers() {
        use pollux_telemetry::{NullSink, Recorder};
        use std::sync::Arc;
        let rec = Recorder::new(Arc::new(NullSink));
        let counter = rec.counter("par", "work");
        let hist = rec.histogram("par", "values");
        let n = 10_000usize;
        for threads in [1, 2, 4, 8] {
            parallel_map(n, threads, |i| {
                counter.add(i as u64);
                hist.observe(i as u64);
                rec.incr("par", "items", 1);
            });
        }
        let expected = (n as u64 * (n as u64 - 1) / 2) * 4;
        assert_eq!(rec.counter_value("par", "work"), expected);
        assert_eq!(rec.counter_value("par", "items"), 4 * n as u64);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(8, 2, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
