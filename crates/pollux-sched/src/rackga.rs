//! Phase 1 of the rack-aware two-phase placement search: assign jobs
//! to racks.
//!
//! At datacenter scale the flat GA's chromosome (one GPU count per
//! (job, node) cell) grows with the full node count, even though a
//! job's placement only ever touches a handful of nodes. The
//! two-phase decomposition first picks a *rack* per job with a cheap
//! assignment GA (this module), then runs the existing placement GA
//! independently inside each rack over only that rack's nodes and
//! jobs — shrinking the per-job search space from O(nodes) to
//! O(racks) + O(nodes/rack).
//!
//! The assignment fitness is deliberately goodput-free (no table
//! solves): it packs rack demand under rack capacity and pays a
//! keep-bonus for leaving a running job on its *home* rack (the rack
//! holding most of its current GPUs), mirroring the placement GA's
//! restart penalty at rack granularity. The expensive goodput modeling
//! happens only inside the per-rack phase-2 searches.
//!
//! Determinism: fully serial, one RNG stream, draws in member/gene
//! order — bit-identical assignments for a fixed seed at any thread
//! count. With a single rack the phase is skipped entirely (the
//! caller never invokes it), which is what keeps the degenerate
//! topology byte-identical to the flat search.

use crate::speedup::SchedJob;
use pollux_cluster::{ClusterSpec, JobId, NodeId, Topology};
use rand::Rng;
use std::collections::HashMap;

/// Population size of the assignment GA.
const POPULATION: usize = 16;
/// Generations evolved per interval.
const GENERATIONS: usize = 12;
/// Consecutive generations without a strict best-score improvement
/// before the search stops early. A warm interval seeded with the
/// previous assignment (see [`assign_racks`]'s `prev`) usually starts
/// at the optimum and stops here instead of running all
/// [`GENERATIONS`].
const EARLY_STOP_GENS: usize = 3;
/// Per-gene mutation probability.
const MUTATION_PROB: f64 = 0.125;
/// Tournament size for parent selection.
const TOURNAMENT: usize = 3;
/// Keep-bonus weight per demanded GPU for staying on the home rack —
/// the rack-level analogue of the placement fitness's 0.25 restart
/// penalty.
const KEEP_BONUS: f64 = 0.25;

/// The GPU demand phase 1 packs: what the job currently holds, at
/// least its minimum, at most its cap.
fn demand(job: &SchedJob) -> u64 {
    let held: u32 = job.current_placement.iter().sum();
    u64::from(held.max(job.min_gpus.max(1)).min(job.gpu_cap.max(1)))
}

/// The rack holding the most of the job's current GPUs (ties to the
/// lowest rack index), or `None` for an idle job or a placement whose
/// width does not match the topology.
pub fn home_rack(job: &SchedJob, topo: &Topology) -> Option<u32> {
    if job.current_placement.len() != topo.num_nodes() {
        return None;
    }
    let mut held = vec![0u64; topo.num_racks() as usize];
    for (n, &g) in job.current_placement.iter().enumerate() {
        if g > 0 {
            held[topo.rack_of(NodeId(n as u32)) as usize] += u64::from(g);
        }
    }
    let (best, &most) = held
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
    (most > 0).then_some(best as u32)
}

/// Assigns each job to a rack: `result[j]` is the rack of `jobs[j]`.
///
/// A small serial GA over assignment vectors, seeded with a greedy
/// capacity-aware packing that respects home racks. With one rack (or
/// no jobs) the answer is trivially all-zeros without touching `rng`.
///
/// `prev` carries the previous interval's assignment keyed by job id:
/// when given, it seeds a second population member (surviving jobs
/// keep their old rack, arrivals fall back to the greedy choice). On
/// a quiet interval that member already scores at the previous
/// optimum, so the search early-stops after `EARLY_STOP_GENS` stale
/// generations — and, just as importantly, idle jobs (which have no
/// home-rack keep-bonus anchoring them) stop reshuffling between
/// racks from round to round, which is what keeps the phase-2
/// per-rack carries valid.
pub fn assign_racks<R: Rng>(
    jobs: &[SchedJob],
    spec: &ClusterSpec,
    topo: &Topology,
    prev: Option<&HashMap<JobId, u32>>,
    rng: &mut R,
) -> Vec<u32> {
    let num_racks = topo.num_racks() as usize;
    if jobs.is_empty() || num_racks <= 1 {
        return vec![0; jobs.len()];
    }
    let caps: Vec<u64> = (0..topo.num_racks())
        .map(|r| {
            topo.nodes_in(r)
                .iter()
                .map(|&n| u64::from(spec.gpus_on(NodeId(n))))
                .sum()
        })
        .collect();
    let demands: Vec<u64> = jobs.iter().map(demand).collect();
    let homes: Vec<Option<u32>> = jobs.iter().map(|j| home_rack(j, topo)).collect();

    // Deterministic score: integer capacity packing summed in rack
    // order plus f64 keep-bonuses summed in job order.
    let score = |assign: &[u32]| -> f64 {
        let mut load = vec![0u64; num_racks];
        for (j, &r) in assign.iter().enumerate() {
            load[r as usize] += demands[j];
        }
        let served: u64 = load.iter().zip(&caps).map(|(&l, &c)| l.min(c)).sum();
        let mut bonus = 0.0;
        for (j, &r) in assign.iter().enumerate() {
            if homes[j] == Some(r) {
                bonus += KEEP_BONUS * demands[j] as f64;
            }
        }
        served as f64 + bonus
    };

    // Greedy seed: home rack when one exists, otherwise the rack with
    // the most remaining capacity (ties to the lowest index).
    let mut remaining = caps.clone();
    let seed: Vec<u32> = jobs
        .iter()
        .enumerate()
        .map(|(j, _)| {
            let r = match homes[j] {
                Some(h) => h,
                None => {
                    let (best, _) = remaining
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                        .expect("num_racks >= 2");
                    best as u32
                }
            };
            remaining[r as usize] = remaining[r as usize].saturating_sub(demands[j]);
            r
        })
        .collect();

    let mutate = |assign: &mut Vec<u32>, rng: &mut R| {
        for gene in assign.iter_mut() {
            if rng.gen_bool(MUTATION_PROB) {
                *gene = rng.gen_range(0..num_racks as u32);
            }
        }
    };

    // Carried seed: the previous interval's rack per surviving job,
    // greedy fallback for arrivals (and for stale rack indices, which
    // only survive a topology change the caller failed to clear).
    let carried: Option<Vec<u32>> = prev.map(|prev| {
        seed.iter()
            .enumerate()
            .map(|(j, &g)| match prev.get(&jobs[j].id) {
                Some(&r) if (r as usize) < num_racks => r,
                _ => g,
            })
            .collect()
    });

    // Seed order matters: ranking sorts are stable and the final pick
    // takes the sorted-first best, so among equal scores the carried
    // assignment wins over the greedy re-derivation and both win over
    // mutated children — quiet intervals keep the previous assignment
    // instead of drifting through score ties.
    let mut population: Vec<(Vec<u32>, f64)> = Vec::with_capacity(POPULATION * 2);
    if let Some(carried) = carried {
        let s = score(&carried);
        population.push((carried, s));
    }
    if population.is_empty() || population[0].0 != seed {
        let s = score(&seed);
        population.push((seed, s));
    }
    // Mutants spread from the better seed.
    let base = (population.len() > 1 && population[1].1 > population[0].1) as usize;
    while population.len() < POPULATION {
        let mut member = population[base].0.clone();
        mutate(&mut member, rng);
        let s = score(&member);
        population.push((member, s));
    }

    let mut best_score = population
        .iter()
        .map(|m| m.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut stale = 0usize;
    for _ in 0..GENERATIONS {
        // Parent selection draws by index into the *current* ranking;
        // the offspring are appended and the combined pool is ranked.
        let pool = population.len();
        for _ in 0..POPULATION {
            let pick = |rng: &mut R| {
                (0..TOURNAMENT)
                    .map(|_| rng.gen_range(0..pool))
                    .min_by(|&a, &b| {
                        population[a]
                            .1
                            .total_cmp(&population[b].1)
                            .reverse()
                            .then(a.cmp(&b))
                    })
                    .expect("tournament size > 0")
            };
            let (a, b) = (pick(rng), pick(rng));
            // Uniform crossover, then mutation.
            let mut child: Vec<u32> = (0..jobs.len())
                .map(|j| {
                    if rng.gen_bool(0.5) {
                        population[a].0[j]
                    } else {
                        population[b].0[j]
                    }
                })
                .collect();
            mutate(&mut child, rng);
            let s = score(&child);
            population.push((child, s));
        }
        population.sort_by(|x, y| y.1.total_cmp(&x.1));
        population.truncate(POPULATION);
        if population[0].1 > best_score {
            best_score = population[0].1;
            stale = 0;
        } else {
            stale += 1;
            if stale >= EARLY_STOP_GENS {
                break;
            }
        }
    }

    // The population is sorted best-first after every generation;
    // taking the front (not `max_by`, whose tie-break prefers the
    // *last* maximum) keeps seed-order priority under score ties.
    population
        .into_iter()
        .next()
        .expect("non-empty population")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_cluster::JobId;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn model() -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, 3000.0).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, placement: Vec<u32>) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(),
            min_gpus: 1,
            gpu_cap: 8,
            weight: 1.0,
            current_placement: placement,
        }
    }

    #[test]
    fn home_rack_follows_the_gpu_majority() {
        let topo = Topology::grouped(4, 2).unwrap();
        assert_eq!(home_rack(&job(0, vec![1, 0, 2, 1]), &topo), Some(1));
        assert_eq!(home_rack(&job(0, vec![2, 1, 0, 1]), &topo), Some(0));
        assert_eq!(home_rack(&job(0, vec![0, 0, 0, 0]), &topo), None);
        assert_eq!(
            home_rack(&job(0, vec![1, 1]), &topo),
            None,
            "width mismatch"
        );
    }

    #[test]
    fn single_rack_assigns_without_drawing() {
        let topo = Topology::single_rack(4).unwrap();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, vec![])).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.clone().next_u64();
        let assign = assign_racks(&jobs, &spec, &topo, None, &mut rng);
        assert_eq!(assign, vec![0, 0, 0]);
        assert_eq!(rng.next_u64(), before, "single rack must not draw");
    }

    #[test]
    fn assignment_is_deterministic_and_respects_capacity() {
        let topo = Topology::grouped(4, 2).unwrap();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..6).map(|i| job(i, vec![])).collect();
        let a1 = assign_racks(&jobs, &spec, &topo, None, &mut StdRng::seed_from_u64(7));
        let a2 = assign_racks(&jobs, &spec, &topo, None, &mut StdRng::seed_from_u64(7));
        assert_eq!(a1, a2, "same seed, same assignment");
        assert!(a1.iter().all(|&r| r < topo.num_racks()));
        // 6 jobs of demand 1 against two racks of 8 GPUs each: both
        // racks can serve everything, so no rack should be starved of
        // all jobs only if capacity forced it — just check validity.
        assert_eq!(a1.len(), 6);
    }

    #[test]
    fn running_jobs_prefer_their_home_rack() {
        let topo = Topology::grouped(4, 2).unwrap();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        // Two running jobs, one per rack, each holding 2 GPUs; demand
        // fits everywhere, so the keep-bonus should pin them home.
        let jobs = vec![job(0, vec![2, 0, 0, 0]), job(1, vec![0, 0, 2, 0])];
        let assign = assign_racks(&jobs, &spec, &topo, None, &mut StdRng::seed_from_u64(3));
        assert_eq!(assign, vec![0, 1]);
    }

    #[test]
    fn carried_assignment_wins_score_ties() {
        let topo = Topology::grouped(4, 2).unwrap();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        // Six idle jobs (no home rack, no keep-bonus): every split
        // that fits scores identically, so without a carry the
        // assignment is free to drift between intervals. With one,
        // the previous assignment must win the ties verbatim.
        let jobs: Vec<SchedJob> = (0..6).map(|i| job(i, vec![])).collect();
        let prev: HashMap<JobId, u32> = (0..6u32)
            .map(|i| (JobId(i), u32::from(i % 2 == 0)))
            .collect();
        let assign = assign_racks(
            &jobs,
            &spec,
            &topo,
            Some(&prev),
            &mut StdRng::seed_from_u64(9),
        );
        let want: Vec<u32> = (0..6u32).map(|i| u32::from(i % 2 == 0)).collect();
        assert_eq!(assign, want, "carried assignment must survive ties");
    }

    #[test]
    fn carried_arrivals_fall_back_to_greedy() {
        let topo = Topology::grouped(4, 2).unwrap();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(|i| job(i, vec![])).collect();
        // The carry only knows job 0 (plus a stale out-of-range rack
        // for job 1, which must be ignored); jobs 1 and 2 are new.
        let mut prev = HashMap::new();
        prev.insert(JobId(0), 1u32);
        prev.insert(JobId(1), 7u32);
        let assign = assign_racks(
            &jobs,
            &spec,
            &topo,
            Some(&prev),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(assign.len(), 3);
        assert_eq!(assign[0], 1, "surviving job keeps its carried rack");
        assert!(assign.iter().all(|&r| r < topo.num_racks()));
    }
}
