//! The top-level `PolluxSched` service logic.
//!
//! Owns the genetic algorithm and the population persisted across
//! scheduling intervals (Sec. 4.3). At each interval the caller passes
//! the current set of [`SchedJob`]s (models refreshed by their agents);
//! the scheduler reconciles the saved population with job arrivals and
//! completions, evolves it, and returns the best allocation matrix.

use crate::ga::{GaConfig, GaOutcome, GaRunStats, GeneticAlgorithm};
use crate::rackga;
use crate::speedup::{SchedJob, SpeedupTable, SpeedupTableStats};
use crate::weights::WeightConfig;
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId, NodeId, NodeSpec, Topology};
use pollux_telemetry::Recorder;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Genetic-algorithm settings.
    pub ga: GaConfig,
    /// Job-weight decay settings (Eqn 16).
    pub weights: WeightConfig,
    /// Scheduling interval in seconds (60 s in the paper). Stored here
    /// for the driving loop; the scheduler itself is invoked externally.
    pub interval_seconds: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            ga: GaConfig::default(),
            weights: WeightConfig::default(),
            interval_seconds: 60,
        }
    }
}

/// Evaluation-count breakdown of one scheduling interval.
///
/// Every field is deterministic for a fixed seed at any thread count.
/// Wall-clock timings of the interval (table build, GA evolve) are
/// *not* part of this struct: they are emitted as telemetry spans
/// (`sched/table_build`, `sched/ga_evolve`) through the recorder
/// attached via [`PolluxSched::set_recorder`], keeping every
/// deterministic output free of machine-dependent values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedIntervalStats {
    /// GA evaluation counters (generations, full vs. incremental
    /// fitness evaluations, contribution rows recomputed).
    pub ga: GaRunStats,
    /// Speedup-table counters (lookups served vs. golden-section
    /// solves spent building the table).
    pub speedup: SpeedupTableStats,
}

/// Cluster-wide resource optimizer with population persistence.
#[derive(Debug)]
pub struct PolluxSched {
    config: SchedConfig,
    ga: GeneticAlgorithm,
    saved_population: Vec<AllocationMatrix>,
    saved_job_ids: Vec<JobId>,
    last_interval: Option<SchedIntervalStats>,
    cumulative_speedup: SpeedupTableStats,
    recorder: Recorder,
    /// Rack layout for the two-phase (rack, then GPU) search. `None`
    /// or a single rack → the flat search, bit for bit.
    topology: Option<Topology>,
}

impl PolluxSched {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        Self {
            config,
            ga: GeneticAlgorithm::new(config.ga),
            saved_population: Vec::new(),
            saved_job_ids: Vec::new(),
            last_interval: None,
            cumulative_speedup: SpeedupTableStats::default(),
            recorder: Recorder::disabled(),
            topology: None,
        }
    }

    /// Sets (or clears) the rack topology. With `None` or a
    /// single-rack topology the scheduler runs the flat search
    /// unchanged — same RNG draws, same schedule, bit for bit; with
    /// ≥ 2 racks each interval runs the two-phase search: a cheap
    /// rack-assignment GA ([`crate::rackga`]) followed by the
    /// placement GA independently inside each rack.
    pub fn set_topology(&mut self, topology: Option<Topology>) {
        self.topology = topology;
    }

    /// The active rack topology, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Attaches a telemetry recorder: each interval emits its
    /// wall-clock spans (`sched/table_build`, `sched/ga_evolve`) and
    /// evaluation counters through it. Telemetry is observational
    /// only — schedules are bit-identical with or without a recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Reconfigures the worker-thread count used for fitness
    /// evaluation (`1` = fully serial). Safe to change between
    /// intervals: for a fixed seed the schedule is identical at every
    /// thread count (see the [`crate::ga`] determinism contract).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.ga.threads = threads.max(1);
        self.ga = GeneticAlgorithm::new(self.config.ga);
    }

    /// The active worker-thread count.
    pub fn threads(&self) -> usize {
        self.config.ga.threads
    }

    /// Runs one full optimization for this interval and returns the
    /// complete [`GaOutcome`] (best matrix, fitness, final
    /// population). The population is also saved internally to
    /// bootstrap the next interval.
    pub fn optimize<R: Rng>(
        &mut self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> GaOutcome {
        // Two-phase rack search only when a real (multi-rack) topology
        // matching the cluster width is configured; everything else
        // falls through to the flat path untouched.
        if let Some(topo) = self.topology.as_ref() {
            if topo.num_racks() > 1 && topo.num_nodes() == spec.num_nodes() {
                let topo = topo.clone();
                return self.optimize_racked(&topo, jobs, spec, rng);
            }
        }
        let seed = self.reconciled_seed(jobs, spec);
        let threads = self.config.ga.threads.max(1);
        let build_start = Instant::now();
        let table = SpeedupTable::build(jobs, spec, threads);
        let table_build_nanos = build_start.elapsed().as_nanos() as u64;
        let evolve_start = Instant::now();
        let outcome = self.ga.evolve(jobs, spec, seed, &table, rng);
        let ga_evolve_nanos = evolve_start.elapsed().as_nanos() as u64;
        let speedup = table.stats();
        self.cumulative_speedup.accumulate(speedup);
        self.last_interval = Some(SchedIntervalStats {
            ga: outcome.stats,
            speedup,
        });
        // Wall-clock timings leave through the telemetry sink only;
        // everything deterministic ships via SchedIntervalStats.
        let rec = &self.recorder;
        rec.record_duration_ns("sched", "table_build", table_build_nanos);
        rec.record_duration_ns("sched", "ga_evolve", ga_evolve_nanos);
        rec.incr("sched", "intervals", 1);
        rec.incr("sched", "generations", outcome.stats.generations_run);
        rec.incr("sched", "fitness_evals", outcome.stats.fitness_evals);
        rec.incr(
            "sched",
            "incremental_evals",
            outcome.stats.incremental_evals,
        );
        rec.incr("sched", "rows_recomputed", outcome.stats.rows_recomputed);
        rec.incr("sched", "table_hits", speedup.hits);
        rec.incr("sched", "table_misses", speedup.misses);
        rec.incr("sched", "table_solves", speedup.solves);
        self.saved_population = outcome.population.clone();
        self.saved_job_ids = jobs.iter().map(|j| j.id).collect();
        outcome
    }

    /// The two-phase rack search: assign jobs to racks with the cheap
    /// assignment GA, then evolve the placement GA independently per
    /// rack over only that rack's nodes and jobs, and stitch the
    /// sub-matrices back into a cluster-width allocation.
    ///
    /// Feasibility and interference avoidance compose: racks partition
    /// the nodes, so per-rack-feasible sub-matrices are globally
    /// feasible and distributed jobs from different racks can never
    /// share a node. The combined fitness is the weight-average of the
    /// per-rack fitnesses (exactly the global fitness of the stitched
    /// matrix, since fitness is a weighted mean of per-job
    /// contributions and every job lives in exactly one rack).
    ///
    /// One approximation is inherent: a running job reassigned to a
    /// different rack sees an empty `current_placement` in its
    /// sub-problem, so the placement GA's restart penalty does not
    /// fire for it — the rack phase's keep-bonus prices the move at
    /// rack granularity instead. Per-rack speedup tables replace the
    /// single dense table (whose size grows with total cluster GPUs);
    /// saved populations are not carried across intervals on this
    /// path because rack membership reshuffles round to round.
    fn optimize_racked<R: Rng>(
        &mut self,
        topo: &Topology,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> GaOutcome {
        let threads = self.config.ga.threads.max(1);
        let assignment = rackga::assign_racks(jobs, spec, topo, rng);

        let mut best = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        let mut stats = GaRunStats::default();
        let mut speedup = SpeedupTableStats::default();
        let mut table_build_nanos = 0u64;
        let mut ga_evolve_nanos = 0u64;
        let mut fitness_weighted = 0.0;
        let mut weight_total = 0.0;

        for r in 0..topo.num_racks() {
            let members: Vec<usize> = (0..jobs.len()).filter(|&j| assignment[j] == r).collect();
            if members.is_empty() {
                continue;
            }
            let rack_nodes = topo.nodes_in(r);
            let sub_spec = ClusterSpec::new(
                rack_nodes
                    .iter()
                    .map(|&n| NodeSpec {
                        gpus: spec.gpus_on(NodeId(n)),
                    })
                    .collect(),
            )
            .expect("racks are non-empty and rack nodes have GPUs");
            let sub_jobs: Vec<SchedJob> = members
                .iter()
                .map(|&j| {
                    let job = &jobs[j];
                    // Slice the placement to the rack's columns; a job
                    // currently placed elsewhere sees an empty row.
                    let placement: Vec<u32> = if job.current_placement.len() == spec.num_nodes() {
                        rack_nodes
                            .iter()
                            .map(|&n| job.current_placement[n as usize])
                            .collect()
                    } else {
                        Vec::new()
                    };
                    SchedJob {
                        id: job.id,
                        model: job.model,
                        min_gpus: job.min_gpus,
                        gpu_cap: job.gpu_cap,
                        weight: job.weight,
                        current_placement: placement,
                    }
                })
                .collect();

            let build_start = Instant::now();
            let table = SpeedupTable::build(&sub_jobs, &sub_spec, threads);
            table_build_nanos += build_start.elapsed().as_nanos() as u64;
            let evolve_start = Instant::now();
            let outcome = self
                .ga
                .evolve(&sub_jobs, &sub_spec, Vec::new(), &table, rng);
            ga_evolve_nanos += evolve_start.elapsed().as_nanos() as u64;

            let sub_speedup = table.stats();
            speedup.accumulate(sub_speedup);
            stats.generations_run += outcome.stats.generations_run;
            stats.fitness_evals += outcome.stats.fitness_evals;
            stats.incremental_evals += outcome.stats.incremental_evals;
            stats.rows_recomputed += outcome.stats.rows_recomputed;

            let wsum: f64 = sub_jobs.iter().map(|j| j.weight).sum();
            fitness_weighted += outcome.best_fitness * wsum;
            weight_total += wsum;
            for (k, &j) in members.iter().enumerate() {
                for (col, &n) in rack_nodes.iter().enumerate() {
                    let g = outcome.best.get(k, col);
                    if g > 0 {
                        best.set(j, n as usize, g);
                    }
                }
            }
        }

        let best_fitness = if weight_total > 0.0 {
            fitness_weighted / weight_total
        } else {
            0.0
        };
        self.cumulative_speedup.accumulate(speedup);
        self.last_interval = Some(SchedIntervalStats { ga: stats, speedup });
        let rec = &self.recorder;
        rec.record_duration_ns("sched", "table_build", table_build_nanos);
        rec.record_duration_ns("sched", "ga_evolve", ga_evolve_nanos);
        rec.incr("sched", "intervals", 1);
        rec.incr("sched", "generations", stats.generations_run);
        rec.incr("sched", "fitness_evals", stats.fitness_evals);
        rec.incr("sched", "incremental_evals", stats.incremental_evals);
        rec.incr("sched", "rows_recomputed", stats.rows_recomputed);
        rec.incr("sched", "table_hits", speedup.hits);
        rec.incr("sched", "table_misses", speedup.misses);
        rec.incr("sched", "table_solves", speedup.solves);
        self.saved_population = Vec::new();
        self.saved_job_ids = jobs.iter().map(|j| j.id).collect();
        GaOutcome {
            best,
            best_fitness,
            population: Vec::new(),
            stats,
        }
    }

    /// Drains the hot-path breakdown of the most recent
    /// [`Self::optimize`] call (`None` before the first interval or
    /// when already taken).
    pub fn take_interval_stats(&mut self) -> Option<SchedIntervalStats> {
        self.last_interval.take()
    }

    /// Cumulative speedup-table counters across every interval since
    /// construction — the backing value of the
    /// `pollux.sched.speedup.stats` service key.
    pub fn speedup_stats(&self) -> SpeedupTableStats {
        self.cumulative_speedup
    }

    /// Computes the allocation matrix for this interval.
    ///
    /// `jobs[i]` corresponds to row `i` of the returned matrix. The
    /// caller is responsible for applying the matrix (starting,
    /// stopping, and restarting jobs) and for setting each job's
    /// `current_placement` and `weight` before the next call.
    pub fn schedule<R: Rng>(
        &mut self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> AllocationMatrix {
        self.optimize(jobs, spec, rng).best
    }

    /// Adapts the saved population to the current job set and cluster
    /// size: surviving jobs keep their evolved rows, new jobs start
    /// with empty rows, and departed jobs' rows are dropped.
    fn reconciled_seed(&self, jobs: &[SchedJob], spec: &ClusterSpec) -> Vec<AllocationMatrix> {
        if self.saved_population.is_empty() {
            return Vec::new();
        }
        let old_index: HashMap<JobId, usize> = self
            .saved_job_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let num_nodes = spec.num_nodes();
        self.saved_population
            .iter()
            .map(|old| {
                let mut m = AllocationMatrix::zeros(jobs.len(), num_nodes);
                for (j, job) in jobs.iter().enumerate() {
                    if let Some(&oj) = old_index.get(&job.id) {
                        if oj < old.num_jobs() {
                            let mut row = old.row(oj).to_vec();
                            row.resize(num_nodes, 0);
                            m.set_row(j, row);
                        }
                    }
                }
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(3000.0),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    fn sched() -> PolluxSched {
        let mut config = SchedConfig::default();
        config.ga.population = 24;
        config.ga.generations = 15;
        PolluxSched::new(config)
    }

    #[test]
    fn schedules_feasible_allocations() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(job).collect();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(1);
        let a = s.schedule(&jobs, &spec, &mut rng);
        assert_eq!(a.num_jobs(), 3);
        assert!(a.is_feasible(&spec));
        assert!(a.satisfies_interference_avoidance());
        // Everything useful gets allocated.
        for j in 0..3 {
            assert!(a.gpus_of(j) >= 1, "job {j} starved:\n{a}");
        }
    }

    #[test]
    fn population_persists_and_reconciles_arrivals() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(2);

        let jobs2: Vec<SchedJob> = (0..2).map(job).collect();
        s.schedule(&jobs2, &spec, &mut rng);
        assert_eq!(s.saved_job_ids.len(), 2);

        // A third job arrives; the first departs.
        let jobs_next = vec![job(1), job(2)];
        let a = s.schedule(&jobs_next, &spec, &mut rng);
        assert_eq!(a.num_jobs(), 2);
        assert!(a.is_feasible(&spec));
        assert_eq!(s.saved_job_ids, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn reconciles_cluster_resizes() {
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(3);
        let jobs: Vec<SchedJob> = (0..2).map(job).collect();

        let spec4 = ClusterSpec::homogeneous(4, 4).unwrap();
        s.schedule(&jobs, &spec4, &mut rng);

        // Cluster shrinks to 2 nodes: allocations must stay feasible.
        let spec2 = ClusterSpec::homogeneous(2, 4).unwrap();
        let a = s.schedule(&jobs, &spec2, &mut rng);
        assert_eq!(a.num_nodes(), 2);
        assert!(a.is_feasible(&spec2));

        // And grows to 6.
        let spec6 = ClusterSpec::homogeneous(6, 4).unwrap();
        let a = s.schedule(&jobs, &spec6, &mut rng);
        assert_eq!(a.num_nodes(), 6);
        assert!(a.is_feasible(&spec6));
    }

    #[test]
    fn interval_stats_are_recorded_and_drained() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(job).collect();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(s.take_interval_stats().is_none());
        s.schedule(&jobs, &spec, &mut rng);
        let stats = s.take_interval_stats().expect("stats recorded");
        assert!(stats.ga.fitness_evals > 0);
        assert!(stats.ga.generations_run > 0);
        assert!(stats.speedup.solves > 0);
        assert!(stats.speedup.hits > 0, "GA must hit the dense table");
        assert!(s.take_interval_stats().is_none(), "stats drain once");
        // Cumulative speedup counters keep growing across intervals.
        let before = s.speedup_stats();
        s.schedule(&jobs, &spec, &mut rng);
        let after = s.speedup_stats();
        assert!(after.hits > before.hits);
        assert!(after.solves > before.solves);
    }

    #[test]
    fn keeps_stable_placements_across_intervals() {
        // With an unchanged world, re-scheduling should not shuffle a
        // running job gratuitously (restart penalty; Sec. 4.2.1).
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(4);
        let jobs = vec![job(0)];
        let first = s.schedule(&jobs, &spec, &mut rng);

        let mut jobs2 = vec![job(0)];
        jobs2[0].current_placement = first.row(0).to_vec();
        let second = s.schedule(&jobs2, &spec, &mut rng);
        assert_eq!(second.row(0), first.row(0));
    }
}
