//! The top-level `PolluxSched` service logic.
//!
//! Owns the genetic algorithm and the population persisted across
//! scheduling intervals (Sec. 4.3). At each interval the caller passes
//! the current set of [`SchedJob`]s (models refreshed by their agents);
//! the scheduler reconciles the saved population with job arrivals and
//! completions, evolves it, and returns the best allocation matrix.

use crate::fitness::FitnessConfig;
use crate::ga::{GaConfig, GaOutcome, GaRunStats, GeneticAlgorithm};
use crate::par::parallel_map;
use crate::rackga;
use crate::speedup::{pure_speedup, SchedJob, SpeedupTable, SpeedupTableStats};
use crate::weights::WeightConfig;
use pollux_cluster::{AllocationMatrix, ClusterSpec, JobId, NodeId, NodeSpec, Topology};
use pollux_models::PlacementShape;
use pollux_telemetry::{JobExplain, Recorder, RoundExplain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Genetic-algorithm settings.
    pub ga: GaConfig,
    /// Job-weight decay settings (Eqn 16).
    pub weights: WeightConfig,
    /// Scheduling interval in seconds (60 s in the paper). Stored here
    /// for the driving loop; the scheduler itself is invoked externally.
    pub interval_seconds: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            ga: GaConfig::default(),
            weights: WeightConfig::default(),
            interval_seconds: 60,
        }
    }
}

/// Evaluation-count breakdown of one scheduling interval.
///
/// Every field is deterministic for a fixed seed at any thread count.
/// Wall-clock timings of the interval (table build, GA evolve) are
/// *not* part of this struct: they are emitted as telemetry spans
/// (`sched/table_build` and `sched/ga_evolve` on the flat path,
/// `sched/rack_assign` and `sched/rack_evolve` on the racked path)
/// through the recorder attached via [`PolluxSched::set_recorder`],
/// keeping every deterministic output free of machine-dependent
/// values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedIntervalStats {
    /// GA evaluation counters (generations, full vs. incremental
    /// fitness evaluations, contribution rows recomputed).
    pub ga: GaRunStats,
    /// Speedup-table counters (lookups served vs. golden-section
    /// solves spent building the table).
    pub speedup: SpeedupTableStats,
}

/// Cluster-wide resource optimizer with population persistence.
#[derive(Debug)]
pub struct PolluxSched {
    config: SchedConfig,
    ga: GeneticAlgorithm,
    saved_population: Vec<AllocationMatrix>,
    saved_job_ids: Vec<JobId>,
    last_interval: Option<SchedIntervalStats>,
    cumulative_speedup: SpeedupTableStats,
    recorder: Recorder,
    /// The decision audit of the most recent interval, built only
    /// while a recorder is attached (see [`Self::take_round_explain`]).
    last_explain: Option<RoundExplain>,
    /// Rack layout for the two-phase (rack, then GPU) search. `None`
    /// or a single rack → the flat search, bit for bit.
    topology: Option<Topology>,
    /// The previous flat interval's dense table: clean jobs' rows are
    /// copied forward instead of re-solved
    /// ([`SpeedupTable::build_reusing`]).
    prev_table: Option<SpeedupTable>,
    /// Per-rack cross-interval carry-over for the racked path, indexed
    /// by rack. Cleared when the search switches paths or the topology
    /// changes (rack indices renumber).
    rack_carry: Vec<RackCarry>,
    /// The previous interval's phase-1 rack assignment keyed by job
    /// id. Seeds the next interval's assignment GA
    /// ([`rackga::assign_racks`]) so quiet intervals keep rack
    /// memberships stable — the precondition for the per-rack carries
    /// above to hit. Cleared together with `rack_carry`.
    assign_carry: HashMap<JobId, u32>,
}

/// What one rack's phase-2 search saves for the next interval: the
/// evolved population (keyed by the member job ids for reconciliation
/// after rack reshuffles), the rack's dense speedup table (for
/// row-level reuse), and the exact subproblem it solved plus its
/// answer — which lets a *quiet* rack (identical member jobs, models,
/// weights, and rack-local placements next interval) return the
/// previous result without re-searching at all.
#[derive(Debug, Default)]
struct RackCarry {
    job_ids: Vec<JobId>,
    population: Vec<AllocationMatrix>,
    table: Option<SpeedupTable>,
    /// The rack-local subproblem of the previous interval, compared
    /// verbatim against the next interval's to detect a quiet rack.
    sub_jobs: Vec<SchedJob>,
    /// The previous best rack-local matrix and its fitness.
    best: Option<(AllocationMatrix, f64)>,
}

/// One rack's phase-2 result, produced by a worker and stitched
/// serially in rack order.
struct RackRun {
    outcome: GaOutcome,
    table: SpeedupTable,
    weight_sum: f64,
    job_ids: Vec<JobId>,
}

impl PolluxSched {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        Self {
            config,
            ga: GeneticAlgorithm::new(config.ga),
            saved_population: Vec::new(),
            saved_job_ids: Vec::new(),
            last_interval: None,
            cumulative_speedup: SpeedupTableStats::default(),
            recorder: Recorder::disabled(),
            last_explain: None,
            topology: None,
            prev_table: None,
            rack_carry: Vec::new(),
            assign_carry: HashMap::new(),
        }
    }

    /// Sets (or clears) the rack topology. With `None` or a
    /// single-rack topology the scheduler runs the flat search
    /// unchanged — same RNG draws, same schedule, bit for bit; with
    /// ≥ 2 racks each interval runs the two-phase search: a cheap
    /// rack-assignment GA ([`crate::rackga`]) followed by the
    /// placement GA independently inside each rack.
    ///
    /// Changing the topology drops the per-rack carry-over state
    /// (saved populations and tables): rack indices renumber, so the
    /// old carry would warm-start the wrong node columns.
    pub fn set_topology(&mut self, topology: Option<Topology>) {
        if self.topology != topology {
            self.rack_carry.clear();
            self.assign_carry.clear();
        }
        self.topology = topology;
    }

    /// The active rack topology, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Attaches a telemetry recorder: each interval emits its
    /// wall-clock spans (`sched/table_build` and `sched/ga_evolve` on
    /// the flat path, `sched/rack_assign` and `sched/rack_evolve` on
    /// the racked path) and evaluation counters through it. Telemetry
    /// is observational only — schedules are bit-identical with or
    /// without a recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Reconfigures the worker-thread count used for fitness
    /// evaluation (`1` = fully serial). Safe to change between
    /// intervals: for a fixed seed the schedule is identical at every
    /// thread count (see the [`crate::ga`] determinism contract).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.ga.threads = threads.max(1);
        self.ga = GeneticAlgorithm::new(self.config.ga);
    }

    /// The active worker-thread count.
    pub fn threads(&self) -> usize {
        self.config.ga.threads
    }

    /// Runs one full optimization for this interval and returns the
    /// complete [`GaOutcome`] (best matrix, fitness, final
    /// population). The population is also saved internally to
    /// bootstrap the next interval.
    pub fn optimize<R: Rng>(
        &mut self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> GaOutcome {
        // Two-phase rack search only when a real (multi-rack) topology
        // matching the cluster width is configured; everything else
        // falls through to the flat path untouched.
        if let Some(topo) = self.topology.as_ref() {
            if topo.num_racks() > 1 && topo.num_nodes() == spec.num_nodes() {
                let topo = topo.clone();
                return self.optimize_racked(&topo, jobs, spec, rng);
            }
        }
        let seed = reconcile_population(
            &self.saved_population,
            &self.saved_job_ids,
            jobs,
            spec.num_nodes(),
        );
        let threads = self.config.ga.threads.max(1);
        let build_start = Instant::now();
        let table = SpeedupTable::build_reusing(jobs, spec, threads, self.prev_table.as_ref());
        let table_build_nanos = build_start.elapsed().as_nanos() as u64;
        let evolve_start = Instant::now();
        let outcome = self.ga.evolve(jobs, spec, seed, &table, rng);
        let ga_evolve_nanos = evolve_start.elapsed().as_nanos() as u64;
        let speedup = table.stats();
        self.cumulative_speedup.accumulate(speedup);
        self.last_interval = Some(SchedIntervalStats {
            ga: outcome.stats,
            speedup,
        });
        // Wall-clock timings leave through the telemetry sink only;
        // everything deterministic ships via SchedIntervalStats.
        let rec = &self.recorder;
        rec.record_duration_ns("sched", "table_build", table_build_nanos);
        rec.record_duration_ns("sched", "ga_evolve", ga_evolve_nanos);
        rec.incr("sched", "intervals", 1);
        rec.incr("sched", "generations", outcome.stats.generations_run);
        rec.incr("sched", "fitness_evals", outcome.stats.fitness_evals);
        rec.incr(
            "sched",
            "incremental_evals",
            outcome.stats.incremental_evals,
        );
        rec.incr("sched", "rows_recomputed", outcome.stats.rows_recomputed);
        rec.incr("sched", "table_hits", speedup.hits);
        rec.incr("sched", "table_misses", speedup.misses);
        rec.incr("sched", "table_solves", speedup.solves);
        rec.incr("sched", "table_rows_reused", speedup.rows_reused);
        self.last_explain = self.recorder.is_enabled().then(|| {
            // Flat path: no rack phase ran, so both rack columns carry
            // the −1 sentinel.
            build_explain(
                &self.config.ga.fitness,
                jobs,
                &outcome.best,
                outcome.best_fitness,
                false,
                |_, _| (-1, -1),
            )
        });
        self.saved_population = outcome.population.clone();
        self.saved_job_ids = jobs.iter().map(|j| j.id).collect();
        // Each path owns its own carry-over; switching paths starts
        // cold (correctness never depends on the carry, only warmth).
        self.prev_table = Some(table);
        self.rack_carry.clear();
        self.assign_carry.clear();
        outcome
    }

    /// The two-phase rack search: assign jobs to racks with the cheap
    /// assignment GA, then evolve the placement GA independently per
    /// rack over only that rack's nodes and jobs, and stitch the
    /// sub-matrices back into a cluster-width allocation.
    ///
    /// Feasibility and interference avoidance compose: racks partition
    /// the nodes, so per-rack-feasible sub-matrices are globally
    /// feasible and distributed jobs from different racks can never
    /// share a node. The combined fitness is the weight-average of the
    /// per-rack fitnesses (exactly the global fitness of the stitched
    /// matrix, since fitness is a weighted mean of per-job
    /// contributions and every job lives in exactly one rack).
    ///
    /// One approximation is inherent: a running job reassigned to a
    /// different rack sees an empty `current_placement` in its
    /// sub-problem, so the placement GA's restart penalty does not
    /// fire for it — the rack phase's keep-bonus prices the move at
    /// rack granularity instead. Per-rack speedup tables replace the
    /// single dense table (whose size grows with total cluster GPUs).
    ///
    /// # Parallelism and determinism
    ///
    /// The per-rack phase-2 searches are independent (racks partition
    /// both nodes and jobs), so they fan out over
    /// [`crate::par::parallel_map`]. Determinism uses the same
    /// seed-splitting discipline as the GA's seed-per-slot: after the
    /// serial phase-1 assignment, the master RNG is advanced once per
    /// *evolved* rack (in rack order) and each such rack evolves under
    /// a private `StdRng` derived from its seed — so the result is
    /// bit-identical at every thread count. Inner GA parallelism is
    /// forced to 1 (outer parallelism replaces it; either choice is
    /// bit-identical by the GA's thread-count invariance).
    ///
    /// # Cross-interval carry-over
    ///
    /// Each rack saves its evolved population (keyed by member job
    /// ids), its dense table, and the exact subproblem it solved with
    /// its answer. The next interval reconciles the population onto
    /// the rack's new membership — survivors keep their rows,
    /// departures are dropped, arrivals start empty — so the paper's
    /// Sec. 4.3 warm start applies on the racked path too, and clean
    /// jobs' table rows are copied forward instead of re-solved.
    /// Phase 1 is seeded with the previous interval's assignment, so
    /// quiet intervals keep rack memberships stable; a rack whose
    /// subproblem is then verbatim unchanged replays last interval's
    /// answer without re-searching at all (the quiet-rack fast path —
    /// interval cost scales with the racks that changed). Wall-clock
    /// timings of the two phases are emitted as telemetry spans
    /// (`sched/rack_assign`, `sched/rack_evolve`) only, never
    /// serialized; `sched/racks_evolved` and `sched/racks_reused`
    /// count the fast path's hits.
    fn optimize_racked<R: Rng>(
        &mut self,
        topo: &Topology,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> GaOutcome {
        let assignment = {
            let _span = self.recorder.span("sched", "rack_assign");
            let prev = (!self.assign_carry.is_empty()).then_some(&self.assign_carry);
            rackga::assign_racks(jobs, spec, topo, prev, rng)
        };

        let num_racks = topo.num_racks() as usize;
        let mut members_of: Vec<Vec<usize>> = vec![Vec::new(); num_racks];
        for (j, &r) in assignment.iter().enumerate() {
            members_of[r as usize].push(j);
        }
        let occupied: Vec<usize> = (0..num_racks)
            .filter(|&r| !members_of[r].is_empty())
            .collect();

        let mut prev_carry = std::mem::take(&mut self.rack_carry);
        prev_carry.resize_with(num_racks, RackCarry::default);

        // Serial pre-pass: each occupied rack's local subproblem —
        // needed both by the evolve workers and to detect quiet racks.
        let mut sub_jobs_of: Vec<Vec<SchedJob>> = occupied
            .iter()
            .map(|&r| {
                let rack_nodes = topo.nodes_in(r as u32);
                members_of[r]
                    .iter()
                    .map(|&j| {
                        let job = &jobs[j];
                        // Slice the placement to the rack's columns; a job
                        // currently placed elsewhere sees an empty row.
                        let placement: Vec<u32> = if job.current_placement.len() == spec.num_nodes()
                        {
                            rack_nodes
                                .iter()
                                .map(|&n| job.current_placement[n as usize])
                                .collect()
                        } else {
                            Vec::new()
                        };
                        SchedJob {
                            id: job.id,
                            model: job.model,
                            min_gpus: job.min_gpus,
                            gpu_cap: job.gpu_cap,
                            weight: job.weight,
                            current_placement: placement,
                        }
                    })
                    .collect()
            })
            .collect();

        // Quiet-rack fast path: a rack whose subproblem is verbatim
        // the one it solved last interval reuses last interval's
        // answer (best matrix, fitness, population, table) without
        // re-searching. Work per interval then scales with the racks
        // that actually changed. The decision is a pure function of
        // the inputs and the carry, so it is identical at every
        // thread count.
        let evolve_flags: Vec<bool> = occupied
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let carry = &prev_carry[r];
                carry.best.is_none() || carry.sub_jobs != sub_jobs_of[i]
            })
            .collect();
        let active: Vec<usize> = (0..occupied.len()).filter(|&i| evolve_flags[i]).collect();
        // One serial master-RNG draw per *evolved* rack, in rack
        // order; quiet racks draw nothing (their result is already
        // fixed), keeping the stream deterministic either way.
        let rack_seeds: Vec<u64> = active.iter().map(|_| rng.next_u64()).collect();

        let mut inner_cfg = self.config.ga;
        inner_cfg.threads = 1;
        let inner_ga = GeneticAlgorithm::new(inner_cfg);
        let threads = self.config.ga.threads.max(1);

        let evolve_start = Instant::now();
        let runs: Vec<RackRun> = {
            let prev_carry = &prev_carry;
            let occupied = &occupied;
            let active = &active;
            let sub_jobs_of = &sub_jobs_of;
            let rack_seeds = &rack_seeds;
            let inner_ga = &inner_ga;
            parallel_map(active.len(), threads, move |k| {
                let i = active[k];
                let r = occupied[i];
                let rack_nodes = topo.nodes_in(r as u32);
                let sub_spec = ClusterSpec::new(
                    rack_nodes
                        .iter()
                        .map(|&n| NodeSpec {
                            gpus: spec.gpus_on(NodeId(n)),
                        })
                        .collect(),
                )
                .expect("racks are non-empty and rack nodes have GPUs");
                let sub_jobs = &sub_jobs_of[i];

                let carry = &prev_carry[r];
                let seed_pop = reconcile_population(
                    &carry.population,
                    &carry.job_ids,
                    sub_jobs,
                    rack_nodes.len(),
                );
                let table =
                    SpeedupTable::build_reusing(sub_jobs, &sub_spec, 1, carry.table.as_ref());
                let mut rack_rng = StdRng::seed_from_u64(rack_seeds[k]);
                let outcome = inner_ga.evolve(sub_jobs, &sub_spec, seed_pop, &table, &mut rack_rng);
                let weight_sum: f64 = sub_jobs.iter().map(|j| j.weight).sum();
                let job_ids: Vec<JobId> = sub_jobs.iter().map(|j| j.id).collect();
                RackRun {
                    outcome,
                    table,
                    weight_sum,
                    job_ids,
                }
            })
        };
        let ga_evolve_nanos = evolve_start.elapsed().as_nanos() as u64;

        // Stitch serially in rack order (parallel_map preserves it).
        let mut best = AllocationMatrix::zeros(jobs.len(), spec.num_nodes());
        let mut stats = GaRunStats::default();
        let mut speedup = SpeedupTableStats::default();
        let mut fitness_weighted = 0.0;
        let mut weight_total = 0.0;
        let mut racks_reused: u64 = 0;
        let mut new_carry: Vec<RackCarry> = Vec::new();
        new_carry.resize_with(num_racks, RackCarry::default);
        let mut runs = runs.into_iter();
        for (i, &r) in occupied.iter().enumerate() {
            let rack_nodes = topo.nodes_in(r as u32);
            if !evolve_flags[i] {
                // Quiet rack: replay the carried answer and move the
                // carry forward untouched. Its rows were all reused
                // (nothing was solved or looked up this interval).
                let carry = std::mem::take(&mut prev_carry[r]);
                let (carry_best, carry_fitness) =
                    carry.best.as_ref().expect("quiet racks carry a best");
                let weight_sum: f64 = carry.sub_jobs.iter().map(|j| j.weight).sum();
                fitness_weighted += carry_fitness * weight_sum;
                weight_total += weight_sum;
                speedup.rows_reused += carry.sub_jobs.len() as u64;
                for (k, &j) in members_of[r].iter().enumerate() {
                    for (col, &n) in rack_nodes.iter().enumerate() {
                        let g = carry_best.get(k, col);
                        if g > 0 {
                            best.set(j, n as usize, g);
                        }
                    }
                }
                racks_reused += 1;
                new_carry[r] = carry;
                continue;
            }
            let run = runs.next().expect("one run per evolved rack");
            speedup.accumulate(run.table.stats());
            stats.generations_run += run.outcome.stats.generations_run;
            stats.fitness_evals += run.outcome.stats.fitness_evals;
            stats.incremental_evals += run.outcome.stats.incremental_evals;
            stats.rows_recomputed += run.outcome.stats.rows_recomputed;
            fitness_weighted += run.outcome.best_fitness * run.weight_sum;
            weight_total += run.weight_sum;
            for (k, &j) in members_of[r].iter().enumerate() {
                for (col, &n) in rack_nodes.iter().enumerate() {
                    let g = run.outcome.best.get(k, col);
                    if g > 0 {
                        best.set(j, n as usize, g);
                    }
                }
            }
            new_carry[r] = RackCarry {
                job_ids: run.job_ids,
                population: run.outcome.population,
                table: Some(run.table),
                sub_jobs: std::mem::take(&mut sub_jobs_of[i]),
                best: Some((run.outcome.best, run.outcome.best_fitness)),
            };
        }

        let best_fitness = if weight_total > 0.0 {
            fitness_weighted / weight_total
        } else {
            0.0
        };
        self.cumulative_speedup.accumulate(speedup);
        self.last_interval = Some(SchedIntervalStats { ga: stats, speedup });
        let rec = &self.recorder;
        rec.record_duration_ns("sched", "rack_evolve", ga_evolve_nanos);
        rec.incr("sched", "intervals", 1);
        rec.incr("sched", "generations", stats.generations_run);
        rec.incr("sched", "fitness_evals", stats.fitness_evals);
        rec.incr("sched", "incremental_evals", stats.incremental_evals);
        rec.incr("sched", "rows_recomputed", stats.rows_recomputed);
        rec.incr("sched", "table_hits", speedup.hits);
        rec.incr("sched", "table_misses", speedup.misses);
        rec.incr("sched", "table_solves", speedup.solves);
        rec.incr("sched", "table_rows_reused", speedup.rows_reused);
        rec.incr("sched", "racks_evolved", active.len() as u64);
        rec.incr("sched", "racks_reused", racks_reused);
        self.last_explain = self.recorder.is_enabled().then(|| {
            // `assign_carry` still holds the previous interval's rack
            // assignment here; the new one lands below.
            build_explain(
                &self.config.ga.fitness,
                jobs,
                &best,
                best_fitness,
                true,
                |j, job| {
                    let before = self.assign_carry.get(&job.id).map_or(-1, |&r| r as i64);
                    (before, assignment[j] as i64)
                },
            )
        });
        self.saved_population = Vec::new();
        self.saved_job_ids = jobs.iter().map(|j| j.id).collect();
        self.prev_table = None;
        self.rack_carry = new_carry;
        self.assign_carry = jobs
            .iter()
            .zip(&assignment)
            .map(|(j, &r)| (j.id, r))
            .collect();
        GaOutcome {
            best,
            best_fitness,
            population: Vec::new(),
            stats,
        }
    }

    /// Drains the hot-path breakdown of the most recent
    /// [`Self::optimize`] call (`None` before the first interval or
    /// when already taken).
    pub fn take_interval_stats(&mut self) -> Option<SchedIntervalStats> {
        self.last_interval.take()
    }

    /// Drains the decision audit of the most recent
    /// [`Self::optimize`] call. Built only while an *enabled* recorder
    /// is attached ([`Self::set_recorder`]) so the audit costs nothing
    /// otherwise; the construction itself draws no RNG and touches no
    /// cached state, so schedules are bit-identical either way. The
    /// caller (the round pipeline) stamps `time` and `co_residents`
    /// before emitting the record.
    pub fn take_round_explain(&mut self) -> Option<RoundExplain> {
        self.last_explain.take()
    }

    /// Cumulative speedup-table counters across every interval since
    /// construction — the backing value of the
    /// `pollux.sched.speedup.stats` service key.
    pub fn speedup_stats(&self) -> SpeedupTableStats {
        self.cumulative_speedup
    }

    /// Computes the allocation matrix for this interval.
    ///
    /// `jobs[i]` corresponds to row `i` of the returned matrix. The
    /// caller is responsible for applying the matrix (starting,
    /// stopping, and restarting jobs) and for setting each job's
    /// `current_placement` and `weight` before the next call.
    pub fn schedule<R: Rng>(
        &mut self,
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> AllocationMatrix {
        self.optimize(jobs, spec, rng).best
    }
}

/// The SPEEDUP a placement row would deliver, computed counter-free
/// ([`pure_speedup`]) so audit construction never perturbs the
/// golden-digested table/cache hit statistics. Unallocated and
/// infeasible rows score 0, mirroring [`crate::fitness::contribution`].
fn row_speedup(job: &SchedJob, row: &[u32]) -> f64 {
    let gpus: u32 = row.iter().sum();
    let nodes = row.iter().filter(|&&g| g > 0).count() as u32;
    match PlacementShape::new(gpus, nodes) {
        Some(shape) => pure_speedup(job, shape),
        None => 0.0,
    }
}

/// Assembles the per-round decision audit: for every job, the SPEEDUP
/// of its currently applied placement vs. the one just chosen, its
/// fairness weight, the restart penalty the fitness function charged
/// (running jobs whose row changed — the same condition as
/// [`crate::fitness::contribution`]), and the rack assignment diff
/// supplied by `rack_of` (−1 = flat search / previously unassigned).
/// `fitness_before` is the weighted mean SPEEDUP of the *incumbent*
/// placements — keeping them charges no penalty — so `fitness −
/// fitness_before` is the value the round's moves bought. `time` and
/// `co_residents` are left for the driver, which knows the clock and
/// the node occupancies.
fn build_explain<F: Fn(usize, &SchedJob) -> (i64, i64)>(
    fitness_config: &FitnessConfig,
    jobs: &[SchedJob],
    best: &AllocationMatrix,
    best_fitness: f64,
    racked: bool,
    rack_of: F,
) -> RoundExplain {
    let mut weight_total = 0.0;
    let mut before_weighted = 0.0;
    let mut rows = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let new_row = best.row(j);
        let speedup_before = row_speedup(job, &job.current_placement);
        let speedup_after = row_speedup(job, new_row);
        let moved = job.is_running() && new_row != job.current_placement.as_slice();
        let (rack_before, rack_after) = rack_of(j, job);
        weight_total += job.weight;
        before_weighted += job.weight * speedup_before;
        rows.push(JobExplain {
            job: job.id.0 as u64,
            weight: job.weight,
            speedup_before,
            speedup_after,
            restart_penalty: if moved {
                fitness_config.restart_penalty
            } else {
                0.0
            },
            rack_before,
            rack_after,
            gpus_before: job.current_placement.iter().sum(),
            gpus_after: new_row.iter().sum(),
            co_residents: Vec::new(),
        });
    }
    let fitness_before = if weight_total > 0.0 {
        before_weighted / weight_total
    } else {
        0.0
    };
    RoundExplain {
        time: 0.0,
        fitness: best_fitness,
        fitness_before,
        racked,
        jobs: rows,
    }
}

/// Adapts a saved population to a new job set and cluster width:
/// surviving jobs keep their evolved rows (truncated or zero-padded to
/// `num_nodes`), new jobs start with empty rows, and departed jobs'
/// rows are dropped. Shared by the flat path's cross-interval warm
/// start and the racked path's per-rack carry-over (where it also
/// remaps rows after rack reshuffles).
fn reconcile_population(
    saved: &[AllocationMatrix],
    saved_ids: &[JobId],
    jobs: &[SchedJob],
    num_nodes: usize,
) -> Vec<AllocationMatrix> {
    if saved.is_empty() {
        return Vec::new();
    }
    let old_index: HashMap<JobId, usize> = saved_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    saved
        .iter()
        .map(|old| {
            let mut m = AllocationMatrix::zeros(jobs.len(), num_nodes);
            for (j, job) in jobs.iter().enumerate() {
                if let Some(&oj) = old_index.get(&job.id) {
                    if oj < old.num_jobs() {
                        let mut row = old.row(oj).to_vec();
                        row.resize(num_nodes, 0);
                        m.set_row(j, row);
                    }
                }
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, GoodputModel, ThroughputParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(128, phi).unwrap();
        let limits = BatchSizeLimits::new(128, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: model(3000.0),
            min_gpus: 1,
            gpu_cap: 64,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    fn sched() -> PolluxSched {
        let mut config = SchedConfig::default();
        config.ga.population = 24;
        config.ga.generations = 15;
        PolluxSched::new(config)
    }

    #[test]
    fn schedules_feasible_allocations() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(job).collect();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(1);
        let a = s.schedule(&jobs, &spec, &mut rng);
        assert_eq!(a.num_jobs(), 3);
        assert!(a.is_feasible(&spec));
        assert!(a.satisfies_interference_avoidance());
        // Everything useful gets allocated.
        for j in 0..3 {
            assert!(a.gpus_of(j) >= 1, "job {j} starved:\n{a}");
        }
    }

    #[test]
    fn quiet_racks_replay_without_searching() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let topo = Topology::grouped(4, 2).unwrap();
        let mut s = sched();
        s.set_topology(Some(topo));
        let mut rng = StdRng::seed_from_u64(5);
        let jobs: Vec<SchedJob> = (0..4).map(job).collect();

        let first = s.schedule(&jobs, &spec, &mut rng);
        let cold = s.take_interval_stats().expect("cold interval ran");
        assert!(cold.ga.generations_run > 0);

        // Identical inputs: every rack replays its carried answer —
        // same plan, zero generations, zero solves, every row reused.
        let second = s.schedule(&jobs, &spec, &mut rng);
        assert_eq!(second, first, "a quiet interval must replay the plan");
        let quiet = s.take_interval_stats().expect("quiet interval ran");
        assert_eq!(quiet.ga.generations_run, 0);
        assert_eq!(quiet.ga.fitness_evals, 0);
        assert_eq!(quiet.speedup.solves, 0);
        assert_eq!(quiet.speedup.rows_reused, jobs.len() as u64);

        // Touch one job's weight: its rack re-searches, work resumes.
        let mut churned = jobs.clone();
        churned[0].weight = 2.0;
        let a = s.schedule(&churned, &spec, &mut rng);
        assert!(a.is_feasible(&spec));
        let stats = s.take_interval_stats().expect("churned interval ran");
        assert!(
            stats.ga.generations_run > 0,
            "a changed rack must re-search"
        );
    }

    #[test]
    fn population_persists_and_reconciles_arrivals() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(2);

        let jobs2: Vec<SchedJob> = (0..2).map(job).collect();
        s.schedule(&jobs2, &spec, &mut rng);
        assert_eq!(s.saved_job_ids.len(), 2);

        // A third job arrives; the first departs.
        let jobs_next = vec![job(1), job(2)];
        let a = s.schedule(&jobs_next, &spec, &mut rng);
        assert_eq!(a.num_jobs(), 2);
        assert!(a.is_feasible(&spec));
        assert_eq!(s.saved_job_ids, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn reconciles_cluster_resizes() {
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(3);
        let jobs: Vec<SchedJob> = (0..2).map(job).collect();

        let spec4 = ClusterSpec::homogeneous(4, 4).unwrap();
        s.schedule(&jobs, &spec4, &mut rng);

        // Cluster shrinks to 2 nodes: allocations must stay feasible.
        let spec2 = ClusterSpec::homogeneous(2, 4).unwrap();
        let a = s.schedule(&jobs, &spec2, &mut rng);
        assert_eq!(a.num_nodes(), 2);
        assert!(a.is_feasible(&spec2));

        // And grows to 6.
        let spec6 = ClusterSpec::homogeneous(6, 4).unwrap();
        let a = s.schedule(&jobs, &spec6, &mut rng);
        assert_eq!(a.num_nodes(), 6);
        assert!(a.is_feasible(&spec6));
    }

    #[test]
    fn interval_stats_are_recorded_and_drained() {
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..2).map(job).collect();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(s.take_interval_stats().is_none());
        s.schedule(&jobs, &spec, &mut rng);
        let stats = s.take_interval_stats().expect("stats recorded");
        assert!(stats.ga.fitness_evals > 0);
        assert!(stats.ga.generations_run > 0);
        assert!(stats.speedup.solves > 0);
        assert!(stats.speedup.hits > 0, "GA must hit the dense table");
        assert!(s.take_interval_stats().is_none(), "stats drain once");
        // Cumulative speedup counters keep growing across intervals.
        let before = s.speedup_stats();
        s.schedule(&jobs, &spec, &mut rng);
        let after = s.speedup_stats();
        assert!(after.hits > before.hits);
        assert!(after.solves > before.solves);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn round_explain_audits_flat_and_racked_intervals() {
        use pollux_telemetry::MemorySink;
        use std::sync::Arc;

        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs: Vec<SchedJob> = (0..3).map(job).collect();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(7);

        // No recorder → no audit is built.
        let first = s.schedule(&jobs, &spec, &mut rng);
        assert!(s.take_round_explain().is_none());

        s.set_recorder(Recorder::new(Arc::new(MemorySink::new(64))));
        let mut jobs2 = jobs.clone();
        for (j, job) in jobs2.iter_mut().enumerate() {
            job.current_placement = first.row(j).to_vec();
        }
        let second = s.schedule(&jobs2, &spec, &mut rng);
        let explain = s.take_round_explain().expect("audit built when recording");
        assert!(!explain.racked);
        assert_eq!(explain.jobs.len(), jobs2.len());
        assert!(s.take_round_explain().is_none(), "audit drains once");
        for (j, je) in explain.jobs.iter().enumerate() {
            assert_eq!(je.job, u64::from(jobs2[j].id.0));
            assert_eq!(je.weight, 1.0);
            assert_eq!(je.rack_before, -1, "flat path has no racks");
            assert_eq!(je.rack_after, -1);
            assert_eq!(
                je.gpus_before,
                jobs2[j].current_placement.iter().sum::<u32>()
            );
            assert_eq!(je.gpus_after, second.row(j).iter().sum::<u32>());
            assert!(je.speedup_before > 0.0, "incumbents were allocated");
            let moved = second.row(j) != jobs2[j].current_placement.as_slice();
            assert_eq!(je.restart_penalty, if moved { 0.25 } else { 0.0 });
            assert_eq!(je.co_residents, Vec::<u64>::new(), "driver fills these");
        }
        assert_eq!(explain.time, 0.0, "driver stamps the clock");
        assert!(explain.fitness_before > 0.0);

        // Racked path: rack columns carry the phase-1 assignment.
        s.set_topology(Some(Topology::grouped(4, 2).unwrap()));
        s.schedule(&jobs2, &spec, &mut rng);
        let racked = s.take_round_explain().expect("racked audit");
        assert!(racked.racked);
        for je in &racked.jobs {
            assert_eq!(je.rack_before, -1, "first racked interval has no carry");
            assert!((0..2).contains(&je.rack_after), "assigned to a real rack");
        }
        s.schedule(&jobs2, &spec, &mut rng);
        let again = s.take_round_explain().expect("second racked audit");
        for (prev, cur) in racked.jobs.iter().zip(&again.jobs) {
            assert_eq!(
                cur.rack_before, prev.rack_after,
                "rack_before is last interval's assignment"
            );
        }
    }

    #[test]
    fn keeps_stable_placements_across_intervals() {
        // With an unchanged world, re-scheduling should not shuffle a
        // running job gratuitously (restart penalty; Sec. 4.2.1).
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let mut s = sched();
        let mut rng = StdRng::seed_from_u64(4);
        let jobs = vec![job(0)];
        let first = s.schedule(&jobs, &spec, &mut rng);

        let mut jobs2 = vec![job(0)];
        jobs2[0].current_placement = first.row(0).to_vec();
        let second = s.schedule(&jobs2, &spec, &mut rng);
        assert_eq!(second.row(0), first.row(0));
    }
}
