//! Per-job `SPEEDUP` evaluation: dense per-interval tables (hot path)
//! and the legacy sharded memo cache (benchmark baseline).
//!
//! `SPEEDUP_j(A_j)` (Eqn 15) only depends on the placement through its
//! `(K, N)` shape, because `T_sync` is locality- but not
//! identity-sensitive (Eqn 10) — and `T_sync` only distinguishes
//! co-located (`N = 1`) from cross-node (`N ≥ 2`) placements, so the
//! whole feasible shape space of one job is two rows of `K ≤ gpu_cap`
//! values. [`SpeedupTable`] precomputes those rows for every job at the
//! start of a scheduling round (fanned out over jobs via
//! [`crate::par::parallel_map`]); each fitness lookup thereafter is an
//! unsynchronized array index — no hashing, no locking, no lazy solve.
//!
//! [`SpeedupCache`] is the previous design: shape-level memoization
//! sharded behind `parking_lot::RwLock`s, populated lazily on the hot
//! path. It is retained as the baseline for `bench_fitness` and for
//! callers that query a handful of shapes where precomputing the dense
//! table would not pay off.
//!
//! # Determinism
//!
//! Both structures store values that are **pure** functions of
//! `(job.model, shape)`, computed with bit-identical arithmetic
//! (`max_goodput(shape) / max_goodput(reference_shape())`, zero outside
//! the feasible range). Table construction reassembles worker results
//! in job order, so the table contents never depend on the thread
//! count; lookup counters use relaxed atomics and count totals that are
//! likewise thread-count-invariant.

use crate::par::parallel_map;
use parking_lot::RwLock;
use pollux_cluster::{ClusterSpec, JobId};
use pollux_models::{GoodputModel, PlacementShape};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards (a power of two).
pub const SHARD_COUNT: usize = 16;

/// The scheduler-facing view of one job at one scheduling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedJob {
    /// Stable job identifier.
    pub id: JobId,
    /// The goodput model reported by the job's `PolluxAgent`.
    pub model: GoodputModel,
    /// Minimum GPUs on which the job's `m0` fits.
    pub min_gpus: u32,
    /// Scale-out cap (at most twice the GPUs ever held; Sec. 4.1).
    pub gpu_cap: u32,
    /// Fairness weight `w_j` (Eqn 16).
    pub weight: f64,
    /// The placement row currently applied in the cluster (empty GPUs
    /// everywhere when the job is pending). Used for restart detection.
    pub current_placement: Vec<u32>,
}

impl SchedJob {
    /// True when the job currently holds any GPUs.
    pub fn is_running(&self) -> bool {
        self.current_placement.iter().any(|&g| g > 0)
    }

    /// A version stamp over the job's speedup-relevant inputs: the
    /// θsys throughput parameters, the gradient-noise scale, the
    /// batch-size limits, and the feasible GPU range. Two jobs with
    /// equal stamps *almost certainly* produce bit-identical speedup
    /// rows; the incremental table build uses the stamp as a cheap
    /// prefilter and confirms with exact model equality, so a hash
    /// collision can never corrupt a schedule. The weight and the
    /// current placement are deliberately excluded: neither enters
    /// `SPEEDUP_j` (Eqn 15).
    pub fn speedup_version(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a64 offset basis
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let tp = &self.model.throughput;
        for v in [
            tp.alpha_grad,
            tp.beta_grad,
            tp.alpha_sync_local,
            tp.beta_sync_local,
            tp.alpha_sync_node,
            tp.beta_sync_node,
            tp.gamma,
        ] {
            mix(v.to_bits());
        }
        mix(self.model.efficiency.m0());
        mix(self.model.efficiency.noise_scale().to_bits());
        mix(self.model.limits.min);
        mix(self.model.limits.max_global);
        mix(self.model.limits.max_per_gpu);
        mix(u64::from(self.min_gpus));
        mix(u64::from(self.gpu_cap));
        h
    }
}

/// Counter-free `SPEEDUP_j` evaluation: the same feasibility gates and
/// canonicalization as [`SpeedupCache::speedup`] / [`SpeedupTable`],
/// but computed directly from the goodput model with **no** hit/miss
/// accounting. The table and cache counters flow into the
/// golden-digested `SchedIntervalSample`, so observational consumers —
/// the per-round decision audit (`RoundExplain`) above all — must use
/// this instead of the counted lookups to keep digests byte-identical
/// with telemetry on and off.
pub fn pure_speedup(job: &SchedJob, shape: PlacementShape) -> f64 {
    if shape.gpus < job.min_gpus || shape.gpus > job.gpu_cap {
        return 0.0;
    }
    let shape = PlacementShape::new(shape.gpus, shape.nodes.min(2))
        .expect("nodes >= 1 preserved by canonicalization");
    job.model.speedup(shape)
}

/// One shard of the memo table: shape-level speedups plus the per-job
/// reference goodput (the Eqn 15 denominator) for the jobs hashed to
/// this shard.
#[derive(Debug, Default)]
struct Shard {
    by_shape: HashMap<(JobId, PlacementShape), f64>,
    reference: HashMap<JobId, f64>,
}

/// Hit/miss counters of a [`SpeedupCache`] (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that computed and inserted a fresh value.
    pub misses: u64,
}

/// Memoizes `SPEEDUP_j` per `(job, shape)` within one scheduling round.
///
/// Shared across the fitness worker pool: all methods take `&self`.
/// The cache must be cleared (or rebuilt) whenever the jobs' goodput
/// models change, i.e. at every scheduling interval.
#[derive(Debug, Default)]
pub struct SpeedupCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SpeedupCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, id: JobId) -> &RwLock<Shard> {
        // Fibonacci multiplicative hash of the job id: consecutive ids
        // spread across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[h as usize % SHARD_COUNT]
    }

    /// Clears all memoized values and counters (call at the start of
    /// each interval).
    pub fn clear(&mut self) {
        for shard in &self.shards {
            let mut s = shard.write();
            s.by_shape.clear();
            s.reference.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// `SPEEDUP_j` for the job under `shape` (batch size re-optimized
    /// in both numerator and denominator). Returns 0 for infeasible
    /// shapes (`K < min_gpus`) and shapes beyond the job's scale cap.
    ///
    /// Shapes are canonicalized to `(K, min(N, 2))` before lookup:
    /// `T_sync` (Eqn 10) only distinguishes co-located (`N = 1`) from
    /// cross-node (`N ≥ 2`) placements, so all multi-node shapes with
    /// equal `K` share one speedup value.
    ///
    /// Safe to call from any number of threads concurrently; the
    /// returned value is independent of interleaving (see the module
    /// docs on determinism).
    pub fn speedup(&self, job: &SchedJob, shape: PlacementShape) -> f64 {
        if shape.gpus < job.min_gpus || shape.gpus > job.gpu_cap {
            return 0.0;
        }
        let shape = PlacementShape::new(shape.gpus, shape.nodes.min(2))
            .expect("nodes >= 1 preserved by canonicalization");
        let shard = self.shard(job.id);
        let cached_ref = {
            let s = shard.read();
            if let Some(&v) = s.by_shape.get(&(job.id, shape)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            s.reference.get(&job.id).copied()
        };

        // Miss: compute outside any lock (both solves are pure), then
        // publish. A racing thread may compute the same value; the
        // duplicate insert is bit-identical.
        let denom =
            cached_ref.unwrap_or_else(|| job.model.max_goodput(job.model.reference_shape()));
        let v = if denom > 0.0 {
            job.model.max_goodput(shape) / denom
        } else {
            0.0
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut s = shard.write();
        s.reference.entry(job.id).or_insert(denom);
        s.by_shape.insert((job.id, shape), v);
        v
    }

    /// Hit/miss counters since construction or the last [`clear`].
    ///
    /// [`clear`]: SpeedupCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized `(job, shape)` entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().by_shape.len()).sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().by_shape.is_empty())
    }
}

/// Counters of a [`SpeedupTable`]: where did speedup values come from?
///
/// `solves` is fixed at build time (one golden-section batch-size solve
/// per feasible table entry plus one reference denominator per job);
/// `hits`/`misses` accumulate per lookup with relaxed atomics. Exposed
/// through the `pollux.sched.speedup.stats` service key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeedupTableStats {
    /// Lookups answered from the dense table (in-range shapes,
    /// including stored zeros for infeasible `K`).
    pub hits: u64,
    /// Lookups outside the table bounds (answered 0 without touching
    /// memory; only reachable through unrepaired candidate matrices).
    pub misses: u64,
    /// Golden-section solves spent building the table. Reused rows
    /// carry their original per-row solve count forward, so this total
    /// is identical to a from-scratch build — it participates in the
    /// golden-digested `SchedIntervalSample`.
    pub solves: u64,
    /// Rows copied verbatim from the previous interval's table by
    /// [`SpeedupTable::build_reusing`] instead of being re-solved.
    /// Purely observational (never serialized into golden output):
    /// reuse is bit-exact by construction.
    #[serde(default)]
    pub rows_reused: u64,
}

impl SpeedupTableStats {
    /// Adds another interval's counters into this accumulator.
    pub fn accumulate(&mut self, other: SpeedupTableStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.solves += other.solves;
        self.rows_reused += other.rows_reused;
    }
}

/// Dense per-interval `SPEEDUP` table: every feasible `(job, shape)`
/// value precomputed into one flat `Vec<f64>`.
///
/// Layout: `values[job * 2 * max_gpus + locality * max_gpus + (K − 1)]`
/// with locality 0 = co-located (`N = 1`) and 1 = cross-node (`N ≥ 2`,
/// canonical for every multi-node shape). `max_gpus` is the largest
/// `min(gpu_cap, total cluster GPUs)` over the jobs, so the table is
/// `jobs × 2 × max_gpus` doubles — a few KiB for realistic rounds.
///
/// Entries outside a job's feasible range (`K < min_gpus` or
/// `K > gpu_cap`) hold 0, so [`Self::speedup`] is a pure bounds check
/// plus an array read: no hashing, no locks, no branches on job state.
/// Values are bit-identical to [`SpeedupCache::speedup`] and
/// [`GoodputModel::speedup`] for every shape reachable from a repaired
/// allocation matrix.
///
/// Rebuild the table whenever the jobs' goodput models change — but
/// jobs whose speedup-relevant inputs did *not* change can have their
/// rows copied forward from the previous interval's table via
/// [`Self::build_reusing`], skipping their golden-section solves
/// entirely.
#[derive(Debug, Default)]
pub struct SpeedupTable {
    values: Vec<f64>,
    num_jobs: usize,
    max_gpus: u32,
    /// Whether distributed (`N ≥ 2`) rows were solved; rows from a
    /// table that skipped them are not reusable by one that needs
    /// them (and vice versa — the stored zeros would alias real
    /// values).
    include_distributed: bool,
    /// Per-row provenance: the exact inputs each row is a pure
    /// function of, enabling cross-interval row reuse.
    row_keys: Vec<RowKey>,
    /// Per-row golden-section solve counts, carried forward with
    /// reused rows so the `solves` total always equals a fresh build.
    row_solves: Vec<u64>,
    solves: u64,
    rows_reused: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The inputs one table row is a pure function of. A previous row is
/// reused only when *every* field matches exactly (the `version`
/// stamp is a prefilter; `model` equality is the authority), which is
/// what makes incremental builds bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
struct RowKey {
    id: JobId,
    version: u64,
    model: GoodputModel,
    /// Feasible GPU range the profile was solved over (`min_gpus` and
    /// `gpu_cap` clamped to the cluster's total GPUs — a cluster
    /// resize can dirty a row even when the job itself is unchanged).
    lo: u32,
    hi: u32,
}

/// One worker's output for one job row: either a freshly solved
/// profile or a verbatim copy of the previous interval's row.
struct RowStripe {
    colocated: Vec<f64>,
    distributed: Vec<f64>,
    solves: u64,
    reused: bool,
    key: RowKey,
}

impl SpeedupTable {
    /// Precomputes the table for `jobs` on `spec`, fanning the per-job
    /// golden-section solves out over `threads` workers. Worker results
    /// are reassembled in job order, so the table contents are
    /// independent of the thread count.
    ///
    /// Distributed rows are only solved when the cluster has at least
    /// two nodes — a single-node cluster can never produce an `N ≥ 2`
    /// placement, so those rows stay zero for free.
    pub fn build(jobs: &[SchedJob], spec: &ClusterSpec, threads: usize) -> Self {
        Self::build_reusing(jobs, spec, threads, None)
    }

    /// Like [`Self::build`], but copies rows forward from `prev` (the
    /// previous interval's table) for every job whose speedup-relevant
    /// inputs are unchanged, re-solving only dirty rows.
    ///
    /// A row is clean when the job id is found in `prev` and its
    /// `RowKey` — goodput model, feasible GPU range — matches
    /// exactly, and the two tables agree on column count and
    /// distributed coverage. Reused rows keep their original per-row
    /// solve counts, so `stats().solves` is identical to a fresh
    /// build; the values are identical bit for bit because each row is
    /// a pure function of its key (`debug_assert`-cross-checked
    /// against a from-scratch build).
    pub fn build_reusing(
        jobs: &[SchedJob],
        spec: &ClusterSpec,
        threads: usize,
        prev: Option<&SpeedupTable>,
    ) -> Self {
        let total = spec.total_gpus();
        let max_gpus = jobs.iter().map(|j| j.gpu_cap.min(total)).max().unwrap_or(0);
        let include_distributed = spec.num_nodes() >= 2;
        let cols = max_gpus as usize;
        let prev =
            prev.filter(|p| p.max_gpus == max_gpus && p.include_distributed == include_distributed);
        let prev_rows: HashMap<JobId, usize> = prev
            .map(|p| {
                p.row_keys
                    .iter()
                    .enumerate()
                    .map(|(i, k)| (k.id, i))
                    .collect()
            })
            .unwrap_or_default();
        let stripes = parallel_map(jobs.len(), threads, |i| {
            let job = &jobs[i];
            let lo = job.min_gpus.max(1);
            let hi = job.gpu_cap.min(total);
            let key = RowKey {
                id: job.id,
                version: job.speedup_version(),
                model: job.model,
                lo,
                hi,
            };
            if let Some(p) = prev {
                if let Some(&pi) = prev_rows.get(&job.id) {
                    let pk = &p.row_keys[pi];
                    if pk.version == key.version
                        && pk.lo == lo
                        && pk.hi == hi
                        && pk.model == key.model
                    {
                        let base = pi * 2 * cols;
                        return RowStripe {
                            colocated: p.values[base..base + cols].to_vec(),
                            distributed: p.values[base + cols..base + 2 * cols].to_vec(),
                            solves: p.row_solves[pi],
                            reused: true,
                            key,
                        };
                    }
                }
            }
            let profile = job
                .model
                .speedup_profile(lo..=hi, max_gpus, include_distributed);
            RowStripe {
                colocated: profile.colocated,
                distributed: profile.distributed,
                solves: profile.solves,
                reused: false,
                key,
            }
        });
        let mut values = Vec::with_capacity(jobs.len() * 2 * cols);
        let mut row_keys = Vec::with_capacity(jobs.len());
        let mut row_solves = Vec::with_capacity(jobs.len());
        let mut solves = 0;
        let mut rows_reused = 0;
        for stripe in stripes {
            debug_assert_eq!(stripe.colocated.len(), cols);
            debug_assert_eq!(stripe.distributed.len(), cols);
            values.extend_from_slice(&stripe.colocated);
            values.extend_from_slice(&stripe.distributed);
            solves += stripe.solves;
            rows_reused += u64::from(stripe.reused);
            row_keys.push(stripe.key);
            row_solves.push(stripe.solves);
        }
        let table = Self {
            values,
            num_jobs: jobs.len(),
            max_gpus,
            include_distributed,
            row_keys,
            row_solves,
            solves,
            rows_reused,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };
        #[cfg(debug_assertions)]
        if table.rows_reused > 0 {
            let fresh = Self::build(jobs, spec, 1);
            debug_assert_eq!(
                fresh.solves, table.solves,
                "incremental build must carry exact solve counts"
            );
            debug_assert!(
                fresh
                    .values
                    .iter()
                    .zip(&table.values)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "incremental build must be bit-identical to a fresh build"
            );
        }
        table
    }

    /// `SPEEDUP` of job `job_idx` (its index in the `jobs` slice the
    /// table was built from) under `shape`: one relaxed counter bump
    /// and one array read. Returns 0 for out-of-table shapes.
    #[inline]
    pub fn speedup(&self, job_idx: usize, shape: PlacementShape) -> f64 {
        if job_idx >= self.num_jobs || shape.gpus == 0 || shape.gpus > self.max_gpus {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return 0.0;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let cols = self.max_gpus as usize;
        let locality = usize::from(shape.nodes >= 2);
        self.values[job_idx * 2 * cols + locality * cols + (shape.gpus as usize - 1)]
    }

    /// Number of jobs the table covers.
    pub fn num_jobs(&self) -> usize {
        self.num_jobs
    }

    /// Columns per locality row (`max(min(gpu_cap, total GPUs))`).
    pub fn max_gpus(&self) -> u32 {
        self.max_gpus
    }

    /// Total stored entries (diagnostics; `jobs × 2 × max_gpus`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Rows copied forward from a previous table by
    /// [`Self::build_reusing`] (0 for a fresh build).
    pub fn rows_reused(&self) -> u64 {
        self.rows_reused
    }

    /// Lookup and build counters since construction.
    pub fn stats(&self) -> SpeedupTableStats {
        SpeedupTableStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            solves: self.solves,
            rows_reused: self.rows_reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, ThroughputParams};

    pub(crate) fn test_model(m0: u64, phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
        let limits = BatchSizeLimits::new(m0, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, cap: u32) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: test_model(128, 2000.0),
            min_gpus: 1,
            gpu_cap: cap,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    #[test]
    fn speedup_matches_model_directly() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            let expect = j.model.speedup(shape);
            let got = cache.speedup(&j, shape);
            assert!((got - expect).abs() < 1e-9, "({g},{n}): {got} vs {expect}");
        }
    }

    #[test]
    fn cache_hits_do_not_recompute() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        let shape = PlacementShape::new(4, 1).unwrap();
        let a = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let b = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a, b);
    }

    #[test]
    fn canonicalized_shapes_share_entries() {
        let j = job(1, 64);
        let cache = SpeedupCache::new();
        let a = cache.speedup(&j, PlacementShape::new(8, 2).unwrap());
        // 8 GPUs over 4 nodes canonicalizes to (8, 2): a hit.
        let b = cache.speedup(&j, PlacementShape::new(8, 4).unwrap());
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn respects_gpu_cap_and_min() {
        let mut j = job(1, 4);
        j.min_gpus = 2;
        let cache = SpeedupCache::new();
        assert_eq!(cache.speedup(&j, PlacementShape::single()), 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(2, 1).unwrap()) > 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(4, 1).unwrap()) > 0.0);
        assert_eq!(cache.speedup(&j, PlacementShape::new(5, 2).unwrap()), 0.0);
        // Out-of-bounds shapes never touch the memo table.
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_memoization_and_stats() {
        let j = job(1, 64);
        let mut cache = SpeedupCache::new();
        cache.speedup(&j, PlacementShape::single());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn jobs_spread_across_shards() {
        let cache = SpeedupCache::new();
        let touched: std::collections::HashSet<usize> = (0..64u32)
            .map(|id| {
                let shard = cache.shard(JobId(id)) as *const _ as usize;
                shard
            })
            .collect();
        assert!(
            touched.len() > SHARD_COUNT / 2,
            "only {} shards",
            touched.len()
        );
    }

    #[test]
    fn concurrent_readers_agree_and_stats_balance() {
        // 8 threads hammer the same small shape set: every thread must
        // observe the exact same (bit-identical) value per shape, and
        // hits + misses must account for every query. Racing first
        // queries may each count a miss, but the memo table still ends
        // up with exactly one entry per canonical shape.
        let jobs: Vec<SchedJob> = (0..4).map(|i| job(i, 64)).collect();
        let shapes: Vec<PlacementShape> = (1..=8u32)
            .map(|g| PlacementShape::new(g, g.div_ceil(4)).unwrap())
            .collect();
        let cache = SpeedupCache::new();
        let queries_per_thread = jobs.len() * shapes.len();
        let per_thread: Vec<Vec<u64>> = crate::par::parallel_map(8, 8, |_| {
            let mut seen = Vec::with_capacity(queries_per_thread);
            for j in &jobs {
                for &s in &shapes {
                    seen.push(cache.speedup(j, s).to_bits());
                }
            }
            seen
        });
        for t in &per_thread[1..] {
            assert_eq!(t, &per_thread[0], "threads observed different values");
        }
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (8 * queries_per_thread) as u64,
            "every query must count as a hit or a miss"
        );
        assert!(stats.misses >= queries_per_thread as u64);
        assert!(stats.hits > 0, "repeat queries must hit");
        // (8,2) and (8,4)-style aliases collapse; here every shape is
        // already canonical, so the table holds jobs × shapes entries.
        assert_eq!(cache.len(), queries_per_thread);
    }

    #[test]
    fn pure_speedup_matches_counted_lookups_without_counting() {
        let mut j = job(1, 16);
        j.min_gpus = 2;
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let table = SpeedupTable::build(std::slice::from_ref(&j), &spec, 1);
        let before = table.stats();
        for gpus in 1u32..=16 {
            for nodes in 1u32..=4.min(gpus) {
                let shape = PlacementShape::new(gpus, nodes).unwrap();
                assert_eq!(
                    pure_speedup(&j, shape).to_bits(),
                    table.speedup(0, shape).to_bits(),
                    "shape ({gpus},{nodes})"
                );
            }
        }
        // The table counted the comparison lookups; pure_speedup itself
        // must have added nothing beyond them.
        let after = table.stats();
        assert_eq!(after.hits + after.misses - before.hits - before.misses, {
            let mut n = 0;
            for gpus in 1u32..=16 {
                n += 4.min(gpus) as u64;
            }
            n
        });
    }

    #[test]
    fn is_running_detects_allocations() {
        let mut j = job(1, 64);
        assert!(!j.is_running());
        j.current_placement = vec![0, 0, 0];
        assert!(!j.is_running());
        j.current_placement = vec![0, 2, 0];
        assert!(j.is_running());
    }

    #[test]
    fn table_matches_cache_and_model_bitwise() {
        let jobs: Vec<SchedJob> = (0..4)
            .map(|i| {
                let mut j = job(i, 16);
                j.min_gpus = 1 + i % 3;
                j
            })
            .collect();
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let table = SpeedupTable::build(&jobs, &spec, 2);
        let cache = SpeedupCache::new();
        for (idx, j) in jobs.iter().enumerate() {
            for gpus in 1u32..=16 {
                for nodes in 1u32..=4.min(gpus) {
                    let shape = PlacementShape::new(gpus, nodes).unwrap();
                    let from_table = table.speedup(idx, shape);
                    let from_cache = cache.speedup(j, shape);
                    assert_eq!(
                        from_table.to_bits(),
                        from_cache.to_bits(),
                        "job {idx} shape ({gpus},{nodes})"
                    );
                }
            }
        }
    }

    #[test]
    fn table_build_is_thread_count_invariant() {
        let jobs: Vec<SchedJob> = (0..6).map(|i| job(i, 32)).collect();
        let spec = ClusterSpec::homogeneous(8, 4).unwrap();
        let serial = SpeedupTable::build(&jobs, &spec, 1);
        let parallel = SpeedupTable::build(&jobs, &spec, 4);
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(serial.stats().solves, parallel.stats().solves);
        for gpus in 1u32..=32 {
            for nodes in 1u32..=3.min(gpus) {
                let shape = PlacementShape::new(gpus, nodes).unwrap();
                for idx in 0..jobs.len() {
                    assert_eq!(
                        serial.speedup(idx, shape).to_bits(),
                        parallel.speedup(idx, shape).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn table_counts_hits_misses_and_solves() {
        let jobs = vec![job(0, 8)];
        let spec = ClusterSpec::homogeneous(2, 4).unwrap();
        let table = SpeedupTable::build(&jobs, &spec, 1);
        assert_eq!(table.num_jobs(), 1);
        assert_eq!(table.max_gpus(), 8);
        assert_eq!(table.len(), 2 * 8);
        // 1 reference + 8 colocated + 7 distributed solves.
        assert_eq!(table.stats().solves, 16);
        assert!(table.speedup(0, PlacementShape::new(4, 1).unwrap()) > 0.0);
        assert_eq!(table.speedup(0, PlacementShape::new(9, 2).unwrap()), 0.0);
        assert_eq!(table.speedup(1, PlacementShape::single()), 0.0);
        let stats = table.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        let mut acc = SpeedupTableStats::default();
        acc.accumulate(stats);
        acc.accumulate(stats);
        assert_eq!(acc.hits, 2);
        assert_eq!(acc.solves, 32);
    }

    #[test]
    fn single_node_cluster_skips_distributed_solves() {
        let jobs = vec![job(0, 8)];
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let table = SpeedupTable::build(&jobs, &spec, 1);
        // Capped by the 4 total GPUs: 1 reference + 4 colocated solves.
        assert_eq!(table.max_gpus(), 4);
        assert_eq!(table.stats().solves, 5);
        assert!(table.speedup(0, PlacementShape::new(2, 1).unwrap()) > 0.0);
    }

    #[test]
    fn empty_job_set_builds_empty_table() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let table = SpeedupTable::build(&[], &spec, 4);
        assert!(table.is_empty());
        assert_eq!(table.stats().solves, 0);
        assert_eq!(table.speedup(0, PlacementShape::single()), 0.0);
    }

    /// Bitwise equality of two tables' stored values.
    fn tables_bit_identical(a: &SpeedupTable, b: &SpeedupTable) -> bool {
        a.values.len() == b.values.len()
            && a.values
                .iter()
                .zip(&b.values)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn incremental_build_reuses_clean_rows_and_recomputes_dirty() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut jobs = vec![job(1, 8), job(2, 8), job(3, 8)];
        let prev = SpeedupTable::build(&jobs, &spec, 1);
        assert_eq!(prev.rows_reused(), 0);
        // Dirty job 2's model: its row must be re-solved, the others
        // copied forward.
        jobs[1].model = test_model(128, 9000.0);
        let table = SpeedupTable::build_reusing(&jobs, &spec, 1, Some(&prev));
        assert_eq!(table.rows_reused(), 2);
        let fresh = SpeedupTable::build(&jobs, &spec, 1);
        assert!(tables_bit_identical(&table, &fresh));
        assert_eq!(table.stats().solves, fresh.stats().solves);
    }

    #[test]
    fn incremental_build_carries_exact_solve_counts_when_all_clean() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs = vec![job(1, 8), job(2, 12)];
        let prev = SpeedupTable::build(&jobs, &spec, 1);
        let table = SpeedupTable::build_reusing(&jobs, &spec, 1, Some(&prev));
        assert_eq!(table.rows_reused(), 2);
        // Reused rows keep their original solve counts so the
        // (golden-digested) totals match a fresh build exactly.
        assert_eq!(table.stats().solves, prev.stats().solves);
        assert!(tables_bit_identical(&table, &prev));
    }

    #[test]
    fn weight_and_placement_changes_do_not_dirty_rows() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut jobs = vec![job(1, 8)];
        let prev = SpeedupTable::build(&jobs, &spec, 1);
        // Neither field enters Eqn 15's speedup, so neither is in the
        // row key.
        jobs[0].weight = 0.25;
        jobs[0].current_placement = vec![2, 0, 0, 0];
        let table = SpeedupTable::build_reusing(&jobs, &spec, 1, Some(&prev));
        assert_eq!(table.rows_reused(), 1);
    }

    #[test]
    fn arrivals_and_departures_reuse_surviving_rows() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let prev = SpeedupTable::build(&[job(1, 8), job(2, 8), job(3, 8)], &spec, 1);
        // Job 1 departs, job 4 arrives, jobs 2-3 survive (in new
        // positions: row reuse is keyed by id, not index).
        let jobs = vec![job(4, 8), job(2, 8), job(3, 8)];
        let table = SpeedupTable::build_reusing(&jobs, &spec, 1, Some(&prev));
        assert_eq!(table.rows_reused(), 2);
        assert!(tables_bit_identical(
            &table,
            &SpeedupTable::build(&jobs, &spec, 1)
        ));
    }

    #[test]
    fn table_shape_mismatch_disables_reuse() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let jobs = vec![job(1, 8)];
        let prev = SpeedupTable::build(&jobs, &spec, 1);
        // A new arrival with a larger cap widens max_gpus: the old
        // columns no longer line up, so nothing is copied.
        let widened = vec![job(1, 8), job(2, 12)];
        let table = SpeedupTable::build_reusing(&widened, &spec, 1, Some(&prev));
        assert_eq!(table.rows_reused(), 0);
        // A gpu_cap change also moves the job's own feasible range
        // (the `hi` bound), dirtying just that row.
        let capped = vec![{
            let mut j = job(1, 8);
            j.gpu_cap = 6;
            j
        }];
        let recapped = SpeedupTable::build_reusing(&capped, &spec, 1, Some(&prev));
        assert_eq!(recapped.rows_reused(), 0);
    }

    #[test]
    fn incremental_build_is_thread_count_invariant() {
        let spec = ClusterSpec::homogeneous(4, 4).unwrap();
        let mut jobs: Vec<SchedJob> = (0..9).map(|i| job(i, 4 + i % 5)).collect();
        let prev = SpeedupTable::build(&jobs, &spec, 1);
        jobs[4].model = test_model(256, 500.0);
        let serial = SpeedupTable::build_reusing(&jobs, &spec, 1, Some(&prev));
        for threads in [2usize, 4] {
            let parallel = SpeedupTable::build_reusing(&jobs, &spec, threads, Some(&prev));
            assert!(tables_bit_identical(&serial, &parallel));
            assert_eq!(serial.rows_reused(), parallel.rows_reused());
            assert_eq!(serial.stats().solves, parallel.stats().solves);
        }
    }

    mod table_proptests {
        use super::*;
        use pollux_models::ThroughputParams;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn dense_table_is_bit_identical_to_model_speedup(
                alpha_grad in 0.0f64..0.3,
                beta_grad in 1e-5f64..5e-3,
                alpha_sync in 0.0f64..0.3,
                beta_sync in 0.0f64..0.02,
                gamma in 1.0f64..6.0,
                phi in 50.0f64..20_000.0,
                m0_exp in 5u32..9,
                min_gpus in 1u32..4,
                gpu_cap in 4u32..24,
                nodes in 1u32..5,
                threads in 1usize..4,
            ) {
                let m0 = 1u64 << m0_exp;
                let tp = ThroughputParams::new(
                    alpha_grad, beta_grad, alpha_sync, beta_sync,
                    alpha_sync * 1.5, beta_sync * 1.5, gamma,
                ).unwrap();
                let eff = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
                let limits = BatchSizeLimits::new(m0, 65_536, 512).unwrap();
                let model = GoodputModel::new(tp, eff, limits).unwrap();
                let job = SchedJob {
                    id: JobId(7),
                    model,
                    min_gpus,
                    gpu_cap,
                    weight: 1.0,
                    current_placement: vec![],
                };
                let spec = ClusterSpec::homogeneous(nodes, 4).unwrap();
                let table = SpeedupTable::build(
                    std::slice::from_ref(&job), &spec, threads,
                );
                let total = spec.total_gpus();
                for gpus in 1..=total {
                    for n in 1..=nodes.min(gpus) {
                        let shape = PlacementShape::new(gpus, n).unwrap();
                        // Canonical model value with the same feasibility
                        // gates the scheduler applies.
                        let expect = if gpus < job.min_gpus || gpus > job.gpu_cap {
                            0.0
                        } else {
                            job.model.speedup(
                                PlacementShape::new(gpus, n.min(2)).unwrap(),
                            )
                        };
                        let got = table.speedup(0, shape);
                        prop_assert_eq!(
                            got.to_bits(), expect.to_bits(),
                            "shape ({},{}) got {} expect {}",
                            gpus, n, got, expect
                        );
                    }
                }
            }
        }
    }
}
