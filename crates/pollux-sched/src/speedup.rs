//! Per-job `SPEEDUP` evaluation with shape-level memoization.
//!
//! `SPEEDUP_j(A_j)` (Eqn 15) only depends on the placement through its
//! `(K, N)` shape, because `T_sync` is locality- but not
//! identity-sensitive (Eqn 10). The genetic algorithm evaluates tens of
//! thousands of placements per interval; caching by shape makes each
//! evaluation O(1) after the first golden-section solve.

use pollux_cluster::JobId;
use pollux_models::{GoodputModel, PlacementShape};
use std::collections::HashMap;

/// The scheduler-facing view of one job at one scheduling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedJob {
    /// Stable job identifier.
    pub id: JobId,
    /// The goodput model reported by the job's `PolluxAgent`.
    pub model: GoodputModel,
    /// Minimum GPUs on which the job's `m0` fits.
    pub min_gpus: u32,
    /// Scale-out cap (at most twice the GPUs ever held; Sec. 4.1).
    pub gpu_cap: u32,
    /// Fairness weight `w_j` (Eqn 16).
    pub weight: f64,
    /// The placement row currently applied in the cluster (empty GPUs
    /// everywhere when the job is pending). Used for restart detection.
    pub current_placement: Vec<u32>,
}

impl SchedJob {
    /// True when the job currently holds any GPUs.
    pub fn is_running(&self) -> bool {
        self.current_placement.iter().any(|&g| g > 0)
    }
}

/// Memoizes `SPEEDUP_j` per `(job, shape)` within one scheduling round.
///
/// The cache must be cleared (or rebuilt) whenever the jobs' goodput
/// models change, i.e. at every scheduling interval.
#[derive(Debug, Default)]
pub struct SpeedupCache {
    by_shape: HashMap<(JobId, PlacementShape), f64>,
    reference: HashMap<JobId, f64>,
}

impl SpeedupCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all memoized values (call at the start of each interval).
    pub fn clear(&mut self) {
        self.by_shape.clear();
        self.reference.clear();
    }

    /// `SPEEDUP_j` for the job under `shape` (batch size re-optimized
    /// in both numerator and denominator). Returns 0 for infeasible
    /// shapes (`K < min_gpus`) and shapes beyond the job's scale cap.
    ///
    /// Shapes are canonicalized to `(K, min(N, 2))` before lookup:
    /// `T_sync` (Eqn 10) only distinguishes co-located (`N = 1`) from
    /// cross-node (`N ≥ 2`) placements, so all multi-node shapes with
    /// equal `K` share one speedup value.
    pub fn speedup(&mut self, job: &SchedJob, shape: PlacementShape) -> f64 {
        if shape.gpus < job.min_gpus || shape.gpus > job.gpu_cap {
            return 0.0;
        }
        let shape = PlacementShape::new(shape.gpus, shape.nodes.min(2))
            .expect("nodes >= 1 preserved by canonicalization");
        if let Some(&v) = self.by_shape.get(&(job.id, shape)) {
            return v;
        }
        let denom = *self
            .reference
            .entry(job.id)
            .or_insert_with(|| job.model.max_goodput(job.model.reference_shape()));
        let v = if denom > 0.0 {
            job.model.max_goodput(shape) / denom
        } else {
            0.0
        };
        self.by_shape.insert((job.id, shape), v);
        v
    }

    /// Number of memoized `(job, shape)` entries (diagnostics).
    pub fn len(&self) -> usize {
        self.by_shape.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.by_shape.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_models::{BatchSizeLimits, EfficiencyModel, ThroughputParams};

    pub(crate) fn test_model(m0: u64, phi: f64) -> GoodputModel {
        let tp = ThroughputParams::new(0.05, 5.0e-4, 0.05, 0.002, 0.2, 0.01, 2.0).unwrap();
        let eff = EfficiencyModel::from_noise_scale(m0, phi).unwrap();
        let limits = BatchSizeLimits::new(m0, 65_536, 512).unwrap();
        GoodputModel::new(tp, eff, limits).unwrap()
    }

    fn job(id: u32, cap: u32) -> SchedJob {
        SchedJob {
            id: JobId(id),
            model: test_model(128, 2000.0),
            min_gpus: 1,
            gpu_cap: cap,
            weight: 1.0,
            current_placement: vec![],
        }
    }

    #[test]
    fn speedup_matches_model_directly() {
        let j = job(1, 64);
        let mut cache = SpeedupCache::new();
        for (g, n) in [(1u32, 1u32), (2, 1), (4, 1), (8, 2)] {
            let shape = PlacementShape::new(g, n).unwrap();
            let expect = j.model.speedup(shape);
            let got = cache.speedup(&j, shape);
            assert!((got - expect).abs() < 1e-9, "({g},{n}): {got} vs {expect}");
        }
    }

    #[test]
    fn cache_hits_do_not_recompute() {
        let j = job(1, 64);
        let mut cache = SpeedupCache::new();
        let shape = PlacementShape::new(4, 1).unwrap();
        let a = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        let b = cache.speedup(&j, shape);
        assert_eq!(cache.len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_gpu_cap_and_min() {
        let mut j = job(1, 4);
        j.min_gpus = 2;
        let mut cache = SpeedupCache::new();
        assert_eq!(cache.speedup(&j, PlacementShape::single()), 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(2, 1).unwrap()) > 0.0);
        assert!(cache.speedup(&j, PlacementShape::new(4, 1).unwrap()) > 0.0);
        assert_eq!(cache.speedup(&j, PlacementShape::new(5, 2).unwrap()), 0.0);
    }

    #[test]
    fn clear_resets_memoization() {
        let j = job(1, 64);
        let mut cache = SpeedupCache::new();
        cache.speedup(&j, PlacementShape::single());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn is_running_detects_allocations() {
        let mut j = job(1, 64);
        assert!(!j.is_running());
        j.current_placement = vec![0, 0, 0];
        assert!(!j.is_running());
        j.current_placement = vec![0, 2, 0];
        assert!(j.is_running());
    }
}
